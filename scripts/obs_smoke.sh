#!/usr/bin/env bash
# Observability smoke: end-to-end check of the flight-recorder layer.
#   1. run the obs-smoke ctest label (progress/profile schema + A/B tests)
#   2. run a tiny real sweep with telemetry + profiling on, then assert
#      - every emitted wecsim.progress stream validates (wecsim-top --check)
#      - the timing side-channel carries the profile phase breakdown
#   3. run bench_compare self-vs-self on the emitted timing report -> the
#      gate must report zero regressions on identical input
#
# Usage: scripts/obs_smoke.sh [build-dir]   (configures+builds when omitted)
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-}"
if [[ -z "$build" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$(nproc)" \
    --target progress_schema_test profile_test bench_harness_scaling \
    wecsim-top
  build=build
fi

(cd "$build" && ctest -L obs-smoke --output-on-failure -j "$(nproc)")

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "--- tiny sweep with telemetry + profiling ---"
WECSIM_PROGRESS_DIR="$tmp" WECSIM_PROFILE=1 WECSIM_REPORT_DIR="$tmp" \
  "$build/bench/bench_harness_scaling" --smoke --jobs=2

streams=("$tmp"/*.progress.jsonl)
if [[ ! -e "${streams[0]}" ]]; then
  echo "FAIL: no progress stream emitted under $tmp" >&2
  exit 1
fi
for stream in "${streams[@]}"; do
  "$build/tools/wecsim-top" --check "$stream"
done
"$build/tools/wecsim-top" --once "$tmp"

if ! grep -q '"profile"' "$tmp/BENCH_harness.json"; then
  echo "FAIL: no profile section in $tmp/BENCH_harness.json" >&2
  exit 1
fi
echo "profile section present in BENCH_harness.json"

echo "--- bench_compare self-vs-self ---"
python3 scripts/bench_compare.py --verify-integrity \
  "$tmp/BENCH_harness.json" "$tmp/BENCH_harness.json"

echo "obs smoke passed"
