#!/usr/bin/env bash
# Chaos harness for wecsimd (docs/SERVICE.md): builds the service, runs the
# service-smoke suite, then drives an end-to-end kill storm — SIGKILL worker
# processes mid-simulation, SIGKILL the daemon itself, restart it on the same
# state dir — and asserts the final run report is byte-identical to an
# uninterrupted baseline. Also checks the admission-control exit code (4 for
# a quota rejection) and the graceful-drain contract (SIGTERM exits 3 with
# work journaled, 0 when idle).
#
# Usage: scripts/service_chaos.sh [--asan|--tsan]
#   --asan   run everything under ASan/UBSan (build-asan)
#   --tsan   run everything under TSan (build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

configure=release
case "${1:-}" in
  --asan) configure=asan ;;
  --tsan) configure=tsan ;;
  "") ;;
  *) echo "usage: $0 [--asan|--tsan]" >&2; exit 1 ;;
esac
builddir=build
[[ "$configure" == release ]] || builddir="build-$configure"

cmake --preset "$configure"
cmake --build --preset "$configure" -j "$(nproc)" \
  --target wecsimd wecsimctl service_test
ctest --test-dir "$builddir" -L service-smoke --output-on-failure \
  -j "$(nproc)"

WECSIMD="$builddir/tools/wecsimd"
CTL="$builddir/tools/wecsimctl"
work="$(mktemp -d "${TMPDIR:-/tmp}/wecsim_chaos.XXXXXX")"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

json_field() {  # json_field FIELD <<< '{"json":...}'
  python3 -c "import json,sys; print(json.load(sys.stdin)[sys.argv[1]])" "$1"
}

wait_ready() {  # wait_ready SOCKET
  for _ in $(seq 1 400); do
    if "$CTL" --socket "$1" health >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "service_chaos: daemon on $1 never became ready" >&2
  return 1
}

# The job every phase submits: identical spec -> identical report bytes.
# (The report embeds the job name, not the client, so different tenants
# submitting this spec must produce the same bytes.)
submit_job() {  # submit_job SOCKET [CLIENT]
  "$CTL" --socket "$1" submit --client "${2:-chaos}" --name chaos \
    --workload 181.mcf --scale 1 --seed 42 \
    --point orig=orig:1 --point wp=wth-wp:1 --point wec=wth-wp-wec:1
}

wait_report() {  # wait_report STATE_DIR JOB  (poll the report file itself:
                 # robust whether finalize happened before or after a kill)
  local report="$1/jobs/$2/report.json"
  for _ in $(seq 1 1200); do
    [[ -s "$report" ]] && { echo "$report"; return 0; }
    sleep 0.1
  done
  echo "service_chaos: no report for job $2 under $1" >&2
  return 1
}

echo "== baseline: uninterrupted run =="
state="$work/base"
sock="$state.sock"
mkdir -p "$state"
"$WECSIMD" --socket "$sock" --workers 2 --backoff-ms 10 "$state" \
  2>"$work/base.log" &
daemon_pid=$!
wait_ready "$sock"
job="$(submit_job "$sock" | json_field job)"
"$CTL" --socket "$sock" wait "$job" --timeout 300 >/dev/null
baseline="$(wait_report "$state" "$job")"
kill -TERM "$daemon_pid"
wait "$daemon_pid" && rc=0 || rc=$?
[[ "$rc" -eq 0 ]] || { echo "FAIL: idle drain exited $rc, want 0" >&2; exit 1; }
daemon_pid=""

echo "== chaos: multi-client sweep, SIGKILL workers, then the daemon, restart =="
state="$work/chaos"
sock="$state.sock"
mkdir -p "$state"
"$WECSIMD" --socket "$sock" --workers 1 --backoff-ms 10 "$state" \
  2>"$work/chaos.log" &
daemon_pid=$!
wait_ready "$sock"
job="$(submit_job "$sock" alice | json_field job)"
job2="$(submit_job "$sock" bob | json_field job)"
# Kill whatever worker is busy, a few times, while the sweep runs.
for _ in 1 2 3; do
  sleep 0.2
  pids="$("$CTL" --socket "$sock" health 2>/dev/null | python3 -c \
    'import json,sys; print(" ".join(str(p) for p in json.load(sys.stdin)["worker_pids"]))' \
    2>/dev/null || true)"
  for pid in $pids; do kill -9 "$pid" 2>/dev/null || true; done
done
# Now the daemon itself, no warning.
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$WECSIMD" --socket "$sock" --workers 2 --backoff-ms 10 "$state" \
  2>>"$work/chaos.log" &
daemon_pid=$!
wait_ready "$sock"
report="$(wait_report "$state" "$job")"
cmp "$baseline" "$report" || {
  echo "FAIL: chaos report differs from baseline" >&2; exit 1; }
report2="$(wait_report "$state" "$job2")"
cmp "$baseline" "$report2" || {
  echo "FAIL: second tenant's chaos report differs from baseline" >&2; exit 1; }
kill -TERM "$daemon_pid"; wait "$daemon_pid" || true; daemon_pid=""

echo "== admission control: quota rejection exits 4 =="
state="$work/quota"
sock="$state.sock"
mkdir -p "$state"
"$WECSIMD" --socket "$sock" --workers 1 --quota 1 "$state" \
  2>"$work/quota.log" &
daemon_pid=$!
wait_ready "$sock"
submit_job "$sock" >"$work/quota.out" && rc=0 || rc=$?
[[ "$rc" -eq 4 ]] || {
  echo "FAIL: over-quota submit exited $rc, want 4" >&2
  cat "$work/quota.out" >&2
  exit 1
}
grep -q quota_exceeded "$work/quota.out"
grep -q retry_after_ms "$work/quota.out"
kill -TERM "$daemon_pid"; wait "$daemon_pid" || true; daemon_pid=""

echo "== graceful drain: SIGTERM mid-sweep exits 3, restart resumes =="
state="$work/drain"
sock="$state.sock"
mkdir -p "$state"
"$WECSIMD" --socket "$sock" --workers 1 --backoff-ms 10 "$state" \
  2>"$work/drain.log" &
daemon_pid=$!
wait_ready "$sock"
# SIGTERM the instant the submit reply lands — parsing the job id first
# would give the one worker time to finish the whole sweep.
submit_out="$(submit_job "$sock")"
kill -TERM "$daemon_pid"
job="$(json_field job <<<"$submit_out")"
wait "$daemon_pid" && rc=0 || rc=$?
daemon_pid=""
[[ "$rc" -eq 3 ]] || {
  echo "FAIL: mid-sweep drain exited $rc, want 3 (kExitInterrupted)" >&2
  exit 1
}
"$WECSIMD" --socket "$sock" --workers 2 --backoff-ms 10 "$state" \
  2>>"$work/drain.log" &
daemon_pid=$!
wait_ready "$sock"
report="$(wait_report "$state" "$job")"
cmp "$baseline" "$report" || {
  echo "FAIL: post-drain report differs from baseline" >&2; exit 1; }
kill -TERM "$daemon_pid"; wait "$daemon_pid" || true; daemon_pid=""

echo "service_chaos: all phases passed ($configure)"
