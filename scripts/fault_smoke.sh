#!/usr/bin/env bash
# Runs the robustness suites (fault injection, lockstep checking, fail-soft
# sweeps) under ASan/UBSan. These tests exercise the simulator's error paths
# — injected crashes, timeouts, corrupted commits, torn cache writes — which
# is exactly where leaks and lifetime bugs hide, so they get their own
# sanitizer pass on top of the plain-release run in the main test suite.
#
# Usage: scripts/fault_smoke.sh [--release]
#   --release   run the fault-smoke label against the release build instead
#               (faster; no sanitizers)
set -euo pipefail
cd "$(dirname "$0")/.."

preset=fault-smoke-asan
configure=asan
if [[ "${1:-}" == "--release" ]]; then
  preset=fault-smoke
  configure=release
fi

cmake --preset "$configure"
cmake --build --preset "$configure" -j "$(nproc)" \
  --target fault_test lockstep_test failsoft_test
ctest --preset "$preset" --output-on-failure -j "$(nproc)"
