#!/usr/bin/env bash
# Perf-regression gate, two stages:
#
#  1. Cycle-skip core smoke grid: diffs its deterministic simulated-cycle
#     counts against the committed baseline under bench/baselines/.
#     Simulated cycles are host-independent, so the gate runs with a 0%
#     threshold — any cycle growth on a gated point fails the build.
#  2. Sampled-simulation smoke grid: reruns the grid full-fidelity vs
#     sampled (--core-sampled=smoke), requiring a >= 5x throughput gain,
#     <= 2% architectural-IPC error on every point (bench_compare.py
#     --metric=ipc over the report pair), and bit-stable extrapolated
#     cycle counts against the committed sampled baseline.
#
# Wired as the `perf-regression` ctest label (bench/CMakeLists.txt); this
# script is the developer entry point that also configures and builds.
#
# Usage: scripts/perf_regression.sh [build-dir]
#
# To regenerate the baselines after an intentional perf-relevant change:
#   WECSIM_REPORT_DIR=bench/baselines <build>/bench/bench_micro --core=smoke
#   mv bench/baselines/BENCH_core.json bench/baselines/BENCH_core.smoke.json
#   WECSIM_REPORT_DIR=bench/baselines \
#     <build>/bench/bench_micro --core-sampled=smoke
#   mv bench/baselines/BENCH_core_sampled.json \
#     bench/baselines/BENCH_core.sampled.smoke.json
#   rm bench/baselines/BENCH_core_full.json
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-}"
if [[ -z "$build" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$(nproc)" --target bench_micro
  build=build
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

WECSIM_REPORT_DIR="$tmp" "$build/bench/bench_micro" --core=smoke
python3 scripts/bench_compare.py --metric=cycles \
  bench/baselines/BENCH_core.smoke.json "$tmp/BENCH_core.json"

WECSIM_REPORT_DIR="$tmp" "$build/bench/bench_micro" \
  --core-sampled=smoke --assert-speedup=5
python3 scripts/bench_compare.py --metric=ipc \
  "$tmp/BENCH_core_full.json" "$tmp/BENCH_core_sampled.json"
python3 scripts/bench_compare.py --metric=cycles \
  bench/baselines/BENCH_core.sampled.smoke.json \
  "$tmp/BENCH_core_sampled.json"
