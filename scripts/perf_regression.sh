#!/usr/bin/env bash
# Perf-regression gate: runs the cycle-skip core smoke grid and diffs its
# deterministic simulated-cycle counts against the committed baseline under
# bench/baselines/. Simulated cycles are host-independent, so the gate runs
# with a 0% threshold — any cycle growth on a gated point fails the build.
#
# Wired as the `perf-regression` ctest label (bench/CMakeLists.txt); this
# script is the developer entry point that also configures and builds.
#
# Usage: scripts/perf_regression.sh [build-dir]
#
# To regenerate the baseline after an intentional perf-relevant change:
#   WECSIM_REPORT_DIR=bench/baselines <build>/bench/bench_micro --core=smoke
#   mv bench/baselines/BENCH_core.json bench/baselines/BENCH_core.smoke.json
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-}"
if [[ -z "$build" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$(nproc)" --target bench_micro
  build=build
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

WECSIM_REPORT_DIR="$tmp" "$build/bench/bench_micro" --core=smoke
python3 scripts/bench_compare.py --metric=cycles \
  bench/baselines/BENCH_core.smoke.json "$tmp/BENCH_core.json"
