#!/usr/bin/env bash
# Runs the crash-safety suite (write-ahead sweep journal, interrupt/resume,
# kill-and-resume byte-identity, artifact quarantine) plus the parallel
# harness determinism tests under ThreadSanitizer. The journal is appended to
# concurrently by every worker thread while the signal guard and interrupt
# flag are poked from outside — exactly where data races hide, so these
# suites get their own TSan pass on top of the plain-release run in the main
# test suite.
#
# Usage: scripts/recovery_smoke.sh [--release]
#   --release   run the recovery-smoke label against the release build
#               instead (faster; no sanitizer)
set -euo pipefail
cd "$(dirname "$0")/.."

preset=recovery-smoke-tsan
configure=tsan
if [[ "${1:-}" == "--release" ]]; then
  preset=recovery-smoke
  configure=release
fi

cmake --preset "$configure"
cmake --build --preset "$configure" -j "$(nproc)" \
  --target recovery_test parallel_harness_test
ctest --preset "$preset" --output-on-failure -j "$(nproc)"
