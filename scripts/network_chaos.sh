#!/usr/bin/env bash
# Network/federation chaos harness for wecsimd (docs/SERVICE.md,
# "Multi-host deployment"). Builds the service, runs the federation suite
# (ctest -L 'service-smoke|network-chaos'), then drives the multi-daemon
# failure matrix end to end:
#
#   1. kill -9 one of two daemons sharing a state dir (and its workers)
#      mid-sweep: the survivor steals the lease-expired points and the
#      report is byte-identical to an uninterrupted single-daemon run —
#      zero points lost, zero points duplicated.
#   2. SIGSTOP a daemon past lease expiry (frozen peer / partition): the
#      survivor steals, finishes byte-identically, and the stolen
#      provenance is visible in wecsim-top; the frozen peer is then
#      SIGCONT'd and its late duplicate work must not corrupt anything.
#   3. torn and half-open TCP frames from raw sockets, plus a submit whose
#      reply line is lost mid-connection and retried under the same
#      --request-id: exactly one job in the admission WAL.
#   4. wecsimctl --timeout-ms against a silent endpoint exits 5.
#   5. a daemon with a failing state dir reports itself degraded (exit 4)
#      and wecsimctl fails over to the next endpoint in --endpoints.
#
# Usage: scripts/network_chaos.sh [--asan|--tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

configure=release
case "${1:-}" in
  --asan) configure=asan ;;
  --tsan) configure=tsan ;;
  "") ;;
  *) echo "usage: $0 [--asan|--tsan]" >&2; exit 1 ;;
esac
builddir=build
[[ "$configure" == release ]] || builddir="build-$configure"

cmake --preset "$configure"
cmake --build --preset "$configure" -j "$(nproc)" \
  --target wecsimd wecsimctl wecsim-top service_test federation_test
ctest --test-dir "$builddir" -L 'service-smoke|network-chaos' \
  --output-on-failure -j "$(nproc)"

WECSIMD="$builddir/tools/wecsimd"
CTL="$builddir/tools/wecsimctl"
TOP="$builddir/tools/wecsim-top"
work="$(mktemp -d "${TMPDIR:-/tmp}/wecsim_netchaos.XXXXXX")"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do
    kill -CONT "$p" 2>/dev/null || true
    kill -9 "$p" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

json_field() {  # json_field FIELD <<< '{"json":...}'
  python3 -c "import json,sys; print(json.load(sys.stdin)[sys.argv[1]])" "$1"
}

wait_ready() {  # wait_ready ENDPOINT
  for _ in $(seq 1 600); do
    if "$CTL" --socket "$1" health >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "network_chaos: daemon on $1 never became ready" >&2
  return 1
}

# The sweep every phase submits: big enough (~1s/point in release) that a
# kill or freeze lands mid-simulation. Identical spec -> identical bytes.
submit_job() {  # submit_job ENDPOINT [EXTRA CTL ARGS...]
  local ep="$1"; shift
  "$CTL" --socket "$ep" submit "$@" --client chaos --name netchaos \
    --workload 181.mcf --scale 16 --seed 42 \
    --point orig=orig:4 --point wp=wth-wp:4 --point wec=wth-wp-wec:4
}

wait_report() {  # wait_report STATE_DIR JOB
  local report="$1/jobs/$2/report.json"
  for _ in $(seq 1 2400); do
    [[ -s "$report" ]] && { echo "$report"; return 0; }
    sleep 0.1
  done
  echo "network_chaos: no report for job $2 under $1" >&2
  return 1
}

# Kills (-9 / -STOP / -CONT) a daemon and every worker it forked: workers
# share the daemon's command line, which names its unique socket path.
signal_tree() {  # signal_tree SIG SOCKET_PATH
  pkill "-$1" -f -- "$2" 2>/dev/null || true
}

wait_tree_gone() {  # wait_tree_gone SOCKET_PATH
  for _ in $(seq 1 100); do
    pgrep -f -- "$1" >/dev/null 2>&1 || return 0
    sleep 0.05
  done
  echo "network_chaos: process tree for $1 refused to die" >&2
  return 1
}

# Asserts every point in the job journal has EXACTLY `want` intact "done"
# entries (zero lost, zero duplicated), ignoring torn/corrupt lines.
check_done_counts() {  # check_done_counts STATE_DIR JOB WANT
  python3 - "$1/jobs/$2/sweep.journal.jsonl" "$3" <<'PY'
import collections, json, sys
counts = collections.Counter()
for line in open(sys.argv[1], "rb"):
    try:
        doc = json.loads(line)
    except ValueError:
        continue  # torn tail from a SIGKILLed writer: healed, not counted
    if doc.get("ev") == "done":
        counts[doc["key"]] += 1
want = int(sys.argv[2])
expected = {"orig", "wp", "wec"}
assert set(counts) == expected, f"points lost: {expected - set(counts)}"
bad = {k: n for k, n in counts.items() if n != want}
assert not bad, f"duplicated/missing done entries: {bad}"
print(f"  done counts OK: {dict(counts)}")
PY
}

echo "== baseline: uninterrupted single-daemon run =="
state="$work/base"; sock="$state.sock"; mkdir -p "$state"
"$WECSIMD" --socket "$sock" --workers 2 --backoff-ms 10 "$state" \
  2>"$work/base.log" &
pids+=($!)
wait_ready "$sock"
job="$(submit_job "$sock" | json_field job)"
"$CTL" --socket "$sock" wait "$job" --timeout 600 >/dev/null
baseline="$(wait_report "$state" "$job")"
signal_tree TERM "$sock"; wait_tree_gone "$sock"

echo "== federation: kill -9 one of two daemons sharing a state dir =="
state="$work/twod"; mkdir -p "$state"
socka="$state/a.sock"; sockb="$state/b.sock"
"$WECSIMD" --socket "$socka" --workers 2 --backoff-ms 10 --lease-ms 300 \
  "$state" 2>"$work/twod-a.log" &
pids+=($!)
"$WECSIMD" --socket "$sockb" --workers 2 --backoff-ms 10 --lease-ms 300 \
  "$state" 2>"$work/twod-b.log" &
pids+=($!)
wait_ready "$socka"; wait_ready "$sockb"
job="$(submit_job "$socka" | json_field job)"
sleep 0.3  # let daemon A's workers take their leases mid-simulation
signal_tree KILL "$socka"
wait_tree_gone "$socka"  # daemon AND workers: nobody left to duplicate
report="$(wait_report "$state" "$job")"
cmp "$baseline" "$report" || {
  echo "FAIL: survivor's report differs from baseline" >&2; exit 1; }
check_done_counts "$state" "$job" 1
grep -q "expired lease\|stole" "$work/twod-b.log" || {
  echo "FAIL: survivor never logged a lease steal" >&2
  cat "$work/twod-b.log" >&2; exit 1; }
signal_tree TERM "$sockb"; wait_tree_gone "$sockb"

echo "== federation: SIGSTOP-frozen peer past lease expiry =="
state="$work/frozen"; mkdir -p "$state"
socka="$state/a.sock"; sockb="$state/b.sock"
"$WECSIMD" --socket "$socka" --workers 2 --backoff-ms 10 --lease-ms 300 \
  "$state" 2>"$work/frozen-a.log" &
pids+=($!)
"$WECSIMD" --socket "$sockb" --workers 2 --backoff-ms 10 --lease-ms 300 \
  "$state" 2>"$work/frozen-b.log" &
pids+=($!)
wait_ready "$socka"; wait_ready "$sockb"
job="$(submit_job "$socka" | json_field job)"
sleep 0.3
signal_tree STOP "$socka"  # frozen, not dead: leases expire, holders linger
report="$(wait_report "$state" "$job")"
cmp "$baseline" "$report" || {
  echo "FAIL: report after freeze differs from baseline" >&2; exit 1; }
# Stolen provenance is an operator-visible fact (checked BEFORE thawing the
# frozen peer, whose late finalize may rewrite the sidecar with its view).
"$TOP" --service "$state" >"$work/frozen.top"
grep -q "stolen" "$work/frozen.top" || {
  echo "FAIL: no stolen provenance in wecsim-top --service output" >&2
  cat "$work/frozen.top" >&2; exit 1; }
signal_tree CONT "$socka"
# The thawed peer's workers finish their in-flight (now duplicated) points;
# the journal dedups, so the report on disk must remain byte-identical.
sleep 2
cmp "$baseline" "$report" || {
  echo "FAIL: thawed peer corrupted the finalized report" >&2; exit 1; }
signal_tree TERM "$socka"; signal_tree TERM "$sockb"
wait_tree_gone "$socka"; wait_tree_gone "$sockb"

echo "== TCP: torn frames, half-open peers, lost-reply submit retry =="
state="$work/tcp"; sock="$state.sock"; mkdir -p "$state"
"$WECSIMD" --socket "$sock" --listen 127.0.0.1:0 --workers 2 \
  --backoff-ms 10 "$state" 2>"$work/tcp.log" &
pids+=($!)
wait_ready "$sock"
for _ in $(seq 1 100); do [[ -s "$sock.tcp" ]] && break; sleep 0.05; done
endpoint="$(tr -d '\n' <"$sock.tcp")"
echo "  TCP endpoint: $endpoint"
rid="netchaos-$$-lostreply"
python3 - "$endpoint" "$rid" <<'PY'
import json, socket, sys
host, port = sys.argv[1].rsplit(":", 1)
rid = sys.argv[2]

def conn():
    s = socket.create_connection((host, int(port)), timeout=10)
    s.settimeout(10)
    return s

# Torn frame: half a JSON line, then a hard close mid-request.
s = conn(); s.sendall(b'{"op":"sub'); s.close()
# Garbage line: must get the aggregated invalid_request error, not a reset.
s = conn(); s.sendall(b"\x00\xff not json\n")
reply = json.loads(s.makefile().readline())
assert reply["error"] == "invalid_request", reply
s.close()
# Half-open peer: connect, send nothing, abandon the socket.
abandoned = conn()
# Lost reply: a COMPLETE submit under a request id, connection torn down
# before reading the reply line. The job is admitted; the client never
# learns. The retry below must find it instead of duplicating it.
spec = {"client": "chaos", "name": "netchaos", "priority": 0,
        "workload": "181.mcf", "scale": 16, "seed": 42,
        "points": [{"key": "orig", "config": "orig", "tus": 4},
                   {"key": "wp", "config": "wth-wp", "tus": 4},
                   {"key": "wec", "config": "wth-wp-wec", "tus": 4}]}
s = conn()
s.sendall(json.dumps({"op": "submit", "rid": rid, "job": spec}).encode()
          + b"\n")
s.close()  # reply line dropped on the floor
abandoned.close()
print("  torn/half-open probes OK")
PY
# The retried submit, same request id, over the same TCP transport: must be
# flagged duplicate and admit nothing new.
submit_job "$endpoint" --request-id "$rid" >"$work/tcp-retry.out"
grep -q '"duplicate":true' "$work/tcp-retry.out" || {
  echo "FAIL: retried submit not flagged duplicate" >&2
  cat "$work/tcp-retry.out" >&2; exit 1; }
job="$(json_field job <"$work/tcp-retry.out")"
njobs="$(python3 - "$state/service.queue.jsonl" <<'PY'
import json, sys
n = 0
for line in open(sys.argv[1], "rb"):
    try:
        doc = json.loads(line)
    except ValueError:
        continue
    n += doc.get("ev") == "job"
print(n)
PY
)"
[[ "$njobs" == 1 ]] || {
  echo "FAIL: WAL holds $njobs job entries after the retry, want 1" >&2
  exit 1; }
"$CTL" --socket "$endpoint" wait "$job" --timeout 600 >/dev/null
report="$(wait_report "$state" "$job")"
cmp "$baseline" "$report" || {
  echo "FAIL: TCP-submitted report differs from baseline" >&2; exit 1; }
signal_tree TERM "$sock"; wait_tree_gone "$sock"

echo "== wecsimctl --timeout-ms: silent endpoint exits 5 =="
python3 - >"$work/silent.port" <<'PY' &
import socket, time
s = socket.socket()
s.bind(("127.0.0.1", 0))
s.listen(8)  # accepts pile up in the backlog; nobody ever answers
print(s.getsockname()[1], flush=True)
time.sleep(120)
PY
pids+=($!)
for _ in $(seq 1 100); do [[ -s "$work/silent.port" ]] && break; sleep 0.05; done
silent_port="$(tr -d '\n' <"$work/silent.port")"
"$CTL" --endpoints "127.0.0.1:$silent_port" --timeout-ms 500 health \
  >/dev/null 2>&1 && rc=0 || rc=$?
[[ "$rc" -eq 5 ]] || {
  echo "FAIL: --timeout-ms against a silent endpoint exited $rc, want 5" >&2
  exit 1; }

echo "== degraded state dir: exit 4, failover to the next endpoint =="
statea="$work/dega"; stateb="$work/degb"; mkdir -p "$statea" "$stateb"
socka="$statea.sock"; sockb="$stateb.sock"
"$WECSIMD" --socket "$socka" --workers 2 "$statea" 2>"$work/dega.log" &
pids+=($!)
"$WECSIMD" --socket "$sockb" --workers 2 "$stateb" 2>"$work/degb.log" &
pids+=($!)
wait_ready "$socka"; wait_ready "$sockb"
# Break daemon A's state dir under it: its jobs dir becomes a plain file,
# so the next admission fails the way ENOSPC/EIO would.
rm -rf "$statea/jobs"; : >"$statea/jobs"
# Failover: A answers "degraded", wecsimctl moves on to B and succeeds.
submit_job "$socka" --endpoints "$sockb" >"$work/failover.out" || {
  echo "FAIL: failover submit did not succeed" >&2
  cat "$work/failover.out" >&2; exit 1; }
job="$(json_field job <"$work/failover.out")"
"$CTL" --socket "$sockb" status "$job" >/dev/null || {
  echo "FAIL: failover job not on daemon B" >&2; exit 1; }
# A alone: rejected retriable, exit 4, and health says degraded + why.
submit_job "$socka" >"$work/degraded.out" && rc=0 || rc=$?
[[ "$rc" -eq 4 ]] || {
  echo "FAIL: submit to degraded daemon exited $rc, want 4" >&2; exit 1; }
grep -q '"error":"degraded"' "$work/degraded.out"
"$CTL" --socket "$socka" health | grep -q '"state":"degraded"' || {
  echo "FAIL: degraded daemon's health does not say so" >&2; exit 1; }
"$CTL" --socket "$sockb" wait "$job" --timeout 600 >/dev/null
signal_tree TERM "$socka"; signal_tree TERM "$sockb"
wait_tree_gone "$socka"; wait_tree_gone "$sockb"

echo "network_chaos: all phases passed ($configure)"
