#!/usr/bin/env python3
"""Compare two wecsim benchmark reports and flag performance regressions.

Accepts any pair of wecsim.bench_timing documents (BENCH_*.json,
<bench>.timing.json) or wecsim.run_report documents; points are keyed by
(workload, config) and matched across the two files.

Metrics:
  --metric=cycles (default)  simulated cycles per point. Deterministic and
                             host-independent, so the default threshold is
                             0%%: any cycle growth is a regression.
  --metric=cps               host simulation throughput (cycles/second).
                             Noisy; default threshold 20%%.
  --metric=ipc               architectural IPC (instructions/cycle). Two-
                             sided: a point regresses when |candidate /
                             baseline - 1| exceeds the threshold (default
                             2%%) in EITHER direction — used to pin a
                             sampled estimate against its full-fidelity
                             reference, where over-prediction is as wrong
                             as under-prediction. Points lacking an "ipc"
                             field are a usage error.

A point present in only one file is reported as an explicit `missing` row
and is always fatal (exit 2, either direction): a silently shrinking or
growing grid would let real regressions hide behind key churn.

Exit codes: 0 = no regressions, 1 = regressions, 2 = usage or parse error
or mismatched point sets.

Used by the perf-regression ctest label (scripts/perf_regression.sh) against
the committed baselines under bench/baselines/, and by scripts/obs_smoke.sh
self-vs-self.
"""

import argparse
import json
import math
import sys


def load_points(path):
    """Returns (doc, {(workload, config): point_dict})."""
    with open(path, "rb") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    points = {}
    if schema == "wecsim.bench_timing":
        for run in doc.get("runs", []):
            key = (run["workload"], run["config"])
            points[key] = {
                "cycles": run["cycles"],
                "cps": run.get("cycles_per_second", 0.0),
                "ipc": run.get("ipc"),
            }
    elif schema == "wecsim.run_report":
        for run in doc.get("runs", []):
            key = (run["workload"], run["config"])
            points[key] = {
                "cycles": run["result"]["cycles"],
                # Run reports carry no wall-clock by design.
                "cps": 0.0,
                "ipc": None,
            }
    else:
        raise ValueError(f"{path}: unsupported schema {schema!r}")
    if not points:
        raise ValueError(f"{path}: no comparable points")
    return doc, points


def verify_integrity(path):
    """Checks the fnv1a64 integrity seal the C++ side writes."""
    with open(path, "rb") as f:
        blob = f.read()
    marker = b'"integrity":"fnv1a64:'
    pos = blob.rfind(marker)
    if pos < 0:
        raise ValueError(f"{path}: no integrity seal")
    start = pos + len(marker)
    digest = blob[start : start + 16]
    # The digest is computed over the document with the seal field zeroed.
    zeroed = blob[:start] + b"0" * 16 + blob[start + 16 :]
    h = 0xCBF29CE484222325
    for byte in zeroed:
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    if digest != b"%016x" % h:
        raise ValueError(f"{path}: integrity digest mismatch")


def main():
    parser = argparse.ArgumentParser(
        description="diff two wecsim benchmark reports"
    )
    parser.add_argument("baseline", help="baseline report (JSON)")
    parser.add_argument("candidate", help="candidate report (JSON)")
    parser.add_argument(
        "--metric",
        choices=["cycles", "cps", "ipc"],
        default="cycles",
        help="what to compare (default: cycles)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression tolerance in percent "
        "(default: 0 for cycles, 20 for cps, 2 for ipc)",
    )
    parser.add_argument(
        "--verify-integrity",
        action="store_true",
        help="check both files' fnv1a64 integrity seals first",
    )
    args = parser.parse_args()
    threshold = args.threshold
    if threshold is None:
        threshold = {"cycles": 0.0, "cps": 20.0, "ipc": 2.0}[args.metric]

    try:
        if args.verify_integrity:
            verify_integrity(args.baseline)
            verify_integrity(args.candidate)
        _, base = load_points(args.baseline)
        _, cand = load_points(args.candidate)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    # For cycles, smaller is better; for cps, larger is better. Either way
    # speedup > 1 means the candidate improved. For ipc the comparison is
    # two-sided, so "speedup" is just the ratio and the gate is |ratio - 1|.
    def speedup(b, c):
        if args.metric == "cycles":
            return b["cycles"] / c["cycles"] if c["cycles"] else math.inf
        if args.metric == "ipc":
            return c["ipc"] / b["ipc"] if b["ipc"] else math.inf
        return c["cps"] / b["cps"] if b["cps"] else math.inf

    rows = []
    missing = []
    regressions = []
    usage_errors = []
    for key in sorted(set(base) | set(cand)):
        workload, config = key
        if key not in cand:
            missing.append((workload, config, "candidate"))
            continue
        if key not in base:
            missing.append((workload, config, "baseline"))
            continue
        if args.metric == "ipc" and (
            base[key]["ipc"] is None or cand[key]["ipc"] is None
        ):
            usage_errors.append(
                f"{workload}|{config}: point has no ipc field "
                "(only sampled/instrumented timing reports carry ipc)"
            )
            continue
        s = speedup(base[key], cand[key])
        rows.append((workload, config, base[key], cand[key], s))
        if args.metric == "ipc":
            deviation = 100.0 * abs(s - 1.0)
            if deviation > threshold + 1e-12:
                regressions.append(
                    f"{workload}|{config}: ipc deviates {deviation:.2f}% "
                    f"from baseline (threshold {threshold:g}%)"
                )
        # speedup 1.0 = parity; below 1/(1+threshold) = beyond tolerance.
        elif s < 1.0 / (1.0 + threshold / 100.0) - 1e-12:
            regressions.append(
                f"{workload}|{config}: {args.metric} regressed "
                f"{100.0 * (1.0 / s - 1.0):.2f}% (threshold {threshold:g}%)"
            )

    unit = args.metric
    print(f"baseline:  {args.baseline}")
    print(f"candidate: {args.candidate}")
    print(f"metric: {unit} (threshold {threshold:g}%)")
    print(f"{'workload':<16} {'config':<24} {'baseline':>14} "
          f"{'candidate':>14} {'speedup':>8}")
    fmt = "14.4f" if unit == "ipc" else "14.0f"
    for workload, config, b, c, s in rows:
        print(f"{workload:<16} {config:<24} {b[unit]:>{fmt}} "
              f"{c[unit]:>{fmt}} {s:>8.3f}")
    for workload, config, side in missing:
        print(f"{workload:<16} {config:<24} {'missing from ' + side:>37}")
    if rows:
        geo = math.exp(sum(math.log(s) for *_, s in rows if s > 0) / len(rows))
        print(f"geometric-mean speedup: {geo:.3f}")

    if missing or usage_errors:
        print(
            f"\n{len(missing) + len(usage_errors)} fatal mismatch(es):",
            file=sys.stderr,
        )
        for workload, config, side in missing:
            print(f"  - {workload}|{config}: missing from {side}",
                  file=sys.stderr)
        for e in usage_errors:
            print(f"  - {e}", file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"  - {r}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
