#!/usr/bin/env python3
"""Compare two wecsim benchmark reports and flag performance regressions.

Accepts any pair of wecsim.bench_timing documents (BENCH_*.json,
<bench>.timing.json) or wecsim.run_report documents; points are keyed by
(workload, config) and matched across the two files.

Metrics:
  --metric=cycles (default)  simulated cycles per point. Deterministic and
                             host-independent, so the default threshold is
                             0%%: any cycle growth is a regression.
  --metric=cps               host simulation throughput (cycles/second).
                             Noisy; default threshold 20%%.

Exit codes: 0 = no regressions, 1 = regressions (or points missing from the
candidate), 2 = usage or parse error.

Used by the perf-regression ctest label (scripts/perf_regression.sh) against
the committed baseline under bench/baselines/, and by scripts/obs_smoke.sh
self-vs-self.
"""

import argparse
import json
import math
import sys


def load_points(path):
    """Returns (doc, {(workload, config): point_dict})."""
    with open(path, "rb") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    points = {}
    if schema == "wecsim.bench_timing":
        for run in doc.get("runs", []):
            key = (run["workload"], run["config"])
            points[key] = {
                "cycles": run["cycles"],
                "cps": run.get("cycles_per_second", 0.0),
            }
    elif schema == "wecsim.run_report":
        for run in doc.get("runs", []):
            key = (run["workload"], run["config"])
            points[key] = {
                "cycles": run["result"]["cycles"],
                # Run reports carry no wall-clock by design.
                "cps": 0.0,
            }
    else:
        raise ValueError(f"{path}: unsupported schema {schema!r}")
    if not points:
        raise ValueError(f"{path}: no comparable points")
    return doc, points


def verify_integrity(path):
    """Checks the fnv1a64 integrity seal the C++ side writes."""
    with open(path, "rb") as f:
        blob = f.read()
    marker = b'"integrity":"fnv1a64:'
    pos = blob.rfind(marker)
    if pos < 0:
        raise ValueError(f"{path}: no integrity seal")
    start = pos + len(marker)
    digest = blob[start : start + 16]
    # The digest is computed over the document with the seal field zeroed.
    zeroed = blob[:start] + b"0" * 16 + blob[start + 16 :]
    h = 0xCBF29CE484222325
    for byte in zeroed:
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    if digest != b"%016x" % h:
        raise ValueError(f"{path}: integrity digest mismatch")


def main():
    parser = argparse.ArgumentParser(
        description="diff two wecsim benchmark reports"
    )
    parser.add_argument("baseline", help="baseline report (JSON)")
    parser.add_argument("candidate", help="candidate report (JSON)")
    parser.add_argument(
        "--metric",
        choices=["cycles", "cps"],
        default="cycles",
        help="what to compare (default: cycles)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression tolerance in percent "
        "(default: 0 for cycles, 20 for cps)",
    )
    parser.add_argument(
        "--verify-integrity",
        action="store_true",
        help="check both files' fnv1a64 integrity seals first",
    )
    args = parser.parse_args()
    threshold = args.threshold
    if threshold is None:
        threshold = 0.0 if args.metric == "cycles" else 20.0

    try:
        if args.verify_integrity:
            verify_integrity(args.baseline)
            verify_integrity(args.candidate)
        _, base = load_points(args.baseline)
        _, cand = load_points(args.candidate)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    # For cycles, smaller is better; for cps, larger is better. Either way
    # speedup > 1 means the candidate improved.
    def speedup(b, c):
        if args.metric == "cycles":
            return b["cycles"] / c["cycles"] if c["cycles"] else math.inf
        return c["cps"] / b["cps"] if b["cps"] else math.inf

    rows = []
    regressions = []
    for key in sorted(base):
        workload, config = key
        if key not in cand:
            regressions.append(f"{workload}|{config}: missing from candidate")
            continue
        s = speedup(base[key], cand[key])
        rows.append((workload, config, base[key], cand[key], s))
        # speedup 1.0 = parity; below 1/(1+threshold) = beyond tolerance.
        if s < 1.0 / (1.0 + threshold / 100.0) - 1e-12:
            regressions.append(
                f"{workload}|{config}: {args.metric} regressed "
                f"{100.0 * (1.0 / s - 1.0):.2f}% (threshold {threshold:g}%)"
            )
    extra = sorted(set(cand) - set(base))

    unit = args.metric
    print(f"baseline:  {args.baseline}")
    print(f"candidate: {args.candidate}")
    print(f"metric: {unit} (threshold {threshold:g}%)")
    print(f"{'workload':<16} {'config':<24} {'baseline':>14} "
          f"{'candidate':>14} {'speedup':>8}")
    for workload, config, b, c, s in rows:
        bval = b["cycles"] if unit == "cycles" else b["cps"]
        cval = c["cycles"] if unit == "cycles" else c["cps"]
        print(f"{workload:<16} {config:<24} {bval:>14.0f} {cval:>14.0f} "
              f"{s:>8.3f}")
    if rows:
        geo = math.exp(sum(math.log(s) for *_, s in rows if s > 0) / len(rows))
        print(f"geometric-mean speedup: {geo:.3f}")
    for key in extra:
        print(f"note: {key[0]}|{key[1]} only in candidate (ignored)")

    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"  - {r}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
