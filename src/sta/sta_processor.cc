#include "sta/sta_processor.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "fault/fault.h"
#include "obs/profile.h"

namespace wecsim {

StaProcessor::StaProcessor(const StaConfig& config, const Program& program,
                           StatsRegistry& stats, FlatMemory& memory,
                           TraceSink* trace, FaultSession* faults)
    : config_(config),
      program_(program),
      stats_(stats),
      memory_(memory),
      l2_(config.mem, stats),
      stat_cycles_(stats.counter("sta.cycles")),
      stat_forks_(stats.counter("sta.forks")),
      stat_aborts_(stats.counter("sta.aborts")),
      stat_wrong_threads_(stats.counter("sta.wrong_threads")),
      stat_ring_msgs_(stats.counter("sta.ring_msgs")),
      stat_parallel_cycles_(stats.counter("sta.parallel_cycles")),
      gauge_active_tus_(stats.gauge("sta.active_tus")),
      gauge_pending_forks_(stats.gauge("sta.pending_forks")) {
  validate_sta_config(config);
  faults_ = faults;
  skip_enabled_ = config_.cycle_skip;
  for (TuId id = 0; id < config.num_tus; ++id) {
    tus_.push_back(std::make_unique<ThreadUnit>(id, config_, program, *this,
                                                l2_, stats, memory, trace,
                                                faults));
    // Sinks must be attached before any core starts so the incremental
    // active/committed totals track every transition from cycle 0.
    tus_.back()->core().set_commit_sink(&committed_total_);
    tus_.back()->core().set_active_sink(&active_tus_);
    tus_.back()->set_arch_commit_counter(&arch_committed_total_);
  }
  // The sequential thread starts on TU 0.
  tus_[0]->start_thread(program.entry(), {}, {},
                        MemoryBuffer(config.membuf_entries), /*iter=*/0,
                        /*parallel=*/false);
  sequential_tu_ = 0;
  wall_start_ = std::chrono::steady_clock::now();
}

void StaProcessor::reseed(Addr pc,
                          const std::array<Word, kNumIntRegs>& int_regs,
                          const std::array<Word, kNumFpRegs>& fp_regs) {
  for (auto& tu : tus_) {
    if (!tu->idle()) tu->kill();
  }
  pending_forks_.clear();
  ring_.clear();
  live_iters_.clear();
  // Close the region but keep its id monotonic: a stale ring message can
  // never alias a post-reseed region even if one slipped past the clear.
  const uint64_t region_id = region_.id;
  region_ = RegionState{};
  region_.id = region_id;
  sequential_tu_ = 0;
  tus_[0]->start_thread(pc, int_regs, fp_regs,
                        MemoryBuffer(config_.membuf_entries), /*iter=*/0,
                        /*parallel=*/false);
  // The jump in architectural state is not watchdog progress; restart its
  // window so a long fast-forward cannot trip the deadlock detector.
  last_committed_total_ = committed_total_;
  last_progress_cycle_ = now_;
  last_activity_sig_ = 0;
}

void StaProcessor::attach_checker(LockstepChecker* checker) {
  for (auto& tu : tus_) tu->attach_checker(checker);
}

std::string StaProcessor::dump_state() const {
  std::ostringstream os;
  os << "machine state at cycle " << now_ << ":\n"
     << "  region: " << (region_.active ? "active" : "inactive")
     << (region_.aborted ? " (aborted)" : "") << " id=" << region_.id
     << " next_iter=" << region_.next_iter
     << " tsag_done_iter=" << region_.tsag_done_iter
     << " wb_done_iter=" << region_.wb_done_iter
     << " pending_forks=" << pending_forks_.size()
     << " ring_msgs=" << ring_.size() << "\n";
  for (const auto& tu : tus_) os << "  " << tu->describe() << "\n";
  return os.str();
}

bool StaProcessor::step() {
  ++now_;
  stat_cycles_.inc();
  // Figure 8 measures the parallelized portions only: count the cycles
  // during which a parallel region is open (wrong threads running past the
  // region's end are glue time, not parallel-portion time).
  if (region_.active) stat_parallel_cycles_.inc();
  {
    WEC_PROFILE_SCOPE(ProfPhase::kStaRing);
    deliver_ring_msgs();
    start_pending_forks();
  }
  // The cores report start/stop transitions through their active sink;
  // the gauge write is hoisted behind a change check (re-setting the same
  // value every cycle is idempotent, so the final reported level — and
  // hence the run report — is unchanged).
  if (active_tus_ != gauge_active_cache_) {
    gauge_active_cache_ = active_tus_;
    gauge_active_tus_.set(active_tus_);
  }
  const int64_t forks_pending = static_cast<int64_t>(pending_forks_.size());
  if (forks_pending != gauge_forks_cache_) {
    gauge_forks_cache_ = forks_pending;
    gauge_pending_forks_.set(forks_pending);
  }
  // Injected early kill of wrong threads: exercises abort/cleanup paths and
  // cuts wrong-thread prefetching short (fault injection only).
  if (faults_ != nullptr && faults_->armed(FaultKind::kWrongKill)) {
    for (auto& tu : tus_) {
      if (!tu->idle() && tu->is_wrong() &&
          faults_->fire(FaultKind::kWrongKill)) {
        tu->kill();
      }
    }
  }
  for (auto& tu : tus_) tu->tick(now_);

  // Whole-program termination: the sequential thread halted. Any surviving
  // wrong threads die with the machine.
  if (tus_[sequential_tu_]->core().halted()) {
    for (auto& tu : tus_) tu->kill();
    return false;
  }

  // Watchdog: if no thread commits anything for a long time, the program
  // (or the protocol) is deadlocked — fail loudly instead of spinning.
  // Sampling every 64 cycles keeps the check off the per-cycle path (the
  // committed total itself is maintained incrementally by the commit sinks);
  // watchdog_cycles is orders of magnitude larger than the stride, so a
  // deadlock is still detected within one stride of the threshold.
  if ((now_ & 63) == 0) {
    if (committed_total_ != last_committed_total_) {
      last_committed_total_ = committed_total_;
      last_progress_cycle_ = now_;
    } else if (now_ - last_progress_cycle_ > config_.watchdog_cycles) {
      throw SimError("deadlock: no instruction committed for " +
                     std::to_string(config_.watchdog_cycles) + " cycles at " +
                     std::to_string(now_) + "\n" + dump_state());
    }
    check_wall_budget();
  }
  // Event-driven skipping, gated by a cheap activity digest: the
  // authoritative next_event_cycle() scan walks every ROB and costs about as
  // much as a tick, so running it on cycles where the machine visibly
  // progressed would eat the very time skipping saves. Visible progress
  // always changes the digest, so a stable digest marks a fully stalled
  // cycle; the scan stays the sole authority on whether a skip is safe (a
  // digest collision costs at most a one-cycle-late jump, and any subset of
  // valid skips is bit-identical by the skip contract).
  WEC_PROFILE_SCOPE(ProfPhase::kStaSkipScan);
  uint64_t sig = 1469598103934665603ull;  // FNV-1a offset basis
  for (auto& tu : tus_) {
    sig = (sig ^ tu->core().activity_signature()) * 1099511628211ull;
  }
  const bool quiet = sig == last_activity_sig_;
  last_activity_sig_ = sig;
  if (quiet) maybe_skip_ahead();
  return true;
}

void StaProcessor::check_wall_budget() const {
  if (config_.wall_timeout_seconds <= 0) return;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - wall_start_;
  if (elapsed.count() > config_.wall_timeout_seconds) {
    throw SimTimeout("simulation exceeded its wall-clock budget of " +
                     std::to_string(config_.wall_timeout_seconds) +
                     "s at cycle " + std::to_string(now_));
  }
}

void StaProcessor::maybe_skip_ahead() {
  if (!skip_enabled_) return;
  // kWrongKill rolls its dice once per wrong-thread cycle inside step();
  // skipping would change the fire() call count and thus the whole injection
  // schedule, so an armed wrong_kill plan disables skipping entirely.
  if (faults_ != nullptr && faults_->armed(FaultKind::kWrongKill)) return;

  const Cycle next = now_ + 1;
  Cycle target = kNoCycle;
  // In-flight ring messages deliver exactly at their due cycle; until then
  // the ring does nothing, so due is a first-class event. Messages that went
  // stale (their region ended) are erased lazily at the next executed cycle
  // in both modes; keeping their due as an event only shortens the jump.
  for (const RingMsg& msg : ring_) {
    if (msg.due <= next) return;
    if (msg.due < target) target = msg.due;
  }
  // A pending fork acts at its activation cycle once the fork delay has been
  // charged. An uncharged fork (activation == kNoCycle) whose target TU is
  // busy can only progress after that TU's core acts — covered by the core
  // scan below; with an idle target it may charge the delay on the very next
  // cycle, so nothing can be skipped.
  for (const PendingFork& fork : pending_forks_) {
    if (fork.activation == kNoCycle) {
      if (tus_[fork.target_tu]->idle()) return;
      continue;
    }
    if (fork.activation <= next) return;
    if (fork.activation < target) target = fork.activation;
  }
  for (auto& tu : tus_) {
    const Cycle at = tu->next_event_cycle(now_);
    if (at <= next) return;  // may act next cycle: nothing to skip
    if (at < target) target = at;
  }

  // Every TU is quiescent: cycles in (now_, target) are provably dead — a
  // tick would change no state beyond the per-cycle samples replayed below.
  // Emulate the 64-cycle watchdog stride across the window in closed form:
  // progress observed since the last boundary is credited at the first
  // boundary inside the window (exactly when the stride would see it), and
  // the jump is clamped to the boundary where a deadlock would trip, so the
  // SimError fires at the identical cycle with the identical state dump.
  const Cycle first_boundary = ((now_ >> 6) + 1) << 6;
  // Credit only boundaries the non-skip run would actually execute: the
  // window is additionally clamped by max_cycles below.
  const Cycle window_end = std::min(target - 1, config_.max_cycles);
  if (first_boundary <= window_end &&
      committed_total_ != last_committed_total_) {
    last_committed_total_ = committed_total_;
    last_progress_cycle_ = first_boundary;
  }
  const Cycle deadline_base = last_progress_cycle_ + config_.watchdog_cycles;
  if (deadline_base >= last_progress_cycle_) {  // guard pathological configs
    // First stride boundary at which `boundary - progress > watchdog` holds.
    const Cycle deadline_boundary = (deadline_base + 64) & ~Cycle{63};
    if (deadline_boundary < target) target = deadline_boundary;
  }

  // Land one cycle short of the event (the event cycle itself must execute
  // normally), clamped so the run() loop still exits exactly at max_cycles.
  const Cycle landing = std::min(target - 1, config_.max_cycles);
  if (landing <= now_) return;
  const uint64_t skipped = landing - now_;
  now_ = landing;
  stat_cycles_.inc(skipped);
  if (region_.active) stat_parallel_cycles_.inc(skipped);
  for (auto& tu : tus_) tu->account_skipped_cycles(skipped);
  skipped_cycles_ += skipped;
  ++skip_jumps_;
  // A bulk jump re-checks the wall-clock budget directly: the stride alone
  // would let one jump sail arbitrarily far past a SimTimeout deadline.
  check_wall_budget();
}

StaRunResult StaProcessor::run() {
  bool halted = false;
  while (now_ < config_.max_cycles) {
    if (!step()) {
      halted = true;
      break;
    }
  }
  StaRunResult result;
  result.cycles = now_;
  result.halted = halted;
  for (const auto& tu : tus_) {
    // Cores still active at the cycle cap hold run-length-batched histogram
    // samples; drain them before the caller snapshots the stats registry.
    tu->core().flush_stats();
    result.committed += tu->core().core_stats().committed;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Forking
// ---------------------------------------------------------------------------

void StaProcessor::queue_fork(ThreadUnit& parent, Addr target_pc, Cycle now) {
  if (region_.aborted) return;  // the region is over; nothing may fork
  const TuId target = (parent.id() + 1) % num_tus();
  // Sorted insert by target TU (the old std::map's iteration order).
  const auto pos = std::find_if(
      pending_forks_.begin(), pending_forks_.end(),
      [target](const PendingFork& f) { return f.target_tu >= target; });
  WEC_CHECK_MSG(pos == pending_forks_.end() || pos->target_tu != target,
                "two pending forks target the same thread unit");
  PendingFork fork;
  fork.target_tu = target;
  fork.iter = region_.next_iter++;
  fork.region_id = region_.id;
  fork.pc = target_pc;
  fork.int_regs = parent.core().int_regs();
  fork.fp_regs = parent.core().fp_regs();
  fork.buffer = MemoryBuffer(config_.membuf_entries);
  // The fork hands the child the target-store state known so far (the rest
  // arrives over the ring).
  parent.buffer().copy_targets_to(fork.buffer);
  (void)now;
  pending_forks_.insert(pos, std::move(fork));
  stat_forks_.inc();
}

void StaProcessor::start_pending_forks() {
  for (size_t i = 0; i < pending_forks_.size();) {
    PendingFork& fork = pending_forks_[i];
    if (fork.region_id != region_.id || !region_.active || region_.aborted) {
      pending_forks_.erase(pending_forks_.begin() + i);
      continue;
    }
    ThreadUnit& tu = *tus_[fork.target_tu];
    if (!tu.idle()) {
      ++i;
      continue;
    }
    if (fork.activation == kNoCycle) {
      // The target just became available: charge the fork delay.
      fork.activation = now_ + config_.fork_delay;
    }
    if (now_ < fork.activation) {
      ++i;
      continue;
    }
    tu.start_thread(fork.pc, fork.int_regs, fork.fp_regs,
                    std::move(fork.buffer), fork.iter, /*parallel=*/true);
    live_iters_.emplace_back(fork.iter, fork.target_tu);
    pending_forks_.erase(pending_forks_.begin() + i);
  }
}

// ---------------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------------

void StaProcessor::kill_wrong_threads() {
  for (auto& tu : tus_) {
    if (!tu->idle() && tu->is_wrong()) tu->kill();
  }
}

void StaProcessor::begin_region(ThreadUnit& head, Cycle now) {
  (void)now;
  WEC_CHECK_MSG(!region_.active, "begin while a region is active");
  kill_wrong_threads();
  pending_forks_.clear();
  ring_.clear();
  live_iters_.clear();

  ++region_.id;
  region_.active = true;
  region_.aborted = false;
  region_.next_iter = 1;  // the head is iteration 0
  region_.tsag_done_iter = -1;
  region_.tsag_ready_cycle = 0;
  region_.wb_done_iter = -1;
  region_.wb_ready_cycle = 0;

  head.start_region_as_head();
  live_iters_.emplace_back(0, head.id());
}

void StaProcessor::abort_successors(ThreadUnit& aborter, Cycle now) {
  (void)now;
  stat_aborts_.inc();
  region_.aborted = true;
  pending_forks_.clear();
  for (auto& tu : tus_) {
    if (tu->idle() || tu.get() == &aborter) continue;
    if (!tu->is_parallel()) continue;
    if (tu->iter() <= aborter.iter()) continue;
    const uint64_t dead_iter = tu->iter();
    std::erase_if(live_iters_,
                  [dead_iter](const std::pair<uint64_t, TuId>& live) {
                    return live.first == dead_iter;
                  });
    if (config_.wrong_thread_exec) {
      tu->mark_wrong();
      stat_wrong_threads_.inc();
    } else {
      // Discarded outright: net its commits out of the architectural total
      // (mark_wrong does the same internally for the wth path).
      tu->retract_arch_commits();
      tu->kill();
    }
  }
}

void StaProcessor::end_region(ThreadUnit& exiter, Cycle now) {
  (void)now;
  region_.active = false;
  live_iters_.clear();
  ring_.clear();
  sequential_tu_ = exiter.id();
}

// ---------------------------------------------------------------------------
// Ordering chains
// ---------------------------------------------------------------------------

bool StaProcessor::tsag_ready_for(uint64_t iter, Cycle now) const {
  if (region_.tsag_done_iter + 1 < static_cast<int64_t>(iter)) return false;
  if (region_.tsag_done_iter + 1 > static_cast<int64_t>(iter)) return true;
  return now >= region_.tsag_ready_cycle;
}

void StaProcessor::set_tsag_done(uint64_t iter, Cycle now) {
  WEC_CHECK(region_.tsag_done_iter + 1 == static_cast<int64_t>(iter));
  region_.tsag_done_iter = static_cast<int64_t>(iter);
  region_.tsag_ready_cycle = now + config_.ring_hop_cycles;
}

bool StaProcessor::wb_ready_for(uint64_t iter, Cycle now) const {
  if (region_.wb_done_iter + 1 < static_cast<int64_t>(iter)) return false;
  if (region_.wb_done_iter + 1 > static_cast<int64_t>(iter)) return true;
  return now >= region_.wb_ready_cycle;
}

// Cycle-skip views of the two ordering chains, mirroring tsag_ready_for /
// wb_ready_for exactly: "already open" -> now, "opens on the ring-hop timer"
// -> that future cycle, "waiting on the predecessor iteration" -> kNoCycle
// (the predecessor's own commit event covers the wake-up).
Cycle StaProcessor::tsag_wake_cycle(uint64_t iter, Cycle now) const {
  if (region_.tsag_done_iter + 1 < static_cast<int64_t>(iter)) return kNoCycle;
  if (region_.tsag_done_iter + 1 > static_cast<int64_t>(iter)) return now;
  return std::max(region_.tsag_ready_cycle, now);
}

Cycle StaProcessor::wb_wake_cycle(uint64_t iter, Cycle now) const {
  if (region_.wb_done_iter + 1 < static_cast<int64_t>(iter)) return kNoCycle;
  if (region_.wb_done_iter + 1 > static_cast<int64_t>(iter)) return now;
  return std::max(region_.wb_ready_cycle, now);
}

void StaProcessor::set_wb_done(uint64_t iter, Cycle now) {
  WEC_CHECK(region_.wb_done_iter + 1 == static_cast<int64_t>(iter));
  region_.wb_done_iter = static_cast<int64_t>(iter);
  region_.wb_ready_cycle = now + config_.ring_hop_cycles;
}

// ---------------------------------------------------------------------------
// Ring traffic
// ---------------------------------------------------------------------------

void StaProcessor::send_ts_addr(uint64_t from_iter, Addr granule, Cycle now) {
  if (!region_.active) return;
  ring_.push_back({now + config_.ring_hop_cycles, region_.id, from_iter + 1,
                   /*is_data=*/false, granule, 0});
  stat_ring_msgs_.inc();
}

void StaProcessor::send_ts_data(uint64_t from_iter, Addr granule,
                                uint64_t data, Cycle now) {
  if (!region_.active) return;
  ring_.push_back({now + config_.ring_hop_cycles, region_.id, from_iter + 1,
                   /*is_data=*/true, granule, data});
  stat_ring_msgs_.inc();
}

MemoryBuffer* StaProcessor::buffer_for_iter(uint64_t iter) {
  for (const auto& [live_iter, tu] : live_iters_) {
    if (live_iter == iter) return &tus_[tu]->buffer();
  }
  for (auto& fork : pending_forks_) {
    if (fork.iter == iter && fork.region_id == region_.id) {
      return &fork.buffer;
    }
  }
  return nullptr;
}

bool StaProcessor::iter_exists(uint64_t iter) const {
  for (const auto& [live_iter, tu] : live_iters_) {
    if (live_iter == iter) return true;
  }
  for (const auto& fork : pending_forks_) {
    if (fork.iter == iter && fork.region_id == region_.id) return true;
  }
  return false;
}

void StaProcessor::deliver_ring_msgs() {
  // Two-pointer compaction: kept messages slide down in order, delivered and
  // stale ones are dropped, all in one pass (the deque version erased each
  // one individually, shifting the tail per message). Chain-forwarded
  // messages appended mid-scan are visited by this same pass — their due
  // cycle is in the future, so they are simply kept, exactly as before.
  size_t kept = 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    // Copy: the chain-forward push_back below may reallocate the vector.
    const RingMsg msg = ring_[i];
    if (msg.region_id != region_.id || !region_.active) continue;  // stale
    if (msg.due > now_) {
      ring_[kept++] = msg;
      continue;
    }
    MemoryBuffer* buffer = buffer_for_iter(msg.target_iter);
    if (buffer != nullptr) {
      if (msg.is_data) {
        buffer->receive_upstream_data(msg.granule, msg.data);
      } else {
        buffer->declare_upstream_target(msg.granule);
      }
      // Target-store *addresses* propagate down the whole chain (every
      // younger iteration must know the address to stall on). *Data* does
      // not: each iteration's value comes from its immediate predecessor's
      // own store — forwarding it further would hand grandchildren a value
      // the intermediate iteration is still going to overwrite.
      if (!msg.is_data && iter_exists(msg.target_iter + 1)) {
        ring_.push_back({now_ + config_.ring_hop_cycles, region_.id,
                         msg.target_iter + 1, msg.is_data, msg.granule,
                         msg.data});
        stat_ring_msgs_.inc();
      }
    }
  }
  ring_.erase(ring_.begin() + kept, ring_.end());
}

// ---------------------------------------------------------------------------
// Coherence
// ---------------------------------------------------------------------------

void StaProcessor::broadcast_store(TuId from, Addr addr, uint32_t bytes) {
  (void)bytes;  // block-granular update
  for (auto& tu : tus_) {
    if (tu->id() == from) continue;
    tu->mem().coherence_update(addr);
  }
}

}  // namespace wecsim
