// Top-level configuration of the superthreaded processor.
#pragma once

#include <cstdint>

#include "cpu/core.h"
#include "mem/mem_system.h"

namespace wecsim {

struct StaConfig {
  uint32_t num_tus = 8;
  CoreConfig core;            // replicated per thread unit
  MemConfig mem;              // per-TU L1/side + shared L2 parameters
  uint32_t fork_delay = 4;    // cycles from fork (or TU free) to child start
  uint32_t ring_hop_cycles = 2;  // per-value thread-to-thread transfer cost
  uint32_t membuf_entries = 128;
  uint32_t wb_ports = 2;      // memory-buffer granules committed per cycle
  bool wrong_thread_exec = false;  // wth configurations
  uint64_t max_cycles = 2'000'000'000;
  uint64_t watchdog_cycles = 1'000'000;  // abort if nothing commits this long
  // Wall-clock budget for one simulation; 0 disables. Raises SimTimeout when
  // exceeded. Host-dependent, so deliberately NOT part of the result-cache
  // key (see ResultCache::describe).
  double wall_timeout_seconds = 0.0;
  // Event-driven cycle skipping: when every thread unit is quiescent, jump
  // straight to the next event (core timer, ring delivery, fork activation)
  // instead of ticking dead cycles. Guaranteed bit-identical results (see
  // docs/PERFORMANCE.md "Cycle skipping"), so — like wall_timeout_seconds —
  // deliberately NOT part of the result-cache key. Overridable per run with
  // WECSIM_SKIP=0|1.
  bool cycle_skip = true;

  /// Sampled simulation (SimPoint-style interval sampling): alternate
  /// functional fast-forward with detailed warmup + measurement windows and
  /// extrapolate whole-program cycles/IPC from the measured windows (see
  /// core/sampled.h and docs/PERFORMANCE.md "Sampled simulation"). Results
  /// are estimates with confidence intervals, NOT bit-exact cycle counts, so
  /// sampled runs are excluded from the byte-identity result-cache key space
  /// entirely: the harness never loads or stores a disk-cache entry for a
  /// sampled point, and `sampling` is deliberately NOT serialized by
  /// ResultCache::describe (full-fidelity keys stay stable). Overridable per
  /// run with WECSIM_SAMPLE / WECSIM_SAMPLE_FF / WECSIM_SAMPLE_WARMUP /
  /// WECSIM_SAMPLE_MEASURE.
  struct Sampling {
    bool enabled = false;
    uint64_t ff_instrs = 0;       // fast-forward between windows; 0 = auto
    uint64_t warmup_instrs = 0;   // detailed warmup per window; 0 = auto
    uint64_t measure_instrs = 0;  // measured commits per window; 0 = auto
  };
  Sampling sampling;
};

/// Validate a configuration at processor construction. Collects EVERY
/// violation (power-of-two cache geometry, nonzero sizes and latencies,
/// watchdog_cycles > 0, ...) into one SimError so a sweep author fixes a bad
/// config in a single round trip instead of one field per failure.
void validate_sta_config(const StaConfig& config);

}  // namespace wecsim
