// Speculative memory buffer of one thread unit (paper Section 2).
//
// Every store a thread executes in a parallel region is buffered here until
// the thread's write-back stage. Target-store entries (declared by TSADDR,
// locally or forwarded from upstream threads) additionally drive run-time
// dependence checking: a load that touches an upstream target-store granule
// whose data has not arrived yet must stall.
//
// The buffer operates on 8-byte-aligned granules. Sub-word stores
// read-modify-write a granule using the thread's view of memory (buffer
// first, then global memory).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "mem/flat_memory.h"

namespace wecsim {

class MemoryBuffer {
 public:
  /// Fully-associative buffer with the given entry capacity (paper: 128).
  explicit MemoryBuffer(uint32_t capacity = 128);

  static Addr granule_of(Addr addr) { return addr & ~Addr{7}; }

  struct Entry {
    bool target_upstream = false;  // declared by an upstream thread's TSADDR
    bool target_local = false;     // declared by this thread's TSADDR
    bool has_data = false;         // a value is present (store or forward)
    bool own_written = false;      // this thread stored here (wins over
                                   // late-arriving upstream forwards)
    uint64_t data = 0;
  };

  /// This thread's TSADDR: declare [addr, addr+8) as a target-store slot.
  void declare_local_target(Addr addr);

  /// An upstream thread's TSADDR arrived over the ring.
  void declare_upstream_target(Addr granule);

  /// Upstream target-store data arrived over the ring. Ignored if this
  /// thread already wrote the granule itself (its value is younger in
  /// program order).
  void receive_upstream_data(Addr granule, uint64_t data);

  /// Buffer a committed store. Underlying bytes for sub-word merges come
  /// from `memory` when the granule has no data yet. Returns the granules
  /// written that are target stores (the caller forwards them downstream).
  std::vector<Addr> store(Addr addr, Word value, uint32_t bytes,
                          const FlatMemory& memory);

  /// Dependence gate for a load of [addr, addr+bytes): true if any touched
  /// granule is an upstream target without data (and not overwritten
  /// locally) — the load must stall.
  bool must_stall(Addr addr, uint32_t bytes) const;

  /// Thread-local view of memory: buffered bytes override `memory`.
  uint64_t read(Addr addr, uint32_t bytes, const FlatMemory& memory) const;

  /// True if the buffer holds data covering any byte of the range (the load
  /// can then be served from the buffer without a cache access).
  bool covers(Addr addr, uint32_t bytes) const;

  /// Granules with data, in first-write order (write-back stage drain).
  std::vector<std::pair<Addr, uint64_t>> drain_order() const;

  size_t size() const { return entries_.size(); }
  size_t data_entries() const;
  uint32_t capacity() const { return capacity_; }
  bool empty() const { return entries_.empty(); }
  void clear();

  /// Fork support: copy every target entry (and any data it already has)
  /// into a child buffer. Non-target local stores are thread-private and do
  /// not transfer.
  void copy_targets_to(MemoryBuffer& child) const;

 private:
  Entry& touch(Addr granule);

  uint32_t capacity_;
  std::map<Addr, Entry> entries_;
  std::vector<Addr> insert_order_;
};

}  // namespace wecsim
