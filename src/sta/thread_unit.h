// One thread unit: an out-of-order core, its private memory hierarchy, and
// its speculative memory buffer, glued to the thread-pipelining protocol.
// Implements CoreEnv, translating the core's memory and thread-op callbacks
// into superthreaded semantics (Section 2 of the paper) and the wrong-thread
// execution mode (Section 3.1.2).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/stats.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "mem/flat_memory.h"
#include "mem/mem_system.h"
#include "sta/memory_buffer.h"
#include "sta/sta_config.h"

namespace wecsim {

class StaProcessor;
class FaultSession;
class LockstepChecker;

class ThreadUnit final : public CoreEnv {
 public:
  /// `trace` (may be null) receives this unit's pipeline events; `faults`
  /// (may be null) is threaded through to the core and memory hierarchy.
  ThreadUnit(TuId id, const StaConfig& config, const Program& program,
             StaProcessor& owner, SharedL2& l2, StatsRegistry& stats,
             FlatMemory& memory, TraceSink* trace = nullptr,
             FaultSession* faults = nullptr);

  // --- lifecycle (driven by StaProcessor) --------------------------------

  /// Begin a thread on this unit. `parallel` distinguishes forked loop
  /// iterations from the sequential thread; `iter` orders iterations within
  /// the active region.
  void start_thread(Addr pc, const std::array<Word, kNumIntRegs>& int_regs,
                    const std::array<Word, kNumFpRegs>& fp_regs,
                    MemoryBuffer&& buffer, uint64_t iter, bool parallel);

  /// The sequential thread executed BEGIN: it becomes iteration 0 of the new
  /// region and its stores start flowing into the speculative buffer.
  void start_region_as_head();

  /// Hard kill (abort without wrong-thread execution, or begin cleaning up
  /// lingering wrong threads).
  void kill();

  /// Mark this thread wrong (abort under wrong-thread execution): it keeps
  /// running, may not fork, skips write-back, and its loads route through
  /// the wrong-execution path of the memory hierarchy.
  void mark_wrong();

  void tick(Cycle now);

  /// Where architectural (correct-path) commits are counted. The core's arch
  /// sink is attached on start_thread and detached by mark_wrong, so the
  /// counter never includes commits made after a thread went wrong; commits a
  /// thread made *before* its abort stay counted (they were correct-path work
  /// at the time, and sampled-window pacing only needs an approximate
  /// sequential-instruction clock).
  void set_arch_commit_counter(uint64_t* sink) { arch_sink_ = sink; }

  /// Net this thread's commits since start_thread back out of the
  /// architectural total — its work is being discarded (abort). After the
  /// retraction the counter equals the commit count of the surviving
  /// sequential instruction stream, i.e. what the lockstep checker would
  /// replay, which is the basis sampled extrapolation divides by.
  void retract_arch_commits();

  /// Cycle-skip support: conservative earliest cycle this unit could act
  /// (see OooCore::next_event_cycle), and bulk stat replay across a jump.
  Cycle next_event_cycle(Cycle now) { return core_.next_event_cycle(now); }
  void account_skipped_cycles(uint64_t n) { core_.account_skipped_cycles(n); }

  bool idle() const { return !core_.active(); }
  bool is_wrong() const { return wrong_; }
  bool is_parallel() const { return parallel_; }
  uint64_t iter() const { return iter_; }
  TuId id() const { return id_; }

  OooCore& core() { return core_; }
  const OooCore& core() const { return core_; }
  MemoryBuffer& buffer() { return buffer_; }
  TuMemSystem& mem() { return mem_; }

  /// Feed this unit's commit stream to a lockstep checker. Committed
  /// instructions of correct parallel threads are buffered per iteration and
  /// replayed in write-back (= program) order; wrong threads are dropped.
  void attach_checker(LockstepChecker* checker);

  /// One-line state dump for deadlock/watchdog diagnostics.
  std::string describe() const;

  // --- CoreEnv ------------------------------------------------------------

  Word read_data(Addr addr, uint32_t bytes) override;
  LoadGate check_load(Addr addr, uint32_t bytes) override;
  void commit_store(Addr addr, Word value, uint32_t bytes, Cycle now) override;
  MemOutcome cache_load(Addr addr, ExecMode mode, Cycle now) override;
  Cycle cache_ifetch(Addr pc, Cycle now) override;
  ThreadOpAction thread_op(const Instruction& instr, Addr mem_addr,
                           Cycle now) override;
  ExecMode mode() const override;
  Cycle thread_op_wake_cycle(const Instruction& instr, Cycle now) override;
  Cycle load_gate_wake_cycle(Addr addr, uint32_t bytes, Cycle now) override;

 private:
  ThreadOpAction do_writeback(Cycle now, bool endpar);
  void on_commit(const CommittedInstr& ci);
  void flush_replay();

  TuId id_;
  const StaConfig& config_;
  StaProcessor& owner_;
  FlatMemory& memory_;
  TuMemSystem mem_;
  OooCore core_;
  MemoryBuffer buffer_;

  Cycle now_ = 0;
  bool parallel_ = false;
  bool wrong_ = false;
  bool forked_ = false;
  uint64_t iter_ = 0;
  uint64_t* arch_sink_ = nullptr;  // owner's correct-path commit total
  uint64_t arch_commits_at_start_ = 0;  // core committed count at start_thread

  // Write-back stage state machine (thend / endpar).
  enum class WbState : uint8_t { kIdle, kDraining };
  WbState wb_state_ = WbState::kIdle;
  std::vector<std::pair<Addr, uint64_t>> drain_;
  size_t drain_pos_ = 0;

  // Lockstep checking: commits of a parallel thread buffered until its
  // write-back fixes their position in the sequential order.
  LockstepChecker* checker_ = nullptr;
  std::vector<CommittedInstr> replay_buf_;
};

}  // namespace wecsim
