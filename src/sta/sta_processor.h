// The superthreaded processor: a ring of thread units sharing a unified L2,
// with fork/abort/begin orchestration, target-store ring traffic, the
// TSAG_DONE / WB_DONE ordering chains, wrong-thread execution, and the
// update-protocol coherence used during sequential execution.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "isa/program.h"
#include "mem/flat_memory.h"
#include "sta/sta_config.h"
#include "sta/thread_unit.h"

namespace wecsim {

/// Result of a whole-program simulation.
struct StaRunResult {
  Cycle cycles = 0;
  bool halted = false;          // reached HALT (vs. cycle cap)
  uint64_t committed = 0;       // committed instructions (correct threads)
};

class StaProcessor {
 public:
  /// `trace` (may be null) receives pipeline events from every thread unit;
  /// `faults` (may be null) is threaded through to every core and memory
  /// hierarchy. Throws SimError listing every configuration violation.
  StaProcessor(const StaConfig& config, const Program& program,
               StatsRegistry& stats, FlatMemory& memory,
               TraceSink* trace = nullptr, FaultSession* faults = nullptr);

  /// Run the program to HALT (or the cycle cap). The sequential thread
  /// starts on TU 0 at the program entry.
  StaRunResult run();

  /// Step one cycle manually (tests, sampled windows). Returns false once
  /// halted.
  bool step();

  /// Re-aim the machine at a new architectural state (sampled simulation):
  /// kill every thread unit, drop all in-flight protocol state (pending
  /// forks, ring traffic, live iterations), and restart the sequential
  /// thread on TU 0 at `pc` with the given registers. Deliberately NOT
  /// reset: the cycle counter (windows measure deltas), branch predictors
  /// and cache tags (the warm state sampling carries across windows), and
  /// all statistics. The caller is responsible for making memory() hold the
  /// architectural memory image for `pc`.
  void reseed(Addr pc, const std::array<Word, kNumIntRegs>& int_regs,
              const std::array<Word, kNumFpRegs>& fp_regs);

  /// Running totals behind the incremental commit sinks: everything a core
  /// committed (wrong threads included — the watchdog's notion of progress),
  /// and the correct-path subset that paces sampled windows.
  uint64_t committed_total() const { return committed_total_; }
  uint64_t arch_committed_total() const { return arch_committed_total_; }

  Cycle now() const { return now_; }
  ThreadUnit& tu(TuId id) { return *tus_[id]; }
  uint32_t num_tus() const { return static_cast<uint32_t>(tus_.size()); }
  FlatMemory& memory() { return memory_; }
  const StaConfig& config() const { return config_; }

  /// The TU currently executing (or last to execute) sequential code.
  TuId sequential_tu() const { return sequential_tu_; }

  /// True while a parallel region is open. Sampled windows end only outside
  /// a region, so a window's composition covers whole glue+region periods.
  bool region_active() const { return region_.active; }

  /// Cycle-skip introspection (plain members, deliberately NOT registry
  /// stats: run reports serialize the full registry, and reports must stay
  /// byte-identical with skipping on or off).
  bool cycle_skip_enabled() const { return skip_enabled_; }
  uint64_t skipped_cycles() const { return skipped_cycles_; }
  uint64_t skip_jumps() const { return skip_jumps_; }

  /// Running parallel-region cycle total (reads the registry counter).
  /// Sampled windows difference it to extrapolate parallel cycles.
  uint64_t parallel_cycles_total() const {
    return stat_parallel_cycles_.value();
  }

  /// Route every TU's commit stream to a lockstep checker (nullptr detaches).
  void attach_checker(LockstepChecker* checker);

  /// Multi-line machine-state dump: region/protocol state plus one line per
  /// thread unit. Appended to the deadlock watchdog's error message.
  std::string dump_state() const;

  // --- protocol hooks called by ThreadUnit ---------------------------------

  /// BEGIN: open a parallel region headed by `head` (iteration 0). Kills any
  /// wrong threads still running from the previous region.
  void begin_region(ThreadUnit& head, Cycle now);

  /// FORK/FORKSP at commit: queue a fork of the next ring TU.
  void queue_fork(ThreadUnit& parent, Addr target_pc, Cycle now);

  /// ABORT by a correct thread: kill (or mark wrong) every younger thread.
  void abort_successors(ThreadUnit& aborter, Cycle now);

  /// ENDPAR: region is over; `exiter` continues sequentially.
  void end_region(ThreadUnit& exiter, Cycle now);

  /// Ring traffic: a target-store address / value flowing downstream from
  /// iteration `from_iter`.
  void send_ts_addr(uint64_t from_iter, Addr granule, Cycle now);
  void send_ts_data(uint64_t from_iter, Addr granule, uint64_t data,
                    Cycle now);

  /// TSAG_DONE chain: may iteration `iter` commit its TSAGD / issue
  /// computation loads yet?
  bool tsag_ready_for(uint64_t iter, Cycle now) const;
  void set_tsag_done(uint64_t iter, Cycle now);

  /// WB_DONE chain: may iteration `iter` run its write-back stage?
  bool wb_ready_for(uint64_t iter, Cycle now) const;
  void set_wb_done(uint64_t iter, Cycle now);

  /// Cycle-skip wake-ups for the ordering chains: `now` when the gate is
  /// already open, a future cycle when it opens on a known ring-hop timer,
  /// kNoCycle when it waits on the predecessor iteration's progress.
  Cycle tsag_wake_cycle(uint64_t iter, Cycle now) const;
  Cycle wb_wake_cycle(uint64_t iter, Cycle now) const;

  /// Update-protocol coherence: `from` committed a store; refresh every
  /// other TU's cached copy.
  void broadcast_store(TuId from, Addr addr, uint32_t bytes);

 private:
  struct PendingFork {
    TuId target_tu;
    uint64_t iter;
    uint64_t region_id;
    Addr pc;
    std::array<Word, kNumIntRegs> int_regs;
    std::array<Word, kNumFpRegs> fp_regs;
    MemoryBuffer buffer;
    Cycle activation = kNoCycle;  // start time once the TU is free
  };

  struct RingMsg {
    Cycle due;
    uint64_t region_id;
    uint64_t target_iter;
    bool is_data;  // false: target address declaration
    Addr granule;
    uint64_t data;
  };

  struct RegionState {
    uint64_t id = 0;
    bool active = false;
    bool aborted = false;
    uint64_t next_iter = 0;
    int64_t tsag_done_iter = -1;
    Cycle tsag_ready_cycle = 0;
    int64_t wb_done_iter = -1;
    Cycle wb_ready_cycle = 0;
  };

  void start_pending_forks();
  void deliver_ring_msgs();
  /// Event-driven fast path: when every TU is quiescent, jump now_ to just
  /// before the earliest next event (core timer, ring delivery, or fork
  /// activation), bulk-updating cycle stats and the watchdog bookkeeping.
  void maybe_skip_ahead();
  void check_wall_budget() const;
  /// Locate iteration `iter`'s memory buffer (live thread or pending fork).
  MemoryBuffer* buffer_for_iter(uint64_t iter);
  bool iter_exists(uint64_t iter) const;
  void kill_wrong_threads();

  StaConfig config_;
  const Program& program_;
  StatsRegistry& stats_;
  FlatMemory& memory_;
  SharedL2 l2_;
  std::vector<std::unique_ptr<ThreadUnit>> tus_;

  Cycle now_ = 0;
  TuId sequential_tu_ = 0;
  RegionState region_;
  // Flat, small-N protocol state (the ring and fork queues are scanned every
  // executed cycle): at most num_tus live iterations / pending forks exist at
  // once, so contiguous vectors with linear scans replace the node-based
  // maps the hot loop used to chase. pending_forks_ stays sorted by target
  // TU, preserving the old std::map iteration (fork start) order exactly.
  std::vector<std::pair<uint64_t, TuId>> live_iters_;  // (iteration, TU)
  std::vector<PendingFork> pending_forks_;             // sorted by target_tu
  std::vector<RingMsg> ring_;  // unsorted; compacted in place per cycle

  FaultSession* faults_ = nullptr;

  // Incremental bookkeeping (cores report transitions through sinks instead
  // of step() sweeping every TU per cycle).
  uint64_t committed_total_ = 0;
  uint64_t arch_committed_total_ = 0;
  int64_t active_tus_ = 0;
  int64_t gauge_active_cache_ = -1;   // last value pushed into the gauge
  int64_t gauge_forks_cache_ = -1;

  // Cycle skipping.
  bool skip_enabled_ = true;
  uint64_t skipped_cycles_ = 0;
  uint64_t skip_jumps_ = 0;
  uint64_t last_activity_sig_ = 0;  // combined core digests, previous tick

  // Watchdog.
  uint64_t last_committed_total_ = 0;
  Cycle last_progress_cycle_ = 0;
  std::chrono::steady_clock::time_point wall_start_;

  StatsRegistry::Counter stat_cycles_;
  StatsRegistry::Counter stat_forks_;
  StatsRegistry::Counter stat_aborts_;
  StatsRegistry::Counter stat_wrong_threads_;
  StatsRegistry::Counter stat_ring_msgs_;
  StatsRegistry::Counter stat_parallel_cycles_;
  StatsRegistry::Gauge gauge_active_tus_;     // busy TUs, sampled per cycle
  StatsRegistry::Gauge gauge_pending_forks_;  // queued forks, per cycle
};

}  // namespace wecsim
