#include "sta/memory_buffer.h"

#include "common/error.h"

namespace wecsim {

MemoryBuffer::MemoryBuffer(uint32_t capacity) : capacity_(capacity) {}

MemoryBuffer::Entry& MemoryBuffer::touch(Addr granule) {
  auto [it, inserted] = entries_.try_emplace(granule);
  if (inserted) {
    if (entries_.size() > capacity_) {
      throw SimError(
          "speculative memory buffer overflow (capacity " +
          std::to_string(capacity_) +
          "): the parallelized loop body writes too many distinct granules");
    }
    insert_order_.push_back(granule);
  }
  return it->second;
}

void MemoryBuffer::declare_local_target(Addr addr) {
  touch(granule_of(addr)).target_local = true;
}

void MemoryBuffer::declare_upstream_target(Addr granule) {
  touch(granule).target_upstream = true;
}

void MemoryBuffer::receive_upstream_data(Addr granule, uint64_t data) {
  Entry& entry = touch(granule);
  entry.target_upstream = true;
  if (entry.own_written) return;  // this thread's own value is younger
  entry.has_data = true;
  entry.data = data;
}

std::vector<Addr> MemoryBuffer::store(Addr addr, Word value, uint32_t bytes,
                                      const FlatMemory& memory) {
  std::vector<Addr> targets;
  Addr pos = addr;
  uint32_t remaining = bytes;
  while (remaining > 0) {
    const Addr granule = granule_of(pos);
    const uint32_t offset = static_cast<uint32_t>(pos - granule);
    const uint32_t chunk = std::min(remaining, 8 - offset);

    Entry& entry = touch(granule);
    uint64_t base = entry.has_data ? entry.data : memory.read_u64(granule);
    for (uint32_t i = 0; i < chunk; ++i) {
      const uint64_t byte = (value >> (8 * (pos - addr + i))) & 0xff;
      const uint32_t bit = 8 * (offset + i);
      base = (base & ~(uint64_t{0xff} << bit)) | (byte << bit);
    }
    entry.data = base;
    entry.has_data = true;
    entry.own_written = true;
    if (entry.target_upstream || entry.target_local) {
      targets.push_back(granule);
    }
    pos += chunk;
    remaining -= chunk;
  }
  return targets;
}

bool MemoryBuffer::must_stall(Addr addr, uint32_t bytes) const {
  for (Addr granule = granule_of(addr); granule < addr + bytes;
       granule += 8) {
    auto it = entries_.find(granule);
    if (it == entries_.end()) continue;
    const Entry& entry = it->second;
    if (entry.target_upstream && !entry.has_data) return true;
  }
  return false;
}

uint64_t MemoryBuffer::read(Addr addr, uint32_t bytes,
                            const FlatMemory& memory) const {
  uint64_t value = 0;
  for (uint32_t i = 0; i < bytes; ++i) {
    const Addr byte_addr = addr + i;
    const Addr granule = granule_of(byte_addr);
    uint64_t byte;
    auto it = entries_.find(granule);
    if (it != entries_.end() && it->second.has_data) {
      byte = (it->second.data >> (8 * (byte_addr - granule))) & 0xff;
    } else {
      byte = memory.read_u8(byte_addr);
    }
    value |= byte << (8 * i);
  }
  return value;
}

bool MemoryBuffer::covers(Addr addr, uint32_t bytes) const {
  for (Addr granule = granule_of(addr); granule < addr + bytes;
       granule += 8) {
    auto it = entries_.find(granule);
    if (it != entries_.end() && it->second.has_data) return true;
  }
  return false;
}

std::vector<std::pair<Addr, uint64_t>> MemoryBuffer::drain_order() const {
  std::vector<std::pair<Addr, uint64_t>> out;
  for (Addr granule : insert_order_) {
    auto it = entries_.find(granule);
    if (it != entries_.end() && it->second.has_data &&
        it->second.own_written) {
      out.emplace_back(granule, it->second.data);
    }
  }
  return out;
}

size_t MemoryBuffer::data_entries() const {
  size_t n = 0;
  for (const auto& [granule, entry] : entries_) n += entry.has_data ? 1 : 0;
  return n;
}

void MemoryBuffer::clear() {
  entries_.clear();
  insert_order_.clear();
}

void MemoryBuffer::copy_targets_to(MemoryBuffer& child) const {
  // Addresses only: the child must wait for its immediate predecessor (this
  // thread) to produce each target's value. Copying a value here would hand
  // the child a stale datum this thread is still going to overwrite.
  for (Addr granule : insert_order_) {
    auto it = entries_.find(granule);
    if (it == entries_.end()) continue;
    const Entry& entry = it->second;
    if (!(entry.target_upstream || entry.target_local)) continue;
    child.touch(granule).target_upstream = true;  // upstream to the child
  }
}

}  // namespace wecsim
