#include "sta/thread_unit.h"

#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "fault/lockstep.h"
#include "obs/profile.h"
#include "sta/sta_processor.h"

namespace wecsim {

namespace {
std::string tu_prefix(TuId id) { return "tu" + std::to_string(id) + "."; }
}  // namespace

ThreadUnit::ThreadUnit(TuId id, const StaConfig& config,
                       const Program& program, StaProcessor& owner,
                       SharedL2& l2, StatsRegistry& stats, FlatMemory& memory,
                       TraceSink* trace, FaultSession* faults)
    : id_(id),
      config_(config),
      owner_(owner),
      memory_(memory),
      mem_(config.mem, l2, stats, tu_prefix(id), id, trace, faults),
      core_(config.core, program, *this, stats, tu_prefix(id), id, trace,
            faults),
      buffer_(config.membuf_entries) {}

void ThreadUnit::start_thread(Addr pc,
                              const std::array<Word, kNumIntRegs>& int_regs,
                              const std::array<Word, kNumFpRegs>& fp_regs,
                              MemoryBuffer&& buffer, uint64_t iter,
                              bool parallel) {
  WEC_CHECK_MSG(idle(), "start_thread on a busy thread unit");
  buffer_ = std::move(buffer);
  iter_ = iter;
  parallel_ = parallel;
  wrong_ = false;
  forked_ = false;
  wb_state_ = WbState::kIdle;
  drain_.clear();
  drain_pos_ = 0;
  replay_buf_.clear();
  arch_commits_at_start_ = core_.core_stats().committed;
  core_.set_arch_commit_sink(arch_sink_);
  core_.start(pc, int_regs, fp_regs);
}

void ThreadUnit::retract_arch_commits() {
  // Between start_thread and here the core's every commit also bumped the
  // arch sink (they attach and detach together), so the core's cumulative
  // committed delta is exactly this thread's arch contribution.
  if (arch_sink_ != nullptr) {
    *arch_sink_ -= core_.core_stats().committed - arch_commits_at_start_;
  }
  arch_commits_at_start_ = core_.core_stats().committed;
}

void ThreadUnit::start_region_as_head() {
  parallel_ = true;
  wrong_ = false;
  forked_ = false;
  iter_ = 0;
  buffer_.clear();
  wb_state_ = WbState::kIdle;
}

void ThreadUnit::kill() {
  core_.stop();
  buffer_.clear();
  parallel_ = false;
  wrong_ = false;
  wb_state_ = WbState::kIdle;
  replay_buf_.clear();
}

void ThreadUnit::mark_wrong() {
  // A second abort from an even older iteration may hit a thread that is
  // already wrong; re-marking must not retract its (uncounted) wrong-path
  // commits a second time.
  if (wrong_) return;
  wrong_ = true;
  // Whatever this thread committed so far is off the sequential path.
  replay_buf_.clear();
  // Stop counting this thread toward the architectural commit total — from
  // here on its commits are wrong-execution prefetch work — and net out what
  // it already contributed: an aborted iteration is not part of the
  // sequential instruction stream.
  retract_arch_commits();
  core_.set_arch_commit_sink(nullptr);
}

void ThreadUnit::attach_checker(LockstepChecker* checker) {
  checker_ = checker;
  core_.set_commit_hook(
      [this](const CommittedInstr& ci) { on_commit(ci); });
}

void ThreadUnit::flush_replay() {
  WEC_PROFILE_SCOPE(ProfPhase::kCheckLockstep);
  for (const CommittedInstr& ci : replay_buf_) checker_->replay(ci);
  replay_buf_.clear();
}

void ThreadUnit::on_commit(const CommittedInstr& ci) {
  if (wrong_ || checker_ == nullptr) return;
  CommittedInstr stamped = ci;
  stamped.iter = iter_;
  if (!parallel_) {
    // Sequential execution replays immediately. A leftover buffered segment
    // belongs to the region that just closed: the ENDPAR committer's own
    // iteration, flushed here because its hook fires after thread_op already
    // cleared parallel_.
    flush_replay();
    WEC_PROFILE_SCOPE(ProfPhase::kCheckLockstep);
    checker_->replay(stamped);
    return;
  }
  replay_buf_.push_back(stamped);
  // THEND's hook fires only after do_writeback() completed the drain, i.e.
  // after every older iteration flushed — so flushing here preserves the
  // write-back (= sequential) order across thread units.
  if (stamped.instr.op == Opcode::kThend) flush_replay();
}

std::string ThreadUnit::describe() const {
  std::ostringstream os;
  os << "tu" << id_ << ": ";
  if (idle()) {
    os << (core_.halted() ? "halted" : "idle");
    return os.str();
  }
  if (parallel_) os << "iter=" << iter_ << " ";
  if (wrong_) os << "wrong ";
  if (wb_state_ == WbState::kDraining) {
    os << "wb-draining(" << drain_pos_ << "/" << drain_.size() << ") ";
  }
  os << core_.describe_state();
  return os.str();
}

void ThreadUnit::tick(Cycle now) {
  now_ = now;
  core_.tick(now);
}

// ---------------------------------------------------------------------------
// CoreEnv: data path
// ---------------------------------------------------------------------------

Word ThreadUnit::read_data(Addr addr, uint32_t bytes) {
  if (parallel_) return buffer_.read(addr, bytes, memory_);
  return memory_.read(addr, bytes);
}

CoreEnv::LoadGate ThreadUnit::check_load(Addr addr, uint32_t bytes) {
  // A gate that cannot open this cycle (future wake-up, or waiting on
  // another thread's progress) is a stall; "wake == now" means proceed.
  return load_gate_wake_cycle(addr, bytes, now_) == now_ ? LoadGate::kProceed
                                                         : LoadGate::kStall;
}

Cycle ThreadUnit::load_gate_wake_cycle(Addr addr, uint32_t bytes, Cycle now) {
  if (!parallel_ || wrong_) return now;
  // A thread may not run computation loads until its predecessor's TSAG
  // stage is done (all upstream target addresses are in the buffer).
  const Cycle tsag = owner_.tsag_wake_cycle(iter_, now);
  if (tsag != now) return tsag;  // future gate-open cycle, or kNoCycle
  // Run-time dependence check: upstream target store without data yet. The
  // missing value arrives over the ring — another thread's event.
  if (buffer_.must_stall(addr, bytes)) return kNoCycle;
  return now;
}

Cycle ThreadUnit::thread_op_wake_cycle(const Instruction& instr, Cycle now) {
  switch (instr.op) {
    case Opcode::kTsagd:
      if (wrong_ || !parallel_) return now;  // commits immediately
      return owner_.tsag_wake_cycle(iter_, now);
    case Opcode::kThend:
    case Opcode::kEndpar:
      if (wrong_ || !parallel_) return now;
      // A draining write-back makes progress every cycle; only the idle
      // stage waiting on the WB_DONE chain has a real wake-up time.
      if (wb_state_ == WbState::kDraining) return now;
      return owner_.wb_wake_cycle(iter_, now);
    default:
      return now;  // begin/fork/abort/tsaddr act on their first attempt
  }
}

void ThreadUnit::commit_store(Addr addr, Word value, uint32_t bytes,
                              Cycle now) {
  if (!parallel_) {
    memory_.write(addr, value, bytes);
    mem_.store(addr, now);
    owner_.broadcast_store(id_, addr, bytes);
    return;
  }
  if (wrong_) {
    // Wrong-thread stores stay in the (never drained) buffer; if the buffer
    // fills up the store is simply dropped — the thread's architectural
    // effects are discarded anyway.
    try {
      buffer_.store(addr, value, bytes, memory_);
    } catch (const SimError&) {
    }
    return;
  }
  const std::vector<Addr> targets = buffer_.store(addr, value, bytes, memory_);
  for (Addr granule : targets) {
    owner_.send_ts_data(iter_, granule, buffer_.read(granule, 8, memory_),
                        now);
  }
}

MemOutcome ThreadUnit::cache_load(Addr addr, ExecMode mode, Cycle now) {
  // Loads satisfied by the speculative memory buffer (own stores or
  // forwarded target-store data) do not touch the cache hierarchy.
  if (parallel_ && mode == ExecMode::kCorrect && buffer_.covers(addr, 1)) {
    return {now + 1, true, false};
  }
  WEC_PROFILE_SCOPE(ProfPhase::kMemAccess);
  return mem_.load(addr, mode, now);
}

Cycle ThreadUnit::cache_ifetch(Addr pc, Cycle now) {
  WEC_PROFILE_SCOPE(ProfPhase::kMemIfetch);
  return mem_.ifetch(pc, now);
}

ExecMode ThreadUnit::mode() const {
  return wrong_ ? ExecMode::kWrongThread : ExecMode::kCorrect;
}

// ---------------------------------------------------------------------------
// CoreEnv: thread ops
// ---------------------------------------------------------------------------

CoreEnv::ThreadOpAction ThreadUnit::thread_op(const Instruction& instr,
                                              Addr mem_addr, Cycle now) {
  static const bool trace = std::getenv("WEC_TRACE") != nullptr;
  if (trace && instr.op != Opcode::kTsaddr && instr.op != Opcode::kTsagd)
    fprintf(stderr, "[%llu] tu%u iter%llu %s r11=%llu r3=%llu wrong=%d\n",
            (unsigned long long)now, id_, (unsigned long long)iter_,
            opcode_name(instr.op), (unsigned long long)core_.int_reg(11),
            (unsigned long long)core_.int_reg(3), (int)wrong_);
  switch (instr.op) {
    case Opcode::kBegin:
      if (parallel_) {
        throw SimError("begin inside a parallel region (nested regions are "
                       "not supported)");
      }
      owner_.begin_region(*this, now);
      return ThreadOpAction::kDone;

    case Opcode::kFork:
    case Opcode::kForksp:
      if (!parallel_) {
        throw SimError("fork outside a parallel region");
      }
      if (wrong_) return ThreadOpAction::kDone;  // wrong threads cannot fork
      if (forked_) {
        throw SimError("thread forked twice (one successor per thread)");
      }
      forked_ = true;
      owner_.queue_fork(*this, static_cast<Addr>(instr.imm), now);
      return ThreadOpAction::kDone;

    case Opcode::kTsaddr:
      buffer_.declare_local_target(mem_addr);
      if (parallel_ && !wrong_) {
        owner_.send_ts_addr(iter_, MemoryBuffer::granule_of(mem_addr), now);
      }
      return ThreadOpAction::kDone;

    case Opcode::kTsagd:
      if (wrong_) return ThreadOpAction::kDone;
      if (!parallel_) return ThreadOpAction::kDone;
      if (!owner_.tsag_ready_for(iter_, now)) return ThreadOpAction::kRetry;
      owner_.set_tsag_done(iter_, now);
      return ThreadOpAction::kDone;

    case Opcode::kAbort:
      if (wrong_) return ThreadOpAction::kEndThread;  // self-kill
      if (!parallel_) throw SimError("abort outside a parallel region");
      owner_.abort_successors(*this, now);
      return ThreadOpAction::kDone;

    case Opcode::kThend: {
      if (wrong_) return ThreadOpAction::kEndThread;  // skip write-back
      if (!parallel_) throw SimError("thend outside a parallel region");
      return do_writeback(now, /*endpar=*/false);
    }

    case Opcode::kEndpar: {
      if (wrong_) return ThreadOpAction::kEndThread;
      if (!parallel_) throw SimError("endpar outside a parallel region");
      const ThreadOpAction action = do_writeback(now, /*endpar=*/true);
      if (action == ThreadOpAction::kDone) {
        parallel_ = false;
        owner_.end_region(*this, now);
      }
      return action;
    }

    default:
      WEC_CHECK_MSG(false, "unknown thread opcode");
  }
}

CoreEnv::ThreadOpAction ThreadUnit::do_writeback(Cycle now, bool endpar) {
  if (wb_state_ == WbState::kIdle) {
    // Write-back stages run in original program order.
    if (!owner_.wb_ready_for(iter_, now)) return ThreadOpAction::kRetry;
    drain_ = buffer_.drain_order();
    drain_pos_ = 0;
    wb_state_ = WbState::kDraining;
  }
  // Commit up to wb_ports granules per cycle into memory + cache.
  for (uint32_t n = 0; n < config_.wb_ports && drain_pos_ < drain_.size();
       ++n, ++drain_pos_) {
    const auto& [granule, data] = drain_[drain_pos_];
    memory_.write_u64(granule, data);
    mem_.store(granule, now);
    owner_.broadcast_store(id_, granule, 8);
  }
  if (drain_pos_ < drain_.size()) return ThreadOpAction::kRetry;

  wb_state_ = WbState::kIdle;
  buffer_.clear();
  owner_.set_wb_done(iter_, now + 1);
  return endpar ? ThreadOpAction::kDone : ThreadOpAction::kEndThread;
}

}  // namespace wecsim
