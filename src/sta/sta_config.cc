#include "sta/sta_config.h"

#include <string>
#include <vector>

#include "common/bits.h"
#include "common/error.h"

namespace wecsim {

namespace {

void check_geom(const std::string& name, const CacheGeom& geom,
                std::vector<std::string>& errors) {
  if (geom.size_bytes == 0) errors.push_back(name + ".size_bytes must be > 0");
  if (geom.assoc == 0) errors.push_back(name + ".assoc must be > 0");
  if (geom.block_bytes == 0 || !is_pow2(geom.block_bytes)) {
    errors.push_back(name + ".block_bytes must be a power of two (got " +
                     std::to_string(geom.block_bytes) + ")");
    return;  // derived checks below would divide by zero / be meaningless
  }
  if (geom.size_bytes % geom.block_bytes != 0) {
    errors.push_back(name + ".size_bytes (" +
                     std::to_string(geom.size_bytes) +
                     ") must be a multiple of block_bytes (" +
                     std::to_string(geom.block_bytes) + ")");
    return;
  }
  if (geom.num_blocks() % geom.assoc != 0) {
    errors.push_back(name + ": " + std::to_string(geom.num_blocks()) +
                     " blocks do not divide into " +
                     std::to_string(geom.assoc) + "-way sets");
    return;
  }
  if (!is_pow2(geom.num_sets())) {
    errors.push_back(name + ": set count " +
                     std::to_string(geom.num_sets()) +
                     " must be a power of two (set indexing is a bit mask)");
  }
}

}  // namespace

void validate_sta_config(const StaConfig& config) {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };

  require(config.num_tus >= 1, "num_tus must be >= 1");
  require(config.membuf_entries >= 1, "membuf_entries must be >= 1");
  require(config.wb_ports >= 1, "wb_ports must be >= 1");
  require(config.max_cycles >= 1, "max_cycles must be >= 1");
  require(config.watchdog_cycles >= 1, "watchdog_cycles must be >= 1");
  require(config.wall_timeout_seconds >= 0.0,
          "wall_timeout_seconds must be >= 0 (0 disables)");

  const CoreConfig& core = config.core;
  require(core.fetch_width >= 1, "core.fetch_width must be >= 1");
  require(core.issue_width >= 1, "core.issue_width must be >= 1");
  require(core.rob_size >= 1, "core.rob_size must be >= 1");
  require(core.lsq_size >= 1, "core.lsq_size must be >= 1");
  require(core.mem_ports >= 1, "core.mem_ports must be >= 1");
  require(core.fetch_queue_size >= 1, "core.fetch_queue_size must be >= 1");
  if (core.ifetch_block_bytes == 0 || !is_pow2(core.ifetch_block_bytes)) {
    errors.push_back("core.ifetch_block_bytes must be a power of two (got " +
                     std::to_string(core.ifetch_block_bytes) + ")");
  }

  const MemConfig& mem = config.mem;
  check_geom("mem.l1i", mem.l1i, errors);
  check_geom("mem.l1d", mem.l1d, errors);
  check_geom("mem.l2", mem.l2, errors);
  require(mem.l1_hit_lat >= 1, "mem.l1_hit_lat must be >= 1");
  require(mem.l2_hit_lat >= 1, "mem.l2_hit_lat must be >= 1");
  require(mem.mem_lat >= 1, "mem.mem_lat must be >= 1");
  require(mem.l2_occupancy >= 1, "mem.l2_occupancy must be >= 1");
  if (mem.side != SideKind::kNone) {
    require(mem.side_entries >= 1,
            "mem.side_entries must be >= 1 when a side cache is configured");
  }

  if (errors.empty()) return;
  std::string message = "invalid StaConfig: " +
                        std::to_string(errors.size()) + " violation(s):";
  for (const std::string& error : errors) message += "\n  - " + error;
  throw SimError(message);
}

}  // namespace wecsim
