// Program image produced by the assembler and consumed by the simulators:
// a text segment of decoded instructions, an initialized data segment, and a
// symbol table.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace wecsim {

/// Default segment bases. Text and data live in one flat address space;
/// the gap leaves room for large text segments.
inline constexpr Addr kDefaultTextBase = 0x1000;
inline constexpr Addr kDefaultDataBase = 0x10'0000;

/// An assembled program.
class Program {
 public:
  Program() = default;

  /// --- construction (used by the assembler and program builders) ---

  /// Append an instruction; returns its address.
  Addr push(const Instruction& instr);

  /// Define a symbol (label or .equ). Throws SimError on redefinition.
  void define_symbol(const std::string& name, Addr value);

  /// Append raw bytes to the data segment; returns their start address.
  Addr push_data(const void* bytes, size_t n);

  /// Reserve n zero bytes in the data segment; returns their start address.
  Addr reserve_data(size_t n);

  /// Align the data cursor to a power-of-two boundary.
  void align_data(uint64_t alignment);

  void set_entry(Addr entry) { entry_ = entry; }

  /// --- queries ---

  Addr text_base() const { return text_base_; }
  Addr data_base() const { return data_base_; }
  Addr entry() const { return entry_; }

  /// First address past the text segment.
  Addr text_end() const { return text_base_ + text_.size() * kInstrBytes; }

  /// First address past the initialized data segment.
  Addr data_end() const { return data_base_ + data_.size(); }

  size_t num_instructions() const { return text_.size(); }

  /// True iff pc falls on a valid instruction slot.
  bool valid_pc(Addr pc) const {
    return pc >= text_base_ && pc < text_end() &&
           (pc - text_base_) % kInstrBytes == 0;
  }

  /// The instruction at pc. Throws SimError for invalid PCs — the timing
  /// core uses fetch() below for wrong-path-tolerant access.
  const Instruction& at(Addr pc) const;

  /// Wrong-path-tolerant fetch: returns nullptr for PCs outside the text
  /// segment (the core treats that as a fetch stall / implicit halt).
  const Instruction* fetch(Addr pc) const {
    if (!valid_pc(pc)) return nullptr;
    return &text_[(pc - text_base_) / kInstrBytes];
  }

  /// Symbol lookup. Throws SimError if undefined.
  Addr symbol(const std::string& name) const;
  bool has_symbol(const std::string& name) const {
    return symbols_.contains(name);
  }
  const std::map<std::string, Addr>& symbols() const { return symbols_; }

  const std::vector<Instruction>& text() const { return text_; }
  const std::vector<uint8_t>& data() const { return data_; }

  /// Mutable access for late patching (the assembler back-patches label
  /// references after layout).
  Instruction& instr_at_index(size_t idx);

 private:
  Addr text_base_ = kDefaultTextBase;
  Addr data_base_ = kDefaultDataBase;
  Addr entry_ = kDefaultTextBase;
  std::vector<Instruction> text_;
  std::vector<uint8_t> data_;
  std::map<std::string, Addr> symbols_;
};

}  // namespace wecsim
