#include "isa/program.h"

#include <cstring>

#include "common/bits.h"
#include "common/error.h"

namespace wecsim {

Addr Program::push(const Instruction& instr) {
  const Addr addr = text_end();
  text_.push_back(instr);
  return addr;
}

void Program::define_symbol(const std::string& name, Addr value) {
  auto [it, inserted] = symbols_.try_emplace(name, value);
  (void)it;
  if (!inserted) throw SimError("symbol redefined: " + name);
}

Addr Program::push_data(const void* bytes, size_t n) {
  const Addr addr = data_end();
  const auto* p = static_cast<const uint8_t*>(bytes);
  data_.insert(data_.end(), p, p + n);
  return addr;
}

Addr Program::reserve_data(size_t n) {
  const Addr addr = data_end();
  data_.insert(data_.end(), n, 0);
  return addr;
}

void Program::align_data(uint64_t alignment) {
  WEC_CHECK_MSG(is_pow2(alignment), "alignment must be a power of two");
  const Addr aligned = align_up(data_end(), alignment);
  data_.insert(data_.end(), aligned - data_end(), 0);
}

const Instruction& Program::at(Addr pc) const {
  const Instruction* instr = fetch(pc);
  if (instr == nullptr) {
    throw SimError("invalid PC 0x" + std::to_string(pc));
  }
  return *instr;
}

Addr Program::symbol(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) throw SimError("undefined symbol: " + name);
  return it->second;
}

Instruction& Program::instr_at_index(size_t idx) {
  WEC_CHECK(idx < text_.size());
  return text_[idx];
}

}  // namespace wecsim
