// Text assembler for the wecsim ISA.
//
// Syntax overview:
//   # comment                     ; also a comment
//   .text / .data                 switch section
//   .entry label                  set program entry point (default: text base)
//   .equ name, expr               define a constant
//   .word e1, e2, ...             4-byte little-endian data values
//   .dword e1, e2, ...            8-byte data values
//   .double 1.5, ...              IEEE double data values
//   .space n                      n zero bytes
//   .align n                      align data cursor to n bytes
//   label:                        define label (text: instr addr, data: byte)
//   add  rd, rs1, rs2             integer ops (r0..r31; zero/ra/sp aliases)
//   addi rd, rs1, imm
//   ld   rd, imm(rs1)             memory ops; stores are "sd rdata, imm(rbase)"
//   fadd fd, fs1, fs2             FP ops (f0..f31)
//   beq  rs1, rs2, label          control flow; targets are labels or exprs
//   fork label / tsaddr rs1, imm  superthreaded ops
//
// Pseudo-instructions: mv, j, call, ret, beqz, bnez, ble, bgt, la, subi.
// Immediate expressions: integer literals (dec/hex), symbols, symbol±offset.
// Instruction operands may forward-reference labels; data directives may not.
#pragma once

#include <string>
#include <string_view>

#include "isa/program.h"

namespace wecsim {

struct AsmOptions {
  Addr text_base = kDefaultTextBase;
  Addr data_base = kDefaultDataBase;
};

/// Assemble source into a Program. Throws SimError with a line-numbered
/// message on any syntax or semantic error.
Program assemble(std::string_view source, const AsmOptions& options = {});

}  // namespace wecsim
