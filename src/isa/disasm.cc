#include "isa/disasm.h"

#include <iomanip>
#include <map>
#include <sstream>

#include "common/error.h"

namespace wecsim {

namespace {

// Reverse symbol map for annotating control-flow targets.
std::map<Addr, std::string> reverse_symbols(const Program& program) {
  std::map<Addr, std::string> rev;
  for (const auto& [name, addr] : program.symbols()) {
    rev.emplace(addr, name);  // keep the first name for an address
  }
  return rev;
}

}  // namespace

std::string disassemble_at(const Program& program, Addr pc) {
  const Instruction& instr = program.at(pc);
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(6) << std::setfill('0') << pc << "  "
     << std::dec << to_string(instr);
  return os.str();
}

std::string disassemble(const Program& program) {
  const auto rev = reverse_symbols(program);
  std::ostringstream os;
  for (size_t i = 0; i < program.num_instructions(); ++i) {
    const Addr pc = program.text_base() + i * kInstrBytes;
    if (auto it = rev.find(pc); it != rev.end()) {
      os << it->second << ":\n";
    }
    os << "  " << disassemble_at(program, pc);
    const Instruction& instr = program.at(pc);
    if (instr.is_control() || instr.op == Opcode::kFork ||
        instr.op == Opcode::kForksp) {
      if (auto it = rev.find(static_cast<Addr>(instr.imm)); it != rev.end()) {
        os << "    # -> " << it->second;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wecsim
