// wecsim ISA: a small RISC instruction set with superthreaded extensions.
//
// The simulated machine has 32 integer registers (r0 hardwired to zero) and
// 32 floating-point registers (IEEE double, stored bit-exact in a Word).
// Instructions occupy 8 bytes of instruction-memory address space each.
//
// Superthreaded extensions (paper Section 2):
//   BEGIN   — open a parallel region (kills lingering wrong threads)
//   FORK    — non-speculative fork of the successor thread unit
//   FORKSP  — speculative fork (abortable by the predecessor)
//   ABORT   — kill (or, under wrong-thread execution, mark wrong) successors;
//             executed by a wrong thread it kills that thread itself
//   TSADDR  — declare a target-store address in the TSAG stage
//   TSAGD   — end of TSAG stage (sends the TSAG_DONE flag downstream)
//   THEND   — end of computation stage; run the in-order write-back stage,
//             then idle the thread unit
//   ENDPAR  — close the parallel region: commit this (head) thread's buffer
//             and continue in sequential mode
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace wecsim {

/// Every architectural instruction. Order is part of the binary encoding.
enum class Opcode : uint8_t {
  // Integer register-register ALU.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kSlt,
  kSltu,
  // Integer register-immediate ALU.
  kAddi,
  kAndi,
  kOri,
  kXori,
  kSlli,
  kSrli,
  kSrai,
  kSlti,
  kLi,
  // Integer loads / stores (stores: rs1 = base, rs2 = data).
  kLb,
  kLbu,
  kLw,
  kLd,
  kSb,
  kSw,
  kSd,
  // Floating point (double precision).
  kFadd,
  kFsub,
  kFmul,
  kFdiv,
  kFcvtDL,  // fp rd <- (double) int rs1
  kFcvtLD,  // int rd <- (int64) fp rs1 (truncating)
  kFeq,     // int rd <- fp rs1 == fp rs2
  kFlt,     // int rd <- fp rs1 <  fp rs2
  kFle,     // int rd <- fp rs1 <= fp rs2
  kFld,     // fp rd <- mem[rs1 + imm]
  kFsd,     // mem[rs1 + imm] <- fp rs2
  kFli,     // fp rd <- immediate double (bits in imm)
  kFmv,     // fp rd <- fp rs1
  // Control transfer. Branch/jump targets are absolute instruction addresses
  // in imm (the assembler resolves labels).
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kJal,
  kJalr,
  // System.
  kNop,
  kHalt,
  // Superthreaded extensions.
  kBegin,
  kFork,
  kForksp,
  kAbort,
  kTsaddr,
  kTsagd,
  kThend,
  kEndpar,
  kOpcodeCount  // sentinel
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kOpcodeCount);

/// Number of architectural registers per file.
inline constexpr int kNumIntRegs = 32;
inline constexpr int kNumFpRegs = 32;

/// Bytes of instruction-memory address space per instruction.
inline constexpr Addr kInstrBytes = 8;

/// Which register file an operand slot touches.
enum class RegFile : uint8_t { kNone, kInt, kFp };

/// Execution resource classes (map to the paper's FU pools).
enum class FuClass : uint8_t {
  kIntAlu,   // 1-cycle integer ops, branches, jumps, thread ops
  kIntMult,  // integer multiply / divide / remainder
  kFpAlu,    // FP add/sub/convert/compare/move
  kFpMult,   // FP multiply / divide
  kLsu,      // loads and stores (memory port)
  kNone      // consumes no FU (nop, halt)
};

/// Broad behavioural category used by the pipeline and the interpreter.
enum class InstrKind : uint8_t {
  kAlu,     // any register-writing computational op
  kLoad,
  kStore,
  kBranch,  // conditional branch
  kJump,    // jal / jalr
  kSys,     // nop / halt
  kThread   // superthreaded extension ops
};

/// Static per-opcode metadata.
struct OpcodeInfo {
  const char* name;    // assembler mnemonic
  InstrKind kind;
  FuClass fu;
  uint32_t latency;    // execute latency in cycles (cache-hit latency for mem)
  RegFile dst;         // register file of rd (kNone if no destination)
  RegFile src1;        // register file of rs1
  RegFile src2;        // register file of rs2
  bool has_imm;        // instruction carries an immediate
};

/// Lookup table entry for op. Never fails for valid opcodes.
const OpcodeInfo& opcode_info(Opcode op);

/// Mnemonic for op ("add", "fork", ...).
const char* opcode_name(Opcode op);

/// A decoded architectural instruction. rd/rs1/rs2 index the register file
/// given by the opcode metadata; unused slots are zero.
struct Instruction {
  Opcode op = Opcode::kNop;
  RegId rd = 0;
  RegId rs1 = 0;
  RegId rs2 = 0;
  int64_t imm = 0;

  bool is_load() const { return opcode_info(op).kind == InstrKind::kLoad; }
  bool is_store() const { return opcode_info(op).kind == InstrKind::kStore; }
  bool is_mem() const { return is_load() || is_store(); }
  bool is_branch() const { return opcode_info(op).kind == InstrKind::kBranch; }
  bool is_jump() const { return opcode_info(op).kind == InstrKind::kJump; }
  bool is_control() const { return is_branch() || is_jump(); }
  bool is_thread_op() const {
    return opcode_info(op).kind == InstrKind::kThread;
  }
  bool writes_reg() const { return opcode_info(op).dst != RegFile::kNone; }

  /// Memory access width in bytes for loads/stores, 0 otherwise.
  uint32_t mem_bytes() const;

  bool operator==(const Instruction&) const = default;
};

/// Canonical binary serialization: word0 packs op:8 rd:6 rs1:6 rs2:6 (low 26
/// bits beyond the opcode), word1 carries the full 64-bit immediate. This is
/// a storage format, not the PC spacing — instructions still occupy
/// kInstrBytes of instruction-address space.
struct EncodedInstr {
  uint64_t word0 = 0;
  uint64_t word1 = 0;
  bool operator==(const EncodedInstr&) const = default;
};

/// Encode to the canonical binary form.
EncodedInstr encode(const Instruction& instr);

/// Decode the canonical binary form. Throws SimError on invalid opcodes or
/// out-of-range register indices.
Instruction decode(const EncodedInstr& bits);

/// Human-readable rendering ("add r3, r1, r2").
std::string to_string(const Instruction& instr);

}  // namespace wecsim
