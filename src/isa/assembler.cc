#include "isa/assembler.h"

#include <cctype>
#include <charconv>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace wecsim {

namespace {

struct Token {
  std::string text;
};

// Split one logical line into tokens. Commas and parentheses are separators;
// parentheses are kept as their own tokens so "imm(rs1)" parses cleanly.
std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back({cur});
      cur.clear();
    }
  };
  for (char c : line) {
    if (c == '#' || c == ';') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      flush();
    } else if (c == '(' || c == ')' || c == ':') {
      flush();
      tokens.push_back({std::string(1, c)});
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return tokens;
}

class Assembler {
 public:
  explicit Assembler(const AsmOptions& options) {
    program_ = Program();
    // Program bases are fixed members; re-home them by building through the
    // Program API only (text/data bases are the defaults unless overridden).
    text_base_ = options.text_base;
    data_base_ = options.data_base;
    WEC_CHECK_MSG(text_base_ == kDefaultTextBase &&
                      data_base_ == kDefaultDataBase,
                  "custom segment bases are not supported yet");
  }

  Program run(std::string_view source) {
    size_t start = 0;
    int line_no = 0;
    while (start <= source.size()) {
      size_t end = source.find('\n', start);
      if (end == std::string_view::npos) end = source.size();
      ++line_no;
      line_no_ = line_no;
      parse_line(source.substr(start, end - start));
      start = end + 1;
    }
    resolve_fixups();
    if (!entry_symbol_.empty()) {
      program_.set_entry(lookup(entry_symbol_));
    }
    return std::move(program_);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw SimError("asm line " + std::to_string(line_no_) + ": " + msg);
  }

  void parse_line(std::string_view line) {
    std::vector<Token> tokens = tokenize(line);
    size_t i = 0;
    // Leading labels: "name :".
    while (i + 1 < tokens.size() && tokens[i + 1].text == ":") {
      define_label(tokens[i].text);
      i += 2;
    }
    if (i >= tokens.size()) return;
    const std::string& head = tokens[i].text;
    std::vector<std::string> args;
    for (size_t j = i + 1; j < tokens.size(); ++j) args.push_back(tokens[j].text);
    if (head[0] == '.') {
      directive(head, args);
    } else {
      instruction(head, args);
    }
  }

  void define_label(const std::string& name) {
    const Addr value = in_text_ ? program_.text_end() : program_.data_end();
    if (program_.has_symbol(name)) fail("symbol redefined: " + name);
    program_.define_symbol(name, value);
  }

  // --- expressions -------------------------------------------------------

  static bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    char c = s[0];
    return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+';
  }

  int64_t parse_int(const std::string& s) const {
    int64_t value = 0;
    bool negative = false;
    size_t pos = 0;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) {
      negative = s[pos] == '-';
      ++pos;
    }
    int base = 10;
    if (s.size() >= pos + 2 && s[pos] == '0' &&
        (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
      base = 16;
      pos += 2;
    }
    uint64_t mag = 0;
    auto [ptr, ec] = std::from_chars(s.data() + pos, s.data() + s.size(), mag,
                                     base);
    if (ec != std::errc() || ptr != s.data() + s.size()) {
      fail("bad integer literal: " + s);
    }
    value = static_cast<int64_t>(mag);
    return negative ? -value : value;
  }

  Addr lookup(const std::string& name) const {
    if (!program_.has_symbol(name)) {
      throw SimError("asm: undefined symbol '" + name + "'");
    }
    return program_.symbol(name);
  }

  // Evaluate "int", "sym", "sym+int", or "sym-int". If the expression
  // references an undefined symbol and allow_forward is true, returns
  // nullopt (caller records a fixup).
  std::optional<int64_t> eval(const std::string& expr,
                              bool allow_forward) const {
    if (looks_numeric(expr)) return parse_int(expr);
    size_t op_pos = expr.find_first_of("+-", 1);
    std::string sym = expr.substr(0, op_pos);
    int64_t offset = 0;
    if (op_pos != std::string::npos) {
      offset = parse_int(expr.substr(op_pos));  // includes the sign
    }
    if (!program_.has_symbol(sym)) {
      if (allow_forward) return std::nullopt;
      fail("undefined symbol: " + sym);
    }
    return static_cast<int64_t>(program_.symbol(sym)) + offset;
  }

  // --- directives --------------------------------------------------------

  void directive(const std::string& name, const std::vector<std::string>& args) {
    if (name == ".text") {
      in_text_ = true;
    } else if (name == ".data") {
      in_text_ = false;
    } else if (name == ".entry") {
      if (args.size() != 1) fail(".entry takes one label");
      entry_symbol_ = args[0];
    } else if (name == ".equ") {
      if (args.size() != 2) fail(".equ takes name, value");
      auto value = eval(args[1], /*allow_forward=*/false);
      if (program_.has_symbol(args[0])) fail("symbol redefined: " + args[0]);
      program_.define_symbol(args[0], static_cast<Addr>(*value));
    } else if (name == ".word" || name == ".dword") {
      const size_t width = name == ".word" ? 4 : 8;
      for (const auto& arg : args) {
        auto value = eval(arg, /*allow_forward=*/false);
        uint64_t bits = static_cast<uint64_t>(*value);
        program_.push_data(&bits, width);  // little-endian host assumption
      }
    } else if (name == ".double") {
      for (const auto& arg : args) {
        double d = std::stod(arg);
        program_.push_data(&d, sizeof(d));
      }
    } else if (name == ".space") {
      if (args.size() != 1) fail(".space takes one size");
      program_.reserve_data(static_cast<size_t>(*eval(args[0], false)));
    } else if (name == ".align") {
      if (args.size() != 1) fail(".align takes one alignment");
      program_.align_data(static_cast<uint64_t>(*eval(args[0], false)));
    } else {
      fail("unknown directive: " + name);
    }
  }

  // --- instructions ------------------------------------------------------

  RegId parse_reg(const std::string& s, RegFile file) const {
    static const std::unordered_map<std::string, int> aliases = {
        {"zero", 0}, {"ra", 31}, {"sp", 30}};
    if (file == RegFile::kNone) fail("unexpected register operand " + s);
    if (auto it = aliases.find(s); it != aliases.end()) {
      if (file != RegFile::kInt) fail("integer alias used as FP reg: " + s);
      return static_cast<RegId>(it->second);
    }
    const char prefix = file == RegFile::kFp ? 'f' : 'r';
    if (s.size() < 2 || s[0] != prefix) {
      fail(std::string("expected ") + prefix + "-register, got " + s);
    }
    int idx = 0;
    auto [ptr, ec] = std::from_chars(s.data() + 1, s.data() + s.size(), idx);
    if (ec != std::errc() || ptr != s.data() + s.size() || idx < 0 ||
        idx >= kNumIntRegs) {
      fail("bad register: " + s);
    }
    return static_cast<RegId>(idx);
  }

  void set_imm_or_fixup(Instruction& instr, const std::string& expr) {
    auto value = eval(expr, /*allow_forward=*/true);
    if (value.has_value()) {
      instr.imm = *value;
    } else {
      fixups_.push_back({program_.num_instructions(), expr, line_no_});
      instr.imm = 0;
    }
  }

  std::optional<Opcode> find_opcode(const std::string& mnemonic) const {
    for (int i = 0; i < kNumOpcodes; ++i) {
      auto op = static_cast<Opcode>(i);
      if (mnemonic == opcode_name(op)) return op;
    }
    return std::nullopt;
  }

  void instruction(const std::string& mnemonic,
                   std::vector<std::string> args) {
    // Pseudo-instruction expansion first.
    if (mnemonic == "mv") {
      require_args(args, 2, "mv rd, rs");
      args.push_back("0");
      return emit(Opcode::kAddi, args);
    }
    if (mnemonic == "subi") {
      require_args(args, 3, "subi rd, rs, imm");
      args[2] = negate_expr(args[2]);
      return emit(Opcode::kAddi, args);
    }
    if (mnemonic == "j") {
      require_args(args, 1, "j label");
      return emit(Opcode::kJal, {"r0", args[0]});
    }
    if (mnemonic == "call") {
      require_args(args, 1, "call label");
      return emit(Opcode::kJal, {"ra", args[0]});
    }
    if (mnemonic == "ret") {
      require_args(args, 0, "ret");
      return emit(Opcode::kJalr, {"r0", "ra", "0"});
    }
    if (mnemonic == "beqz") {
      require_args(args, 2, "beqz rs, label");
      return emit(Opcode::kBeq, {args[0], "r0", args[1]});
    }
    if (mnemonic == "bnez") {
      require_args(args, 2, "bnez rs, label");
      return emit(Opcode::kBne, {args[0], "r0", args[1]});
    }
    if (mnemonic == "ble") {  // rs1 <= rs2  ==  !(rs2 < rs1)  ==  rs2 >= rs1
      require_args(args, 3, "ble rs1, rs2, label");
      return emit(Opcode::kBge, {args[1], args[0], args[2]});
    }
    if (mnemonic == "bgt") {
      require_args(args, 3, "bgt rs1, rs2, label");
      return emit(Opcode::kBlt, {args[1], args[0], args[2]});
    }
    if (mnemonic == "la") {
      require_args(args, 2, "la rd, symbol");
      return emit(Opcode::kLi, args);
    }
    auto op = find_opcode(mnemonic);
    if (!op.has_value()) fail("unknown mnemonic: " + mnemonic);
    emit(*op, args);
  }

  std::string negate_expr(const std::string& expr) {
    auto value = eval(expr, /*allow_forward=*/false);
    return std::to_string(-*value);
  }

  void require_args(const std::vector<std::string>& args, size_t n,
                    const char* usage) const {
    if (args.size() != n) fail(std::string("usage: ") + usage);
  }

  void emit(Opcode op, const std::vector<std::string>& args) {
    if (!in_text_) fail("instruction outside .text");
    const OpcodeInfo& info = opcode_info(op);
    Instruction instr;
    instr.op = op;
    switch (op) {
      // Memory operand form: "op rX, imm ( rbase )".
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kLw:
      case Opcode::kLd:
      case Opcode::kFld: {
        // Tokenized form: rd imm ( rbase ) — five tokens.
        if (args.size() != 5 || args[2] != "(" || args[4] != ")") {
          fail("usage: " + std::string(info.name) + " rd, imm(rbase)");
        }
        instr.rd = parse_reg(args[0], info.dst);
        set_imm_or_fixup(instr, args[1]);
        instr.rs1 = parse_reg(args[3], RegFile::kInt);
        break;
      }
      case Opcode::kSb:
      case Opcode::kSw:
      case Opcode::kSd:
      case Opcode::kFsd: {
        if (args.size() != 5 || args[2] != "(" || args[4] != ")") {
          fail("usage: " + std::string(info.name) + " rdata, imm(rbase)");
        }
        instr.rs2 = parse_reg(args[0], info.src2);
        set_imm_or_fixup(instr, args[1]);
        instr.rs1 = parse_reg(args[3], RegFile::kInt);
        break;
      }
      case Opcode::kFork:
      case Opcode::kForksp: {
        require_args(args, 1, "fork label");
        set_imm_or_fixup(instr, args[0]);
        break;
      }
      case Opcode::kTsaddr: {
        require_args(args, 2, "tsaddr rbase, imm");
        instr.rs1 = parse_reg(args[0], RegFile::kInt);
        set_imm_or_fixup(instr, args[1]);
        break;
      }
      case Opcode::kJalr: {
        require_args(args, 3, "jalr rd, rs1, imm");
        instr.rd = parse_reg(args[0], RegFile::kInt);
        instr.rs1 = parse_reg(args[1], RegFile::kInt);
        set_imm_or_fixup(instr, args[2]);
        break;
      }
      case Opcode::kFli: {
        require_args(args, 2, "fli fd, double");
        instr.rd = parse_reg(args[0], RegFile::kFp);
        double d = std::stod(args[1]);
        int64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        instr.imm = bits;
        break;
      }
      default: {
        // Generic operand order: [rd] [rs1] [rs2] [imm].
        size_t idx = 0;
        auto next = [&]() -> const std::string& {
          if (idx >= args.size()) {
            fail("too few operands for " + std::string(info.name));
          }
          return args[idx++];
        };
        if (info.dst != RegFile::kNone) instr.rd = parse_reg(next(), info.dst);
        if (info.src1 != RegFile::kNone)
          instr.rs1 = parse_reg(next(), info.src1);
        if (info.src2 != RegFile::kNone)
          instr.rs2 = parse_reg(next(), info.src2);
        if (info.has_imm) set_imm_or_fixup(instr, next());
        if (idx != args.size()) {
          fail("too many operands for " + std::string(info.name));
        }
        break;
      }
    }
    program_.push(instr);
  }

  void resolve_fixups() {
    for (const auto& fixup : fixups_) {
      line_no_ = fixup.line;
      auto value = eval(fixup.expr, /*allow_forward=*/false);
      program_.instr_at_index(fixup.instr_index).imm = *value;
    }
  }

  struct Fixup {
    size_t instr_index;
    std::string expr;
    int line;
  };

  Program program_;
  Addr text_base_ = kDefaultTextBase;
  Addr data_base_ = kDefaultDataBase;
  bool in_text_ = true;
  int line_no_ = 0;
  std::string entry_symbol_;
  std::vector<Fixup> fixups_;
};

}  // namespace

Program assemble(std::string_view source, const AsmOptions& options) {
  Assembler assembler(options);
  return assembler.run(source);
}

}  // namespace wecsim
