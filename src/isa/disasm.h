// Disassembler: renders a Program back to readable assembly with addresses
// and symbolic branch targets (used by examples and debugging traces).
#pragma once

#include <string>

#include "isa/program.h"

namespace wecsim {

/// One line: "0x1010  beq r1, r2, loop".
std::string disassemble_at(const Program& program, Addr pc);

/// The whole text segment.
std::string disassemble(const Program& program);

}  // namespace wecsim
