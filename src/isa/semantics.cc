#include "isa/semantics.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.h"

namespace wecsim {

namespace {

double as_double(Word bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Word as_bits(double d) {
  Word bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

SWord sdiv(SWord a, SWord b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<SWord>::min() && b == -1) return a;
  return a / b;
}

SWord srem(SWord a, SWord b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<SWord>::min() && b == -1) return 0;
  return a % b;
}

}  // namespace

Word eval_alu(const Instruction& instr, Word src1, Word src2) {
  const auto sa = static_cast<SWord>(src1);
  const auto sb = static_cast<SWord>(src2);
  const auto imm = instr.imm;
  switch (instr.op) {
    case Opcode::kAdd:
      return src1 + src2;
    case Opcode::kSub:
      return src1 - src2;
    case Opcode::kMul:
      return src1 * src2;
    case Opcode::kDiv:
      return static_cast<Word>(sdiv(sa, sb));
    case Opcode::kRem:
      return static_cast<Word>(srem(sa, sb));
    case Opcode::kAnd:
      return src1 & src2;
    case Opcode::kOr:
      return src1 | src2;
    case Opcode::kXor:
      return src1 ^ src2;
    case Opcode::kSll:
      return src1 << (src2 & 63);
    case Opcode::kSrl:
      return src1 >> (src2 & 63);
    case Opcode::kSra:
      return static_cast<Word>(sa >> (src2 & 63));
    case Opcode::kSlt:
      return sa < sb ? 1 : 0;
    case Opcode::kSltu:
      return src1 < src2 ? 1 : 0;
    case Opcode::kAddi:
      return src1 + static_cast<Word>(imm);
    case Opcode::kAndi:
      return src1 & static_cast<Word>(imm);
    case Opcode::kOri:
      return src1 | static_cast<Word>(imm);
    case Opcode::kXori:
      return src1 ^ static_cast<Word>(imm);
    case Opcode::kSlli:
      return src1 << (imm & 63);
    case Opcode::kSrli:
      return src1 >> (imm & 63);
    case Opcode::kSrai:
      return static_cast<Word>(sa >> (imm & 63));
    case Opcode::kSlti:
      return sa < imm ? 1 : 0;
    case Opcode::kLi:
      return static_cast<Word>(imm);
    case Opcode::kFadd:
      return as_bits(as_double(src1) + as_double(src2));
    case Opcode::kFsub:
      return as_bits(as_double(src1) - as_double(src2));
    case Opcode::kFmul:
      return as_bits(as_double(src1) * as_double(src2));
    case Opcode::kFdiv:
      return as_bits(as_double(src1) / as_double(src2));
    case Opcode::kFcvtDL:
      return as_bits(static_cast<double>(sa));
    case Opcode::kFcvtLD: {
      const double d = as_double(src1);
      if (std::isnan(d)) return 0;
      if (d >= 9.2233720368547758e18) {
        return static_cast<Word>(std::numeric_limits<SWord>::max());
      }
      if (d <= -9.2233720368547758e18) {
        return static_cast<Word>(std::numeric_limits<SWord>::min());
      }
      return static_cast<Word>(static_cast<SWord>(d));
    }
    case Opcode::kFeq:
      return as_double(src1) == as_double(src2) ? 1 : 0;
    case Opcode::kFlt:
      return as_double(src1) < as_double(src2) ? 1 : 0;
    case Opcode::kFle:
      return as_double(src1) <= as_double(src2) ? 1 : 0;
    case Opcode::kFli:
      return static_cast<Word>(imm);
    case Opcode::kFmv:
      return src1;
    default:
      WEC_CHECK_MSG(false, "eval_alu called on non-ALU opcode");
  }
}

bool eval_branch(const Instruction& instr, Word src1, Word src2) {
  const auto sa = static_cast<SWord>(src1);
  const auto sb = static_cast<SWord>(src2);
  switch (instr.op) {
    case Opcode::kBeq:
      return src1 == src2;
    case Opcode::kBne:
      return src1 != src2;
    case Opcode::kBlt:
      return sa < sb;
    case Opcode::kBge:
      return sa >= sb;
    case Opcode::kBltu:
      return src1 < src2;
    case Opcode::kBgeu:
      return src1 >= src2;
    default:
      WEC_CHECK_MSG(false, "eval_branch called on non-branch opcode");
  }
}

Addr eval_mem_addr(const Instruction& instr, Word base) {
  return static_cast<Addr>(base + static_cast<Word>(instr.imm));
}

Word extend_loaded(Opcode op, uint64_t raw) {
  switch (op) {
    case Opcode::kLb:
      return static_cast<Word>(static_cast<SWord>(static_cast<int8_t>(raw)));
    case Opcode::kLbu:
      return raw & 0xff;
    case Opcode::kLw:
      return static_cast<Word>(static_cast<SWord>(static_cast<int32_t>(raw)));
    case Opcode::kLd:
    case Opcode::kFld:
      return raw;
    default:
      WEC_CHECK_MSG(false, "extend_loaded called on non-load opcode");
  }
}

}  // namespace wecsim
