// Shared architectural semantics: the single source of truth for what each
// instruction computes. Both the functional interpreter and the out-of-order
// timing core call these, so differential tests compare timing against the
// same definitions they execute.
#pragma once

#include "common/types.h"
#include "isa/isa.h"

namespace wecsim {

/// Result of a computational (register-writing, non-memory) instruction.
/// FP operands/results are IEEE-double bit patterns carried in Words.
/// Integer division follows RISC-V semantics: x/0 == -1, rem(x,0) == x,
/// INT64_MIN / -1 == INT64_MIN (no trap, no UB).
Word eval_alu(const Instruction& instr, Word src1, Word src2);

/// Branch taken/not-taken decision.
bool eval_branch(const Instruction& instr, Word src1, Word src2);

/// Effective address of a load/store/tsaddr.
Addr eval_mem_addr(const Instruction& instr, Word base);

/// Sign-/zero-extend a raw little-endian memory value per the load opcode.
Word extend_loaded(Opcode op, uint64_t raw);

}  // namespace wecsim
