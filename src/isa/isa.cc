#include "isa/isa.h"

#include <array>
#include <sstream>

#include "common/error.h"

namespace wecsim {

namespace {

// Latencies follow SimpleScalar sim-outorder defaults: integer ALU 1,
// integer multiply 3, integer divide 20, FP add 2, FP multiply 4,
// FP divide 12. Loads use 1 here (cache-hit latency is modeled by the
// memory hierarchy, not the FU).
constexpr OpcodeInfo kTable[kNumOpcodes] = {
    // name      kind               fu                 lat dst            src1           src2           imm
    {"add",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"sub",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"mul",     InstrKind::kAlu,    FuClass::kIntMult, 3, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"div",     InstrKind::kAlu,    FuClass::kIntMult, 20, RegFile::kInt, RegFile::kInt, RegFile::kInt, false},
    {"rem",     InstrKind::kAlu,    FuClass::kIntMult, 20, RegFile::kInt, RegFile::kInt, RegFile::kInt, false},
    {"and",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"or",      InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"xor",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"sll",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"srl",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"sra",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"slt",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"sltu",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kInt, false},
    {"addi",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"andi",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"ori",     InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"xori",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"slli",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"srli",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"srai",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"slti",    InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"li",      InstrKind::kAlu,    FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kNone, RegFile::kNone, true},
    {"lb",      InstrKind::kLoad,   FuClass::kLsu,     1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"lbu",     InstrKind::kLoad,   FuClass::kLsu,     1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"lw",      InstrKind::kLoad,   FuClass::kLsu,     1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"ld",      InstrKind::kLoad,   FuClass::kLsu,     1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"sb",      InstrKind::kStore,  FuClass::kLsu,     1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"sw",      InstrKind::kStore,  FuClass::kLsu,     1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"sd",      InstrKind::kStore,  FuClass::kLsu,     1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"fadd",    InstrKind::kAlu,    FuClass::kFpAlu,   2, RegFile::kFp,   RegFile::kFp,  RegFile::kFp,  false},
    {"fsub",    InstrKind::kAlu,    FuClass::kFpAlu,   2, RegFile::kFp,   RegFile::kFp,  RegFile::kFp,  false},
    {"fmul",    InstrKind::kAlu,    FuClass::kFpMult,  4, RegFile::kFp,   RegFile::kFp,  RegFile::kFp,  false},
    {"fdiv",    InstrKind::kAlu,    FuClass::kFpMult,  12, RegFile::kFp,  RegFile::kFp,  RegFile::kFp,  false},
    {"fcvt.d.l", InstrKind::kAlu,   FuClass::kFpAlu,   2, RegFile::kFp,   RegFile::kInt, RegFile::kNone, false},
    {"fcvt.l.d", InstrKind::kAlu,   FuClass::kFpAlu,   2, RegFile::kInt,  RegFile::kFp,  RegFile::kNone, false},
    {"feq",     InstrKind::kAlu,    FuClass::kFpAlu,   2, RegFile::kInt,  RegFile::kFp,  RegFile::kFp,  false},
    {"flt",     InstrKind::kAlu,    FuClass::kFpAlu,   2, RegFile::kInt,  RegFile::kFp,  RegFile::kFp,  false},
    {"fle",     InstrKind::kAlu,    FuClass::kFpAlu,   2, RegFile::kInt,  RegFile::kFp,  RegFile::kFp,  false},
    {"fld",     InstrKind::kLoad,   FuClass::kLsu,     1, RegFile::kFp,   RegFile::kInt, RegFile::kNone, true},
    {"fsd",     InstrKind::kStore,  FuClass::kLsu,     1, RegFile::kNone, RegFile::kInt, RegFile::kFp,  true},
    {"fli",     InstrKind::kAlu,    FuClass::kFpAlu,   1, RegFile::kFp,   RegFile::kNone, RegFile::kNone, true},
    {"fmv",     InstrKind::kAlu,    FuClass::kFpAlu,   1, RegFile::kFp,   RegFile::kFp,  RegFile::kNone, false},
    {"beq",     InstrKind::kBranch, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"bne",     InstrKind::kBranch, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"blt",     InstrKind::kBranch, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"bge",     InstrKind::kBranch, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"bltu",    InstrKind::kBranch, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"bgeu",    InstrKind::kBranch, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kInt, RegFile::kInt, true},
    {"jal",     InstrKind::kJump,   FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kNone, RegFile::kNone, true},
    {"jalr",    InstrKind::kJump,   FuClass::kIntAlu,  1, RegFile::kInt,  RegFile::kInt, RegFile::kNone, true},
    {"nop",     InstrKind::kSys,    FuClass::kNone,    1, RegFile::kNone, RegFile::kNone, RegFile::kNone, false},
    {"halt",    InstrKind::kSys,    FuClass::kNone,    1, RegFile::kNone, RegFile::kNone, RegFile::kNone, false},
    {"begin",   InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kNone, RegFile::kNone, false},
    {"fork",    InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kNone, RegFile::kNone, true},
    {"forksp",  InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kNone, RegFile::kNone, true},
    {"abort",   InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kNone, RegFile::kNone, false},
    {"tsaddr",  InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kInt, RegFile::kNone, true},
    {"tsagd",   InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kNone, RegFile::kNone, false},
    {"thend",   InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kNone, RegFile::kNone, false},
    {"endpar",  InstrKind::kThread, FuClass::kIntAlu,  1, RegFile::kNone, RegFile::kNone, RegFile::kNone, false},
};

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  const int idx = static_cast<int>(op);
  WEC_CHECK_MSG(idx >= 0 && idx < kNumOpcodes, "invalid opcode");
  return kTable[idx];
}

const char* opcode_name(Opcode op) { return opcode_info(op).name; }

uint32_t Instruction::mem_bytes() const {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kSb:
      return 1;
    case Opcode::kLw:
    case Opcode::kSw:
      return 4;
    case Opcode::kLd:
    case Opcode::kSd:
    case Opcode::kFld:
    case Opcode::kFsd:
      return 8;
    default:
      return 0;
  }
}

EncodedInstr encode(const Instruction& instr) {
  WEC_CHECK(instr.rd < 64 && instr.rs1 < 64 && instr.rs2 < 64);
  EncodedInstr e;
  e.word0 = static_cast<uint64_t>(instr.op) |
            (static_cast<uint64_t>(instr.rd) << 8) |
            (static_cast<uint64_t>(instr.rs1) << 14) |
            (static_cast<uint64_t>(instr.rs2) << 20);
  e.word1 = static_cast<uint64_t>(instr.imm);
  return e;
}

Instruction decode(const EncodedInstr& bits) {
  const uint64_t opbits = bits.word0 & 0xff;
  if (opbits >= static_cast<uint64_t>(kNumOpcodes)) {
    throw SimError("decode: invalid opcode byte " + std::to_string(opbits));
  }
  Instruction instr;
  instr.op = static_cast<Opcode>(opbits);
  instr.rd = static_cast<RegId>((bits.word0 >> 8) & 0x3f);
  instr.rs1 = static_cast<RegId>((bits.word0 >> 14) & 0x3f);
  instr.rs2 = static_cast<RegId>((bits.word0 >> 20) & 0x3f);
  instr.imm = static_cast<int64_t>(bits.word1);
  const auto& info = opcode_info(instr.op);
  auto check_reg = [](RegFile file, RegId reg) {
    if (file == RegFile::kNone) return reg == 0;
    return reg < kNumIntRegs;  // both files have 32 registers
  };
  if (!check_reg(info.dst, instr.rd) || !check_reg(info.src1, instr.rs1) ||
      !check_reg(info.src2, instr.rs2)) {
    throw SimError(std::string("decode: register out of range for ") +
                   info.name);
  }
  return instr;
}

std::string to_string(const Instruction& instr) {
  const auto& info = opcode_info(instr.op);
  std::ostringstream os;
  os << info.name;
  const char dst_prefix = info.dst == RegFile::kFp ? 'f' : 'r';
  const char s1_prefix = info.src1 == RegFile::kFp ? 'f' : 'r';
  const char s2_prefix = info.src2 == RegFile::kFp ? 'f' : 'r';

  switch (instr.op) {
    case Opcode::kLi:
    case Opcode::kFli:
      os << ' ' << dst_prefix << int(instr.rd) << ", " << instr.imm;
      break;
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kLw:
    case Opcode::kLd:
    case Opcode::kFld:
      os << ' ' << dst_prefix << int(instr.rd) << ", " << instr.imm << "(r"
         << int(instr.rs1) << ')';
      break;
    case Opcode::kSb:
    case Opcode::kSw:
    case Opcode::kSd:
    case Opcode::kFsd:
      os << ' ' << s2_prefix << int(instr.rs2) << ", " << instr.imm << "(r"
         << int(instr.rs1) << ')';
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      os << " r" << int(instr.rs1) << ", r" << int(instr.rs2) << ", 0x"
         << std::hex << instr.imm;
      break;
    case Opcode::kJal:
      os << " r" << int(instr.rd) << ", 0x" << std::hex << instr.imm;
      break;
    case Opcode::kJalr:
      os << " r" << int(instr.rd) << ", r" << int(instr.rs1) << ", "
         << instr.imm;
      break;
    case Opcode::kFork:
    case Opcode::kForksp:
      os << " 0x" << std::hex << instr.imm;
      break;
    case Opcode::kTsaddr:
      os << " r" << int(instr.rs1) << ", " << instr.imm;
      break;
    default: {
      bool first = true;
      auto emit = [&](char prefix, RegId reg) {
        os << (first ? " " : ", ") << prefix << int(reg);
        first = false;
      };
      if (info.dst != RegFile::kNone) emit(dst_prefix, instr.rd);
      if (info.src1 != RegFile::kNone) emit(s1_prefix, instr.rs1);
      if (info.src2 != RegFile::kNone) emit(s2_prefix, instr.rs2);
      if (info.has_imm) {
        os << (first ? " " : ", ") << instr.imm;
      }
      break;
    }
  }
  return os.str();
}

}  // namespace wecsim
