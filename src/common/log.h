// Minimal leveled logging. Off by default; tests and the config_explorer
// example can raise the level to trace pipeline activity, and the
// WECSIM_LOG_LEVEL environment variable ("off"/"info"/"debug"/"trace" or
// 0-3, read at first use) raises it without code changes.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace wecsim {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Process-global log level (atomic: read by simulation worker threads).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace wecsim

/// WEC_LOG(kDebug, "fetched " << n << " instrs");
#define WEC_LOG(level, expr)                                      \
  do {                                                            \
    if (static_cast<int>(::wecsim::LogLevel::level) <=            \
        static_cast<int>(::wecsim::log_level())) {                \
      std::ostringstream wec_log_os_;                             \
      wec_log_os_ << expr;                                        \
      ::wecsim::detail::log_line(::wecsim::LogLevel::level,       \
                                 wec_log_os_.str());              \
    }                                                             \
  } while (0)
