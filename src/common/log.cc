#include "common/log.h"

#include <cstdlib>
#include <cstring>

namespace wecsim {

namespace {
bool g_level_set = false;
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

/// Accepts the level names ("debug") or their numeric values ("2").
LogLevel parse_level(const char* text) {
  if (std::strcmp(text, "off") == 0) return LogLevel::kOff;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end != text && *end == '\0' && v >= 0 && v <= 3) {
    return static_cast<LogLevel>(v);
  }
  std::fprintf(stderr, "[warn] unrecognized WECSIM_LOG_LEVEL '%s' ignored\n",
               text);
  return LogLevel::kOff;
}
}  // namespace

LogLevel log_level() {
  // WECSIM_LOG_LEVEL is consulted once, at first use, so examples and tests
  // can raise verbosity without code changes; set_log_level overrides it.
  if (!g_level_set) {
    g_level_set = true;
    if (const char* env = std::getenv("WECSIM_LOG_LEVEL")) {
      g_level = parse_level(env);
    }
  }
  return g_level;
}

void set_log_level(LogLevel level) {
  g_level_set = true;
  g_level = level;
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace wecsim
