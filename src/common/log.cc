#include "common/log.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace wecsim {

namespace {
// Read from simulation worker threads (harness/parallel.h), so both the
// "initialized yet?" flag and the level itself must be atomic.
std::atomic<bool> g_level_set{false};
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

/// Accepts the level names ("debug") or their numeric values ("2").
LogLevel parse_level(const char* text) {
  if (std::strcmp(text, "off") == 0) return LogLevel::kOff;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end != text && *end == '\0' && v >= 0 && v <= 3) {
    return static_cast<LogLevel>(v);
  }
  std::fprintf(stderr, "[warn] unrecognized WECSIM_LOG_LEVEL '%s' ignored\n",
               text);
  return LogLevel::kOff;
}
}  // namespace

LogLevel log_level() {
  // WECSIM_LOG_LEVEL is consulted once, at first use, so examples and tests
  // can raise verbosity without code changes; set_log_level overrides it.
  // Racing first uses parse the same environment value, so the exchange
  // settling either way yields the same level.
  if (!g_level_set.exchange(true, std::memory_order_acq_rel)) {
    if (const char* env = std::getenv("WECSIM_LOG_LEVEL")) {
      g_level.store(parse_level(env), std::memory_order_release);
    }
  }
  return g_level.load(std::memory_order_acquire);
}

void set_log_level(LogLevel level) {
  g_level_set.store(true, std::memory_order_release);
  g_level.store(level, std::memory_order_release);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace wecsim
