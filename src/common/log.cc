#include "common/log.h"

namespace wecsim {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace wecsim
