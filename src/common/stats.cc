#include "common/stats.h"

#include <bit>
#include <iomanip>
#include <sstream>

namespace wecsim {

uint32_t HistogramData::bucket_index(uint64_t v) {
  if (v == 0) return 0;
  return 64u - static_cast<uint32_t>(std::countl_zero(v));
}

std::pair<uint64_t, uint64_t> HistogramData::bucket_range(uint32_t i) {
  if (i == 0) return {0, 0};
  const uint64_t lo = uint64_t{1} << (i - 1);
  const uint64_t hi = i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1;
  return {lo, hi};
}

void HistogramData::record(uint64_t v) {
  ++buckets[bucket_index(v)];
  ++count;
  sum += v;
  if (v < min) min = v;
  if (v > max) max = v;
}

void HistogramData::record_n(uint64_t v, uint64_t n) {
  if (n == 0) return;
  buckets[bucket_index(v)] += n;
  count += n;
  sum += v * n;
  if (v < min) min = v;
  if (v > max) max = v;
}

StatsRegistry::Counter StatsRegistry::counter(const std::string& name) {
  auto [it, inserted] = counters_.try_emplace(name, 0);
  (void)inserted;
  return Counter(&it->second);
}

StatsRegistry::Histogram StatsRegistry::histogram(const std::string& name) {
  auto [it, inserted] = histograms_.try_emplace(name);
  (void)inserted;
  return Histogram(&it->second);
}

StatsRegistry::Gauge StatsRegistry::gauge(const std::string& name) {
  auto [it, inserted] = gauges_.try_emplace(name, 0);
  (void)inserted;
  return Gauge(&it->second);
}

uint64_t StatsRegistry::value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const HistogramData* StatsRegistry::histogram_data(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

int64_t StatsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

uint64_t StatsRegistry::sum_matching(const std::string& prefix,
                                     const std::string& suffix) const {
  uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    const std::string& name = it->first;
    if (name.compare(0, prefix.size(), prefix) != 0) break;
    // The prefix and suffix must match disjoint parts of the name, so a
    // short name can never satisfy both by overlapping.
    if (name.size() >= prefix.size() + suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += it->second;
    }
  }
  return total;
}

StatsSnapshot StatsRegistry::snapshot() const { return counters_; }

std::map<std::string, HistogramData> StatsRegistry::histogram_snapshot() const {
  return histograms_;
}

std::map<std::string, int64_t> StatsRegistry::gauge_snapshot() const {
  return gauges_;
}

std::vector<std::string> StatsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) out.push_back(name);
  return out;
}

void StatsRegistry::reset() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, data] : histograms_) data = HistogramData{};
  for (auto& [name, value] : gauges_) value = 0;
}

std::string StatsRegistry::dump(const DumpHook& hook) const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, value] : gauges_) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, data] : histograms_) {
    os << name << ": count=" << data.count << " sum=" << data.sum;
    if (data.count > 0) {
      os << " min=" << data.min << " max=" << data.max
         << " mean=" << std::fixed << std::setprecision(2) << data.mean();
      os.unsetf(std::ios::fixed);
    }
    os << '\n';
  }
  if (hook) hook(*this, os);
  return os.str();
}

namespace {
void ratio_line(std::ostream& os, const char* name, uint64_t num,
                uint64_t den) {
  if (den == 0) return;
  os << name << " = " << std::fixed << std::setprecision(6)
     << (static_cast<double>(num) / static_cast<double>(den)) << '\n';
  os.unsetf(std::ios::fixed);
}
}  // namespace

void append_derived_ratios(const StatsRegistry& stats, std::ostream& os) {
  ratio_line(os, "derived.l1d.miss_rate",
             stats.sum_matching("tu", ".l1d.misses"),
             stats.sum_matching("tu", ".l1d.accesses"));
  ratio_line(os, "derived.side.hit_rate",
             stats.sum_matching("tu", ".side.hits") +
                 stats.sum_matching("tu", ".side.wrong_hits"),
             stats.sum_matching("tu", ".l1d.misses") +
                 stats.sum_matching("tu", ".l1d.wrong_misses"));
  ratio_line(os, "derived.l2.miss_rate", stats.value("l2.misses"),
             stats.value("l2.accesses"));
  ratio_line(os, "derived.bpred.mispredict_rate",
             stats.sum_matching("tu", ".core.mispredicts"),
             stats.sum_matching("tu", ".core.branches"));
}

}  // namespace wecsim
