#include "common/stats.h"

#include <sstream>

namespace wecsim {

StatsRegistry::Counter StatsRegistry::counter(const std::string& name) {
  auto [it, inserted] = counters_.try_emplace(name, 0);
  (void)inserted;
  return Counter(&it->second);
}

uint64_t StatsRegistry::value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

uint64_t StatsRegistry::sum_matching(const std::string& prefix,
                                     const std::string& suffix) const {
  uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    const std::string& name = it->first;
    if (name.compare(0, prefix.size(), prefix) != 0) break;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += it->second;
    }
  }
  return total;
}

StatsSnapshot StatsRegistry::snapshot() const { return counters_; }

std::vector<std::string> StatsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) out.push_back(name);
  return out;
}

void StatsRegistry::reset() {
  for (auto& [name, value] : counters_) value = 0;
}

std::string StatsRegistry::dump() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  return os.str();
}

}  // namespace wecsim
