// Hierarchical statistics registry. Every simulator component registers named
// counters; the harness snapshots and diffs them to build the paper's tables.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wecsim {

/// A snapshot of all counters at a point in simulated time.
using StatsSnapshot = std::map<std::string, uint64_t>;

/// Flat registry of monotonically increasing 64-bit counters, keyed by
/// dotted path ("tu0.l1d.misses"). Components hold Counter handles; lookups
/// happen once at construction, increments are a single add.
class StatsRegistry {
 public:
  /// Lightweight handle to one counter slot. Valid as long as the registry
  /// lives; the registry never removes counters.
  class Counter {
   public:
    Counter() : slot_(nullptr) {}
    void inc(uint64_t by = 1) {
      if (slot_ != nullptr) *slot_ += by;
    }
    uint64_t value() const { return slot_ != nullptr ? *slot_ : 0; }

   private:
    friend class StatsRegistry;
    explicit Counter(uint64_t* slot) : slot_(slot) {}
    uint64_t* slot_;
  };

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Get or create the counter with the given dotted name.
  Counter counter(const std::string& name);

  /// Current value of a counter (0 if it does not exist).
  uint64_t value(const std::string& name) const;

  /// Sum of all counters whose name matches "prefix*" — used to aggregate
  /// per-thread-unit stats ("tu*.l1d.misses" style via prefix+suffix).
  uint64_t sum_matching(const std::string& prefix,
                        const std::string& suffix) const;

  /// Snapshot every counter.
  StatsSnapshot snapshot() const;

  /// All counter names in sorted order.
  std::vector<std::string> names() const;

  /// Reset all counters to zero (registry structure is preserved so existing
  /// Counter handles stay valid).
  void reset();

  /// Render a human-readable dump, one "name = value" per line.
  std::string dump() const;

 private:
  // std::map guarantees stable node addresses, so Counter handles survive
  // later insertions.
  std::map<std::string, uint64_t> counters_;
};

}  // namespace wecsim
