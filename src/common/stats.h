// Hierarchical statistics registry. Every simulator component registers named
// counters; the harness snapshots and diffs them to build the paper's tables.
// Besides flat counters the registry holds log2-bucketed histograms (latency /
// occupancy distributions) and signed gauges (instantaneous levels), which the
// observability layer serializes into machine-readable run reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace wecsim {

/// A snapshot of all counters at a point in simulated time.
using StatsSnapshot = std::map<std::string, uint64_t>;

/// Backing storage of one log2-bucketed histogram. Bucket 0 holds the value
/// 0; bucket k (k >= 1) holds values in [2^(k-1), 2^k).
struct HistogramData {
  static constexpr uint32_t kNumBuckets = 65;  // 0 plus one per bit of u64

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = ~uint64_t{0};  // undefined until count > 0
  uint64_t max = 0;

  /// Bucket index for a value: 0 for 0, otherwise floor(log2(v)) + 1.
  static uint32_t bucket_index(uint64_t v);

  /// Inclusive [lo, hi] value range covered by bucket i.
  static std::pair<uint64_t, uint64_t> bucket_range(uint32_t i);

  void record(uint64_t v);
  /// Record the same value n times in one update. Bit-identical to calling
  /// record(v) n times (sum wraps mod 2^64 either way) — used by the cycle
  /// skipper to replay per-cycle samples across a bulk jump.
  void record_n(uint64_t v, uint64_t n);
  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

/// Flat registry of monotonically increasing 64-bit counters, keyed by
/// dotted path ("tu0.l1d.misses"). Components hold Counter handles; lookups
/// happen once at construction, increments are a single add.
class StatsRegistry {
 public:
  /// Lightweight handle to one counter slot. Valid as long as the registry
  /// lives; the registry never removes counters.
  class Counter {
   public:
    Counter() : slot_(nullptr) {}
    void inc(uint64_t by = 1) {
      if (slot_ != nullptr) *slot_ += by;
    }
    uint64_t value() const { return slot_ != nullptr ? *slot_ : 0; }

   private:
    friend class StatsRegistry;
    explicit Counter(uint64_t* slot) : slot_(slot) {}
    uint64_t* slot_;
  };

  /// Handle to one histogram. A default-constructed handle drops records,
  /// so optional instrumentation needs no null checks at the call site.
  class Histogram {
   public:
    Histogram() : data_(nullptr) {}
    void record(uint64_t v) {
      if (data_ != nullptr) data_->record(v);
    }
    void record_n(uint64_t v, uint64_t n) {
      if (data_ != nullptr) data_->record_n(v, n);
    }
    const HistogramData* data() const { return data_; }

   private:
    friend class StatsRegistry;
    explicit Histogram(HistogramData* data) : data_(data) {}
    HistogramData* data_;
  };

  /// Handle to one signed instantaneous level (e.g. active thread units).
  class Gauge {
   public:
    Gauge() : slot_(nullptr) {}
    void set(int64_t v) {
      if (slot_ != nullptr) *slot_ = v;
    }
    void add(int64_t by) {
      if (slot_ != nullptr) *slot_ += by;
    }
    int64_t value() const { return slot_ != nullptr ? *slot_ : 0; }

   private:
    friend class StatsRegistry;
    explicit Gauge(int64_t* slot) : slot_(slot) {}
    int64_t* slot_;
  };

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Get or create the counter with the given dotted name.
  Counter counter(const std::string& name);

  /// Get or create the histogram with the given dotted name.
  Histogram histogram(const std::string& name);

  /// Get or create the gauge with the given dotted name.
  Gauge gauge(const std::string& name);

  /// Current value of a counter (0 if it does not exist).
  uint64_t value(const std::string& name) const;

  /// Histogram payload (nullptr if it does not exist).
  const HistogramData* histogram_data(const std::string& name) const;

  /// Current value of a gauge (0 if it does not exist).
  int64_t gauge_value(const std::string& name) const;

  /// Sum of all counters whose name matches "prefix*" — used to aggregate
  /// per-thread-unit stats ("tu*.l1d.misses" style via prefix+suffix).
  uint64_t sum_matching(const std::string& prefix,
                        const std::string& suffix) const;

  /// Snapshot every counter.
  StatsSnapshot snapshot() const;

  /// Snapshot every histogram / gauge (report serialization).
  std::map<std::string, HistogramData> histogram_snapshot() const;
  std::map<std::string, int64_t> gauge_snapshot() const;

  /// All counter names in sorted order.
  std::vector<std::string> names() const;

  /// Reset all counters, histograms, and gauges to zero (registry structure
  /// is preserved so existing handles stay valid).
  void reset();

  /// Appends derived lines (hit rates etc.) to a dump. Called with the
  /// registry after the raw values have been rendered.
  using DumpHook = std::function<void(const StatsRegistry&, std::ostream&)>;

  /// Render a human-readable dump, one "name = value" per line (counters,
  /// then gauges, then histogram summaries). The optional hook can append
  /// derived ratios.
  std::string dump(const DumpHook& hook = {}) const;

 private:
  // std::map guarantees stable node addresses, so handles survive later
  // insertions.
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, HistogramData> histograms_;
  std::map<std::string, int64_t> gauges_;
};

/// Standard DumpHook computing the hit/miss ratios the paper discusses
/// (L1D miss rate, side-cache hit rate, L2 miss rate, branch misprediction
/// rate) from the conventional counter names.
void append_derived_ratios(const StatsRegistry& stats, std::ostream& os);

}  // namespace wecsim
