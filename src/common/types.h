// Fundamental scalar types shared by every wecsim module.
#pragma once

#include <cstdint>

namespace wecsim {

/// Byte address in the simulated flat physical address space.
using Addr = uint64_t;

/// Simulation time in processor clock cycles.
using Cycle = uint64_t;

/// Architectural register index (integer or floating-point file).
using RegId = uint8_t;

/// 64-bit integer register / memory word value.
using Word = uint64_t;

/// Signed view of a register value.
using SWord = int64_t;

/// Thread-unit index within the superthreaded processor.
using TuId = uint32_t;

/// Monotonically increasing dynamic instruction sequence number.
using SeqNum = uint64_t;

/// Sentinel for "no cycle scheduled".
inline constexpr Cycle kNoCycle = ~Cycle{0};

/// Sentinel for "invalid / unmapped address".
inline constexpr Addr kBadAddr = ~Addr{0};

}  // namespace wecsim
