// Deterministic pseudo-random number generation for workload data
// initialization and property-based tests. splitmix64 core: tiny, fast,
// reproducible across platforms (std::mt19937 would also be portable but is
// heavier than needed and seeds awkwardly).
#pragma once

#include <cstdint>

namespace wecsim {

/// splitmix64-based deterministic RNG. Same seed → same sequence, everywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

  /// Bernoulli with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace wecsim
