// Small bit-manipulation helpers used by caches and predictors.
#pragma once

#include <bit>
#include <cstdint>

#include "common/error.h"
#include "common/types.h"

namespace wecsim {

/// True iff v is a power of two (0 is not).
constexpr bool is_pow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v > 0.
constexpr uint32_t floor_log2(uint64_t v) {
  return 63u - static_cast<uint32_t>(std::countl_zero(v | 1));
}

/// log2 of a power of two; checks the precondition.
inline uint32_t exact_log2(uint64_t v) {
  WEC_CHECK_MSG(is_pow2(v), "exact_log2 requires a power of two");
  return floor_log2(v);
}

/// Mask with the low n bits set (n <= 64).
constexpr uint64_t low_mask(uint32_t n) {
  return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/// Align a down to a power-of-two boundary.
constexpr Addr align_down(Addr a, uint64_t align) { return a & ~(align - 1); }

/// Align a up to a power-of-two boundary.
constexpr Addr align_up(Addr a, uint64_t align) {
  return (a + align - 1) & ~(align - 1);
}

/// Fold the bits of an address into n low bits (simple XOR hash used by
/// predictor index functions).
inline uint64_t fold_xor(uint64_t v, uint32_t n) {
  uint64_t r = 0;
  const uint64_t m = low_mask(n);
  while (v != 0) {
    r ^= v & m;
    v >>= n;
  }
  return r;
}

}  // namespace wecsim
