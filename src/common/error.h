// Error handling: simulator-fatal conditions throw SimError; internal
// invariants use WEC_CHECK which is active in all build types (simulation
// correctness bugs must never be silently optimized away).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wecsim {

/// Exception thrown on user-visible simulator errors (bad assembly, bad
/// configuration, workload setup failures).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// A bounded run (wall-clock or per-point limit) exceeded its budget. The
/// fail-soft harness treats this as persistent — the simulator is
/// deterministic, so retrying the same point would time out again.
class SimTimeout : public SimError {
 public:
  explicit SimTimeout(const std::string& what) : SimError(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "WEC_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace wecsim

/// Always-on invariant check. Throws std::logic_error on failure so tests can
/// assert on broken invariants instead of aborting the process.
#define WEC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::wecsim::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define WEC_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr))                                                        \
      ::wecsim::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
