// Dependency-free JSON support for the observability layer: a streaming
// writer that produces compact, deterministic output (trace events, run
// reports), and a small recursive-descent parser used by schema validation
// tests. Not a general-purpose JSON library — just what wecsim needs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wecsim {

/// Escapes a string per RFC 8259 (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Streaming JSON writer. Emits compact one-line JSON with no trailing
/// whitespace; the caller is responsible for well-formed nesting (begin/end
/// pairs are checked, key/value alternation inside objects is not).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value (or container).
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    return key(k).value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_in_scope_;  // per open container
  bool after_key_ = false;
};

/// Parsed JSON value (schema-validation tests). Numbers keep their source
/// text so exact 64-bit counters survive the round trip.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const { return bool_; }
  const std::string& as_string() const { return string_; }
  uint64_t as_u64() const;
  int64_t as_i64() const;
  double as_double() const;

  const std::vector<JsonValue>& items() const { return array_; }
  const std::map<std::string, JsonValue>& fields() const { return object_; }

  bool has(const std::string& k) const { return object_.contains(k); }
  /// Member access; throws SimError if absent or not an object.
  const JsonValue& at(const std::string& k) const;
  const JsonValue& at(size_t i) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string string_;  // string value, or number source text
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document; throws SimError on malformed input or
/// trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace wecsim
