// Self-profiling: scoped wall-clock phase timers for the simulator hot loop
// and the sweep harness. Disabled by default; when off each instrumentation
// site costs one relaxed atomic load and a branch, so the hot loop pays no
// measurable tax (acceptance budget: <= 2% slowdown with profiling off).
//
// Enable with WECSIM_PROFILE=1 (strictly validated by the harness, leniently
// by standalone Simulator users) or programmatically via
// set_profile_enabled(true). Accumulators are process-global relaxed atomics,
// so parallel sweeps aggregate all workers into one profile. Phase times are
// *inclusive*: mem.access and check.lockstep nest inside the core.* stages,
// so the per-phase seconds do not sum to wall-clock.
//
// The aggregated profile lands in the timing side-channel only
// (wecsim.bench_timing "profile" section) — never in the canonical run
// report, which stays byte-identical with profiling on or off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace wecsim {

// Instrumented phases, simulator first, harness last. Keep in sync with
// profile_phase_name() and docs/OBSERVABILITY.md.
enum class ProfPhase : uint8_t {
  kCoreFetch = 0,       // OooCore::do_fetch (icache + decode + fetch queue)
  kCoreRename,          // OooCore::do_dispatch (rename + ROB/LSQ allocate)
  kCoreIssue,           // OooCore::do_issue (wakeup/select, minus execute)
  kCoreExec,            // OooCore::execute_entry (functional execute + mem)
  kCoreCommit,          // OooCore::do_commit (retire + checker hook)
  kCoreRecover,         // OooCore::do_recoveries (squash + recovery walk)
  kStaRing,             // STA ring delivery + pending fork starts
  kStaSkipScan,         // activity digest + cycle-skip eligibility scan
  kMemAccess,           // data-side cache hierarchy access
  kMemIfetch,           // instruction-side cache hierarchy access
  kCheckLockstep,       // lockstep reference replay + divergence compare
  kHarnessSimulate,     // one full simulate_point (build + run + extract)
  kHarnessCacheLookup,  // result-cache probe (hash + read + verify)
  kHarnessJournal,      // journal append + fsync
  kHarnessReportWrite,  // report render + atomic write
  kNumPhases,
};

inline constexpr size_t kNumProfPhases =
    static_cast<size_t>(ProfPhase::kNumPhases);

/// Stable dotted name for a phase ("core.fetch", "harness.journal_append"...).
const char* profile_phase_name(ProfPhase phase);

namespace detail {
struct alignas(64) ProfSlot {
  std::atomic<uint64_t> ns{0};
  std::atomic<uint64_t> calls{0};
};
extern ProfSlot g_prof_slots[kNumProfPhases];
extern std::atomic<bool> g_prof_enabled;
}  // namespace detail

/// True when phase timing is collecting. Relaxed load; safe from any thread.
inline bool profile_enabled() {
  return detail::g_prof_enabled.load(std::memory_order_relaxed);
}

/// Turn collection on or off. Authoritative: also marks the environment as
/// consulted so a later init_profile_from_env() will not override it.
void set_profile_enabled(bool enabled);

/// One-time lenient WECSIM_PROFILE read (1/true/yes/on, case-insensitive)
/// for standalone Simulator users. Idempotent; a no-op after
/// set_profile_enabled() has run. The harness instead parses the variable
/// strictly (see harness/env.h) and calls set_profile_enabled().
void init_profile_from_env();

/// Zero all accumulators. Call between measurement windows; scopes still
/// open while resetting fold their full duration into the new window.
void reset_profile();

struct ProfPhaseTotal {
  ProfPhase phase;
  uint64_t ns = 0;
  uint64_t calls = 0;
};

/// Snapshot of every phase accumulator, in enum order (zeros included).
std::vector<ProfPhaseTotal> profile_snapshot();

/// RAII phase timer. Reads the clock only when profiling is enabled at
/// construction; destruction adds the elapsed nanoseconds to the slot.
class ProfileScope {
 public:
  explicit ProfileScope(ProfPhase phase) : phase_(phase) {
    if (profile_enabled()) {
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }
  ~ProfileScope() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      auto& slot = detail::g_prof_slots[static_cast<size_t>(phase_)];
      slot.ns.fetch_add(static_cast<uint64_t>(ns), std::memory_order_relaxed);
      slot.calls.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfPhase phase_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wecsim

/// Scoped phase timer; the sibling of WEC_TRACE. Usage:
///   WEC_PROFILE_SCOPE(ProfPhase::kCoreFetch);
#define WEC_PROFILE_SCOPE(phase) \
  ::wecsim::ProfileScope wec_profile_scope_##__LINE__ { (phase) }
