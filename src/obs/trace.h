// Pipeline event tracing. Components emit typed events to a TraceSink owned
// by the Simulator; with the sink disabled (the default) each emission is a
// single predictable branch, and with WECSIM_DISABLE_TRACING defined the
// WEC_TRACE macro compiles away entirely. Collected traces serialize as
// JSONL (one event per line, stable field order) and as the Chrome
// trace_event format so a run can be opened in about://tracing / Perfetto.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace wecsim {

enum class TraceEventType : uint8_t {
  kFetch,             // I-cache fetch-block access (pc)
  kSquash,            // misprediction recovery; arg = squashed ROB entries
  kWecFill,           // wrong-execution fill into the side cache
  kWecHit,            // side-cache hit (arg = 1 for a wrong-execution hit)
  kVictimEvict,       // L1 victim displaced into the side cache
  kNextLinePrefetch,  // next-line prefetch issued into the side structure
};

const char* trace_event_name(TraceEventType type);

/// One pipeline event. `origin` is a SideOrigin index for side-cache events
/// (kNoOrigin otherwise); `arg` is event-specific (see TraceEventType).
struct TraceEvent {
  static constexpr uint8_t kNoOrigin = 0xff;

  Cycle cycle = 0;
  TuId tu = 0;
  TraceEventType type = TraceEventType::kFetch;
  Addr addr = 0;
  uint64_t arg = 0;
  uint8_t origin = kNoOrigin;
};

/// In-memory event buffer. Disabled by default: emit() is a no-op until
/// enable() is called, so always-constructed sinks cost one branch per
/// instrumentation site.
class TraceSink {
 public:
  bool enabled() const { return enabled_; }
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  void emit(const TraceEvent& event) {
    if (enabled_) events_.push_back(event);
  }
  void emit(Cycle cycle, TuId tu, TraceEventType type, Addr addr,
            uint64_t arg = 0, uint8_t origin = TraceEvent::kNoOrigin) {
    if (enabled_) events_.push_back({cycle, tu, type, addr, arg, origin});
  }

  size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// One JSON object per line, deterministic field order:
  /// {"cycle":12,"tu":0,"type":"wec_fill","addr":"0x1a40","origin":"wrong_path"}
  std::string to_jsonl() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), instant events with
  /// ts = cycle, pid = 0, tid = thread unit.
  std::string to_chrome_trace() const;

  /// Write either serialization to a file. Returns false on I/O failure.
  bool write_jsonl(const std::string& path) const;
  bool write_chrome_trace(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace wecsim

/// Emission helper: evaluates to nothing when tracing is compiled out, and
/// to a guarded emit() otherwise. `sink` is a TraceSink pointer (may be
/// null).
#ifndef WECSIM_DISABLE_TRACING
#define WEC_TRACE(sink, ...)                             \
  do {                                                   \
    ::wecsim::TraceSink* wec_trace_sink_ = (sink);       \
    if (wec_trace_sink_ != nullptr &&                    \
        wec_trace_sink_->enabled()) {                    \
      wec_trace_sink_->emit(__VA_ARGS__);                \
    }                                                    \
  } while (0)
#else
#define WEC_TRACE(sink, ...) \
  do {                       \
  } while (0)
#endif
