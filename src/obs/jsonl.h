// Incremental reader for a JSONL stream that may still be growing (a
// follower tailing a live progress file) or may end mid-line (a crash tore
// the final append, or the writer is mid-write() right now). Yields only
// '\n'-terminated lines; an unterminated tail is reported as kTorn, kept
// buffered, and completed transparently once the writer finishes it — a
// torn line is never surfaced as garbage the way a naive getline-at-EOF
// loop surfaces it (once as a truncated line, then again as the remainder).
#pragma once

#include <fstream>
#include <string>

namespace wecsim {

class JsonlTailReader {
 public:
  enum class Status {
    kLine,  // `line` holds the next complete line (without its '\n')
    kTorn,  // an unterminated partial line is pending at EOF; retry later
    kEof,   // end of stream, no partial line pending
  };

  explicit JsonlTailReader(const std::string& path);

  /// False when the file could not be opened.
  bool ok() const { return in_.is_open(); }

  /// Pulls the next complete line. Never blocks: at end-of-file it reports
  /// kTorn / kEof and the follower decides whether to poll again.
  Status next(std::string& line);

  /// Bytes of the pending unterminated tail (meaningful after kTorn).
  size_t torn_bytes() const { return buf_.size(); }

 private:
  std::ifstream in_;
  std::string buf_;
};

}  // namespace wecsim
