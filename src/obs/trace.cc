#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace wecsim {

const char* trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFetch:
      return "fetch";
    case TraceEventType::kSquash:
      return "squash";
    case TraceEventType::kWecFill:
      return "wec_fill";
    case TraceEventType::kWecHit:
      return "wec_hit";
    case TraceEventType::kVictimEvict:
      return "victim_evict";
    case TraceEventType::kNextLinePrefetch:
      return "next_line_prefetch";
  }
  return "?";
}

namespace {

// Side-cache origin names, indexed like SideOrigin (mem/side_cache.h). Kept
// as strings here so obs does not depend on mem.
const char* origin_name(uint8_t origin) {
  static const char* kNames[] = {"victim", "wrong_path", "wrong_thread",
                                 "next_line"};
  if (origin < 4) return kNames[origin];
  return "none";
}

std::string hex_addr(Addr addr) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(addr));
  return buf;
}

}  // namespace

std::string TraceSink::to_jsonl() const {
  std::string out;
  out.reserve(events_.size() * 80);
  for (const TraceEvent& e : events_) {
    JsonWriter w;
    w.begin_object()
        .kv("cycle", e.cycle)
        .kv("tu", static_cast<uint64_t>(e.tu))
        .kv("type", trace_event_name(e.type))
        .kv("addr", hex_addr(e.addr));
    if (e.arg != 0) w.kv("arg", e.arg);
    if (e.origin != TraceEvent::kNoOrigin) {
      w.kv("origin", origin_name(e.origin));
    }
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string TraceSink::to_chrome_trace() const {
  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  for (const TraceEvent& e : events_) {
    w.begin_object()
        .kv("name", trace_event_name(e.type))
        .kv("cat", "wecsim")
        .kv("ph", "i")
        .kv("s", "t")
        .kv("ts", e.cycle)
        .kv("pid", 0)
        .kv("tid", static_cast<uint64_t>(e.tu))
        .key("args")
        .begin_object()
        .kv("addr", hex_addr(e.addr));
    if (e.arg != 0) w.kv("arg", e.arg);
    if (e.origin != TraceEvent::kNoOrigin) {
      w.kv("origin", origin_name(e.origin));
    }
    w.end_object().end_object();
  }
  w.end_array().kv("displayTimeUnit", "ns").end_object();
  return w.take();
}

namespace {
bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}
}  // namespace

bool TraceSink::write_jsonl(const std::string& path) const {
  return write_file(path, to_jsonl());
}

bool TraceSink::write_chrome_trace(const std::string& path) const {
  return write_file(path, to_chrome_trace());
}

}  // namespace wecsim
