#include "obs/profile.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace wecsim {

namespace detail {
ProfSlot g_prof_slots[kNumProfPhases];
std::atomic<bool> g_prof_enabled{false};
}  // namespace detail

namespace {
std::atomic<bool> g_env_consulted{false};
}  // namespace

const char* profile_phase_name(ProfPhase phase) {
  switch (phase) {
    case ProfPhase::kCoreFetch:
      return "core.fetch";
    case ProfPhase::kCoreRename:
      return "core.rename";
    case ProfPhase::kCoreIssue:
      return "core.issue";
    case ProfPhase::kCoreExec:
      return "core.exec";
    case ProfPhase::kCoreCommit:
      return "core.commit";
    case ProfPhase::kCoreRecover:
      return "core.recover";
    case ProfPhase::kStaRing:
      return "sta.ring";
    case ProfPhase::kStaSkipScan:
      return "sta.skip_scan";
    case ProfPhase::kMemAccess:
      return "mem.access";
    case ProfPhase::kMemIfetch:
      return "mem.ifetch";
    case ProfPhase::kCheckLockstep:
      return "check.lockstep";
    case ProfPhase::kHarnessSimulate:
      return "harness.simulate";
    case ProfPhase::kHarnessCacheLookup:
      return "harness.cache_lookup";
    case ProfPhase::kHarnessJournal:
      return "harness.journal_append";
    case ProfPhase::kHarnessReportWrite:
      return "harness.report_write";
    case ProfPhase::kNumPhases:
      break;
  }
  return "unknown";
}

void set_profile_enabled(bool enabled) {
  g_env_consulted.store(true, std::memory_order_relaxed);
  detail::g_prof_enabled.store(enabled, std::memory_order_relaxed);
}

void init_profile_from_env() {
  if (g_env_consulted.exchange(true, std::memory_order_relaxed)) return;
  const char* raw = std::getenv("WECSIM_PROFILE");
  if (raw == nullptr) return;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::tolower(c));
  const bool on =
      value == "1" || value == "true" || value == "yes" || value == "on";
  detail::g_prof_enabled.store(on, std::memory_order_relaxed);
}

void reset_profile() {
  for (auto& slot : detail::g_prof_slots) {
    slot.ns.store(0, std::memory_order_relaxed);
    slot.calls.store(0, std::memory_order_relaxed);
  }
}

std::vector<ProfPhaseTotal> profile_snapshot() {
  std::vector<ProfPhaseTotal> out;
  out.reserve(kNumProfPhases);
  for (size_t i = 0; i < kNumProfPhases; ++i) {
    const auto& slot = detail::g_prof_slots[i];
    out.push_back({static_cast<ProfPhase>(i),
                   slot.ns.load(std::memory_order_relaxed),
                   slot.calls.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace wecsim
