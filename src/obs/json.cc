#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace wecsim {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  WEC_CHECK_MSG(!first_in_scope_.empty(), "end_object without begin");
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  WEC_CHECK_MSG(!first_in_scope_.empty(), "end_array without begin");
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue / parser
// ---------------------------------------------------------------------------

uint64_t JsonValue::as_u64() const {
  WEC_CHECK_MSG(is_number(), "JSON value is not a number");
  return std::strtoull(string_.c_str(), nullptr, 10);
}

int64_t JsonValue::as_i64() const {
  WEC_CHECK_MSG(is_number(), "JSON value is not a number");
  return std::strtoll(string_.c_str(), nullptr, 10);
}

double JsonValue::as_double() const {
  WEC_CHECK_MSG(is_number(), "JSON value is not a number");
  return std::strtod(string_.c_str(), nullptr);
}

const JsonValue& JsonValue::at(const std::string& k) const {
  if (!is_object()) throw SimError("JSON value is not an object");
  auto it = object_.find(k);
  if (it == object_.end()) throw SimError("missing JSON key: " + k);
  return it->second;
}

const JsonValue& JsonValue::at(size_t i) const {
  if (!is_array()) throw SimError("JSON value is not an array");
  if (i >= array_.size()) throw SimError("JSON array index out of range");
  return array_[i];
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw SimError("JSON parse error at offset " + std::to_string(pos_) +
                   ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const unsigned long cp = std::strtoul(hex.c_str(), nullptr, 16);
            // ASCII only — sufficient for wecsim's own output.
            out += static_cast<char>(cp & 0x7f);
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    skip_ws();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.string_ = text_.substr(start, pos_ - start);
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      expect(':');
      v.object_.emplace(std::move(k), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace wecsim
