#include "obs/jsonl.h"

namespace wecsim {

JsonlTailReader::JsonlTailReader(const std::string& path)
    : in_(path, std::ios::binary) {}

JsonlTailReader::Status JsonlTailReader::next(std::string& line) {
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Status::kLine;
    }
    // Need more bytes. A previous read latched eofbit, but the writer may
    // have appended since; clear and read on from the current offset.
    in_.clear();
    char chunk[4096];
    in_.read(chunk, sizeof chunk);
    const std::streamsize n = in_.gcount();
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    return buf_.empty() ? Status::kEof : Status::kTorn;
  }
}

}  // namespace wecsim
