// Artifact integrity: every persisted JSON artifact (result-cache entries,
// run reports, timing reports, sweep-journal lines) carries a self-checksum
// so a torn write or bit flip is detected on load instead of being trusted.
//
// The checksum lives INSIDE the document as its last field,
//   ,"integrity":"fnv1a64:<16 hex digits>"}
// so artifacts stay single parseable JSON values. Sealing works by rendering
// the document with a fixed-width all-zero placeholder digest, hashing the
// whole rendered string, and splicing the real digest over the zeros; the
// verifier reverses the splice and re-hashes. Both sides operate on the
// exact bytes on disk, so any corruption anywhere in the document — before
// or after the field — flips the digest.
#pragma once

#include <cstdint>
#include <string>

namespace wecsim {

/// FNV-1a 64-bit hash of a byte string.
uint64_t fnv1a64(const std::string& s);

/// The value a writer emits for the "integrity" key before sealing:
/// "fnv1a64:0000000000000000".
std::string integrity_placeholder();

/// Replaces the last integrity placeholder in `doc` with the FNV-1a digest
/// of the placeholder-form document. Returns `doc` unchanged when no
/// placeholder is present (artifact opted out of sealing).
std::string seal_integrity(std::string doc);

enum class IntegrityStatus {
  kSealed,    // integrity field present and the digest matches
  kUnsealed,  // no integrity field (legacy artifact)
  kMismatch,  // integrity field present but the digest does not match
};

/// Verifies a document produced by seal_integrity(). Operates on the exact
/// byte string, including any trailing newline the writer appended.
IntegrityStatus check_integrity(const std::string& doc);

}  // namespace wecsim
