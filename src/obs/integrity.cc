#include "obs/integrity.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace wecsim {

namespace {

// The marker is searched as a literal byte sequence. JSON string escaping
// guarantees it cannot occur inside a string *value* (the quotes would be
// rendered as \"), so the last occurrence is always the real field.
constexpr char kMarker[] = "\"integrity\":\"fnv1a64:";
constexpr size_t kMarkerLen = sizeof(kMarker) - 1;
constexpr size_t kDigestLen = 16;

}  // namespace

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string integrity_placeholder() {
  return std::string("fnv1a64:") + std::string(kDigestLen, '0');
}

std::string seal_integrity(std::string doc) {
  const size_t pos = doc.rfind(kMarker);
  if (pos == std::string::npos) return doc;
  const size_t digest_at = pos + kMarkerLen;
  if (digest_at + kDigestLen > doc.size()) return doc;
  if (doc.compare(digest_at, kDigestLen, std::string(kDigestLen, '0')) != 0) {
    return doc;  // already sealed (or not a placeholder): leave untouched
  }
  char hex[kDigestLen + 1];
  std::snprintf(hex, sizeof hex, "%016" PRIx64, fnv1a64(doc));
  doc.replace(digest_at, kDigestLen, hex, kDigestLen);
  return doc;
}

IntegrityStatus check_integrity(const std::string& doc) {
  const size_t pos = doc.rfind(kMarker);
  if (pos == std::string::npos) return IntegrityStatus::kUnsealed;
  const size_t digest_at = pos + kMarkerLen;
  if (digest_at + kDigestLen > doc.size()) return IntegrityStatus::kMismatch;
  const std::string claimed = doc.substr(digest_at, kDigestLen);
  std::string zeroed = doc;
  zeroed.replace(digest_at, kDigestLen, std::string(kDigestLen, '0'));
  char hex[kDigestLen + 1];
  std::snprintf(hex, sizeof hex, "%016" PRIx64, fnv1a64(zeroed));
  return claimed == hex ? IntegrityStatus::kSealed : IntegrityStatus::kMismatch;
}

}  // namespace wecsim
