// Branch prediction: direction predictor (bimodal or gshare), a set-
// associative branch target buffer (paper: 1024-entry, 4-way), and a return
// address stack. The fetch stage predicts; resolution updates and, on a
// misprediction, restores the speculative global history / RAS from the
// checkpoint taken at prediction time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace wecsim {

enum class BpredKind : uint8_t { kBimodal, kGshare, kTaken, kNotTaken };

struct BpredConfig {
  BpredKind kind = BpredKind::kBimodal;
  uint32_t table_bits = 11;  // 2048 two-bit counters
  uint32_t hist_bits = 8;    // gshare global history length
  uint32_t btb_entries = 1024;
  uint32_t btb_assoc = 4;
  uint32_t ras_entries = 8;
};

/// Speculative state snapshot taken with every prediction; restored on a
/// misprediction so wrong-path predictions don't corrupt the history.
struct BpredCheckpoint {
  uint64_t history = 0;
  uint32_t ras_top = 0;
};

class BranchPredictor {
 public:
  BranchPredictor(const BpredConfig& config, StatsRegistry& stats,
                  const std::string& stat_prefix);

  /// Predict a conditional branch at pc. Updates speculative history.
  bool predict_taken(Addr pc);

  /// BTB lookup (used for indirect jumps). Returns 0 when absent.
  Addr btb_lookup(Addr pc);

  /// RAS push (on call) / pop (on return). Speculative.
  void ras_push(Addr return_addr);
  Addr ras_pop();

  /// Snapshot / restore of speculative state around control instructions.
  BpredCheckpoint checkpoint() const;
  void restore(const BpredCheckpoint& checkpoint);

  /// Resolution updates (non-speculative, called when the branch executes).
  /// The checkpoint taken at prediction time supplies the history the
  /// prediction was indexed with, so training reinforces the counter that
  /// actually predicted. The checkpoint-free overload uses the current
  /// history (fine for bimodal and for tests).
  void update_branch(Addr pc, bool taken, const BpredCheckpoint& at_pred);
  void update_branch(Addr pc, bool taken);
  void update_btb(Addr pc, Addr target);

  /// Commit the real outcome into the global history after a misprediction
  /// restore (restore() rewinds to pre-prediction state; the real direction
  /// must then be appended).
  void record_outcome(bool taken);

  void reset();

 private:
  uint32_t dir_index(Addr pc, uint64_t history) const;

  BpredConfig config_;
  std::vector<uint8_t> counters_;  // 2-bit saturating
  uint64_t history_ = 0;

  struct BtbEntry {
    bool valid = false;
    Addr pc = 0;
    Addr target = 0;
    uint64_t lru = 0;
  };
  std::vector<BtbEntry> btb_;
  uint64_t btb_clock_ = 0;

  std::vector<Addr> ras_;
  uint32_t ras_top_ = 0;  // index of next push slot (circular)

  StatsRegistry::Counter lookups_;
  StatsRegistry::Counter btb_hits_;
};

}  // namespace wecsim
