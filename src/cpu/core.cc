#include "cpu/core.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/bits.h"
#include "common/error.h"
#include "fault/fault.h"
#include "isa/semantics.h"
#include "obs/profile.h"

namespace wecsim {

namespace {

/// Byte ranges [a, a+an) and [b, b+bn) intersect.
bool overlaps(Addr a, uint32_t an, Addr b, uint32_t bn) {
  return a < b + bn && b < a + an;
}

/// Store [saddr, sn) fully covers load [laddr, ln).
bool contains(Addr saddr, uint32_t sn, Addr laddr, uint32_t ln) {
  return saddr <= laddr && laddr + ln <= saddr + sn;
}

/// Opt-in commit/recovery tracing for debugging (WEC_TRACE2=1).
bool trace_enabled() {
  static const bool enabled = std::getenv("WEC_TRACE2") != nullptr;
  return enabled;
}

}  // namespace

OooCore::OooCore(const CoreConfig& config, const Program& program,
                 CoreEnv& env, StatsRegistry& stats,
                 const std::string& stat_prefix, TuId tu, TraceSink* trace,
                 FaultSession* faults)
    : config_(config),
      program_(program),
      env_(env),
      bpred_(config.bpred, stats, stat_prefix),
      tu_(tu),
      trace_(trace),
      faults_(faults),
      stat_committed_(stats.counter(stat_prefix + "core.committed")),
      stat_mispredicts_(stats.counter(stat_prefix + "core.mispredicts")),
      stat_branches_(stats.counter(stat_prefix + "core.branches")),
      stat_wrong_path_loads_(
          stats.counter(stat_prefix + "core.wrong_path_loads")),
      hist_rob_occupancy_(stats.histogram(stat_prefix + "core.rob_occupancy")),
      hist_squash_depth_(stats.histogram(stat_prefix + "core.squash_depth")) {
  rat_int_.fill(-1);
  rat_fp_.fill(-1);
  rob_.init(config.rob_size);
}

void OooCore::start(Addr pc, const std::array<Word, kNumIntRegs>& int_regs,
                    const std::array<Word, kNumFpRegs>& fp_regs) {
  int_regs_ = int_regs;
  fp_regs_ = fp_regs;
  int_regs_[0] = 0;
  rat_int_.fill(-1);
  rat_fp_.fill(-1);
  flush_stats();
  rob_.clear();
  lsq_used_ = 0;
  stores_in_rob_ = 0;
  fetch_queue_.clear();
  recoveries_.clear();
  wrong_path_queue_.clear();
  fetch_pc_ = pc;
  fetch_blocked_ = false;
  fetch_ready_cycle_ = 0;
  fetch_block_ = kBadAddr;
  if (!active_ && active_sink_ != nullptr) ++*active_sink_;
  active_ = true;
  halted_ = false;
}

void OooCore::start(Addr pc) {
  start(pc, std::array<Word, kNumIntRegs>{}, std::array<Word, kNumFpRegs>{});
}

void OooCore::stop() {
  flush_stats();
  rob_.clear();
  lsq_used_ = 0;
  stores_in_rob_ = 0;
  fetch_queue_.clear();
  recoveries_.clear();
  wrong_path_queue_.clear();
  rat_int_.fill(-1);
  rat_fp_.fill(-1);
  if (active_ && active_sink_ != nullptr) --*active_sink_;
  active_ = false;
}

void OooCore::tick(Cycle now) {
  if (!active_) return;
  record_occupancy(1);
  fu_used_.fill(0);
  {
    WEC_PROFILE_SCOPE(ProfPhase::kCoreRecover);
    do_recoveries(now);
  }
  {
    WEC_PROFILE_SCOPE(ProfPhase::kCoreCommit);
    do_commit(now);
  }
  if (!active_) return;  // thread ended this cycle
  {
    WEC_PROFILE_SCOPE(ProfPhase::kCoreIssue);
    do_issue(now);
  }
  {
    WEC_PROFILE_SCOPE(ProfPhase::kCoreRename);
    do_dispatch(now);
  }
  {
    WEC_PROFILE_SCOPE(ProfPhase::kCoreFetch);
    do_fetch(now);
  }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

OooCore::RobEntry* OooCore::entry_for(SeqNum seq) {
  if (rob_.empty()) return nullptr;
  const SeqNum head = rob_.front().seq;
  if (seq < head || seq >= head + rob_.size()) return nullptr;
  return &rob_[seq - head];
}

bool OooCore::operand_ready(Operand& op, Cycle now) {
  if (op.ready) return true;  // kNone/latched operands short-circuit here
  const RobEntry* producer = entry_for(op.producer);
  if (producer != nullptr && !producer->completed(now)) return false;
  // Committed (gone from the ROB) or complete: readiness is monotonic — a
  // consumer only ever references strictly older producers, which a squash
  // of the consumer's suffix cannot remove — so latch the answer.
  op.ready = true;
  return true;
}

Word OooCore::operand_value(const Operand& op) {
  if (op.file == RegFile::kNone) return 0;
  if (!op.from_rob) return op.value;
  const RobEntry* producer = entry_for(op.producer);
  if (producer != nullptr) return producer->result;
  // Producer already committed; the committed file holds its value (no
  // younger writer of this register can have committed before us).
  return op.file == RegFile::kInt ? int_regs_[op.reg] : fp_regs_[op.reg];
}

void OooCore::note_commit() {
  ++core_stats_.committed;
  stat_committed_.inc();
  if (commit_sink_ != nullptr) ++*commit_sink_;
  if (arch_commit_sink_ != nullptr) ++*arch_commit_sink_;
}

uint32_t OooCore::fu_limit(FuClass fu) const {
  switch (fu) {
    case FuClass::kIntAlu:
      return config_.int_alu;
    case FuClass::kIntMult:
      return config_.int_mult;
    case FuClass::kFpAlu:
      return config_.fp_alu;
    case FuClass::kFpMult:
      return config_.fp_mult;
    case FuClass::kLsu:
      return config_.mem_ports;
    case FuClass::kNone:
      return ~0u;
  }
  return ~0u;
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

void OooCore::do_commit(Cycle now) {
  uint32_t committed = 0;
  while (!rob_.empty() && committed < config_.issue_width) {
    RobEntry& head = rob_.front();
    if (!head.completed(now)) break;
    const OpcodeInfo& info = opcode_info(head.instr.op);

    // Injected commit-stage corruption: flip result bits just before the
    // value becomes architectural. This is the deliberate timing-core bug
    // the lockstep checker exists to catch (mutation testing).
    if (faults_ != nullptr && faults_->armed(FaultKind::kCommitCorrupt) &&
        head.instr.writes_reg() && head.instr.rd != 0 &&
        faults_->fire(FaultKind::kCommitCorrupt)) {
      head.result ^= faults_->arg(FaultKind::kCommitCorrupt, 1);
    }

    // Snapshot for the commit-stream observer before any early return can
    // clear the ROB.
    auto committed_info = [&](const RobEntry& e) {
      CommittedInstr ci;
      ci.cycle = now;
      ci.tu = tu_;
      ci.pc = e.pc;
      ci.instr = e.instr;
      ci.result = e.result;
      ci.is_store = e.instr.is_store();
      if (e.instr.is_mem()) {
        ci.mem_addr = e.mem_addr;
        ci.mem_bytes = e.instr.mem_bytes();
        ci.store_value = e.store_value;
      }
      return ci;
    };

    if (info.kind == InstrKind::kThread) {
      const auto action = env_.thread_op(head.instr, head.mem_addr, now);
      if (action == CoreEnv::ThreadOpAction::kRetry) break;
      if (action == CoreEnv::ThreadOpAction::kEndThread) {
        note_commit();
        if (commit_hook_) commit_hook_(committed_info(head));
        stop();
        return;
      }
      // kDone falls through to normal retirement.
    } else if (head.instr.op == Opcode::kHalt) {
      note_commit();
      halted_ = true;
      if (commit_hook_) commit_hook_(committed_info(head));
      stop();
      return;
    } else if (info.kind == InstrKind::kStore) {
      env_.commit_store(head.mem_addr, head.store_value,
                        head.instr.mem_bytes(), now);
      ++core_stats_.committed_stores;
    } else if (info.kind == InstrKind::kLoad) {
      ++core_stats_.committed_loads;
    }

    if (head.instr.writes_reg()) {
      if (info.dst == RegFile::kInt) {
        if (head.instr.rd != 0) int_regs_[head.instr.rd] = head.result;
        if (rat_int_[head.instr.rd] == static_cast<int64_t>(head.seq)) {
          rat_int_[head.instr.rd] = -1;
        }
      } else {
        fp_regs_[head.instr.rd] = head.result;
        if (rat_fp_[head.instr.rd] == static_cast<int64_t>(head.seq)) {
          rat_fp_[head.instr.rd] = -1;
        }
      }
    }
    if (trace_enabled()) {
      fprintf(stderr, "C%llu seq=%llu pc=0x%llx %s\n", (unsigned long long)now,
              (unsigned long long)head.seq,
              (unsigned long long)head.pc, opcode_name(head.instr.op));
    }
    note_commit();
    if (commit_hook_) commit_hook_(committed_info(head));
    ++committed;
    if (head.instr.is_mem()) --lsq_used_;
    if (head.instr.is_store()) --stores_in_rob_;
    rob_.pop_front();
  }
}

std::string OooCore::describe_state() const {
  if (halted_) return "halted";
  if (!active_) return "idle";
  std::ostringstream os;
  os << "fetch_pc=0x" << std::hex << fetch_pc_ << std::dec;
  if (fetch_blocked_) os << " (blocked)";
  os << " rob=" << rob_.size() << "/" << config_.rob_size
     << " lsq=" << lsq_used_ << "/" << config_.lsq_size;
  if (rob_.empty()) {
    os << " rob-head=<empty>";
  } else {
    const RobEntry& head = rob_.front();
    os << " rob-head=[seq=" << head.seq << " pc=0x" << std::hex << head.pc
       << std::dec << " " << opcode_name(head.instr.op)
       << (head.completed_flag
               ? (head.issued ? " done@" : " precomputed@")
               : (head.issued ? " issued" : " waiting"));
    if (head.completed_flag) os << head.done_cycle;
    os << "]";
  }
  os << " wrong_path_queue=" << wrong_path_queue_.size();
  return os.str();
}

// ---------------------------------------------------------------------------
// Misprediction recovery + wrong-path load harvesting
// ---------------------------------------------------------------------------

void OooCore::do_recoveries(Cycle now) {
  // Oldest ready recovery wins; recoveries for squashed branches are dropped.
  std::sort(recoveries_.begin(), recoveries_.end(),
            [](const PendingRecovery& a, const PendingRecovery& b) {
              return a.seq < b.seq;
            });
  for (size_t i = 0; i < recoveries_.size(); ++i) {
    const PendingRecovery rec = recoveries_[i];
    if (rec.at > now) continue;
    RobEntry* branch = entry_for(rec.seq);
    if (branch == nullptr) {
      // The branch itself was squashed by an older recovery.
      recoveries_.erase(recoveries_.begin() + i);
      --i;
      continue;
    }
    // Rewind speculative predictor state to just before this prediction,
    // then record the real outcome.
    bpred_.restore(branch->bp_ckpt);
    if (branch->instr.is_branch()) bpred_.record_outcome(rec.actual_taken);

    if (trace_enabled()) {
      fprintf(stderr, "R%llu squash seq=%llu redirect=0x%llx\n",
              (unsigned long long)now, (unsigned long long)rec.seq,
              (unsigned long long)rec.correct_pc);
    }
    if (config_.wrong_path_exec) harvest_wrong_path_loads(rec.seq, now);
    squash_after(rec.seq, now);
    redirect_fetch(rec.correct_pc, now + 1 + config_.mispredict_penalty);
    recoveries_.erase(recoveries_.begin() + i);
    return;  // one recovery per cycle
  }
}

void OooCore::harvest_wrong_path_loads(SeqNum branch_seq, Cycle now) {
  for (size_t i = 0, n = rob_.size(); i < n; ++i) {
    RobEntry& entry = rob_[i];
    if (entry.seq <= branch_seq) continue;
    if (!entry.instr.is_load() || entry.issued) continue;
    // The load's effective address must be computable from state that
    // survives the flush: a committed producer or an older-than-the-branch
    // completed producer (paper Fig. 3: loads C and D; load E is squashed).
    const Operand& base = entry.src1;
    bool addr_available;
    if (!base.from_rob) {
      addr_available = true;
    } else {
      const RobEntry* producer = entry_for(base.producer);
      addr_available = producer == nullptr ||
                       (producer->seq <= branch_seq && producer->completed(now));
    }
    if (!addr_available) continue;
    const Addr addr = eval_mem_addr(entry.instr, operand_value(entry.src1));
    wrong_path_queue_.push_back(addr);
    ++core_stats_.wrong_path_loads_issued;
    stat_wrong_path_loads_.inc();
  }
}

void OooCore::squash_after(SeqNum seq, Cycle now) {
  RobEntry* keep = entry_for(seq);
  WEC_CHECK(keep != nullptr);
  // Restore the rename table from the control instruction's checkpoint
  // (taken right after its own rename), then drop the younger suffix.
  WEC_CHECK(keep->has_rat_ckpt);
  rat_int_ = keep->rat_int_ckpt;
  rat_fp_ = keep->rat_fp_ckpt;
  uint64_t depth = 0;
  while (!rob_.empty() && rob_.back().seq > seq) {
    if (rob_.back().instr.is_mem()) --lsq_used_;
    if (rob_.back().instr.is_store()) --stores_in_rob_;
    rob_.pop_back();
    ++depth;
  }
  hist_squash_depth_.record(depth);
  WEC_TRACE(trace_, now, tu_, TraceEventType::kSquash, keep->pc, depth);
  // Reuse the squashed sequence numbers: entry_for() indexes the ROB as a
  // window of consecutive seqs, so the next dispatch must continue right
  // after the surviving tail.
  next_seq_ = seq + 1;
  std::erase_if(recoveries_, [seq](const PendingRecovery& r) {
    return r.seq > seq;
  });
  fetch_queue_.clear();
  fetch_blocked_ = false;
}

void OooCore::redirect_fetch(Addr pc, Cycle when) {
  fetch_pc_ = pc;
  fetch_ready_cycle_ = when;
  fetch_block_ = kBadAddr;
  fetch_blocked_ = false;
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

OooCore::LoadOrder OooCore::check_older_stores(const RobEntry& load, Cycle now,
                                               Word* value) {
  return check_older_stores(load.seq, load.mem_addr, load.instr.mem_bytes(),
                            now, value);
}

OooCore::LoadOrder OooCore::check_older_stores(SeqNum load_seq, Addr load_addr,
                                               uint32_t load_bytes, Cycle now,
                                               Word* value) {
  // The common case on store-free windows: nothing to scan at all.
  if (stores_in_rob_ == 0) return LoadOrder::kToCache;
  // Scan younger→older so the *youngest* older matching store forwards.
  for (size_t i = rob_.size(); i-- > 0;) {
    const RobEntry& entry = rob_[i];
    if (entry.seq >= load_seq) continue;
    if (!entry.instr.is_store()) continue;
    if (!entry.addr_known) return LoadOrder::kWait;  // conservative ordering
    const uint32_t store_bytes = entry.instr.mem_bytes();
    if (!overlaps(entry.mem_addr, store_bytes, load_addr, load_bytes)) {
      continue;
    }
    if (contains(entry.mem_addr, store_bytes, load_addr, load_bytes) &&
        entry.completed(now)) {
      const uint32_t shift =
          static_cast<uint32_t>(load_addr - entry.mem_addr) * 8;
      *value = (entry.store_value >> shift) &
               low_mask(8 * std::min(load_bytes, 8u));
      return LoadOrder::kForward;
    }
    // Partial overlap or data not ready: wait until the store retires.
    return LoadOrder::kWait;
  }
  return LoadOrder::kToCache;
}

void OooCore::resolve_control(RobEntry& entry, Cycle now) {
  const Instruction& instr = entry.instr;
  entry.done_cycle = now + 1;
  if (instr.is_branch()) {
    const bool actual = eval_branch(instr, operand_value(entry.src1),
                                    operand_value(entry.src2));
    const Addr target = actual ? static_cast<Addr>(instr.imm)
                               : entry.pc + kInstrBytes;
    ++core_stats_.branches;
    stat_branches_.inc();
    bpred_.update_branch(entry.pc, actual, entry.bp_ckpt);
    if (actual) bpred_.update_btb(entry.pc, target);
    if (actual != entry.predicted_taken) {
      ++core_stats_.mispredicts;
      stat_mispredicts_.inc();
      if (trace_enabled())
        fprintf(stderr, "M%llu seq=%llu pc=0x%llx pred=%d actual=%d tgt=0x%llx\n",
                (unsigned long long)now, (unsigned long long)entry.seq,
                (unsigned long long)entry.pc, (int)entry.predicted_taken,
                (int)actual, (unsigned long long)target);
      recoveries_.push_back({entry.seq, now + 1, target, actual});
    } else if (faults_ != nullptr && faults_->armed(FaultKind::kMispredict) &&
               faults_->fire(FaultKind::kMispredict)) {
      // Injected "misprediction" on a correctly predicted branch: squash and
      // redirect to the branch's real target, so execution stays
      // architecturally correct but pays the full recovery (and, under wp
      // configs, harvests wrong-path loads). Deliberately not counted in the
      // mispredict stats — those measure the predictor, not the injector.
      recoveries_.push_back({entry.seq, now + 1, target, actual});
    }
    return;
  }
  // Jumps.
  entry.result = entry.pc + kInstrBytes;  // link value
  if (instr.op == Opcode::kJal) return;   // fetch already followed the target
  const Addr target = eval_mem_addr(instr, operand_value(entry.src1));
  bpred_.update_btb(entry.pc, target);
  if (target != entry.next_fetch_pc) {
    ++core_stats_.mispredicts;
    stat_mispredicts_.inc();
    recoveries_.push_back({entry.seq, now + 1, target, true});
  }
}

void OooCore::execute_entry(RobEntry& entry, Cycle now,
                            uint32_t* mem_ports_used) {
  WEC_PROFILE_SCOPE(ProfPhase::kCoreExec);
  const Instruction& instr = entry.instr;
  const OpcodeInfo& info = opcode_info(instr.op);
  entry.issued = true;
  entry.completed_flag = true;

  switch (info.kind) {
    case InstrKind::kAlu:
      entry.result = eval_alu(instr, operand_value(entry.src1),
                              operand_value(entry.src2));
      entry.done_cycle = now + info.latency;
      break;
    case InstrKind::kLoad: {
      Word forwarded = 0;
      // mem_addr/addr_known were established by the caller.
      const LoadOrder order = check_older_stores(entry, now, &forwarded);
      WEC_CHECK(order != LoadOrder::kWait);
      if (order == LoadOrder::kForward) {
        entry.result = extend_loaded(instr.op, forwarded);
        entry.done_cycle = now + 1;
      } else {
        ++*mem_ports_used;
        const Word raw = env_.read_data(entry.mem_addr, instr.mem_bytes());
        entry.result = extend_loaded(instr.op, raw);
        const MemOutcome outcome =
            env_.cache_load(entry.mem_addr, env_.mode(), now);
        entry.done_cycle = outcome.done;
      }
      break;
    }
    case InstrKind::kStore:
      entry.store_value = operand_value(entry.src2);
      entry.done_cycle = now + 1;
      break;
    case InstrKind::kBranch:
    case InstrKind::kJump:
      resolve_control(entry, now);
      break;
    case InstrKind::kSys:
      entry.done_cycle = now + 1;
      break;
    case InstrKind::kThread:
      // tsaddr computes its target-store address here; all thread ops act
      // at commit.
      if (instr.op == Opcode::kTsaddr) {
        entry.mem_addr = eval_mem_addr(instr, operand_value(entry.src1));
        entry.addr_known = true;
      }
      entry.done_cycle = now + 1;
      break;
  }
}

namespace {
/// Region-boundary thread ops act as load barriers: a load must not read
/// memory until every older begin/abort/thend/endpar has committed, because
/// those ops order this thread's view of memory against other threads'
/// write-back stages (paper Section 2.2: write-back is in program order).
bool is_load_barrier(Opcode op) {
  return op == Opcode::kBegin || op == Opcode::kAbort ||
         op == Opcode::kThend || op == Opcode::kEndpar;
}
}  // namespace

void OooCore::do_issue(Cycle now) {
  uint32_t issued = 0;
  uint32_t mem_ports_used = 0;
  const size_t rob_n = rob_.size();
  SeqNum barrier_seq = ~SeqNum{0};
  for (size_t i = 0; i < rob_n; ++i) {
    if (is_load_barrier(rob_[i].instr.op)) {
      barrier_seq = rob_[i].seq;  // oldest uncommitted barrier
      break;
    }
  }

  for (size_t i = 0; i < rob_n; ++i) {
    RobEntry& entry = rob_[i];
    if (issued >= config_.issue_width) break;
    if (entry.issued) continue;
    const OpcodeInfo& info = opcode_info(entry.instr.op);

    // Early store-address computation (AGU): lets younger loads disambiguate
    // before the store's data operand is ready.
    if (entry.instr.is_store() && !entry.addr_known &&
        operand_ready(entry.src1, now)) {
      entry.mem_addr = eval_mem_addr(entry.instr, operand_value(entry.src1));
      entry.addr_known = true;
    }

    if (!operand_ready(entry.src1, now) || !operand_ready(entry.src2, now)) {
      continue;
    }
    if (info.fu != FuClass::kNone && fu_used_[static_cast<int>(info.fu)] >=
                                         fu_limit(info.fu)) {
      continue;
    }

    if (entry.instr.is_load()) {
      if (entry.seq > barrier_seq) continue;  // don't cross region boundaries
      if (mem_ports_used >= config_.mem_ports) continue;
      entry.mem_addr = eval_mem_addr(entry.instr, operand_value(entry.src1));
      entry.addr_known = true;
      Word forwarded = 0;
      const LoadOrder order = check_older_stores(entry, now, &forwarded);
      if (order == LoadOrder::kWait) continue;
      if (order == LoadOrder::kToCache &&
          env_.check_load(entry.mem_addr, entry.instr.mem_bytes()) ==
              CoreEnv::LoadGate::kStall) {
        continue;  // run-time dependence: upstream value not yet forwarded
      }
    }

    execute_entry(entry, now, &mem_ports_used);
    if (info.fu != FuClass::kNone) ++fu_used_[static_cast<int>(info.fu)];
    ++issued;
  }

  // Wrong-execution loads drain through whatever memory ports remain.
  const uint32_t ports_left =
      config_.mem_ports > mem_ports_used ? config_.mem_ports - mem_ports_used
                                         : 0;
  drain_wrong_path_loads(now, ports_left);
}

void OooCore::drain_wrong_path_loads(Cycle now, uint32_t ports_left) {
  const ExecMode mode = env_.mode() == ExecMode::kCorrect
                            ? ExecMode::kWrongPath
                            : ExecMode::kWrongThread;
  while (ports_left > 0 && !wrong_path_queue_.empty()) {
    const Addr addr = wrong_path_queue_.front();
    wrong_path_queue_.pop_front();
    env_.cache_load(addr, mode, now);
    --ports_left;
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void OooCore::do_dispatch(Cycle now) {
  (void)now;
  uint32_t dispatched = 0;
  while (!fetch_queue_.empty() && dispatched < config_.issue_width &&
         rob_.size() < config_.rob_size) {
    const FetchedInstr& fetched = fetch_queue_.front();
    if (fetched.instr.is_mem() && lsq_used_ >= config_.lsq_size) break;

    WEC_CHECK_MSG(rob_.empty() || rob_.back().seq + 1 == next_seq_,
                  "ROB sequence numbers must stay contiguous");
    // Recycle the ring slot in place: reset every field a previous occupant
    // could have dirtied (the RAT checkpoint arrays stay stale — they are
    // only read under has_rat_ckpt, which is re-set below for control ops).
    RobEntry& entry = rob_.push_slot();
    entry.seq = next_seq_++;
    entry.issued = false;
    entry.completed_flag = false;
    entry.done_cycle = kNoCycle;
    entry.result = 0;
    entry.mem_addr = 0;
    entry.addr_known = false;
    entry.store_value = 0;
    entry.has_rat_ckpt = false;
    entry.pc = fetched.pc;
    entry.instr = fetched.instr;
    entry.predicted_taken = fetched.predicted_taken;
    entry.next_fetch_pc = fetched.next_fetch_pc;
    entry.bp_ckpt = fetched.bp_ckpt;

    const OpcodeInfo& info = opcode_info(entry.instr.op);
    auto make_operand = [&](RegFile file, RegId reg) {
      Operand op;
      op.file = file;
      op.reg = reg;
      if (file == RegFile::kNone) return op;
      const int64_t producer =
          file == RegFile::kInt ? rat_int_[reg] : rat_fp_[reg];
      if (producer >= 0) {
        op.from_rob = true;
        op.ready = false;  // latched lazily once the producer completes
        op.producer = static_cast<SeqNum>(producer);
      } else {
        op.value = file == RegFile::kInt ? int_regs_[reg] : fp_regs_[reg];
      }
      return op;
    };
    entry.src1 = make_operand(info.src1, entry.instr.rs1);
    entry.src2 = make_operand(info.src2, entry.instr.rs2);

    // Rename the destination, then checkpoint the RAT for control ops.
    if (info.dst == RegFile::kInt) {
      if (entry.instr.rd != 0) {
        rat_int_[entry.instr.rd] = static_cast<int64_t>(entry.seq);
      }
    } else if (info.dst == RegFile::kFp) {
      rat_fp_[entry.instr.rd] = static_cast<int64_t>(entry.seq);
    }
    entry.is_control = entry.instr.is_control();
    if (entry.is_control) {
      entry.has_rat_ckpt = true;
      entry.rat_int_ckpt = rat_int_;
      entry.rat_fp_ckpt = rat_fp_;
    }

    if (entry.instr.is_mem()) ++lsq_used_;
    if (entry.instr.is_store()) ++stores_in_rob_;
    fetch_queue_.pop_front();
    ++dispatched;
  }
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

void OooCore::do_fetch(Cycle now) {
  if (fetch_blocked_ || now < fetch_ready_cycle_) return;
  uint32_t fetched = 0;
  while (fetched < config_.fetch_width &&
         fetch_queue_.size() < config_.fetch_queue_size) {
    // Instruction-cache access per fetch block.
    const Addr block = align_down(fetch_pc_, config_.ifetch_block_bytes);
    if (block != fetch_block_) {
      WEC_TRACE(trace_, now, tu_, TraceEventType::kFetch, fetch_pc_);
      const Cycle ready = env_.cache_ifetch(fetch_pc_, now);
      fetch_block_ = block;
      if (ready > now) {
        fetch_ready_cycle_ = ready;
        return;
      }
    }
    const Instruction* instr = program_.fetch(fetch_pc_);
    if (instr == nullptr) {
      // Ran off the text segment (deep wrong path): wait for a redirect.
      fetch_blocked_ = true;
      return;
    }

    FetchedInstr f;
    f.pc = fetch_pc_;
    f.instr = *instr;
    f.bp_ckpt = bpred_.checkpoint();
    Addr next = fetch_pc_ + kInstrBytes;

    if (instr->is_branch()) {
      f.predicted_taken = bpred_.predict_taken(fetch_pc_);
      if (f.predicted_taken) next = static_cast<Addr>(instr->imm);
    } else if (instr->op == Opcode::kJal) {
      if (instr->rd == 31) bpred_.ras_push(fetch_pc_ + kInstrBytes);
      next = static_cast<Addr>(instr->imm);
      f.predicted_taken = true;
    } else if (instr->op == Opcode::kJalr) {
      Addr target = 0;
      if (instr->rd == 0 && instr->rs1 == 31) {
        target = bpred_.ras_pop();  // return
      } else {
        target = bpred_.btb_lookup(fetch_pc_);
      }
      if (target == 0) target = fetch_pc_ + kInstrBytes;  // hope & recover
      next = target;
      f.predicted_taken = true;
    } else if (instr->op == Opcode::kHalt) {
      fetch_blocked_ = true;  // nothing sensible follows halt
    }

    f.next_fetch_pc = next;
    fetch_queue_.push_back(f);
    fetch_pc_ = next;
    ++fetched;
    if (fetch_blocked_) return;
    // A taken control transfer ends the fetch group.
    if (next != f.pc + kInstrBytes) break;
  }
}

// ---------------------------------------------------------------------------
// Event-driven cycle skipping
// ---------------------------------------------------------------------------

Cycle OooCore::next_event_cycle(Cycle now) {
  if (!active_) return kNoCycle;
  const Cycle next = now + 1;
  // Wrong-execution loads drain through spare memory ports every cycle.
  if (!wrong_path_queue_.empty()) return next;

  Cycle wake = kNoCycle;
  auto consider = [&wake](Cycle c) {
    if (c < wake) wake = c;
  };

  // Scheduled misprediction recoveries fire at their resolution cycle.
  for (const PendingRecovery& rec : recoveries_) {
    if (rec.at <= next) return next;
    consider(rec.at);
  }

  // Fetch resumes as soon as the I-fill / redirect penalty elapses.
  if (!fetch_blocked_ && fetch_queue_.size() < config_.fetch_queue_size) {
    if (fetch_ready_cycle_ <= next) return next;
    consider(fetch_ready_cycle_);
  }

  // Dispatch moves fetched instructions into free ROB/LSQ slots.
  if (!fetch_queue_.empty() && rob_.size() < config_.rob_size &&
      (!fetch_queue_.front().instr.is_mem() ||
       lsq_used_ < config_.lsq_size)) {
    return next;
  }

  // Region-boundary barrier, exactly as do_issue computes it: loads beyond
  // it cannot issue until the barrier op commits (an event covered by the
  // head-of-ROB analysis below).
  const size_t rob_n = rob_.size();
  SeqNum barrier_seq = ~SeqNum{0};
  for (size_t i = 0; i < rob_n; ++i) {
    if (is_load_barrier(rob_[i].instr.op)) {
      barrier_seq = rob_[i].seq;
      break;
    }
  }

  for (size_t i = 0; i < rob_n; ++i) {
    RobEntry& entry = rob_[i];
    if (entry.completed_flag) {
      if (entry.done_cycle > now) {
        // In-flight result (memory fill / FU latency) lands at done_cycle.
        consider(entry.done_cycle);
        continue;
      }
      if (i != 0) continue;
      // Completed head: commit acts next cycle — unless it is a thread op
      // stuck on a protocol gate, whose wake-up the environment knows.
      if (opcode_info(entry.instr.op).kind != InstrKind::kThread) return next;
      const Cycle at = env_.thread_op_wake_cycle(entry.instr, now);
      if (at == kNoCycle) continue;  // waits on another TU's progress
      if (at <= next) return next;
      consider(at);
      continue;
    }
    // Un-issued. A store's AGU runs as soon as its base operand is ready.
    if (entry.instr.is_store() && !entry.addr_known &&
        operand_ready(entry.src1, now)) {
      return next;
    }
    if (!operand_ready(entry.src1, now) || !operand_ready(entry.src2, now)) {
      // Producers are older ROB entries; their done_cycles are events this
      // same scan picks up (or they bottom out at an external gate).
      continue;
    }
    if (!entry.instr.is_load()) return next;  // issues when resources free up
    if (entry.seq > barrier_seq) continue;    // gated by the barrier's commit
    // Ready load: derive its address (idempotent — do_issue computes the
    // same value from the same operands) and rerun the ordering checks.
    const Addr addr = entry.addr_known
                          ? entry.mem_addr
                          : eval_mem_addr(entry.instr,
                                          operand_value(entry.src1));
    const uint32_t bytes = entry.instr.mem_bytes();
    Word forwarded = 0;
    const LoadOrder order =
        check_older_stores(entry.seq, addr, bytes, now, &forwarded);
    if (order == LoadOrder::kWait) continue;  // the blocking store's own
                                              // AGU/completion is an event
    if (order == LoadOrder::kForward) return next;
    const Cycle at = env_.load_gate_wake_cycle(addr, bytes, now);
    if (at == kNoCycle) continue;  // upstream target data not yet forwarded
    if (at <= next) return next;
    consider(at);
  }
  return wake;
}

void OooCore::account_skipped_cycles(uint64_t n) {
  if (!active_) return;
  record_occupancy(n);
}

void OooCore::record_occupancy(uint64_t n) {
  const uint64_t size = rob_.size();
  if (size == occ_run_value_) {
    occ_run_len_ += n;
    return;
  }
  if (occ_run_len_ > 0) {
    hist_rob_occupancy_.record_n(occ_run_value_, occ_run_len_);
  }
  occ_run_value_ = size;
  occ_run_len_ = n;
}

void OooCore::flush_stats() {
  if (occ_run_len_ > 0) {
    hist_rob_occupancy_.record_n(occ_run_value_, occ_run_len_);
    occ_run_len_ = 0;
  }
}

}  // namespace wecsim
