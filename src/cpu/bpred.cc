#include "cpu/bpred.h"

#include "common/bits.h"
#include "common/error.h"
#include "isa/isa.h"  // kInstrBytes

namespace wecsim {

BranchPredictor::BranchPredictor(const BpredConfig& config,
                                 StatsRegistry& stats,
                                 const std::string& stat_prefix)
    : config_(config),
      counters_(uint64_t{1} << config.table_bits, 2),  // weakly taken
      btb_(config.btb_entries),
      ras_(config.ras_entries, 0),
      lookups_(stats.counter(stat_prefix + "bpred.lookups")),
      btb_hits_(stats.counter(stat_prefix + "bpred.btb_hits")) {
  WEC_CHECK(config.btb_entries % config.btb_assoc == 0);
  WEC_CHECK(config.hist_bits <= 30);
}

uint32_t BranchPredictor::dir_index(Addr pc, uint64_t history) const {
  const uint64_t pc_bits = pc / kInstrBytes;
  uint64_t index = pc_bits;
  if (config_.kind == BpredKind::kGshare) {
    index ^= history << (config_.table_bits > config_.hist_bits
                             ? config_.table_bits - config_.hist_bits
                             : 0);
  }
  return static_cast<uint32_t>(index & low_mask(config_.table_bits));
}

bool BranchPredictor::predict_taken(Addr pc) {
  lookups_.inc();
  bool taken;
  switch (config_.kind) {
    case BpredKind::kTaken:
      taken = true;
      break;
    case BpredKind::kNotTaken:
      taken = false;
      break;
    default:
      taken = counters_[dir_index(pc, history_)] >= 2;
      break;
  }
  // Speculative history update (repaired by restore() on mispredict).
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & low_mask(config_.hist_bits);
  return taken;
}

Addr BranchPredictor::btb_lookup(Addr pc) {
  const uint32_t sets = config_.btb_entries / config_.btb_assoc;
  const uint32_t set = static_cast<uint32_t>((pc / kInstrBytes) % sets);
  BtbEntry* base = &btb_[set * config_.btb_assoc];
  for (uint32_t way = 0; way < config_.btb_assoc; ++way) {
    if (base[way].valid && base[way].pc == pc) {
      base[way].lru = ++btb_clock_;
      btb_hits_.inc();
      return base[way].target;
    }
  }
  return 0;
}

void BranchPredictor::ras_push(Addr return_addr) {
  ras_[ras_top_ % config_.ras_entries] = return_addr;
  ras_top_ = (ras_top_ + 1) % (2 * config_.ras_entries);
}

Addr BranchPredictor::ras_pop() {
  ras_top_ = (ras_top_ + 2 * config_.ras_entries - 1) %
             (2 * config_.ras_entries);
  return ras_[ras_top_ % config_.ras_entries];
}

BpredCheckpoint BranchPredictor::checkpoint() const {
  return BpredCheckpoint{history_, ras_top_};
}

void BranchPredictor::restore(const BpredCheckpoint& checkpoint) {
  history_ = checkpoint.history;
  ras_top_ = checkpoint.ras_top;
}

void BranchPredictor::update_branch(Addr pc, bool taken,
                                    const BpredCheckpoint& at_pred) {
  if (config_.kind == BpredKind::kTaken ||
      config_.kind == BpredKind::kNotTaken) {
    return;
  }
  uint8_t& counter = counters_[dir_index(pc, at_pred.history)];
  if (taken) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
}

void BranchPredictor::update_branch(Addr pc, bool taken) {
  update_branch(pc, taken, BpredCheckpoint{history_, ras_top_});
}

void BranchPredictor::update_btb(Addr pc, Addr target) {
  const uint32_t sets = config_.btb_entries / config_.btb_assoc;
  const uint32_t set = static_cast<uint32_t>((pc / kInstrBytes) % sets);
  BtbEntry* base = &btb_[set * config_.btb_assoc];
  BtbEntry* victim = &base[0];
  for (uint32_t way = 0; way < config_.btb_assoc; ++way) {
    BtbEntry& entry = base[way];
    if (entry.valid && entry.pc == pc) {
      entry.target = target;
      entry.lru = ++btb_clock_;
      return;
    }
    if (!entry.valid) {
      victim = &entry;
    } else if (victim->valid && entry.lru < victim->lru) {
      victim = &entry;
    }
  }
  *victim = BtbEntry{true, pc, target, ++btb_clock_};
}

void BranchPredictor::record_outcome(bool taken) {
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & low_mask(config_.hist_bits);
}

void BranchPredictor::reset() {
  counters_.assign(counters_.size(), 2);
  history_ = 0;
  for (auto& entry : btb_) entry = BtbEntry{};
  btb_clock_ = 0;
  ras_.assign(ras_.size(), 0);
  ras_top_ = 0;
}

}  // namespace wecsim
