// Out-of-order superscalar core (one per thread unit), in the style of
// SimpleScalar's sim-outorder: speculative fetch with branch prediction,
// register renaming via a ROB-based architecture (each in-flight instruction
// carries its operand producers and result), load/store queue ordering with
// store-to-load forwarding, FU pools, in-order commit, and checkpointed
// misprediction recovery.
//
// Wrong-path execution (paper Section 3.1.1): when a mispredicted branch
// resolves, younger loads whose effective address is already computable
// (base-register producer older than the branch and complete, or read from
// the committed register file) are issued to the memory hierarchy as
// wrong-execution loads before the pipeline is flushed. Their values are
// discarded; only the cache state changes. Loads whose address depends on a
// flushed producer are squashed, exactly as in the paper's Figure 3.
//
// The core is driven cycle-by-cycle by the superthreaded processor, and all
// thread-level behaviour (fork/abort/write-back, memory buffers, the
// wrong-thread mode) is delegated to a CoreEnv implemented by the owner.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "cpu/bpred.h"
#include "fault/committed_instr.h"
#include "isa/program.h"
#include "mem/mem_system.h"

namespace wecsim {

class FaultSession;

struct CoreConfig {
  uint32_t fetch_width = 8;
  uint32_t issue_width = 8;   // also dispatch and commit width
  uint32_t rob_size = 64;
  uint32_t lsq_size = 64;
  uint32_t int_alu = 8;
  uint32_t int_mult = 4;
  uint32_t fp_alu = 8;
  uint32_t fp_mult = 4;
  uint32_t mem_ports = 2;
  uint32_t fetch_queue_size = 16;
  uint32_t mispredict_penalty = 2;  // recovery cycles after resolution
  uint32_t ifetch_block_bytes = 64;  // L1I block size (fetch-group tracking)
  BpredConfig bpred;
  bool wrong_path_exec = false;  // wp configurations
};

/// Everything thread- and memory-specific the core needs from its owner.
class CoreEnv {
 public:
  virtual ~CoreEnv() = default;

  /// Architectural value of a memory location as seen by this thread
  /// (speculative memory buffer first, then global memory).
  virtual Word read_data(Addr addr, uint32_t bytes) = 0;

  /// Run-time dependence gate for loads (paper Section 2.2): a load whose
  /// address matches a forwarded target-store entry with no data yet must
  /// stall until the upstream value arrives.
  enum class LoadGate : uint8_t { kProceed, kStall };
  virtual LoadGate check_load(Addr addr, uint32_t bytes) = 0;

  /// A store leaving the ROB: sequential mode writes memory + cache;
  /// parallel mode writes the speculative memory buffer.
  virtual void commit_store(Addr addr, Word value, uint32_t bytes,
                            Cycle now) = 0;

  /// Timing path for data loads / instruction fetch.
  virtual MemOutcome cache_load(Addr addr, ExecMode mode, Cycle now) = 0;
  virtual Cycle cache_ifetch(Addr pc, Cycle now) = 0;

  /// A superthreaded op (fork/abort/begin/tsaddr/tsagd/thend/endpar) at the
  /// commit point. kRetry = try again next cycle (waiting on a resource or
  /// an upstream flag); kDone = committed; kEndThread = the thread is over
  /// (thend committed, or a wrong thread killed itself at abort).
  /// mem_addr carries the computed effective address for tsaddr.
  enum class ThreadOpAction : uint8_t { kRetry, kDone, kEndThread };
  virtual ThreadOpAction thread_op(const Instruction& instr, Addr mem_addr,
                                   Cycle now) = 0;

  /// Thread-level execution mode: kCorrect, or kWrongThread once the thread
  /// has been marked wrong by an upstream abort.
  virtual ExecMode mode() const = 0;

  // --- cycle-skip support --------------------------------------------------
  // Both hooks answer "when could the gated action stop blocking?" for the
  // event-driven skipper: `now` (or earlier) means "maybe next cycle — do not
  // skip"; kNoCycle means "blocked purely on another thread's progress";
  // anything else is a concrete future wake-up cycle. The defaults are the
  // conservative "now", so environments that do not implement them never
  // enable skipping past their gates.

  /// Earliest cycle the thread op at the commit head could stop returning
  /// kRetry, assuming no other instruction executes in between.
  virtual Cycle thread_op_wake_cycle(const Instruction& instr, Cycle now) {
    (void)instr;
    return now;
  }

  /// Earliest cycle check_load(addr, bytes) could return kProceed.
  virtual Cycle load_gate_wake_cycle(Addr addr, uint32_t bytes, Cycle now) {
    (void)addr;
    (void)bytes;
    return now;
  }
};

/// Per-run committed-instruction statistics of one core.
struct CoreStats {
  uint64_t committed = 0;
  uint64_t committed_loads = 0;
  uint64_t committed_stores = 0;
  uint64_t branches = 0;
  uint64_t mispredicts = 0;
  uint64_t wrong_path_loads_issued = 0;  // loads issued after resolution
};

class OooCore {
 public:
  /// `tu` and `trace` feed the optional pipeline event trace (fetch-block
  /// accesses, squashes); a null sink disables it. `faults` (may be null)
  /// injects forced mispredictions and commit-stage corruption.
  OooCore(const CoreConfig& config, const Program& program, CoreEnv& env,
          StatsRegistry& stats, const std::string& stat_prefix,
          TuId tu = 0, TraceSink* trace = nullptr,
          FaultSession* faults = nullptr);

  /// Observer of the in-order commit stream (lockstep checking). Fires once
  /// per committed instruction, after its architectural effect is applied.
  /// Unset (default) costs one branch per commit.
  using CommitHook = std::function<void(const CommittedInstr&)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Begin executing at pc with the given architectural register state
  /// (a fork's register snapshot).
  void start(Addr pc, const std::array<Word, kNumIntRegs>& int_regs,
             const std::array<Word, kNumFpRegs>& fp_regs);
  void start(Addr pc);

  /// Advance one cycle. No-op when idle or halted.
  void tick(Cycle now);

  /// External kill (thread aborted by predecessor / begin). Clears all
  /// in-flight state; the committed register file survives for inspection.
  void stop();

  bool active() const { return active_; }
  bool halted() const { return halted_; }

  /// Conservative earliest cycle at which this core could change any state
  /// if ticked, or kNoCycle when it is blocked purely on external stimulus
  /// (another thread unit's progress). Never returns less than now + 1; a
  /// return of exactly now + 1 means "may act on the very next tick — do not
  /// skip". Events considered: outstanding memory-fill / FU completions
  /// (RobEntry::done_cycle), scheduled PendingRecovery resolutions, the
  /// I-fetch ready cycle, and protocol gate wake-ups via CoreEnv; any
  /// immediately runnable fetch/dispatch/issue/commit/wrong-path work short-
  /// circuits to now + 1.
  Cycle next_event_cycle(Cycle now);

  /// The processor skipped `n` cycles during which this core was provably
  /// inert: replay the per-cycle ROB-occupancy samples tick() would have
  /// recorded, keeping histograms bit-identical to the unskipped run. No-op
  /// when idle.
  void account_skipped_cycles(uint64_t n);

  /// Drain run-length-batched histogram samples into the stats registry.
  /// Occupancy samples are accumulated as (value, run-length) pairs and only
  /// flushed when the occupancy changes; callers that snapshot stats while a
  /// core is still active (end-of-run aggregation, watchdog dumps) must
  /// flush first. stop() flushes automatically.
  void flush_stats();

  /// Incremental bookkeeping for the owning processor's hot loop: when set,
  /// *sink is incremented once per committed instruction (commit sink) /
  /// tracks active() transitions (active sink), replacing per-cycle sweeps.
  void set_commit_sink(uint64_t* sink) { commit_sink_ = sink; }
  void set_active_sink(int64_t* sink) { active_sink_ = sink; }

  /// Architectural-commit sink: like the commit sink, but the owner connects
  /// it only while this core runs a correct-path thread (ThreadUnit detaches
  /// it on mark_wrong), so the counter tracks commits that correspond to the
  /// sequential program — the pacing basis for sampled simulation windows.
  /// The plain commit sink keeps counting everything (wrong threads
  /// included); it drives the watchdog and must not change meaning.
  void set_arch_commit_sink(uint64_t* sink) { arch_commit_sink_ = sink; }

  /// Cheap digest of the externally visible pipeline state (committed count,
  /// queue occupancies, fetch state). The processor probes next_event_cycle()
  /// for a skip only on ticks where no core's signature changed — running the
  /// full ROB scan on cycles where the machine visibly progressed would eat
  /// the very time skipping saves. The signature only gates *when* the
  /// (authoritative) scan runs, so a collision merely delays a skip attempt.
  uint64_t activity_signature() const {
    constexpr uint64_t kMul = 1099511628211ull;  // FNV-1a prime
    uint64_t sig = core_stats_.committed;
    sig = sig * kMul + rob_.size();
    sig = sig * kMul + fetch_queue_.size();
    sig = sig * kMul + recoveries_.size();
    sig = sig * kMul + wrong_path_queue_.size();
    sig = sig * kMul + (active_ ? 2u : 0u) + (halted_ ? 1u : 0u);
    sig = sig * kMul + fetch_pc_;
    return sig;
  }

  /// Committed architectural state.
  Word int_reg(RegId r) const { return int_regs_[r]; }
  Word fp_reg(RegId r) const { return fp_regs_[r]; }
  const std::array<Word, kNumIntRegs>& int_regs() const { return int_regs_; }
  const std::array<Word, kNumFpRegs>& fp_regs() const { return fp_regs_; }

  const CoreStats& core_stats() const { return core_stats_; }
  BranchPredictor& predictor() { return bpred_; }

  /// One-line pipeline snapshot for deadlock/watchdog dumps: fetch PC, ROB
  /// head instruction and its issue/complete flags, outstanding memory ops.
  std::string describe_state() const;

 private:
  // --- pipeline structures -----------------------------------------------

  struct FetchedInstr {
    Addr pc = 0;
    Instruction instr;
    bool predicted_taken = false;
    Addr next_fetch_pc = 0;  // where fetch continued after this instruction
    BpredCheckpoint bp_ckpt; // taken before this instruction's prediction
  };

  /// Operand source: either a ROB producer (by sequence number) or a value
  /// latched from the committed register file at dispatch.
  struct Operand {
    bool from_rob = false;
    // Memoized readiness latch: once the producer is observed complete (or
    // committed) the answer can never change back, so the per-cycle issue
    // scan stops re-walking the ROB for it. from_rob/producer stay intact —
    // wrong-path harvesting still needs the producer's identity.
    bool ready = true;    // false only while a ROB producer is outstanding
    SeqNum producer = 0;  // valid when from_rob
    Word value = 0;       // valid when !from_rob
    RegFile file = RegFile::kNone;
    RegId reg = 0;        // architectural register (committed-file fallback)
  };

  struct RobEntry {
    SeqNum seq = 0;
    Addr pc = 0;
    Instruction instr;
    Operand src1;
    Operand src2;
    bool issued = false;
    bool completed_flag = false;  // result computed
    Cycle done_cycle = kNoCycle;  // result available / mem access finished
    Word result = 0;
    // Memory state.
    Addr mem_addr = 0;
    bool addr_known = false;
    Word store_value = 0;
    // Control state.
    bool predicted_taken = false;
    Addr next_fetch_pc = 0;
    BpredCheckpoint bp_ckpt;
    bool is_control = false;
    bool has_rat_ckpt = false;
    std::array<int64_t, kNumIntRegs> rat_int_ckpt{};
    std::array<int64_t, kNumFpRegs> rat_fp_ckpt{};

    bool completed(Cycle now) const {
      return completed_flag && done_cycle <= now;
    }
  };

  struct PendingRecovery {
    SeqNum seq;       // the mispredicted control instruction
    Cycle at;         // resolution cycle
    Addr correct_pc;  // redirect target
    bool actual_taken;
  };

  /// Fixed-capacity ring of ROB slots over contiguous storage. RobEntry is
  /// large (two RAT checkpoint arrays ≈ 0.5 KiB), so slots are recycled in
  /// place: push_slot() hands back the next slot with its checkpoint arrays
  /// untouched (they are only read under has_rat_ckpt, which dispatch
  /// re-sets) and the caller overwrites the small fields. Indexing is by
  /// logical position from the head, which keeps the ROB's seq-contiguity
  /// invariant a simple offset: entry i holds seq front().seq + i.
  class RobRing {
   public:
    void init(size_t capacity) {
      slots_.resize(capacity);
      head_ = 0;
      count_ = 0;
    }
    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    void clear() {
      head_ = 0;
      count_ = 0;
    }
    RobEntry& operator[](size_t i) { return slots_[index(i)]; }
    const RobEntry& operator[](size_t i) const { return slots_[index(i)]; }
    RobEntry& front() { return slots_[head_]; }
    const RobEntry& front() const { return slots_[head_]; }
    RobEntry& back() { return slots_[index(count_ - 1)]; }
    const RobEntry& back() const { return slots_[index(count_ - 1)]; }
    /// Next slot at the tail, contents stale from its previous occupant.
    RobEntry& push_slot() {
      ++count_;
      return slots_[index(count_ - 1)];
    }
    void pop_front() {
      head_ = head_ + 1 == slots_.size() ? 0 : head_ + 1;
      --count_;
    }
    void pop_back() { --count_; }

   private:
    size_t index(size_t i) const {
      const size_t p = head_ + i;
      return p >= slots_.size() ? p - slots_.size() : p;
    }
    std::vector<RobEntry> slots_;
    size_t head_ = 0;
    size_t count_ = 0;
  };

  // --- stages --------------------------------------------------------------

  void do_commit(Cycle now);
  void do_recoveries(Cycle now);
  void do_issue(Cycle now);
  void do_dispatch(Cycle now);
  void do_fetch(Cycle now);
  void drain_wrong_path_loads(Cycle now, uint32_t ports_left);

  // --- helpers -------------------------------------------------------------

  RobEntry* entry_for(SeqNum seq);
  /// Non-const: latches Operand::ready once the producer is seen complete.
  bool operand_ready(Operand& op, Cycle now);
  Word operand_value(const Operand& op);
  void note_commit();
  /// Scan older stores for ordering/forwarding. Returns:
  ///   kForward (value set), kWait (must stall), kToCache.
  enum class LoadOrder : uint8_t { kForward, kWait, kToCache };
  LoadOrder check_older_stores(const RobEntry& load, Cycle now, Word* value);
  LoadOrder check_older_stores(SeqNum load_seq, Addr load_addr,
                               uint32_t load_bytes, Cycle now, Word* value);
  void execute_entry(RobEntry& entry, Cycle now, uint32_t* mem_ports_used);
  /// Record `n` ROB-occupancy samples at the current size, run-length
  /// batched: consecutive same-size samples coalesce into one record_n call.
  void record_occupancy(uint64_t n);
  void resolve_control(RobEntry& entry, Cycle now);
  void squash_after(SeqNum seq, Cycle now);
  void harvest_wrong_path_loads(SeqNum branch_seq, Cycle now);
  void redirect_fetch(Addr pc, Cycle when);
  uint32_t fu_limit(FuClass fu) const;

  // --- members ---------------------------------------------------------

  CoreConfig config_;
  const Program& program_;
  CoreEnv& env_;
  BranchPredictor bpred_;

  bool active_ = false;
  bool halted_ = false;

  // Committed architectural state.
  std::array<Word, kNumIntRegs> int_regs_{};
  std::array<Word, kNumFpRegs> fp_regs_{};

  // Rename table: seq of the latest in-flight producer, or -1.
  std::array<int64_t, kNumIntRegs> rat_int_{};
  std::array<int64_t, kNumFpRegs> rat_fp_{};

  // Reorder buffer: consecutive seq numbers, head at front.
  RobRing rob_;
  SeqNum next_seq_ = 1;
  uint32_t lsq_used_ = 0;  // memory entries in rob_, maintained incrementally
  uint32_t stores_in_rob_ = 0;  // store entries in rob_, ditto — lets
                                // check_older_stores skip its reverse ROB
                                // scan entirely on store-free windows

  // Fetch state.
  std::deque<FetchedInstr> fetch_queue_;
  Addr fetch_pc_ = 0;
  bool fetch_blocked_ = false;     // ran off the text segment / halt fetched
  Cycle fetch_ready_cycle_ = 0;    // I-cache fill / redirect penalty
  Addr fetch_block_ = kBadAddr;    // last block touched in the I-cache

  std::vector<PendingRecovery> recoveries_;
  std::deque<Addr> wrong_path_queue_;  // addresses awaiting wrong-exec issue

  // Per-cycle FU accounting (rebuilt each tick).
  std::array<uint32_t, 5> fu_used_{};

  TuId tu_ = 0;
  TraceSink* trace_ = nullptr;
  FaultSession* faults_ = nullptr;
  CommitHook commit_hook_;
  uint64_t* commit_sink_ = nullptr;  // owner's incremental committed total
  int64_t* active_sink_ = nullptr;   // owner's incremental active-core count
  uint64_t* arch_commit_sink_ = nullptr;  // correct-path commits only

  CoreStats core_stats_;
  StatsRegistry::Counter stat_committed_;
  StatsRegistry::Counter stat_mispredicts_;
  StatsRegistry::Counter stat_branches_;
  StatsRegistry::Counter stat_wrong_path_loads_;
  StatsRegistry::Histogram hist_rob_occupancy_;  // sampled every active cycle
  StatsRegistry::Histogram hist_squash_depth_;   // ROB entries per recovery

  // Run-length batch for hist_rob_occupancy_: `occ_run_len_` pending samples
  // at value `occ_run_value_`, flushed on change / flush_stats().
  uint64_t occ_run_value_ = 0;
  uint64_t occ_run_len_ = 0;
};

}  // namespace wecsim
