// Blocking client for the wecsimd NDJSON protocol (service/protocol.h).
// Used by wecsimctl, the service tests, and the chaos harness. One request
// per call: send a line, read the one-line reply, parse it.
#pragma once

#include <string>

#include "obs/json.h"
#include "service/protocol.h"

namespace wecsim {

class ServiceClient {
 public:
  explicit ServiceClient(std::string socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  const std::string& socket_path() const { return socket_path_; }

  /// Sends one request line and returns the parsed reply. Connects lazily
  /// and reconnects after an error. Throws SimError when the daemon cannot
  /// be reached or the reply is malformed. When `raw` is non-null it
  /// receives the exact reply line (wecsimctl prints it verbatim).
  JsonValue request(const std::string& line, std::string* raw = nullptr);

  JsonValue submit(const JobSpec& spec) { return request(submit_request(spec)); }
  JsonValue status(const std::string& job_id) {
    return request(status_request(job_id));
  }
  JsonValue health() { return request(health_request()); }
  JsonValue drain() { return request(drain_request()); }

  /// Polls status until the job reports "done" or `timeout_s` elapses.
  /// Returns the final status reply; throws SimError on timeout or when
  /// the daemon disappears and does not come back.
  JsonValue wait(const std::string& job_id, double timeout_s);

  /// True once the daemon accepts connections and answers a health request,
  /// polling up to `timeout_s`.
  static bool wait_ready(const std::string& socket_path, double timeout_s);

 private:
  void ensure_connected();
  void disconnect();

  std::string socket_path_;
  int fd_ = -1;
  std::string buf_;  // bytes read past the last reply line
};

}  // namespace wecsim
