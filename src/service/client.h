// Blocking client for the wecsimd NDJSON protocol (service/protocol.h).
// Used by wecsimctl, the service tests, and the chaos harness. One request
// per call: send a line, read the one-line reply, parse it.
//
// Endpoints: a string containing '/' is a Unix socket path; anything else
// is a "host:port" TCP address (numeric IPv4 or "localhost"). Every
// connect/read/write honours an optional per-request deadline
// (set_timeout_ms) — a blown deadline throws ServiceTimeout, which
// wecsimctl maps to its own exit code so scripts can tell "daemon said no"
// from "daemon unreachable". Transport errors (refused, reset, half-open
// peer) are retried up to `retries` times with exponential backoff and
// seeded jitter; pairing retries with a submit request id keeps the retry
// safe — the daemon dedups on the rid, so "retried" never means
// "duplicated".
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"
#include "obs/json.h"
#include "service/protocol.h"

namespace wecsim {

/// A client-side deadline expired before the daemon answered.
struct ServiceTimeout : SimError {
  using SimError::SimError;
};

/// A fresh request id for idempotent submits: unique across processes and
/// across restarts of one pid (worker_token incarnation + counter).
std::string make_request_id();

class ServiceClient {
 public:
  explicit ServiceClient(std::string endpoint);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  const std::string& endpoint() const { return endpoint_; }

  /// Deadline for each subsequent request() — connect, send, and the full
  /// reply must land within `ms`. 0 (the default) blocks indefinitely.
  void set_timeout_ms(uint32_t ms) { timeout_ms_ = ms; }

  /// Transport-error retry budget for each subsequent request(): up to
  /// `retries` reconnect attempts, sleeping failsoft-style (exponential
  /// backoff from `backoff_ms`, jittered by `seed`) between them. The
  /// request deadline, when set, caps the whole affair.
  void set_retries(uint32_t retries, uint32_t backoff_ms = 100,
                   uint64_t seed = 0);

  /// Sends one request line and returns the parsed reply. Connects lazily
  /// and reconnects after an error. Throws ServiceTimeout when the deadline
  /// expires, SimError when the daemon cannot be reached (after retries)
  /// or the reply is malformed. When `raw` is non-null it receives the
  /// exact reply line (wecsimctl prints it verbatim).
  JsonValue request(const std::string& line, std::string* raw = nullptr);

  JsonValue submit(const JobSpec& spec, const std::string& rid = "") {
    return request(submit_request(spec, rid));
  }
  JsonValue status(const std::string& job_id) {
    return request(status_request(job_id));
  }
  JsonValue health() { return request(health_request()); }
  JsonValue drain() { return request(drain_request()); }

  /// Polls status until the job reports "done" or `timeout_s` elapses.
  /// Returns the final status reply; throws SimError on timeout or when
  /// the daemon disappears and does not come back.
  JsonValue wait(const std::string& job_id, double timeout_s);

  /// True once the daemon accepts connections and answers a health request,
  /// polling up to `timeout_s`.
  static bool wait_ready(const std::string& endpoint, double timeout_s);

 private:
  /// Remaining ms until `deadline_ms` on the monotonic clock; -1 when no
  /// deadline is set. Throws ServiceTimeout at/after the deadline.
  int remaining_ms(int64_t deadline_ms) const;
  void connect_once(int64_t deadline_ms);
  JsonValue request_once(const std::string& payload, std::string* raw,
                         int64_t deadline_ms);
  void disconnect();

  std::string endpoint_;
  uint32_t timeout_ms_ = 0;
  uint32_t retries_ = 0;
  uint32_t retry_backoff_ms_ = 100;
  uint64_t retry_seed_ = 0;
  int fd_ = -1;
  std::string buf_;  // bytes read past the last reply line
};

}  // namespace wecsim
