#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.h"

namespace wecsim {

ServiceClient::ServiceClient(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

void ServiceClient::ensure_connected() {
  if (fd_ >= 0) return;
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof addr.sun_path) {
    throw SimError("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof addr.sun_path - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw SimError(std::string("socket() failed: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    disconnect();
    throw SimError("cannot connect to wecsimd at " + socket_path_ + ": " +
                   std::strerror(e));
  }
}

JsonValue ServiceClient::request(const std::string& line, std::string* raw) {
  ensure_connected();
  std::string payload = line;
  payload.push_back('\n');
  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n =
        ::write(fd_, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      disconnect();
      throw SimError("wecsimd request failed: " + std::string(strerror(e)));
    }
    off += static_cast<size_t>(n);
  }
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      const std::string reply = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (raw != nullptr) *raw = reply;
      return parse_json(reply);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    disconnect();
    throw SimError("wecsimd closed the connection mid-reply");
  }
}

JsonValue ServiceClient::wait(const std::string& job_id, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    try {
      JsonValue reply = status(job_id);
      if (reply.at("ok").as_bool() &&
          reply.at("state").as_string() == "done") {
        return reply;
      }
    } catch (const SimError&) {
      // Daemon restarting (chaos mode): keep polling until the deadline.
      disconnect();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw SimError("timed out waiting for job " + job_id);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool ServiceClient::wait_ready(const std::string& socket_path,
                               double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    try {
      ServiceClient probe(socket_path);
      const JsonValue reply = probe.health();
      if (reply.at("ok").as_bool()) return true;
    } catch (const SimError&) {
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

}  // namespace wecsim
