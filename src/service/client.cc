#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "harness/experiment.h"
#include "harness/journal.h"

namespace wecsim {

namespace {

int64_t mono_ms() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000000;
}

bool is_unix_endpoint(const std::string& endpoint) {
  return endpoint.find('/') != std::string::npos;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::string make_request_id() {
  static std::atomic<uint64_t> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof buf, "r-%016llx-%llu",
                static_cast<unsigned long long>(
                    worker_token(static_cast<int64_t>(::getpid()))),
                static_cast<unsigned long long>(++counter));
  return buf;
}

ServiceClient::ServiceClient(std::string endpoint)
    : endpoint_(std::move(endpoint)) {}

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::set_retries(uint32_t retries, uint32_t backoff_ms,
                                uint64_t seed) {
  retries_ = retries;
  retry_backoff_ms_ = backoff_ms;
  retry_seed_ = seed;
}

void ServiceClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

int ServiceClient::remaining_ms(int64_t deadline_ms) const {
  if (deadline_ms < 0) return -1;  // no deadline: poll() blocks
  const int64_t left = deadline_ms - mono_ms();
  if (left <= 0) {
    throw ServiceTimeout("wecsimd at " + endpoint_ + " did not answer within " +
                         std::to_string(timeout_ms_) + "ms");
  }
  return left > 1000000 ? 1000000 : static_cast<int>(left);
}

void ServiceClient::connect_once(int64_t deadline_ms) {
  if (fd_ >= 0) return;
  int fd = -1;
  int rc = -1;
  if (is_unix_endpoint(endpoint_)) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (endpoint_.size() >= sizeof addr.sun_path) {
      throw SimError("socket path too long: " + endpoint_);
    }
    std::strncpy(addr.sun_path, endpoint_.c_str(), sizeof addr.sun_path - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw SimError(std::string("socket() failed: ") + std::strerror(errno));
    }
    set_nonblocking(fd);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } else {
    const size_t colon = endpoint_.rfind(':');
    if (colon == std::string::npos) {
      throw SimError("bad endpoint '" + endpoint_ +
                     "': expected socket path or host:port");
    }
    std::string host = endpoint_.substr(0, colon);
    if (host == "localhost") host = "127.0.0.1";
    const int port = std::atoi(endpoint_.c_str() + colon + 1);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw SimError("bad endpoint '" + endpoint_ +
                     "': host must be a numeric IPv4 address or 'localhost'");
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw SimError(std::string("socket() failed: ") + std::strerror(errno));
    }
    set_nonblocking(fd);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }
  if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
    const int e = errno;
    ::close(fd);
    throw SimError("cannot connect to wecsimd at " + endpoint_ + ": " +
                   std::strerror(e));
  }
  if (rc != 0) {
    // Connection in progress: wait for writability within the deadline.
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      int left;
      try {
        left = remaining_ms(deadline_ms);
      } catch (...) {
        ::close(fd);
        throw;
      }
      const int n = ::poll(&pfd, 1, left);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        if (n == 0) {
          throw ServiceTimeout("connect to wecsimd at " + endpoint_ +
                               " timed out after " +
                               std::to_string(timeout_ms_) + "ms");
        }
        throw SimError(std::string("poll() failed: ") + std::strerror(errno));
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      throw SimError("cannot connect to wecsimd at " + endpoint_ + ": " +
                     std::strerror(err != 0 ? err : errno));
    }
  }
  fd_ = fd;
}

JsonValue ServiceClient::request_once(const std::string& payload,
                                      std::string* raw, int64_t deadline_ms) {
  connect_once(deadline_ms);
  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n =
        ::write(fd_, payload.data() + off, payload.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, remaining_ms(deadline_ms));
      if (rc < 0 && errno != EINTR) {
        throw SimError(std::string("poll() failed: ") + std::strerror(errno));
      }
      if (rc == 0) {
        throw ServiceTimeout("send to wecsimd at " + endpoint_ +
                             " timed out after " + std::to_string(timeout_ms_) +
                             "ms");
      }
      continue;
    }
    throw SimError("wecsimd request failed: " +
                   std::string(std::strerror(errno)));
  }
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      const std::string reply = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (raw != nullptr) *raw = reply;
      return parse_json(reply);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, remaining_ms(deadline_ms));
      if (rc < 0 && errno != EINTR) {
        throw SimError(std::string("poll() failed: ") + std::strerror(errno));
      }
      if (rc == 0) {
        // A half-open peer (e.g. the daemon's host vanished mid-reply)
        // lands here rather than hanging forever.
        throw ServiceTimeout("reply from wecsimd at " + endpoint_ +
                             " timed out after " + std::to_string(timeout_ms_) +
                             "ms");
      }
      continue;
    }
    throw SimError("wecsimd closed the connection mid-reply");
  }
}

JsonValue ServiceClient::request(const std::string& line, std::string* raw) {
  std::string payload = line;
  payload.push_back('\n');
  const int64_t deadline_ms =
      timeout_ms_ > 0 ? mono_ms() + static_cast<int64_t>(timeout_ms_) : -1;
  for (uint32_t attempt = 0;; ++attempt) {
    try {
      return request_once(payload, raw, deadline_ms);
    } catch (const ServiceTimeout&) {
      disconnect();
      throw;  // the deadline bounds retries too
    } catch (const SimError&) {
      disconnect();
      if (attempt >= retries_) throw;
    }
    // Exponential backoff with seeded jitter so a thundering herd of
    // retrying clients spreads out; the deadline still caps the sleep.
    int64_t sleep_ms = static_cast<int64_t>(
        failsoft_backoff_ms(retry_backoff_ms_, attempt, retry_seed_,
                            endpoint_));
    if (deadline_ms >= 0) {
      const int left = remaining_ms(deadline_ms);  // throws when spent
      if (sleep_ms > left) sleep_ms = left;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

JsonValue ServiceClient::wait(const std::string& job_id, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    try {
      JsonValue reply = status(job_id);
      if (reply.at("ok").as_bool() &&
          reply.at("state").as_string() == "done") {
        return reply;
      }
    } catch (const SimError&) {
      // Daemon restarting (chaos mode): keep polling until the deadline.
      disconnect();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw SimError("timed out waiting for job " + job_id);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool ServiceClient::wait_ready(const std::string& endpoint, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    try {
      ServiceClient probe(endpoint);
      probe.set_timeout_ms(2000);
      const JsonValue reply = probe.health();
      if (reply.at("ok").as_bool()) return true;
    } catch (const SimError&) {
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

}  // namespace wecsim
