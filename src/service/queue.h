// Persistent service job queue: the admission WAL of wecsimd. Accepted
// jobs are appended to <state_dir>/service.queue.jsonl as sealed, fsync'd
// JSONL lines (the same format as the sweep journal — harness/journal.h)
// BEFORE the daemon acknowledges the submit, so a kill -9 at any point
// loses zero accepted work:
//
//   {"ev":"job","id":"j-000001","spec":{...JobSpec...},"integrity":...}
//   {"ev":"job_done","id":"j-000001","integrity":...}
//
// On restart the WAL is replayed: jobs without a "job_done" marker are the
// recovery set, re-run against their per-job sweep journals under
// <state_dir>/jobs/<id>/. The WAL inherits the journal's robustness
// properties — per-line integrity seals, a torn tail costs only the
// unacknowledged trailing append, a corrupt line costs one job's replay.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/journal.h"
#include "service/protocol.h"

namespace wecsim {

/// Directory holding one job's sweep journal and final report.
std::string job_dir(const std::string& state_dir, const std::string& job_id);
/// The job's sweep journal (SweepJournal / JournalReplay format).
std::string job_journal_path(const std::string& state_dir,
                             const std::string& job_id);
/// The job's final run report (written atomically at finalize).
std::string job_report_path(const std::string& state_dir,
                            const std::string& job_id);

class ServiceQueue {
 public:
  struct PendingJob {
    std::string id;
    JobSpec spec;
  };

  /// Opens (creating state_dir if needed) and replays the WAL. Unfinished
  /// jobs land in pending() in admission order; replay problems (torn
  /// tail, corrupt lines) land in warnings(). Throws SimError when the
  /// state dir or WAL cannot be created.
  explicit ServiceQueue(std::string state_dir);

  const std::string& state_dir() const { return state_dir_; }
  const std::vector<PendingJob>& pending() const { return pending_; }
  const std::vector<std::string>& warnings() const { return warnings_; }

  /// Durably admits a job: assigns the next id, appends + fsyncs the WAL
  /// entry, creates the job directory. Returns the job id. The caller
  /// replies "ok" to the client only after this returns.
  std::string admit(const JobSpec& spec);

  /// Durably marks a job finished (its report is on disk).
  void mark_done(const std::string& id);

 private:
  std::string state_dir_;
  std::unique_ptr<SealedAppendLog> wal_;
  std::vector<PendingJob> pending_;
  std::vector<std::string> warnings_;
  uint64_t next_seq_ = 1;
};

}  // namespace wecsim
