// Persistent service job queue: the admission WAL of wecsimd. Accepted
// jobs are appended to <state_dir>/service.queue.jsonl as sealed, fsync'd
// JSONL lines (the same format as the sweep journal — harness/journal.h)
// BEFORE the daemon acknowledges the submit, so a kill -9 at any point
// loses zero accepted work:
//
//   {"ev":"job","id":"j-000001","rid":"...","spec":{...JobSpec...},...}
//   {"ev":"job_done","id":"j-000001","integrity":...}
//
// On restart the WAL is replayed: jobs without a "job_done" marker are the
// recovery set, re-run against their per-job sweep journals under
// <state_dir>/jobs/<id>/. The WAL inherits the journal's robustness
// properties — per-line integrity seals, a torn tail costs only the
// unacknowledged trailing append, a corrupt line costs one job's replay.
//
// Federation (docs/SERVICE.md, "Multi-host deployment"): several daemons
// may share one state dir. The WAL is their common admission ledger —
// admit() serializes id assignment under an flock on <state_dir>/
// service.lock and rescans the WAL inside the critical section, so two
// daemons never mint the same job id; poll_new() tails the WAL so each
// daemon discovers jobs its peers admitted. Because peers may be
// mid-append at any moment, a shared WAL is NEVER truncated on reopen —
// a torn tail is healed by the next appender (SealedAppendLog) instead.
// The "rid" (client request id) makes admission idempotent: a retried
// submit that raced a dropped reply finds its original job.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "harness/journal.h"
#include "service/protocol.h"

namespace wecsim {

/// Directory holding one job's sweep journal and final report.
std::string job_dir(const std::string& state_dir, const std::string& job_id);
/// The job's sweep journal (SweepJournal / JournalReplay format).
std::string job_journal_path(const std::string& state_dir,
                             const std::string& job_id);
/// The job's final run report (written atomically at finalize).
std::string job_report_path(const std::string& state_dir,
                            const std::string& job_id);
/// Per-point provenance sidecar (hot/cached/resumed/stolen), written next
/// to the report at finalize. Deliberately NOT part of report.json so the
/// report stays byte-identical whatever path the points took.
std::string job_provenance_path(const std::string& state_dir,
                                const std::string& job_id);

class ServiceQueue {
 public:
  struct PendingJob {
    std::string id;
    std::string rid;  // client request id; "" for legacy entries
    JobSpec spec;
  };

  /// Jobs and completions newly observed in the shared WAL since the last
  /// scan (admitted or finished by a peer daemon).
  struct WalNews {
    std::vector<PendingJob> jobs;
    std::vector<std::string> done;
  };

  /// Opens (creating state_dir if needed) and replays the WAL. Unfinished
  /// jobs land in pending() in admission order; replay problems (corrupt
  /// lines) land in warnings(). Throws SimError when the state dir or WAL
  /// cannot be created. The WAL is never truncated: peers of this daemon
  /// may be appending concurrently.
  explicit ServiceQueue(std::string state_dir);

  const std::string& state_dir() const { return state_dir_; }
  const std::vector<PendingJob>& pending() const { return pending_; }
  const std::vector<std::string>& warnings() const { return warnings_; }

  /// Durably admits a job: takes the admission flock, rescans the WAL for
  /// peer admissions, assigns the next unused id, creates the job
  /// directory, appends + fsyncs the WAL entry. Returns the job id. The
  /// caller replies "ok" to the client only after this returns. When `rid`
  /// is non-empty and a job with that request id already exists (this
  /// daemon or a peer admitted it — the client is retrying a submit whose
  /// reply was lost), the existing id is returned and *duplicate is set.
  std::string admit(const JobSpec& spec, const std::string& rid = "",
                    bool* duplicate = nullptr);

  /// Durably marks a job finished (its report is on disk).
  void mark_done(const std::string& id);

  /// The job id admitted under client request id `rid`, or "" if none.
  std::string find_request(const std::string& rid) const;

  /// Tails the WAL: returns jobs/completions appended by peer daemons
  /// since the last scan. Cheap when the file has not grown. New replay
  /// warnings (never ones already reported) are appended to warnings().
  WalNews poll_new();

 private:
  struct ScanState {
    std::vector<PendingJob> order;   // "job" entries in admission order
    std::set<std::string> done;      // ids with a "job_done" marker
    uint64_t max_seq = 0;
  };

  ScanState scan(std::vector<std::string>* new_warnings);
  /// Folds a scan into the in-memory WAL mirror (mirror_/known_ids_/
  /// done_ids_/rids_/next_seq_). Scanning and DELIVERING are separate:
  /// admit()'s under-lock rescan may observe a peer's job long before
  /// poll_new() hands it to the daemon — observation must not eat the
  /// delivery.
  void merge(const ScanState& st);

  std::string state_dir_;
  std::unique_ptr<SealedAppendLog> wal_;
  std::vector<PendingJob> pending_;
  std::vector<std::string> warnings_;
  std::set<std::string> warned_;     // dedup across repeated scans
  std::vector<PendingJob> mirror_;   // every "job" entry, admission order
  std::set<std::string> known_ids_;  // ids present in mirror_
  std::set<std::string> done_ids_;   // every "job_done" id observed
  std::set<std::string> delivered_;       // job ids handed to the daemon
  std::set<std::string> delivered_done_;  // done ids handed to the daemon
  std::vector<std::pair<std::string, std::string>> rids_;  // (rid, id)
  uint64_t next_seq_ = 1;
  int64_t last_wal_size_ = -1;       // stat size at the last scan
};

}  // namespace wecsim
