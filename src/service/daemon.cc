#include "service/daemon.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/error.h"
#include "harness/experiment.h"
#include "harness/state_dir.h"
#include "obs/integrity.h"
#include "service/protocol.h"

namespace wecsim {

namespace {

// Self-pipe signal plumbing: handlers set a flag and poke the event loop.
volatile sig_atomic_t g_sigchld = 0;
volatile sig_atomic_t g_sigterm = 0;
int g_wake_fd = -1;

void on_signal(int sig) {
  if (sig == SIGCHLD) {
    g_sigchld = 1;
  } else {
    g_sigterm = 1;
  }
  if (g_wake_fd >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(g_wake_fd, &byte, 1);
  }
}

void install_signals() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGCHLD, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
  // The parent's signal mask is inherited: some launchers (ctest among
  // them) spawn children with SIGCHLD blocked, which would leave worker
  // exits undelivered and the event loop asleep in poll() forever.
  sigset_t unblock;
  sigemptyset(&unblock);
  sigaddset(&unblock, SIGCHLD);
  sigaddset(&unblock, SIGTERM);
  sigaddset(&unblock, SIGINT);
  ::sigprocmask(SIG_UNBLOCK, &unblock, nullptr);
}

void reset_signals_in_child() {
  ::signal(SIGCHLD, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGPIPE, SIG_DFL);
  sigset_t none;
  sigemptyset(&none);
  ::sigprocmask(SIG_SETMASK, &none, nullptr);
}

std::string describe_worker_death(int status) {
  if (WIFSIGNALED(status)) {
    return "worker killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return "worker exited with status " + std::to_string(WEXITSTATUS(status));
  }
  return "worker died (wait status " + std::to_string(status) + ")";
}

std::string error_reply(const std::string& error) {
  JsonWriter w;
  w.begin_object();
  w.kv("ok", false);
  w.kv("error", error);
  w.end_object();
  return w.take();
}

std::string detail_reply(const std::string& error,
                         const std::vector<std::string>& detail) {
  JsonWriter w;
  w.begin_object();
  w.kv("ok", false);
  w.kv("error", error);
  w.key("detail").begin_array();
  for (const std::string& d : detail) w.value(d);
  w.end_array();
  w.end_object();
  return w.take();
}

std::string backpressure_reply(const std::string& error,
                               uint32_t retry_after_ms) {
  JsonWriter w;
  w.begin_object();
  w.kv("ok", false);
  w.kv("error", error);
  w.kv("retry_after_ms", retry_after_ms);
  w.end_object();
  return w.take();
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw SimError("cannot create directory " + path + ": " +
                 std::strerror(errno));
}

int64_t file_size(const std::string& path) {
  struct stat sb;
  return ::stat(path.c_str(), &sb) == 0 ? static_cast<int64_t>(sb.st_size)
                                        : -1;
}

int64_t mono_ms() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000000;
}

const char* point_state_name(int st) {
  switch (st) {
    case 0: return "queued";   // kReady
    case 1: return "queued";   // kBackoff (a scheduling detail, not a state)
    case 2: return "running";  // kRunning
    case 3: return "done";     // kDone
    case 4: return "failed";   // kFailed
  }
  return "unknown";
}

}  // namespace

ServiceConfig service_config_from_env(const std::string& state_dir) {
  std::vector<std::string> errors;
  const ServiceEnv env = parse_service_env(&errors);
  throw_if_env_errors(errors);
  ServiceConfig config;
  config.state_dir = state_dir;
  config.socket =
      env.socket.empty() ? state_dir + "/wecsimd.sock" : env.socket;
  config.listen = env.listen;
  config.workers = env.workers != 0
                       ? env.workers
                       : std::max(1u, std::thread::hardware_concurrency());
  config.max_queue = env.max_queue;
  config.quota = env.quota;
  config.retries = env.retries;
  config.backoff_ms = env.backoff_ms;
  config.retry_after_ms = env.retry_after_ms;
  config.lease_ms = env.lease_ms;
  return config;
}

ServiceDaemon::ServiceDaemon(ServiceConfig config)
    : config_(std::move(config)),
      queue_(config_.state_dir),
      started_(Clock::now()) {
  workers_.resize(config_.workers);
}

ServiceDaemon::~ServiceDaemon() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    ::unlink((config_.socket + ".tcp").c_str());
  }
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  g_wake_fd = -1;
}

void ServiceDaemon::open_socket() {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (config_.socket.size() >= sizeof addr.sun_path) {
    throw SimError("socket path too long: " + config_.socket);
  }
  std::strncpy(addr.sun_path, config_.socket.c_str(),
               sizeof addr.sun_path - 1);
  // A previous daemon that was SIGKILLed leaves its socket file behind;
  // this daemon owns the socket path now, so replace it.
  ::unlink(config_.socket.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    throw SimError(std::string("socket() failed: ") + std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw SimError("cannot bind " + config_.socket + ": " +
                   std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw SimError("cannot listen on " + config_.socket + ": " +
                   std::strerror(errno));
  }
}

void ServiceDaemon::open_tcp() {
  if (config_.listen.empty()) return;
  const size_t colon = config_.listen.rfind(':');
  std::string host = config_.listen.substr(0, colon);
  const int port = std::atoi(config_.listen.c_str() + colon + 1);
  if (host == "localhost") host = "127.0.0.1";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SimError("cannot listen on '" + config_.listen +
                   "': host must be a numeric IPv4 address or 'localhost'");
  }
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (tcp_fd_ < 0) {
    throw SimError(std::string("socket() failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw SimError("cannot bind " + config_.listen + ": " +
                   std::strerror(errno));
  }
  if (::listen(tcp_fd_, 64) != 0) {
    throw SimError("cannot listen on " + config_.listen + ": " +
                   std::strerror(errno));
  }
  // Resolve the actual port (--listen host:0 binds an ephemeral one) and
  // publish it next to the Unix socket so tests and scripts can find it.
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  std::string endpoint = config_.listen;
  if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    const std::string pub_host =
        host == "0.0.0.0" ? std::string("127.0.0.1") : host;
    endpoint = pub_host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  std::string error;
  if (!try_write_file_atomic(config_.socket + ".tcp", endpoint + "\n",
                             &error)) {
    std::fprintf(stderr, "wecsimd: cannot publish TCP endpoint: %s\n",
                 error.c_str());
  }
  std::fprintf(stderr, "wecsimd: TCP listener on %s\n", endpoint.c_str());
}

std::string ServiceDaemon::lease_path(const Job& job, const Point& pt) const {
  const std::string ident = job.spec.workload + "|" + pt.spec.key;
  char digest[24];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(fnv1a64(ident)));
  return job_dir(config_.state_dir, job.id) + "/leases/" +
         sanitize_run_name(ident) + "-" + digest + ".lease";
}

void ServiceDaemon::apply_terminal(Job& job, Point& pt,
                                   const JournalReplay::Entry& entry,
                                   bool resumed) {
  if (entry.state == JournalReplay::State::kFailed) {
    pt.st = Point::St::kFailed;
    ++job.failed;
  } else {
    pt.st = Point::St::kDone;
  }
  ++job.terminal;
  // Provenance, most-specific first: a point completed under a stolen
  // lease is "stolen" even across a restart; then "resumed" (terminal at
  // recovery time), then disk-cache hits, then a plain fresh run.
  if (entry.via == "stolen") {
    pt.provenance = "stolen";
  } else if (resumed) {
    pt.provenance = "resumed";
  } else if (entry.state == JournalReplay::State::kDone && !entry.fresh) {
    pt.provenance = "cached";
  } else {
    pt.provenance = "hot";
  }
}

ServiceDaemon::Job& ServiceDaemon::add_job(const std::string& id,
                                           JobSpec spec, bool recovered) {
  jobs_.push_back(Job{});
  Job& job = jobs_.back();
  job.id = id;
  job.spec = std::move(spec);
  job_index_[id] = jobs_.size() - 1;

  const std::string path = job_journal_path(config_.state_dir, id);
  JournalReplay replay;
  if (recovered) {
    replay = JournalReplay::load(path);
    for (const std::string& w : replay.warnings) {
      std::fprintf(stderr, "wecsimd: %s: %s\n", id.c_str(), w.c_str());
    }
  }
  // The journal is NEVER truncated: a peer daemon sharing this state dir
  // (or an orphaned worker of a killed one) may be mid-append, and its
  // fresh line is indistinguishable from a torn tail. A genuinely torn
  // tail is healed by the next append instead (SealedAppendLog).
  ensure_dir(job_dir(config_.state_dir, id));
  ensure_dir(job_dir(config_.state_dir, id) + "/leases");
  job.journal = std::make_unique<SweepJournal>(path);
  job.journal_bytes = file_size(path);

  std::vector<JournalPoint> to_queue;
  for (const PointSpec& ps : job.spec.points) {
    Point pt;
    pt.spec = ps;
    const auto it =
        replay.points.find(JournalReplay::PointKey{job.spec.workload, ps.key});
    if (it == replay.points.end()) {
      // Never journaled (fresh admit, or the daemon died between the WAL
      // append and the queued batch): journal it now, before any worker
      // could record a terminal event for it.
      to_queue.push_back(JournalPoint{job.spec.workload, ps.key});
    } else if (it->second.state == JournalReplay::State::kDone ||
               it->second.state == JournalReplay::State::kFailed) {
      apply_terminal(job, pt, it->second, /*resumed=*/true);
    }
    job.points.push_back(std::move(pt));
  }
  if (!to_queue.empty()) job.journal->queued(to_queue);
  maybe_finalize(job);
  return job;
}

void ServiceDaemon::recover() {
  for (const std::string& w : queue_.warnings()) {
    std::fprintf(stderr, "wecsimd: queue WAL: %s\n", w.c_str());
  }
  for (const ServiceQueue::PendingJob& pending : queue_.pending()) {
    Job& job = add_job(pending.id, pending.spec, /*recovered=*/true);
    std::fprintf(stderr,
                 "wecsimd: recovered job %s (%zu/%zu point(s) finished)\n",
                 job.id.c_str(), job.terminal, job.points.size());
  }
}

size_t ServiceDaemon::busy_workers() const {
  size_t n = 0;
  for (const Worker& w : workers_) {
    if (w.busy) ++n;
  }
  return n;
}

bool ServiceDaemon::unfinished_work() const {
  for (const Job& job : jobs_) {
    if (!job.finalized) return true;
  }
  return false;
}

size_t ServiceDaemon::queue_depth() const {
  size_t n = 0;
  for (const Job& job : jobs_) {
    if (job.finalized) continue;
    for (const Point& pt : job.points) {
      if (pt.st != Point::St::kDone && pt.st != Point::St::kFailed) ++n;
    }
  }
  return n;
}

size_t ServiceDaemon::client_queued(const std::string& client) const {
  size_t n = 0;
  for (const Job& job : jobs_) {
    if (job.finalized || job.spec.client != client) continue;
    for (const Point& pt : job.points) {
      if (pt.st != Point::St::kDone && pt.st != Point::St::kFailed) ++n;
    }
  }
  return n;
}

void ServiceDaemon::enter_degraded(const std::string& reason) {
  if (degraded_) return;
  degraded_ = true;
  degraded_reason_ = reason;
  std::fprintf(stderr,
               "wecsimd: DEGRADED (state dir failing): %s\n"
               "wecsimd: no longer admitting or scheduling; status/health "
               "remain available\n",
               reason.c_str());
}

void ServiceDaemon::write_provenance(const Job& job) {
  JsonWriter w;
  w.begin_object();
  w.kv("job", job.id);
  w.kv("name", job.spec.name);
  w.kv("workload", job.spec.workload);
  w.key("points").begin_array();
  for (const Point& pt : job.points) {
    w.begin_object();
    w.kv("key", pt.spec.key);
    w.kv("state", std::string(point_state_name(static_cast<int>(pt.st))));
    w.kv("provenance", pt.provenance);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.take();
  doc.push_back('\n');
  // Best-effort: provenance is an observability sidecar, deliberately NOT
  // part of report.json so the report stays byte-identical whatever path
  // (hot/cached/resumed/stolen) each point took.
  std::string error;
  if (!try_write_file_atomic(job_provenance_path(config_.state_dir, job.id),
                             doc, &error)) {
    std::fprintf(stderr, "wecsimd: %s: provenance sidecar: %s\n",
                 job.id.c_str(), error.c_str());
  }
}

void ServiceDaemon::maybe_finalize(Job& job) {
  if (job.finalized || job.terminal != job.points.size() ||
      job.points.empty()) {
    return;
  }
  // Rebuild the report from the journal in SPEC order — the same
  // submission-order merge the parallel runner uses — so the bytes are
  // identical however completion interleaved (or resumed, or raced an
  // orphaned worker, or was stolen by a peer daemon).
  try {
    const JournalReplay replay =
        JournalReplay::load(job_journal_path(config_.state_dir, job.id));
    std::vector<RunRecord> records;
    std::vector<PointFailure> failures;
    for (const Point& pt : job.points) {
      const auto it = replay.points.find(
          JournalReplay::PointKey{job.spec.workload, pt.spec.key});
      if (it == replay.points.end()) {
        std::fprintf(stderr,
                     "wecsimd: %s: point %s vanished from the journal\n",
                     job.id.c_str(), pt.spec.key.c_str());
        continue;
      }
      const JournalReplay::Entry& e = it->second;
      if (e.state == JournalReplay::State::kDone) {
        if (e.fresh) records.push_back(e.record);
        if (e.has_failure) failures.push_back(e.failure);
      } else if (e.state == JournalReplay::State::kFailed) {
        failures.push_back(e.failure);
      }
    }
    write_run_report(job_report_path(config_.state_dir, job.id),
                     job.spec.name, records, failures);
    write_provenance(job);
    queue_.mark_done(job.id);
    job.finalized = true;
    std::fprintf(stderr,
                 "wecsimd: job %s finished (%zu record(s), %zu failure(s))\n",
                 job.id.c_str(), records.size(), failures.size());
  } catch (const SimError& e) {
    // Report or WAL write failed (ENOSPC/EIO): the job stays unfinalized
    // — a peer daemon or a restart finishes it once the storage heals.
    enter_degraded(e.what());
  }
}

void ServiceDaemon::worker_main(const Job& job, const Point& pt, bool stolen) {
  reset_signals_in_child();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  g_wake_fd = -1;
  for (const Conn& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  try {
    // The worker journals its own lifecycle so "running" (with this
    // process's pid + incarnation token) is durably ordered before the
    // terminal event it writes later. O_APPEND keeps concurrent whole-line
    // appends from distinct processes intact.
    SweepJournal journal(job_journal_path(config_.state_dir, job.id));
    const JournalPoint jp{job.spec.workload, pt.spec.key};
    journal.running(jp);
    ExperimentRunner runner(
        WorkloadParams{job.spec.scale, job.spec.seed});
    const StaConfig config = point_config(pt.spec);
    const RunMeasurement* m =
        runner.try_run(job.spec.workload, pt.spec.key, config);
    if (m == nullptr) {
      journal.failed(jp, runner.failures().back());
    } else {
      const bool fresh = !runner.records().empty();
      const RunRecord* record = fresh ? &runner.records().back() : nullptr;
      const PointFailure* recovered = nullptr;
      if (!runner.failures().empty() &&
          runner.failures().back().status == "recovered") {
        recovered = &runner.failures().back();
      }
      journal.done(jp, *m, fresh, record, recovered,
                   stolen ? "stolen" : nullptr);
    }
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wecsimd worker (%s|%s): %s\n",
                 job.spec.workload.c_str(), pt.spec.key.c_str(), e.what());
    ::_exit(1);
  } catch (...) {
    ::_exit(1);
  }
}

void ServiceDaemon::spawn_worker(size_t ji, size_t pi, PointLease lease,
                                 bool stolen) {
  Job& job = jobs_[ji];
  Point& pt = job.points[pi];
  std::fflush(stderr);
  std::fflush(stdout);
  const pid_t pid = ::fork();
  if (pid == 0) worker_main(job, pt, stolen);
  if (pid < 0) {
    std::fprintf(stderr, "wecsimd: fork failed: %s\n", std::strerror(errno));
    pt.st = Point::St::kBackoff;
    pt.earliest = Clock::now() + std::chrono::milliseconds(
                                     std::max(config_.backoff_ms, 100u));
    return;  // `lease` releases on scope exit
  }
  pt.st = Point::St::kRunning;
  for (Worker& w : workers_) {
    if (!w.busy) {
      w.pid = pid;
      w.job = ji;
      w.point = pi;
      w.busy = true;
      w.lease = std::move(lease);
      w.renew_at_ms = mono_ms() + static_cast<int64_t>(config_.lease_ms) / 3;
      return;
    }
  }
}

void ServiceDaemon::promote_backoff(Clock::time_point now) {
  for (Job& job : jobs_) {
    if (job.finalized) continue;
    for (Point& pt : job.points) {
      if (pt.st == Point::St::kBackoff && pt.earliest <= now) {
        pt.st = Point::St::kReady;
      }
    }
  }
}

void ServiceDaemon::schedule(Clock::time_point now) {
  if (draining_ || degraded_) return;
  for (;;) {
    Worker* slot = nullptr;
    for (Worker& w : workers_) {
      if (!w.busy) {
        slot = &w;
        break;
      }
    }
    if (slot == nullptr) return;
    // Highest priority first; FIFO (admission order, then spec order)
    // within a priority so one job's report sees its points complete in
    // submission order whenever it runs alone.
    size_t best_ji = jobs_.size(), best_pi = 0;
    uint32_t best_prio = 0;
    for (size_t ji = 0; ji < jobs_.size(); ++ji) {
      Job& job = jobs_[ji];
      if (job.finalized) continue;
      for (size_t pi = 0; pi < job.points.size(); ++pi) {
        if (job.points[pi].st != Point::St::kReady) continue;
        if (best_ji == jobs_.size() || job.spec.priority > best_prio) {
          best_ji = ji;
          best_pi = pi;
          best_prio = job.spec.priority;
        }
        break;  // first ready point of this job is its FIFO head
      }
    }
    if (best_ji == jobs_.size()) return;
    Job& job = jobs_[best_ji];
    Point& pt = job.points[best_pi];
    // Take the point's lease before forking: in a shared state dir a peer
    // daemon may already be running this point. Holding peers make us back
    // off until about when their lease expires; an expired lease is stolen
    // (its holder crashed, froze, or lost the filesystem).
    PointLease lease;
    int64_t held_remaining_ms = 0;
    const PointLease::Outcome outcome =
        PointLease::try_acquire(lease_path(job, pt), config_.lease_ms, &lease,
                                &held_remaining_ms);
    if (outcome == PointLease::Outcome::kHeld) {
      pt.st = Point::St::kBackoff;
      const int64_t wait_ms = std::max<int64_t>(
          25, std::min<int64_t>(held_remaining_ms + 10, config_.lease_ms));
      pt.earliest = now + std::chrono::milliseconds(wait_ms);
      continue;
    }
    if (outcome == PointLease::Outcome::kError) {
      // Lease-file I/O failure: back off rather than stampede. Repeated
      // failures surface via the journal/WAL paths as degraded mode.
      std::fprintf(stderr, "wecsimd: cannot take lease for %s|%s: %s\n",
                   job.spec.workload.c_str(), pt.spec.key.c_str(),
                   std::strerror(errno));
      pt.st = Point::St::kBackoff;
      pt.earliest = now + std::chrono::milliseconds(500);
      continue;
    }
    if (outcome == PointLease::Outcome::kStolen) {
      std::fprintf(stderr,
                   "wecsimd: stole expired lease for %s|%s from a dead or "
                   "frozen peer\n",
                   job.spec.workload.c_str(), pt.spec.key.c_str());
    }
    spawn_worker(best_ji, best_pi, std::move(lease),
                 outcome == PointLease::Outcome::kStolen);
  }
}

void ServiceDaemon::renew_leases() {
  const int64_t now = mono_ms();
  for (Worker& w : workers_) {
    if (!w.busy || now < w.renew_at_ms) continue;
    if (w.lease.held() && !w.lease.renew(config_.lease_ms)) {
      // A peer stole the lease (we were frozen or the clock skewed past
      // the TTL). Let the worker finish anyway: the journal tolerates the
      // duplicate terminal — agreeing measurements keep one copy — so the
      // report is unaffected; only some work was duplicated.
      const Job& job = jobs_[w.job];
      std::fprintf(stderr,
                   "wecsimd: lease for %s|%s was stolen by a peer; letting "
                   "the worker finish (journal dedups)\n",
                   job.spec.workload.c_str(),
                   job.points[w.point].spec.key.c_str());
    }
    w.renew_at_ms = now + static_cast<int64_t>(config_.lease_ms) / 3;
  }
}

void ServiceDaemon::reconcile() {
  // 1. Tail the admission WAL for jobs/completions from peer daemons.
  ServiceQueue::WalNews news;
  try {
    news = queue_.poll_new();
  } catch (const SimError& e) {
    enter_degraded(e.what());
    return;
  }
  for (const ServiceQueue::PendingJob& pending : news.jobs) {
    if (job_index_.count(pending.id) != 0) continue;
    try {
      Job& job = add_job(pending.id, pending.spec, /*recovered=*/true);
      std::fprintf(stderr,
                   "wecsimd: discovered job %s admitted by a peer (%zu/%zu "
                   "point(s) finished)\n",
                   job.id.c_str(), job.terminal, job.points.size());
    } catch (const SimError& e) {
      enter_degraded(e.what());
      return;
    }
  }
  for (const std::string& id : news.done) {
    const auto it = job_index_.find(id);
    if (it == job_index_.end()) continue;
    Job& job = jobs_[it->second];
    if (job.finalized) continue;
    // A peer wrote the report and the WAL marker; adopt its terminal
    // states and stop working on this job.
    const JournalReplay replay =
        JournalReplay::load(job_journal_path(config_.state_dir, job.id));
    for (Point& pt : job.points) {
      if (pt.st == Point::St::kDone || pt.st == Point::St::kFailed ||
          pt.st == Point::St::kRunning) {
        continue;
      }
      const auto pit = replay.points.find(
          JournalReplay::PointKey{job.spec.workload, pt.spec.key});
      if (pit != replay.points.end() &&
          (pit->second.state == JournalReplay::State::kDone ||
           pit->second.state == JournalReplay::State::kFailed)) {
        apply_terminal(job, pt, pit->second, /*resumed=*/true);
      }
    }
    job.finalized = true;
    std::fprintf(stderr, "wecsimd: job %s finalized by a peer\n",
                 job.id.c_str());
  }
  // 2. Tail each live job's journal: adopt terminal entries written by
  // peer daemons (or orphaned workers of dead ones) for points we are not
  // running ourselves. Points we ARE running reconcile at reap time.
  for (Job& job : jobs_) {
    if (job.finalized) continue;
    const std::string path = job_journal_path(config_.state_dir, job.id);
    const int64_t size = file_size(path);
    if (size == job.journal_bytes) continue;
    job.journal_bytes = size;
    const JournalReplay replay = JournalReplay::load(path);
    bool changed = false;
    for (Point& pt : job.points) {
      if (pt.st == Point::St::kDone || pt.st == Point::St::kFailed ||
          pt.st == Point::St::kRunning) {
        continue;
      }
      const auto it = replay.points.find(
          JournalReplay::PointKey{job.spec.workload, pt.spec.key});
      if (it == replay.points.end()) continue;
      if (it->second.state == JournalReplay::State::kDone ||
          it->second.state == JournalReplay::State::kFailed) {
        // A terminal this daemon did not produce (peer daemon or an
        // orphaned worker of a dead one): provenance "resumed" unless the
        // entry itself says "stolen".
        apply_terminal(job, pt, it->second, /*resumed=*/true);
        changed = true;
      }
    }
    if (changed) maybe_finalize(job);
  }
}

void ServiceDaemon::reap_workers() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) return;
    Worker* slot = nullptr;
    for (Worker& w : workers_) {
      if (w.busy && w.pid == pid) {
        slot = &w;
        break;
      }
    }
    if (slot == nullptr) continue;  // not one of ours (shouldn't happen)
    Job& job = jobs_[slot->job];
    Point& pt = job.points[slot->point];
    slot->busy = false;
    slot->pid = -1;
    slot->lease.release();

    if (pt.st == Point::St::kDone || pt.st == Point::St::kFailed) {
      // Already terminal (a peer's entry was adopted while our duplicate
      // worker ran): nothing to account.
      continue;
    }

    bool terminal = false;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // The worker's exit means nothing by itself — the journal is the
      // source of truth. Reload it and sync this point's state.
      const std::string path =
          job_journal_path(config_.state_dir, job.id);
      const JournalReplay replay = JournalReplay::load(path);
      job.journal_bytes = file_size(path);
      const auto it = replay.points.find(
          JournalReplay::PointKey{job.spec.workload, pt.spec.key});
      if (it != replay.points.end() &&
          (it->second.state == JournalReplay::State::kDone ||
           it->second.state == JournalReplay::State::kFailed)) {
        apply_terminal(job, pt, it->second, /*resumed=*/false);
        maybe_finalize(job);
        terminal = true;
      }
    }
    if (terminal) continue;

    // Crash: clean exit without a terminal journal entry counts too (the
    // worker lost its fight with something before recording an outcome).
    ++pt.crashes;
    const std::string death = describe_worker_death(status);
    try {
      if (pt.crashes > config_.retries) {
        PointFailure failure;
        failure.workload = job.spec.workload;
        failure.config_key = pt.spec.key;
        failure.status = "quarantined";
        failure.error = death + " (after " + std::to_string(pt.crashes) +
                        " attempt(s))";
        failure.attempts = pt.crashes;
        job.journal->failed(JournalPoint{job.spec.workload, pt.spec.key},
                            failure);
        pt.st = Point::St::kFailed;
        pt.provenance = "hot";
        ++job.terminal;
        ++job.failed;
        std::fprintf(stderr, "wecsimd: %s|%s quarantined: %s\n",
                     job.spec.workload.c_str(), pt.spec.key.c_str(),
                     death.c_str());
        maybe_finalize(job);
      } else {
        // Re-queue durably: the explicit "queued" line legitimizes the
        // retry's terminal event during replay (journal duplicate-terminal
        // hardening) and keeps the drain contract — a drained journal holds
        // only queued/done/failed lines as the LAST entry per point.
        job.journal->queued({JournalPoint{job.spec.workload, pt.spec.key}});
        pt.st = Point::St::kBackoff;
        const uint32_t shift = std::min(pt.crashes - 1, 10u);
        pt.earliest = Clock::now() +
                      std::chrono::milliseconds(
                          static_cast<uint64_t>(config_.backoff_ms) << shift);
        std::fprintf(stderr, "wecsimd: %s|%s %s; retry %u/%u in %llu ms\n",
                     job.spec.workload.c_str(), pt.spec.key.c_str(),
                     death.c_str(), pt.crashes, config_.retries,
                     static_cast<unsigned long long>(
                         static_cast<uint64_t>(config_.backoff_ms) << shift));
      }
    } catch (const SimError& e) {
      // The journal append failed (ENOSPC/EIO): park the point and stop
      // promising durability.
      pt.st = Point::St::kBackoff;
      pt.earliest = Clock::now() + std::chrono::hours(24);
      enter_degraded(e.what());
    }
  }
}

std::string ServiceDaemon::handle_submit(const JsonValue& req) {
  JobSpec spec = parse_job_spec(req.at("job"));
  const std::vector<std::string> problems = validate_job(spec);
  if (!problems.empty()) return detail_reply("invalid_request", problems);
  if (degraded_) return detail_reply("degraded", {degraded_reason_});
  if (draining_) return error_reply("draining");
  if (queue_depth() + spec.points.size() > config_.max_queue) {
    return backpressure_reply("queue_full", config_.retry_after_ms);
  }
  if (client_queued(spec.client) + spec.points.size() > config_.quota) {
    return backpressure_reply("quota_exceeded", config_.retry_after_ms);
  }
  std::string rid;
  if (req.has("rid")) rid = req.at("rid").as_string();
  const size_t n_points = spec.points.size();
  std::string id;
  bool duplicate = false;
  try {
    id = queue_.admit(spec, rid, &duplicate);  // fsync'd before the reply
    if (!duplicate) {
      add_job(id, std::move(spec), /*recovered=*/false);
    } else if (job_index_.count(id) == 0) {
      // The original admission was a peer's (or raced a previous life of
      // this daemon): pick the job up right away so a follow-up status
      // request on this connection finds it.
      reconcile();
    }
  } catch (const SimError& e) {
    enter_degraded(e.what());
    return detail_reply("degraded", {degraded_reason_});
  }
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("job", id);
  w.kv("points", static_cast<uint64_t>(n_points));
  if (duplicate) w.kv("duplicate", true);
  w.end_object();
  return w.take();
}

std::string ServiceDaemon::handle_status(const JsonValue& req) {
  const std::string id = req.at("job").as_string();
  const auto it = job_index_.find(id);
  if (it == job_index_.end()) return error_reply("unknown_job");
  const Job& job = jobs_[it->second];
  size_t running = 0;
  for (const Point& pt : job.points) {
    if (pt.st == Point::St::kRunning) ++running;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("job", id);
  w.kv("state", job.finalized ? "done"
                              : (job.terminal > 0 || running > 0 ? "running"
                                                                 : "queued"));
  w.kv("total", static_cast<uint64_t>(job.points.size()));
  w.kv("done", static_cast<uint64_t>(job.terminal - job.failed));
  w.kv("failed", static_cast<uint64_t>(job.failed));
  w.kv("running", static_cast<uint64_t>(running));
  w.key("points").begin_array();
  for (const Point& pt : job.points) {
    w.begin_object();
    w.kv("key", pt.spec.key);
    w.kv("state", std::string(point_state_name(static_cast<int>(pt.st))));
    if (!pt.provenance.empty()) w.kv("provenance", pt.provenance);
    w.end_object();
  }
  w.end_array();
  if (job.finalized) {
    w.kv("report", job_report_path(config_.state_dir, job.id));
  }
  w.end_object();
  return w.take();
}

std::string ServiceDaemon::handle_health() {
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("state", degraded_ ? "degraded"
                          : (draining_ ? "draining" : "serving"));
  if (degraded_) w.kv("reason", degraded_reason_);
  w.kv("pid", static_cast<int64_t>(::getpid()));
  w.kv("workers", config_.workers);
  w.kv("busy", static_cast<uint64_t>(busy_workers()));
  w.kv("queue_depth", static_cast<uint64_t>(queue_depth()));
  size_t live = 0;
  for (const Job& job : jobs_) {
    if (!job.finalized) ++live;
  }
  w.kv("jobs_pending", static_cast<uint64_t>(live));
  w.key("worker_pids").begin_array();
  for (const Worker& worker : workers_) {
    if (worker.busy) w.value(static_cast<int64_t>(worker.pid));
  }
  w.end_array();
  w.kv("lease_ms", config_.lease_ms);
  w.kv("uptime_seconds",
       std::chrono::duration<double>(Clock::now() - started_).count());
  w.end_object();
  return w.take();
}

std::string ServiceDaemon::handle_drain() {
  if (!draining_) {
    draining_ = true;
    std::fprintf(stderr, "wecsimd: drain requested; no longer admitting\n");
  }
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("state", "draining");
  w.end_object();
  return w.take();
}

std::string ServiceDaemon::handle_request(const std::string& line) {
  try {
    const JsonValue req = parse_json(line);
    const std::string op = req.at("op").as_string();
    if (op == "submit") return handle_submit(req);
    if (op == "status") return handle_status(req);
    if (op == "health") return handle_health();
    if (op == "drain") return handle_drain();
    return error_reply("unknown_op");
  } catch (const std::exception& e) {
    // Malformed JSON, wrong types, missing fields — anything a fuzzer (or
    // a confused client) sends lands here with the same stable error id
    // the validation path uses. The connection stays healthy.
    return detail_reply("invalid_request", {std::string(e.what())});
  }
}

void ServiceDaemon::accept_conns(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    conns_.push_back(Conn{fd, "", "", false});
  }
}

bool ServiceDaemon::service_conn(Conn& conn) {
  // Flush pending output first.
  while (!conn.out.empty()) {
    const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn.close_after_flush) return !conn.out.empty();
  // Read whatever is available; process complete request lines.
  bool eof = false;
  for (;;) {
    char buf[4096];
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      if (conn.in.size() > (1u << 22)) {
        // Oversized request: reply with the stable error id, then close —
        // a silent close looks like a crash to the client and (worse)
        // like a daemon bug to a fuzzer.
        conn.in.clear();
        conn.out += detail_reply("invalid_request",
                                 {"request exceeds the 4MB line limit"});
        conn.out.push_back('\n');
        conn.close_after_flush = true;
        break;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      eof = true;  // keep the conn only long enough to flush responses
      break;
    }
    return false;
  }
  if (!conn.close_after_flush) {
    size_t nl;
    while ((nl = conn.in.find('\n')) != std::string::npos) {
      const std::string line = conn.in.substr(0, nl);
      conn.in.erase(0, nl + 1);
      if (line.empty()) continue;
      conn.out += handle_request(line);
      conn.out.push_back('\n');
    }
  }
  // Retry the flush so a small response goes out this round trip.
  while (!conn.out.empty()) {
    const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn.close_after_flush) return !conn.out.empty();
  // After peer EOF nothing more can arrive: close once replies are out (a
  // trailing partial line is the client's bug, not a reason to linger).
  if (eof && conn.out.empty()) return false;
  return true;
}

int ServiceDaemon::run() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw SimError(std::string("pipe() failed: ") + std::strerror(errno));
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  // Nonblocking on both ends: the handler must never block, and the drain
  // read must never stall the loop.
  for (const int fd : {wake_rd_, wake_wr_}) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  g_wake_fd = wake_wr_;
  g_sigchld = 0;
  g_sigterm = 0;
  install_signals();
  open_socket();
  open_tcp();
  recover();
  std::fprintf(stderr,
               "wecsimd: serving on %s (state %s, %u worker(s), queue %u, "
               "quota %u, lease %u ms)\n",
               config_.socket.c_str(), config_.state_dir.c_str(),
               config_.workers, config_.max_queue, config_.quota,
               config_.lease_ms);

  // Federation housekeeping cadence: WAL/journal tailing and lease
  // renewal both ride this tick. Renewal must fire well inside the TTL.
  const int64_t tick_ms =
      std::max<int64_t>(10, std::min<int64_t>(config_.lease_ms / 3, 1000));
  int64_t next_reconcile_ms = 0;

  for (;;) {
    if (g_sigchld) {
      g_sigchld = 0;
      reap_workers();
    }
    if (g_sigterm && !draining_) {
      draining_ = true;
      std::fprintf(stderr,
                   "wecsimd: SIGTERM/SIGINT; draining (%zu worker(s) busy)\n",
                   busy_workers());
    }
    const Clock::time_point now = Clock::now();
    renew_leases();
    const int64_t mnow = mono_ms();
    if (mnow >= next_reconcile_ms) {
      reconcile();
      next_reconcile_ms = mnow + tick_ms;
    }
    promote_backoff(now);
    schedule(now);
    if (draining_ && busy_workers() == 0) break;

    // Poll timeout: the nearest of backoff deadlines, lease renewals, and
    // the federation tick; block on I/O alone only when nothing is due.
    int timeout_ms = -1;
    const auto consider = [&timeout_ms](long long ms) {
      const int v = ms < 1 ? 1 : static_cast<int>(std::min<long long>(
                                     ms, 60000));
      timeout_ms = timeout_ms < 0 ? v : std::min(timeout_ms, v);
    };
    for (const Job& job : jobs_) {
      if (job.finalized) continue;
      for (const Point& pt : job.points) {
        if (pt.st != Point::St::kBackoff) continue;
        consider(std::chrono::duration_cast<std::chrono::milliseconds>(
                     pt.earliest - now)
                     .count());
      }
    }
    for (const Worker& w : workers_) {
      if (w.busy) consider(w.renew_at_ms - mnow);
    }
    consider(next_reconcile_ms - mnow);

    std::vector<pollfd> fds;
    fds.push_back(pollfd{wake_rd_, POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    if (tcp_fd_ >= 0) fds.push_back(pollfd{tcp_fd_, POLLIN, 0});
    const size_t conn_base = fds.size();
    for (const Conn& conn : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw SimError(std::string("poll() failed: ") + std::strerror(errno));
    }
    if (rc > 0) {
      if ((fds[0].revents & POLLIN) != 0) {
        char drain[256];
        while (::read(wake_rd_, drain, sizeof drain) > 0) {
        }
      }
      // Service only the connections that were actually polled: accept()
      // grows conns_ past fds, and indexing fds for a conn accepted this
      // round would read past the end (garbage revents closed fresh
      // connections at random).
      const size_t n_polled = conns_.size();
      if ((fds[1].revents & POLLIN) != 0) accept_conns(listen_fd_);
      if (tcp_fd_ >= 0 && (fds[2].revents & POLLIN) != 0) {
        accept_conns(tcp_fd_);
      }
      // Service connections back-to-front so erase() stays simple.
      for (size_t i = n_polled; i-- > 0;) {
        const pollfd& pfd = fds[conn_base + i];
        if (pfd.revents == 0) continue;
        if ((pfd.revents & (POLLERR | POLLNVAL)) != 0 ||
            !service_conn(conns_[i])) {
          ::close(conns_[i].fd);
          conns_.erase(conns_.begin() + static_cast<long>(i));
        }
      }
    }
  }

  const bool leftover = unfinished_work();
  std::fprintf(stderr, "wecsimd: drained%s\n",
               leftover ? "; journaled work remains (restart to resume)"
                        : " idle");
  // kExitInterrupted is the PR 5 contract: "re-run (restart) to resume",
  // distinct from clean-idle 0.
  return leftover ? kExitInterrupted : 0;
}

}  // namespace wecsim
