#include "service/queue.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include "common/error.h"

namespace wecsim {

namespace {

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw SimError("cannot create directory " + path + ": " +
                 std::strerror(errno));
}

std::string wal_path(const std::string& state_dir) {
  return state_dir + "/service.queue.jsonl";
}

std::string format_job_id(uint64_t seq) {
  std::string digits = std::to_string(seq);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return "j-" + digits;
}

uint64_t job_id_seq(const std::string& id) {
  if (id.size() < 3 || id.compare(0, 2, "j-") != 0) return 0;
  uint64_t seq = 0;
  for (size_t i = 2; i < id.size(); ++i) {
    const char c = id[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

std::string job_dir(const std::string& state_dir, const std::string& job_id) {
  return state_dir + "/jobs/" + job_id;
}

std::string job_journal_path(const std::string& state_dir,
                             const std::string& job_id) {
  return job_dir(state_dir, job_id) + "/sweep.journal.jsonl";
}

std::string job_report_path(const std::string& state_dir,
                            const std::string& job_id) {
  return job_dir(state_dir, job_id) + "/report.json";
}

ServiceQueue::ServiceQueue(std::string state_dir)
    : state_dir_(std::move(state_dir)) {
  ensure_dir(state_dir_);
  ensure_dir(state_dir_ + "/jobs");

  // Replay first: open jobs in admission order, highest seq seen + 1 as the
  // next id (ids of finished jobs are never reused).
  std::vector<std::string> order;
  std::map<std::string, JobSpec> open;
  const size_t valid_bytes = scan_sealed_lines(
      wal_path(state_dir_),
      [&](const JsonValue& doc) {
        const std::string ev = doc.at("ev").as_string();
        const std::string id = doc.at("id").as_string();
        next_seq_ = std::max(next_seq_, job_id_seq(id) + 1);
        if (ev == "job") {
          if (open.emplace(id, parse_job_spec(doc.at("spec"))).second) {
            order.push_back(id);
          }
        } else if (ev == "job_done") {
          open.erase(id);
        } else {
          throw SimError("unknown queue event: " + ev);
        }
      },
      warnings_);
  for (const std::string& id : order) {
    if (auto it = open.find(id); it != open.end()) {
      pending_.push_back(PendingJob{id, std::move(it->second)});
    }
  }
  // Reopen truncated to the intact prefix — a torn trailing line was never
  // acknowledged to any client, so cutting it loses nothing accepted.
  wal_ = std::make_unique<SealedAppendLog>(wal_path(state_dir_), valid_bytes);
}

std::string ServiceQueue::admit(const JobSpec& spec) {
  const std::string id = format_job_id(next_seq_++);
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "job");
  w.kv("id", id);
  w.key("spec");
  write_job_spec(w, spec);
  wal_->append(finish_sealed_line(w));  // durable before the "ok" reply
  ensure_dir(job_dir(state_dir_, id));
  return id;
}

void ServiceQueue::mark_done(const std::string& id) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "job_done");
  w.kv("id", id);
  wal_->append(finish_sealed_line(w));
}

}  // namespace wecsim
