#include "service/queue.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include "common/error.h"

namespace wecsim {

namespace {

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw SimError("cannot create directory " + path + ": " +
                 std::strerror(errno));
}

std::string wal_path(const std::string& state_dir) {
  return state_dir + "/service.queue.jsonl";
}

std::string lock_path(const std::string& state_dir) {
  return state_dir + "/service.lock";
}

std::string format_job_id(uint64_t seq) {
  std::string digits = std::to_string(seq);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return "j-" + digits;
}

uint64_t job_id_seq(const std::string& id) {
  if (id.size() < 3 || id.compare(0, 2, "j-") != 0) return 0;
  uint64_t seq = 0;
  for (size_t i = 2; i < id.size(); ++i) {
    const char c = id[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

// Exclusive inter-daemon admission lock. flock (not fcntl) so the lock is
// tied to the open file description: a kill -9 releases it automatically.
class AdmitLock {
 public:
  explicit AdmitLock(const std::string& state_dir) {
    const std::string path = lock_path(state_dir);
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      throw SimError("cannot open " + path + ": " + std::strerror(errno));
    }
    while (::flock(fd_, LOCK_EX) != 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw SimError("cannot lock " + path + ": " + std::strerror(err));
    }
  }
  ~AdmitLock() {
    if (fd_ >= 0) ::close(fd_);  // close releases the flock
  }
  AdmitLock(const AdmitLock&) = delete;
  AdmitLock& operator=(const AdmitLock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace

std::string job_dir(const std::string& state_dir, const std::string& job_id) {
  return state_dir + "/jobs/" + job_id;
}

std::string job_journal_path(const std::string& state_dir,
                             const std::string& job_id) {
  return job_dir(state_dir, job_id) + "/sweep.journal.jsonl";
}

std::string job_report_path(const std::string& state_dir,
                            const std::string& job_id) {
  return job_dir(state_dir, job_id) + "/report.json";
}

std::string job_provenance_path(const std::string& state_dir,
                                const std::string& job_id) {
  return job_dir(state_dir, job_id) + "/provenance.json";
}

ServiceQueue::ScanState ServiceQueue::scan(
    std::vector<std::string>* new_warnings) {
  ScanState st;
  std::map<std::string, size_t> index;  // id -> position in st.order
  std::vector<std::string> raw_warnings;
  const size_t valid_bytes = scan_sealed_lines(
      wal_path(state_dir_),
      [&](const JsonValue& doc) {
        const std::string ev = doc.at("ev").as_string();
        const std::string id = doc.at("id").as_string();
        st.max_seq = std::max(st.max_seq, job_id_seq(id));
        if (ev == "job") {
          if (index.emplace(id, st.order.size()).second) {
            PendingJob job;
            job.id = id;
            if (doc.has("rid")) job.rid = doc.at("rid").as_string();
            job.spec = parse_job_spec(doc.at("spec"));
            st.order.push_back(std::move(job));
          }
        } else if (ev == "job_done") {
          st.done.insert(id);
        } else {
          throw SimError("unknown queue event: " + ev);
        }
      },
      raw_warnings);
  struct stat sb;
  last_wal_size_ = ::stat(wal_path(state_dir_).c_str(), &sb) == 0
                       ? static_cast<int64_t>(sb.st_size)
                       : -1;
  (void)valid_bytes;
  // Peers rescan the same file over and over; report each distinct
  // problem once. A "torn tail" note is usually just a peer mid-append
  // and heals by the next scan, but a persistent one is worth seeing.
  for (const std::string& warning : raw_warnings) {
    if (warned_.insert(warning).second && new_warnings != nullptr) {
      new_warnings->push_back(warning);
    }
  }
  return st;
}

void ServiceQueue::merge(const ScanState& st) {
  next_seq_ = std::max(next_seq_, st.max_seq + 1);
  for (const PendingJob& job : st.order) {
    if (known_ids_.insert(job.id).second) {
      if (!job.rid.empty()) rids_.emplace_back(job.rid, job.id);
      mirror_.push_back(job);
    }
  }
  done_ids_.insert(st.done.begin(), st.done.end());
}

ServiceQueue::ServiceQueue(std::string state_dir)
    : state_dir_(std::move(state_dir)) {
  ensure_dir(state_dir_);
  ensure_dir(state_dir_ + "/jobs");

  // Replay: open jobs in admission order, highest seq seen + 1 as the next
  // id candidate (ids of finished jobs are never reused). The WAL is NOT
  // truncated — a peer daemon sharing this state dir may be appending, and
  // what looks like a torn tail could be its in-flight admit. Torn bytes
  // from a real crash are isolated by the next append's newline heal.
  merge(scan(&warnings_));
  for (const PendingJob& job : mirror_) {
    // Everything present at startup is handed over via pending() (or is
    // already done): delivered, as far as poll_new() is concerned.
    delivered_.insert(job.id);
    if (done_ids_.count(job.id) == 0) pending_.push_back(job);
  }
  delivered_done_ = done_ids_;
  wal_ = std::make_unique<SealedAppendLog>(wal_path(state_dir_));
}

std::string ServiceQueue::admit(const JobSpec& spec, const std::string& rid,
                                bool* duplicate) {
  if (duplicate != nullptr) *duplicate = false;
  // Serialize against peer daemons: id assignment and request-id dedup
  // must see every admission that won the lock before us.
  AdmitLock lock(state_dir_);
  merge(scan(nullptr));
  if (!rid.empty()) {
    for (const auto& [r, id] : rids_) {
      if (r == rid) {
        // A retried submit: the original admission is durable, so the
        // only correct answer is its id — admitting again would duplicate
        // the sweep. Deliberately NOT marked delivered: if a peer admitted
        // it, this daemon still needs to discover it via poll_new().
        if (duplicate != nullptr) *duplicate = true;
        return id;
      }
    }
  }
  const std::string id = format_job_id(next_seq_++);
  // Job directory before the WAL entry: if the state dir is failing
  // (ENOSPC/EIO) this throws before anything durable exists, so a rejected
  // submit never leaves a half-admitted job behind.
  ensure_dir(job_dir(state_dir_, id));
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "job");
  w.kv("id", id);
  if (!rid.empty()) w.kv("rid", rid);
  w.key("spec");
  write_job_spec(w, spec);
  wal_->append(finish_sealed_line(w));  // durable before the "ok" reply
  if (known_ids_.insert(id).second) {
    if (!rid.empty()) rids_.emplace_back(rid, id);
    PendingJob job;
    job.id = id;
    job.rid = rid;
    job.spec = spec;
    mirror_.push_back(std::move(job));
  }
  delivered_.insert(id);  // the caller materializes its own admission
  return id;
}

void ServiceQueue::mark_done(const std::string& id) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "job_done");
  w.kv("id", id);
  wal_->append(finish_sealed_line(w));
  done_ids_.insert(id);
  delivered_done_.insert(id);  // our own completion is not peer news
}

std::string ServiceQueue::find_request(const std::string& rid) const {
  if (rid.empty()) return "";
  for (const auto& [r, id] : rids_) {
    if (r == rid) return id;
  }
  return "";
}

ServiceQueue::WalNews ServiceQueue::poll_new() {
  WalNews news;
  struct stat sb;
  const int64_t size = ::stat(wal_path(state_dir_).c_str(), &sb) == 0
                           ? static_cast<int64_t>(sb.st_size)
                           : -1;
  // The size gate only skips the RESCAN; undelivered jobs already in the
  // mirror (observed by an admit() rescan under the lock) are still handed
  // over below.
  if (size != last_wal_size_) merge(scan(&warnings_));
  for (const PendingJob& job : mirror_) {
    if (delivered_.count(job.id) != 0) continue;
    delivered_.insert(job.id);
    if (done_ids_.count(job.id) == 0) news.jobs.push_back(job);
  }
  for (const std::string& id : done_ids_) {
    if (delivered_done_.insert(id).second) news.done.push_back(id);
  }
  return news;
}

}  // namespace wecsim
