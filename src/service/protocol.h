// wecsimd wire protocol (docs/SERVICE.md): newline-delimited JSON over a
// local Unix stream socket. Every request is one JSON object on one line
// with an "op" field; every response is one JSON object on one line with an
// "ok" field. Admission errors carry "error" (stable identifier) and, for
// backpressure rejections, "retry_after_ms".
//
//   {"op":"submit","job":{...JobSpec...},"rid":"..."?}
//       -> {"ok":true,"job":"j-000001","points":N}
//       -> {"ok":true,"job":"j-000001","points":N,"duplicate":true}
//       -> {"ok":false,"error":"invalid_request","detail":["..."]}
//       -> {"ok":false,"error":"quota_exceeded","retry_after_ms":500}
//       -> {"ok":false,"error":"queue_full","retry_after_ms":500}
//       -> {"ok":false,"error":"draining"}
//       -> {"ok":false,"error":"degraded","detail":["..."]}
//   {"op":"status","job":"j-000001"}
//       -> {"ok":true,"job":...,"state":"queued|running|done",
//           "points":[{"key":K,"state":S,"provenance":P}...],...}
//   {"op":"health"}   -> {"ok":true,"state":"serving|draining|degraded",...}
//   {"op":"drain"}    -> {"ok":true,"state":"draining"}
//
// The optional submit "rid" is a client-chosen request id that makes
// admission idempotent: a retried submit (e.g. after a dropped TCP reply)
// with the same rid returns the originally admitted job instead of
// duplicating it. The same protocol runs over the Unix socket and the
// optional TCP listener (--listen / WECSIM_SERVICE_LISTEN) — the transport
// carries no semantics.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "sta/sta_config.h"

namespace wecsim {

/// One sweep point of a job: a paper configuration (core/sim_config.h) at a
/// TU count, with an optional main-memory-latency override.
struct PointSpec {
  std::string key;           // config key, unique within the job
  std::string config;        // paper config name, e.g. "wth-wp-wec"
  uint32_t tus = 8;          // thread units
  uint32_t mem_latency = 0;  // round-trip memory latency; 0 = paper default
};

/// A sweep request: one workload swept over `points`, reported as one run
/// report named `name`. `client` identifies the submitter for quotas.
struct JobSpec {
  std::string client;
  std::string name;       // report bench_name; also shown in status
  uint32_t priority = 0;  // higher drains first across jobs
  std::string workload;   // paper name ("181.mcf") or short name ("mcf")
  uint32_t scale = 1;     // WorkloadParams::scale
  uint32_t seed = 42;     // WorkloadParams::seed
  std::vector<PointSpec> points;
};

/// All validation problems with a job spec, in the WECSIM_FAULTS all-errors
/// style: empty list means admissible. Checks identity fields, workload and
/// config names, ranges, and key uniqueness.
std::vector<std::string> validate_job(const JobSpec& spec);

/// The simulator configuration a point runs with. `validate_job` must have
/// passed; throws SimError on an unknown config name.
StaConfig point_config(const PointSpec& point);

/// JobSpec <-> JSON (the "job" object of a submit request, and the "spec"
/// object of a queue WAL entry).
void write_job_spec(JsonWriter& w, const JobSpec& spec);
JobSpec parse_job_spec(const JsonValue& v);

/// One-line JSON requests (client side). A non-empty `rid` rides along as
/// the idempotency token.
std::string submit_request(const JobSpec& spec, const std::string& rid = "");
std::string status_request(const std::string& job_id);
std::string health_request();
std::string drain_request();

}  // namespace wecsim
