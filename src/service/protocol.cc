#include "service/protocol.h"

#include <set>

#include "common/error.h"
#include "core/sim_config.h"

namespace wecsim {

namespace {

bool known_workload(const std::string& name) {
  static const std::set<std::string> names = {
      "175.vpr",    "vpr",    "164.gzip",   "gzip",   "181.mcf",  "mcf",
      "197.parser", "parser", "183.equake", "equake", "177.mesa", "mesa"};
  return names.count(name) != 0;
}

bool known_config(const std::string& name) {
  try {
    paper_config_from_name(name);
    return true;
  } catch (const SimError&) {
    return false;
  }
}

}  // namespace

std::vector<std::string> validate_job(const JobSpec& spec) {
  std::vector<std::string> errors;
  if (spec.client.empty()) errors.push_back("client must be non-empty");
  if (spec.name.empty()) errors.push_back("name must be non-empty");
  if (spec.workload.empty()) {
    errors.push_back("workload must be non-empty");
  } else if (!known_workload(spec.workload)) {
    errors.push_back("unknown workload: " + spec.workload);
  }
  if (spec.scale < 1 || spec.scale > 1024) {
    errors.push_back("scale " + std::to_string(spec.scale) +
                     " out of range [1, 1024]");
  }
  if (spec.priority > 1000000) {
    errors.push_back("priority " + std::to_string(spec.priority) +
                     " out of range [0, 1000000]");
  }
  if (spec.points.empty()) errors.push_back("job has no points");
  std::set<std::string> keys;
  for (size_t i = 0; i < spec.points.size(); ++i) {
    const PointSpec& p = spec.points[i];
    const std::string where = "points[" + std::to_string(i) + "]";
    if (p.key.empty()) errors.push_back(where + ".key must be non-empty");
    if (!keys.insert(p.key).second) {
      errors.push_back(where + ".key '" + p.key + "' duplicates another point");
    }
    if (!known_config(p.config)) {
      errors.push_back(where + ".config '" + p.config +
                       "' is not a paper configuration");
    }
    if (p.tus < 1 || p.tus > 16) {
      errors.push_back(where + ".tus " + std::to_string(p.tus) +
                       " out of range [1, 16]");
    }
    if (p.mem_latency > 100000) {
      errors.push_back(where + ".mem_latency " + std::to_string(p.mem_latency) +
                       " out of range [0, 100000]");
    }
  }
  return errors;
}

StaConfig point_config(const PointSpec& point) {
  StaConfig config = make_paper_config(paper_config_from_name(point.config),
                                       point.tus);
  if (point.mem_latency != 0) config.mem.mem_lat = point.mem_latency;
  return config;
}

void write_job_spec(JsonWriter& w, const JobSpec& spec) {
  w.begin_object();
  w.kv("client", spec.client);
  w.kv("name", spec.name);
  w.kv("priority", spec.priority);
  w.kv("workload", spec.workload);
  w.kv("scale", spec.scale);
  w.kv("seed", spec.seed);
  w.key("points").begin_array();
  for (const PointSpec& p : spec.points) {
    w.begin_object();
    w.kv("key", p.key);
    w.kv("config", p.config);
    w.kv("tus", p.tus);
    if (p.mem_latency != 0) w.kv("mem_latency", p.mem_latency);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

JobSpec parse_job_spec(const JsonValue& v) {
  JobSpec spec;
  spec.client = v.at("client").as_string();
  spec.name = v.at("name").as_string();
  spec.priority = static_cast<uint32_t>(v.at("priority").as_u64());
  spec.workload = v.at("workload").as_string();
  spec.scale = static_cast<uint32_t>(v.at("scale").as_u64());
  spec.seed = static_cast<uint32_t>(v.at("seed").as_u64());
  for (const JsonValue& p : v.at("points").items()) {
    PointSpec point;
    point.key = p.at("key").as_string();
    point.config = p.at("config").as_string();
    point.tus = static_cast<uint32_t>(p.at("tus").as_u64());
    if (p.has("mem_latency")) {
      point.mem_latency = static_cast<uint32_t>(p.at("mem_latency").as_u64());
    }
    spec.points.push_back(std::move(point));
  }
  return spec;
}

std::string submit_request(const JobSpec& spec, const std::string& rid) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "submit");
  w.key("job");
  write_job_spec(w, spec);
  if (!rid.empty()) w.kv("rid", rid);
  w.end_object();
  return w.take();
}

std::string status_request(const std::string& job_id) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "status");
  w.kv("job", job_id);
  w.end_object();
  return w.take();
}

std::string health_request() {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "health");
  w.end_object();
  return w.take();
}

std::string drain_request() {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "drain");
  w.end_object();
  return w.take();
}

}  // namespace wecsim
