// wecsimd — the long-lived sweep service (docs/SERVICE.md).
//
// Single-threaded poll() event loop over a local Unix stream socket plus a
// signal self-pipe. Sweep points run in forked worker processes (one point
// per process, no exec): the worker journals running -> done/failed into
// its job's sweep journal (harness/journal.h) and exits; the daemon reaps
// it and re-queues or quarantines on a crash. All durable state — the
// admission WAL (service/queue.h) and the per-job sweep journals — is
// fsync'd before the daemon acknowledges anything, so a kill -9 of the
// daemon or any worker loses zero accepted work and a restart with the
// same state dir completes every accepted job with a byte-identical
// report.
//
// Robustness contract:
//   * worker crash (signal / nonzero exit / exit-0-without-terminal-entry):
//     re-queued with exponential backoff, escalating to a quarantined
//     "failed" journal entry after `retries` crashes;
//   * admission control: per-client quota and global queue-depth caps
//     reject with an explicit retry_after_ms — memory is bounded, the
//     daemon never blocks a client on capacity;
//   * graceful drain (SIGTERM / SIGINT / "drain" op): stop admitting and
//     scheduling, let running workers finish their current points, exit
//     kExitInterrupted when journaled work remains (0 when idle).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/env.h"
#include "harness/journal.h"
#include "service/queue.h"

namespace wecsim {

/// Resolved daemon configuration: WECSIM_SERVICE_* (strict aggregated
/// validation, harness/env.h) with defaults anchored to the state dir.
struct ServiceConfig {
  std::string state_dir;
  std::string socket;         // default <state_dir>/wecsimd.sock
  uint32_t workers = 1;       // resolved to >= 1
  uint32_t max_queue = 1024;  // global cap on non-terminal points
  uint32_t quota = 256;       // per-client cap on non-terminal points
  uint32_t retries = 2;       // crash retries per point before quarantine
  uint32_t backoff_ms = 100;  // base worker-restart backoff (doubles)
  uint32_t retry_after_ms = 500;  // hint in backpressure rejections
};

/// Builds a ServiceConfig for `state_dir` from the environment; throws one
/// aggregated SimError naming every invalid WECSIM_SERVICE_* variable.
ServiceConfig service_config_from_env(const std::string& state_dir);

class ServiceDaemon {
 public:
  explicit ServiceDaemon(ServiceConfig config);
  ~ServiceDaemon();

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  /// Binds the socket, recovers WAL'd jobs, serves until drained. Returns
  /// the process exit code: 0 when drained idle, kExitInterrupted when
  /// accepted work remains journaled for the next start.
  int run();

 private:
  using Clock = std::chrono::steady_clock;

  struct Point {
    enum class St { kReady, kBackoff, kRunning, kDone, kFailed };
    PointSpec spec;
    St st = St::kReady;
    uint32_t crashes = 0;       // worker deaths, not in-process retries
    Clock::time_point earliest{};  // kBackoff: do not restart before this
  };

  struct Job {
    std::string id;
    JobSpec spec;
    std::vector<Point> points;
    std::unique_ptr<SweepJournal> journal;
    size_t terminal = 0;  // kDone + kFailed points
    size_t failed = 0;    // kFailed points
    bool finalized = false;
  };

  struct Worker {
    pid_t pid = -1;
    size_t job = 0;
    size_t point = 0;
    bool busy = false;
  };

  struct Conn {
    int fd = -1;
    std::string in;   // unparsed request bytes
    std::string out;  // unwritten response bytes
  };

  // --- setup / recovery ---
  void open_socket();
  void recover();
  Job& add_job(const std::string& id, JobSpec spec, bool recovered);

  // --- event loop ---
  void reap_workers();
  void promote_backoff(Clock::time_point now);
  void schedule(Clock::time_point now);
  void spawn_worker(size_t ji, size_t pi);
  [[noreturn]] void worker_main(const Job& job, const Point& pt);
  void accept_conns();
  bool service_conn(Conn& conn);  // false: close this connection
  size_t busy_workers() const;
  bool unfinished_work() const;

  // --- requests ---
  std::string handle_request(const std::string& line);
  std::string handle_submit(const JsonValue& req);
  std::string handle_status(const JsonValue& req);
  std::string handle_health();
  std::string handle_drain();
  size_t queue_depth() const;  // non-terminal points across live jobs
  size_t client_queued(const std::string& client) const;

  // --- job lifecycle ---
  void apply_terminal(Job& job, Point& pt, const JournalReplay::Entry& entry);
  void maybe_finalize(Job& job);

  ServiceConfig config_;
  ServiceQueue queue_;
  std::vector<Job> jobs_;
  std::map<std::string, size_t> job_index_;
  std::vector<Worker> workers_;
  std::vector<Conn> conns_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  bool draining_ = false;
  Clock::time_point started_;
};

}  // namespace wecsim
