// wecsimd — the long-lived sweep service (docs/SERVICE.md).
//
// Single-threaded poll() event loop over a local Unix stream socket — plus
// an optional TCP listener (--listen / WECSIM_SERVICE_LISTEN) speaking the
// same NDJSON protocol — and a signal self-pipe. Sweep points run in forked
// worker processes (one point per process, no exec): the worker journals
// running -> done/failed into its job's sweep journal (harness/journal.h)
// and exits; the daemon reaps it and re-queues or quarantines on a crash.
// All durable state — the admission WAL (service/queue.h) and the per-job
// sweep journals — is fsync'd before the daemon acknowledges anything, so a
// kill -9 of the daemon or any worker loses zero accepted work and a
// restart with the same state dir completes every accepted job with a
// byte-identical report.
//
// Federation: several daemons may share one state dir (same host or a
// shared filesystem). They coordinate through the WAL (flock'd admission,
// tailed for peer-admitted jobs) and per-point leases (harness/lease.h):
// a daemon only spawns a worker for a point it holds the lease on, renews
// the lease while the worker runs, and a peer steals the point once the
// lease expires — which is exactly what happens when a daemon is killed,
// frozen past the TTL, or partitioned from the shared filesystem. Leases
// bound duplicated work; they are NOT the correctness mechanism. The
// journal's duplicate-terminal hardening is: a frozen daemon that wakes up
// and finishes a stolen point writes a second "done" whose measurement
// digest agrees with the thief's, and the replay keeps one copy — so the
// merged report stays byte-identical to a single-daemon run.
//
// Robustness contract:
//   * worker crash (signal / nonzero exit / exit-0-without-terminal-entry):
//     re-queued with exponential backoff, escalating to a quarantined
//     "failed" journal entry after `retries` crashes;
//   * admission control: per-client quota and global queue-depth caps
//     reject with an explicit retry_after_ms — memory is bounded, the
//     daemon never blocks a client on capacity;
//   * graceful drain (SIGTERM / SIGINT / "drain" op): stop admitting and
//     scheduling, let running workers finish their current points, exit
//     kExitInterrupted when journaled work remains (0 when idle);
//   * graceful degradation: a state-dir I/O failure (ENOSPC, EIO, a dir
//     swapped out from under the daemon) flips it to "degraded" — it stops
//     admitting and scheduling (durability can no longer be promised) but
//     keeps answering status/health so operators and failover clients can
//     see exactly what is wrong.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/env.h"
#include "harness/journal.h"
#include "harness/lease.h"
#include "service/queue.h"

namespace wecsim {

/// Resolved daemon configuration: WECSIM_SERVICE_* (strict aggregated
/// validation, harness/env.h) with defaults anchored to the state dir.
struct ServiceConfig {
  std::string state_dir;
  std::string socket;         // default <state_dir>/wecsimd.sock
  std::string listen;         // TCP "host:port"; empty = Unix socket only.
                              // Port 0 binds an ephemeral port, published
                              // in <socket>.tcp for tests/scripts.
  uint32_t workers = 1;       // resolved to >= 1
  uint32_t max_queue = 1024;  // global cap on non-terminal points
  uint32_t quota = 256;       // per-client cap on non-terminal points
  uint32_t retries = 2;       // crash retries per point before quarantine
  uint32_t backoff_ms = 100;  // base worker-restart backoff (doubles)
  uint32_t retry_after_ms = 500;  // hint in backpressure rejections
  uint32_t lease_ms = 5000;   // point-lease TTL; peers steal after expiry
};

/// Builds a ServiceConfig for `state_dir` from the environment; throws one
/// aggregated SimError naming every invalid WECSIM_SERVICE_* variable.
ServiceConfig service_config_from_env(const std::string& state_dir);

class ServiceDaemon {
 public:
  explicit ServiceDaemon(ServiceConfig config);
  ~ServiceDaemon();

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  /// Binds the socket(s), recovers WAL'd jobs, serves until drained.
  /// Returns the process exit code: 0 when drained idle, kExitInterrupted
  /// when accepted work remains journaled for the next start.
  int run();

 private:
  using Clock = std::chrono::steady_clock;

  struct Point {
    enum class St { kReady, kBackoff, kRunning, kDone, kFailed };
    PointSpec spec;
    St st = St::kReady;
    uint32_t crashes = 0;       // worker deaths, not in-process retries
    Clock::time_point earliest{};  // kBackoff: do not restart before this
    std::string provenance;     // terminal: hot|cached|resumed|stolen
  };

  struct Job {
    std::string id;
    JobSpec spec;
    std::vector<Point> points;
    std::unique_ptr<SweepJournal> journal;
    size_t terminal = 0;  // kDone + kFailed points
    size_t failed = 0;    // kFailed points
    bool finalized = false;
    int64_t journal_bytes = -1;  // stat size at the last reconcile scan
  };

  struct Worker {
    pid_t pid = -1;
    size_t job = 0;
    size_t point = 0;
    bool busy = false;
    PointLease lease;           // held + renewed while the worker runs
    int64_t renew_at_ms = 0;    // monotonic ms of the next renewal
  };

  struct Conn {
    int fd = -1;
    std::string in;   // unparsed request bytes
    std::string out;  // unwritten response bytes
    bool close_after_flush = false;  // oversized request: reply, then close
  };

  // --- setup / recovery ---
  void open_socket();
  void open_tcp();
  void recover();
  Job& add_job(const std::string& id, JobSpec spec, bool recovered);

  // --- event loop ---
  void reap_workers();
  void promote_backoff(Clock::time_point now);
  void schedule(Clock::time_point now);
  void spawn_worker(size_t ji, size_t pi, PointLease lease, bool stolen);
  [[noreturn]] void worker_main(const Job& job, const Point& pt, bool stolen);
  void renew_leases();
  void reconcile();  // tail the WAL + job journals for peer activity
  void accept_conns(int listen_fd);
  bool service_conn(Conn& conn);  // false: close this connection
  size_t busy_workers() const;
  bool unfinished_work() const;
  void enter_degraded(const std::string& reason);

  // --- requests ---
  std::string handle_request(const std::string& line);
  std::string handle_submit(const JsonValue& req);
  std::string handle_status(const JsonValue& req);
  std::string handle_health();
  std::string handle_drain();
  size_t queue_depth() const;  // non-terminal points across live jobs
  size_t client_queued(const std::string& client) const;

  // --- job lifecycle ---
  std::string lease_path(const Job& job, const Point& pt) const;
  void apply_terminal(Job& job, Point& pt, const JournalReplay::Entry& entry,
                      bool resumed);
  void maybe_finalize(Job& job);
  void write_provenance(const Job& job);

  ServiceConfig config_;
  ServiceQueue queue_;
  std::vector<Job> jobs_;
  std::map<std::string, size_t> job_index_;
  std::vector<Worker> workers_;
  std::vector<Conn> conns_;
  int listen_fd_ = -1;       // Unix socket
  int tcp_fd_ = -1;          // optional TCP listener
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  bool draining_ = false;
  bool degraded_ = false;
  std::string degraded_reason_;
  Clock::time_point started_;
};

}  // namespace wecsim
