// Crash-safe sweep state: where durable harness artifacts live and how they
// reach disk. WECSIM_STATE_DIR names a directory for the write-ahead sweep
// journal (harness/journal.h); WECSIM_RESUME=1 (or a bench's --resume flag)
// makes the next sweep replay that journal instead of starting over. All
// final artifacts — run reports, timing reports, cache entries — are written
// with the unique-tmp + rename pattern so a reader (or a crash) can never
// observe a truncated file under the final name.
#pragma once

#include <string>

namespace wecsim {

/// Exit status of a bench whose sweep was interrupted by SIGINT/SIGTERM:
/// distinct from 0 (clean) and 2 (points quarantined), so supervisors can
/// tell "re-run with --resume" apart from "inspect the quarantine list".
inline constexpr int kExitInterrupted = 3;

/// WECSIM_STATE_DIR, or "" when unset (crash-safe journaling disabled).
std::string state_dir_from_env();

/// True when WECSIM_RESUME requests journal replay. Accepts 1/true/yes/on
/// and 0/false/no/off (case-insensitive); anything else is a parse error
/// reported through the aggregated env validation (harness/env.h).
bool resume_from_env();

/// Path of the sweep journal inside a state directory.
std::string journal_path(const std::string& state_dir);

/// Writes `content` to a unique sibling temp file, fsyncs it, and renames it
/// over `path` (atomic on POSIX). Returns false and fills `*error` on
/// failure; the temp file is cleaned up best-effort.
bool try_write_file_atomic(const std::string& path, const std::string& content,
                           std::string* error);

/// Throwing wrapper around try_write_file_atomic (SimError on failure).
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace wecsim
