#include "harness/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace wecsim {

namespace {

std::string lower(const char* s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

void add_error(std::vector<std::string>* errors, const std::string& message) {
  if (errors != nullptr) errors->push_back(message);
}

// "host:port" with a non-empty host and a decimal port in [0, 65535].
// Port 0 is allowed on the listen side (the daemon binds an ephemeral
// port and publishes it in <state_dir>/wecsimd.endpoint for tests).
bool valid_host_port(const std::string& s) {
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  unsigned long port = 0;
  for (size_t i = colon + 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    port = port * 10 + static_cast<unsigned long>(s[i] - '0');
    if (port > 65535) return false;
  }
  return true;
}

}  // namespace

uint32_t parse_env_u32(const char* name, uint32_t fallback, uint32_t min_value,
                       uint32_t max_value, std::vector<std::string>* errors) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || std::strchr(value, '-') != nullptr) {
    add_error(errors, std::string(name) + "='" + value +
                          "' is not a decimal unsigned integer");
    return fallback;
  }
  if (errno == ERANGE || parsed < min_value || parsed > max_value) {
    add_error(errors, std::string(name) + "=" + value + " out of range [" +
                          std::to_string(min_value) + ", " +
                          std::to_string(max_value) + "]");
    return fallback;
  }
  return static_cast<uint32_t>(parsed);
}

double parse_env_seconds(const char* name, double fallback,
                         std::vector<std::string>* errors) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    add_error(errors,
              std::string(name) + "='" + value + "' is not a decimal number");
    return fallback;
  }
  if (!std::isfinite(parsed) || parsed <= 0.0) {
    add_error(errors, std::string(name) + "=" + value +
                          " must be a finite number of seconds > 0");
    return fallback;
  }
  return parsed;
}

bool parse_env_flag(const char* name, bool fallback,
                    std::vector<std::string>* errors) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string v = lower(value);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  add_error(errors, std::string(name) + "='" + value +
                        "' is not a boolean (1/true/yes/on or 0/false/no/off)");
  return fallback;
}

ObsEnv parse_obs_env(std::vector<std::string>* errors) {
  ObsEnv obs;
  if (const char* dir = std::getenv("WECSIM_PROGRESS_DIR")) {
    obs.progress_dir = dir;
  }
  if (const char* fifo = std::getenv("WECSIM_PROGRESS_FIFO")) {
    obs.progress_fifo = fifo;
  }
  obs.interval_ms =
      parse_env_u32("WECSIM_PROGRESS_INTERVAL_MS", 500, 10, 60000, errors);
  const char* profile = std::getenv("WECSIM_PROFILE");
  obs.profile_set = profile != nullptr && *profile != '\0';
  obs.profile = parse_env_flag("WECSIM_PROFILE", false, errors);
  return obs;
}

ServiceEnv parse_service_env(std::vector<std::string>* errors) {
  ServiceEnv service;
  if (const char* sock = std::getenv("WECSIM_SERVICE_SOCKET")) {
    service.socket = sock;
  }
  service.workers =
      parse_env_u32("WECSIM_SERVICE_WORKERS", 0, 0, 4096, errors);
  service.max_queue =
      parse_env_u32("WECSIM_SERVICE_MAX_QUEUE", 1024, 1, 1000000, errors);
  service.quota =
      parse_env_u32("WECSIM_SERVICE_QUOTA", 256, 1, 1000000, errors);
  service.retries = parse_env_u32("WECSIM_SERVICE_RETRIES", 2, 0, 100, errors);
  service.backoff_ms =
      parse_env_u32("WECSIM_SERVICE_BACKOFF_MS", 100, 0, 600000, errors);
  service.retry_after_ms =
      parse_env_u32("WECSIM_SERVICE_RETRY_AFTER_MS", 500, 1, 600000, errors);
  if (const char* listen = std::getenv("WECSIM_SERVICE_LISTEN")) {
    if (*listen != '\0') {
      if (!valid_host_port(listen)) {
        add_error(errors, std::string("WECSIM_SERVICE_LISTEN='") + listen +
                              "' is not host:port with port in [0, 65535]");
      } else {
        service.listen = listen;
      }
    }
  }
  service.lease_ms =
      parse_env_u32("WECSIM_SERVICE_LEASE_MS", 5000, 50, 600000, errors);
  if (const char* eps = std::getenv("WECSIM_SERVICE_ENDPOINTS")) {
    if (*eps != '\0') {
      service.endpoints =
          parse_endpoint_list(eps, "WECSIM_SERVICE_ENDPOINTS", errors);
    }
  }
  return service;
}

bool valid_service_endpoint(const std::string& endpoint) {
  if (endpoint.empty()) return false;
  if (endpoint.find('/') != std::string::npos) return true;  // unix path
  return valid_host_port(endpoint);
}

std::vector<std::string> parse_endpoint_list(const std::string& text,
                                             const std::string& what,
                                             std::vector<std::string>* errors) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    std::string item = text.substr(start, comma - start);
    // Trim surrounding whitespace so "a, b" lists read naturally.
    while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                item.front()))) {
      item.erase(item.begin());
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.pop_back();
    }
    if (item.empty()) {
      add_error(errors, what + " has an empty endpoint entry in '" + text +
                            "' (expected comma-separated socket paths or "
                            "host:port addresses)");
    } else if (!valid_service_endpoint(item)) {
      add_error(errors, what + " entry '" + item +
                            "' is neither a socket path (contains '/') nor "
                            "host:port with port in [0, 65535]");
    } else {
      out.push_back(item);
    }
    start = comma + 1;
  }
  return out;
}

void throw_if_env_errors(const std::vector<std::string>& errors) {
  if (errors.empty()) return;
  std::string what = std::to_string(errors.size()) +
                     " invalid WECSIM_* environment setting(s):";
  for (const std::string& e : errors) what += "\n  - " + e;
  throw SimError(what);
}

}  // namespace wecsim
