#include "harness/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace wecsim {

namespace {

std::string lower(const char* s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

void add_error(std::vector<std::string>* errors, const std::string& message) {
  if (errors != nullptr) errors->push_back(message);
}

}  // namespace

uint32_t parse_env_u32(const char* name, uint32_t fallback, uint32_t min_value,
                       uint32_t max_value, std::vector<std::string>* errors) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || std::strchr(value, '-') != nullptr) {
    add_error(errors, std::string(name) + "='" + value +
                          "' is not a decimal unsigned integer");
    return fallback;
  }
  if (errno == ERANGE || parsed < min_value || parsed > max_value) {
    add_error(errors, std::string(name) + "=" + value + " out of range [" +
                          std::to_string(min_value) + ", " +
                          std::to_string(max_value) + "]");
    return fallback;
  }
  return static_cast<uint32_t>(parsed);
}

double parse_env_seconds(const char* name, double fallback,
                         std::vector<std::string>* errors) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    add_error(errors,
              std::string(name) + "='" + value + "' is not a decimal number");
    return fallback;
  }
  if (!std::isfinite(parsed) || parsed <= 0.0) {
    add_error(errors, std::string(name) + "=" + value +
                          " must be a finite number of seconds > 0");
    return fallback;
  }
  return parsed;
}

bool parse_env_flag(const char* name, bool fallback,
                    std::vector<std::string>* errors) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string v = lower(value);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  add_error(errors, std::string(name) + "='" + value +
                        "' is not a boolean (1/true/yes/on or 0/false/no/off)");
  return fallback;
}

ObsEnv parse_obs_env(std::vector<std::string>* errors) {
  ObsEnv obs;
  if (const char* dir = std::getenv("WECSIM_PROGRESS_DIR")) {
    obs.progress_dir = dir;
  }
  if (const char* fifo = std::getenv("WECSIM_PROGRESS_FIFO")) {
    obs.progress_fifo = fifo;
  }
  obs.interval_ms =
      parse_env_u32("WECSIM_PROGRESS_INTERVAL_MS", 500, 10, 60000, errors);
  const char* profile = std::getenv("WECSIM_PROFILE");
  obs.profile_set = profile != nullptr && *profile != '\0';
  obs.profile = parse_env_flag("WECSIM_PROFILE", false, errors);
  return obs;
}

ServiceEnv parse_service_env(std::vector<std::string>* errors) {
  ServiceEnv service;
  if (const char* sock = std::getenv("WECSIM_SERVICE_SOCKET")) {
    service.socket = sock;
  }
  service.workers =
      parse_env_u32("WECSIM_SERVICE_WORKERS", 0, 0, 4096, errors);
  service.max_queue =
      parse_env_u32("WECSIM_SERVICE_MAX_QUEUE", 1024, 1, 1000000, errors);
  service.quota =
      parse_env_u32("WECSIM_SERVICE_QUOTA", 256, 1, 1000000, errors);
  service.retries = parse_env_u32("WECSIM_SERVICE_RETRIES", 2, 0, 100, errors);
  service.backoff_ms =
      parse_env_u32("WECSIM_SERVICE_BACKOFF_MS", 100, 0, 600000, errors);
  service.retry_after_ms =
      parse_env_u32("WECSIM_SERVICE_RETRY_AFTER_MS", 500, 1, 600000, errors);
  return service;
}

void throw_if_env_errors(const std::vector<std::string>& errors) {
  if (errors.empty()) return;
  std::string what = std::to_string(errors.size()) +
                     " invalid WECSIM_* environment setting(s):";
  for (const std::string& e : errors) what += "\n  - " + e;
  throw SimError(what);
}

}  // namespace wecsim
