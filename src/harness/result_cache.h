// Persistent on-disk cache of simulation measurements, keyed by a content
// hash of everything that determines a point's result: the workload name,
// its WorkloadParams (scale, seed), every field of the StaConfig, and
// kSimulatorVersion. With WECSIM_CACHE_DIR set, regenerating a figure whose
// points were already simulated — by any bench binary, in any process —
// skips simulation entirely.
//
// Invalidation rule: the canonical description string embeds
// kSimulatorVersion (core/simulator.h); bump that constant whenever a code
// change can alter simulated measurements and every stale entry misses.
// Entries additionally store the full description and are verified against
// it on load, so a filename hash collision degrades to a cache miss, never
// a wrong result.
//
// Concurrency: entries are written to a temporary file and renamed into
// place (atomic on POSIX), so parallel workers and concurrent bench
// processes can share one cache directory.
#pragma once

#include <optional>
#include <string>

#include "harness/experiment.h"
#include "obs/integrity.h"

namespace wecsim {

/// Schema version of a cache entry file; part of the entry envelope.
/// v2: entries carry an fnv1a64 integrity digest (obs/integrity.h); load()
/// quarantines an entry whose digest or structure is broken by renaming it
/// to <entry>.corrupt and recomputing, instead of trusting or crashing.
inline constexpr int kResultCacheSchemaVersion = 2;

class ResultCache {
 public:
  /// An empty `dir` disables the cache (load always misses, store is a
  /// no-op).
  explicit ResultCache(std::string dir);

  /// WECSIM_CACHE_DIR, or "" when unset.
  static std::string dir_from_env();

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Canonical, human-readable content key for one simulation point. Every
  /// field of StaConfig (core, memory, sta, limits) is serialized; keep in
  /// sync when configuration structs grow fields. `salt` is appended
  /// verbatim — the fail-soft harness passes the active fault plan here so
  /// faulty measurements never collide with clean ones.
  static std::string describe(const std::string& workload_name,
                              const WorkloadParams& params,
                              const StaConfig& config,
                              const std::string& salt = std::string());

  /// Entry path for a description: <dir>/wec-<fnv1a64 hex>.json.
  std::string entry_path(const std::string& description) const;

  /// Look up a description. Returns the cached measurement, or nullopt on
  /// miss, corrupt entry, or description mismatch (hash collision / stale
  /// schema). A corrupt entry — failed integrity digest, unparseable JSON,
  /// missing fields — is additionally quarantined: renamed to
  /// <entry>.corrupt so the evidence survives while the caller recomputes
  /// and heals the entry. A stale-but-intact entry (older schema version,
  /// collision) is a plain miss, not a quarantine.
  std::optional<RunMeasurement> load(const std::string& description) const;

  /// Best-effort store; failures are reported to stderr once and swallowed
  /// (a bad cache directory must not abort a bench run).
  void store(const std::string& description, const RunMeasurement& m) const;

 private:
  void quarantine(const std::string& path, const char* why) const;

  std::string dir_;
};

}  // namespace wecsim
