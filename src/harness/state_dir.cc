#include "harness/state_dir.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.h"
#include "harness/env.h"

namespace wecsim {

std::string state_dir_from_env() {
  const char* dir = std::getenv("WECSIM_STATE_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

bool resume_from_env() {
  std::vector<std::string> errors;
  const bool resume = parse_env_flag("WECSIM_RESUME", false, &errors);
  throw_if_env_errors(errors);
  return resume;
}

std::string journal_path(const std::string& state_dir) {
  return state_dir + "/sweep.journal.jsonl";
}

bool try_write_file_atomic(const std::string& path, const std::string& content,
                           std::string* error) {
  // Unique-per-writer temp name: concurrent workers and concurrent bench
  // processes may target the same final path.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<uint64_t>(::getpid())) +
      "." +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open " + tmp + ": " + std::strerror(errno);
    }
    return false;
  }
  size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "short write to " + tmp + ": " + std::strerror(errno);
      }
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    off += static_cast<size_t>(n);
  }
  // Flush file contents before the rename publishes the name: a crash after
  // rename must never expose an empty or partial file.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    if (error != nullptr) {
      *error = "fsync/close failed for " + tmp + ": " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  std::string error;
  if (!try_write_file_atomic(path, content, &error)) {
    throw SimError("atomic write failed: " + error);
  }
}

}  // namespace wecsim
