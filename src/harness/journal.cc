#include "harness/journal.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "obs/integrity.h"
#include "obs/profile.h"

namespace wecsim {

namespace {

void begin_entry(JsonWriter& w, const char* ev, const JournalPoint& point) {
  w.begin_object();
  w.kv("ev", ev);
  w.kv("workload", point.workload);
  w.kv("key", point.key);
}

}  // namespace

bool pid_is_alive(int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;  // exists but not ours
}

uint64_t process_start_ticks(int64_t pid) {
  if (pid <= 0) return 0;
  std::ifstream in("/proc/" + std::to_string(pid) + "/stat",
                   std::ios::binary);
  if (!in.good()) return 0;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string stat = buf.str();
  // comm (field 2) is parenthesized and may contain spaces; everything
  // after the LAST ')' is space-separated. starttime is field 22 overall,
  // i.e. the 20th token after the comm.
  const size_t paren = stat.rfind(')');
  if (paren == std::string::npos) return 0;
  std::istringstream rest(stat.substr(paren + 1));
  std::string tok;
  for (int i = 0; i < 20; ++i) {
    if (!(rest >> tok)) return 0;
  }
  uint64_t ticks = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return 0;
    ticks = ticks * 10 + static_cast<uint64_t>(c - '0');
  }
  return ticks;
}

uint64_t worker_token(int64_t pid) {
  const uint64_t ticks = process_start_ticks(pid);
  if (ticks == 0) return 0;
  return fnv1a64(std::to_string(pid) + ":" + std::to_string(ticks));
}

std::string finish_sealed_line(JsonWriter& w) {
  w.kv("integrity", integrity_placeholder());
  w.end_object();
  std::string line = w.take();
  line.push_back('\n');
  return seal_integrity(std::move(line));
}

size_t scan_sealed_lines(const std::string& path,
                         const std::function<void(const JsonValue& doc)>& fn,
                         std::vector<std::string>& warnings) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;  // no file yet: empty scan
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  size_t valid_bytes = 0;
  size_t line_start = 0;
  size_t line_no = 0;
  while (line_start < content.size()) {
    const size_t nl = content.find('\n', line_start);
    if (nl == std::string::npos) {
      // Torn tail: the crash landed mid-append. Expected; cut on reopen.
      warnings.push_back("torn trailing journal line (" +
                         std::to_string(content.size() - line_start) +
                         " bytes) dropped");
      break;
    }
    ++line_no;
    const std::string line = content.substr(line_start, nl + 1 - line_start);
    const size_t line_end = nl + 1;
    // Every '\n'-terminated line is part of the durable prefix, readable or
    // not: only the torn tail is ever truncated. A corrupt line mid-file is
    // left in place (and skipped on every load) so the entries after it
    // survive future resumes.
    valid_bytes = line_end;
    if (check_integrity(line) == IntegrityStatus::kSealed) {
      try {
        // Strip '\n' for the parser.
        fn(parse_json(line.substr(0, line.size() - 1)));
      } catch (const std::exception& e) {
        warnings.push_back("journal line " + std::to_string(line_no) +
                           " unreadable (" + e.what() + "); skipped");
      }
    } else {
      warnings.push_back("journal line " + std::to_string(line_no) +
                         " failed its integrity check; skipped");
    }
    line_start = line_end;
  }
  return valid_bytes;
}

SealedAppendLog::SealedAppendLog(std::string path, size_t truncate_to)
    : path_(std::move(path)) {
  // O_RDWR (not O_WRONLY): the torn-tail heal in append_batch preads the
  // current last byte. Writes still go through O_APPEND, i.e. atomically to
  // the end of the file whoever else is appending.
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw SimError("cannot open sweep journal " + path_ + ": " +
                   std::strerror(errno));
  }
  if (truncate_to != static_cast<size_t>(-1)) {
    // Cut a torn trailing line before the first append lands after it.
    if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0) {
      const int e = errno;
      ::close(fd_);
      fd_ = -1;
      throw SimError("cannot truncate sweep journal " + path_ + ": " +
                     std::strerror(e));
    }
  }
}

SealedAppendLog::~SealedAppendLog() {
  if (fd_ >= 0) ::close(fd_);
}

void SealedAppendLog::append_batch(const std::vector<std::string>& lines) {
  WEC_PROFILE_SCOPE(ProfPhase::kHarnessJournal);
  std::lock_guard<std::mutex> lock(mu_);
  std::string batch;
  // Heal a torn tail left by a crashed peer: if the file does not end in
  // '\n', lead with one so the partial line stays an isolated corrupt line
  // instead of swallowing this append. (Two healers racing produce at worst
  // one blank line, which the scan skips.)
  struct stat st;
  if (::fstat(fd_, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd_, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      batch.push_back('\n');
    }
  }
  for (const std::string& line : lines) batch += line;
  size_t off = 0;
  while (off < batch.size()) {
    const ssize_t n = ::write(fd_, batch.data() + off, batch.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SimError("sweep journal append failed: " + path_ + ": " +
                     std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  // Write-ahead contract: the transition is durable before the work it
  // describes proceeds (or before the process reports the point finished).
  if (::fsync(fd_) != 0) {
    throw SimError("sweep journal fsync failed: " + path_ + ": " +
                   std::strerror(errno));
  }
}

void SealedAppendLog::append(std::string line) {
  append_batch({std::move(line)});
}

SweepJournal::SweepJournal(std::string path, size_t truncate_to)
    : log_(std::move(path), truncate_to) {}

void SweepJournal::queued(const std::vector<JournalPoint>& points) {
  if (points.empty()) return;
  std::vector<std::string> lines;
  lines.reserve(points.size());
  for (const JournalPoint& p : points) {
    JsonWriter w;
    begin_entry(w, "queued", p);
    lines.push_back(finish_sealed_line(w));
  }
  log_.append_batch(lines);
}

void SweepJournal::running(const JournalPoint& point) {
  const int64_t pid = static_cast<int64_t>(::getpid());
  running(point, pid, worker_token(pid));
}

void SweepJournal::running(const JournalPoint& point, int64_t pid,
                           uint64_t token) {
  JsonWriter w;
  begin_entry(w, "running", point);
  w.kv("pid", pid);
  w.kv("worker",
       static_cast<uint64_t>(
           std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff));
  w.kv("token", token);
  log_.append(finish_sealed_line(w));
}

void SweepJournal::done(const JournalPoint& point, const RunMeasurement& m,
                        bool fresh, const RunRecord* record,
                        const PointFailure* recovered, const char* via) {
  JsonWriter w;
  begin_entry(w, "done", point);
  w.kv("fresh", fresh);
  if (via != nullptr && *via != '\0') w.kv("via", std::string(via));
  w.key("measurement").begin_object();
  w.key("sim");
  write_sim_result_full(w, m.sim);
  w.kv("parallel_cycles", m.parallel_cycles);
  w.kv("run_seconds", m.run_seconds);
  w.end_object();
  if (record != nullptr) {
    w.key("record");
    write_run_record(w, *record, /*include_run_seconds=*/true);
  }
  if (recovered != nullptr) {
    w.key("failure");
    write_point_failure(w, *recovered);
  }
  log_.append(finish_sealed_line(w));
}

void SweepJournal::failed(const JournalPoint& point,
                          const PointFailure& failure) {
  JsonWriter w;
  begin_entry(w, "failed", point);
  w.key("failure");
  write_point_failure(w, failure);
  log_.append(finish_sealed_line(w));
}

uint64_t measurement_digest(const RunMeasurement& m) {
  JsonWriter w;
  write_sim_result_full(w, m.sim);
  // Deterministic content only: run_seconds is wall-clock and legitimately
  // differs between a worker and its re-run; it must not flag a conflict.
  return fnv1a64(w.take() + ":" + std::to_string(m.parallel_cycles));
}

JournalReplay JournalReplay::load(const std::string& path) {
  JournalReplay replay;
  replay.valid_bytes = scan_sealed_lines(
      path,
      [&replay](const JsonValue& doc) {
        const std::string ev = doc.at("ev").as_string();
        const PointKey key{doc.at("workload").as_string(),
                           doc.at("key").as_string()};
        Entry& entry = replay.points[key];
        if (ev == "queued") {
          // An explicit re-queue legitimizes whatever terminal event comes
          // next (the service re-queues a point after a worker crash).
          entry = Entry{};
        } else if (ev == "running") {
          entry = Entry{};
          entry.state = State::kRunning;
          entry.pid = doc.at("pid").as_i64();
          if (doc.has("token")) entry.token = doc.at("token").as_u64();
        } else if (ev == "done") {
          Entry incoming;
          incoming.state = State::kDone;
          incoming.fresh = doc.at("fresh").as_bool();
          if (doc.has("via")) incoming.via = doc.at("via").as_string();
          const JsonValue& m = doc.at("measurement");
          incoming.measurement.sim = parse_sim_result_full(m.at("sim"));
          incoming.measurement.parallel_cycles =
              m.at("parallel_cycles").as_u64();
          incoming.measurement.run_seconds = m.at("run_seconds").as_double();
          if (doc.has("record")) {
            incoming.record = parse_run_record(doc.at("record"));
          }
          if (doc.has("failure")) {
            incoming.failure = parse_point_failure(doc.at("failure"));
            incoming.has_failure = true;
          }
          if (entry.state == State::kDone) {
            // Duplicate terminal "done" with no re-queue between: two
            // racing writers (e.g. an orphaned worker of a killed daemon
            // and its replacement). The simulator is deterministic, so
            // their measurements must agree — keep the record-bearing copy
            // so a resume can still rebuild the report. A payload mismatch
            // means the journal cannot be trusted for this point.
            if (measurement_digest(entry.measurement) ==
                measurement_digest(incoming.measurement)) {
              if (!entry.fresh && incoming.fresh) entry = incoming;
            } else {
              PointFailure f;
              f.workload = key.first;
              f.config_key = key.second;
              f.status = "quarantined";
              f.error =
                  "conflicting duplicate \"done\" journal entries with "
                  "differing measurements";
              entry = Entry{};
              entry.state = State::kFailed;
              entry.failure = f;
              entry.has_failure = true;
              replay.warnings.push_back(
                  "point " + key.first + "|" + key.second +
                  " has conflicting duplicate terminal journal entries; "
                  "quarantined");
            }
          } else if (entry.state == State::kFailed) {
            // "done" after "failed" without a re-queue: conflicting
            // terminal kinds. Quarantine rather than silently picking one.
            PointFailure f;
            f.workload = key.first;
            f.config_key = key.second;
            f.status = "quarantined";
            f.error =
                "conflicting terminal journal entries (\"done\" after "
                "\"failed\")";
            entry = Entry{};
            entry.state = State::kFailed;
            entry.failure = f;
            entry.has_failure = true;
            replay.warnings.push_back(
                "point " + key.first + "|" + key.second +
                " has conflicting duplicate terminal journal entries; "
                "quarantined");
          } else {
            entry = incoming;
          }
        } else if (ev == "failed") {
          if (entry.state == State::kDone) {
            PointFailure f;
            f.workload = key.first;
            f.config_key = key.second;
            f.status = "quarantined";
            f.error =
                "conflicting terminal journal entries (\"failed\" after "
                "\"done\")";
            entry = Entry{};
            entry.state = State::kFailed;
            entry.failure = f;
            entry.has_failure = true;
            replay.warnings.push_back(
                "point " + key.first + "|" + key.second +
                " has conflicting duplicate terminal journal entries; "
                "quarantined");
          } else {
            entry = Entry{};
            entry.state = State::kFailed;
            entry.failure = parse_point_failure(doc.at("failure"));
            entry.has_failure = true;
          }
        } else {
          throw SimError("unknown journal event: " + ev);
        }
      },
      replay.warnings);

  // Stale-lock pass: a "running" point whose owner died mid-simulation is
  // re-queued. A live foreign owner gets a warning — the resumed sweep owns
  // the journal and reclaims the point regardless. The incarnation token
  // distinguishes a real live holder from an unrelated process that
  // recycled the holder's pid (kill(pid,0) succeeds, holder is gone).
  for (auto& [key, entry] : replay.points) {
    if (entry.state != State::kRunning) continue;
    const bool own = entry.pid == static_cast<int64_t>(::getpid());
    if (!own && pid_is_alive(entry.pid)) {
      const uint64_t live = worker_token(entry.pid);
      if (entry.token != 0 && live != 0 && live != entry.token) {
        replay.warnings.push_back(
            "stale lock: point " + key.first + "|" + key.second +
            " holder pid " + std::to_string(entry.pid) +
            " was recycled by an unrelated process; reclaiming");
      } else {
        replay.warnings.push_back(
            "stale lock: point " + key.first + "|" + key.second +
            " is recorded running under live pid " +
            std::to_string(entry.pid) + "; reclaiming");
      }
    }
    entry.state = State::kQueued;
    entry.pid = 0;
    entry.token = 0;
  }
  return replay;
}

}  // namespace wecsim
