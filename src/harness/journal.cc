#include "harness/journal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "obs/integrity.h"
#include "obs/json.h"
#include "obs/profile.h"

namespace wecsim {

namespace {

void begin_entry(JsonWriter& w, const char* ev, const JournalPoint& point) {
  w.begin_object();
  w.kv("ev", ev);
  w.kv("workload", point.workload);
  w.kv("key", point.key);
}

std::string finish_entry(JsonWriter& w) {
  w.kv("integrity", integrity_placeholder());
  w.end_object();
  std::string line = w.take();
  line.push_back('\n');
  return seal_integrity(std::move(line));
}

bool pid_is_alive(int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;  // exists but not ours
}

}  // namespace

SweepJournal::SweepJournal(std::string path, size_t truncate_to)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw SimError("cannot open sweep journal " + path_ + ": " +
                   std::strerror(errno));
  }
  if (truncate_to != static_cast<size_t>(-1)) {
    // Cut a torn trailing line before the first append lands after it.
    if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0) {
      const int e = errno;
      ::close(fd_);
      fd_ = -1;
      throw SimError("cannot truncate sweep journal " + path_ + ": " +
                     std::strerror(e));
    }
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepJournal::append_lines_locked(const std::vector<std::string>& lines) {
  WEC_PROFILE_SCOPE(ProfPhase::kHarnessJournal);
  std::string batch;
  for (const std::string& line : lines) batch += line;
  size_t off = 0;
  while (off < batch.size()) {
    const ssize_t n = ::write(fd_, batch.data() + off, batch.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SimError("sweep journal append failed: " + path_ + ": " +
                     std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  // Write-ahead contract: the transition is durable before the work it
  // describes proceeds (or before the process reports the point finished).
  if (::fsync(fd_) != 0) {
    throw SimError("sweep journal fsync failed: " + path_ + ": " +
                   std::strerror(errno));
  }
}

void SweepJournal::append_line(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  append_lines_locked({std::move(line)});
}

void SweepJournal::queued(const std::vector<JournalPoint>& points) {
  if (points.empty()) return;
  std::vector<std::string> lines;
  lines.reserve(points.size());
  for (const JournalPoint& p : points) {
    JsonWriter w;
    begin_entry(w, "queued", p);
    lines.push_back(finish_entry(w));
  }
  std::lock_guard<std::mutex> lock(mu_);
  append_lines_locked(lines);
}

void SweepJournal::running(const JournalPoint& point) {
  JsonWriter w;
  begin_entry(w, "running", point);
  w.kv("pid", static_cast<int64_t>(::getpid()));
  w.kv("worker",
       static_cast<uint64_t>(
           std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff));
  append_line(finish_entry(w));
}

void SweepJournal::done(const JournalPoint& point, const RunMeasurement& m,
                        bool fresh, const RunRecord* record,
                        const PointFailure* recovered) {
  JsonWriter w;
  begin_entry(w, "done", point);
  w.kv("fresh", fresh);
  w.key("measurement").begin_object();
  w.key("sim");
  write_sim_result_full(w, m.sim);
  w.kv("parallel_cycles", m.parallel_cycles);
  w.kv("run_seconds", m.run_seconds);
  w.end_object();
  if (record != nullptr) {
    w.key("record");
    write_run_record(w, *record, /*include_run_seconds=*/true);
  }
  if (recovered != nullptr) {
    w.key("failure");
    write_point_failure(w, *recovered);
  }
  append_line(finish_entry(w));
}

void SweepJournal::failed(const JournalPoint& point,
                          const PointFailure& failure) {
  JsonWriter w;
  begin_entry(w, "failed", point);
  w.key("failure");
  write_point_failure(w, failure);
  append_line(finish_entry(w));
}

JournalReplay JournalReplay::load(const std::string& path) {
  JournalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return replay;  // no journal yet: empty replay
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  size_t line_start = 0;
  size_t line_no = 0;
  while (line_start < content.size()) {
    const size_t nl = content.find('\n', line_start);
    if (nl == std::string::npos) {
      // Torn tail: the crash landed mid-append. Expected; cut on reopen.
      replay.warnings.push_back("torn trailing journal line (" +
                                std::to_string(content.size() - line_start) +
                                " bytes) dropped");
      break;
    }
    ++line_no;
    const std::string line = content.substr(line_start, nl + 1 - line_start);
    const size_t line_end = nl + 1;
    // Every '\n'-terminated line is part of the durable prefix, readable or
    // not: only the torn tail is ever truncated. A corrupt line mid-file is
    // left in place (and skipped on every load) so the entries after it
    // survive future resumes.
    replay.valid_bytes = line_end;
    if (check_integrity(line) == IntegrityStatus::kSealed) {
      try {
        const JsonValue doc = parse_json(
            line.substr(0, line.size() - 1));  // strip '\n' for the parser
        const std::string ev = doc.at("ev").as_string();
        const PointKey key{doc.at("workload").as_string(),
                           doc.at("key").as_string()};
        Entry& entry = replay.points[key];
        if (ev == "queued") {
          entry = Entry{};
        } else if (ev == "running") {
          entry = Entry{};
          entry.state = State::kRunning;
          entry.pid = doc.at("pid").as_i64();
        } else if (ev == "done") {
          entry = Entry{};
          entry.state = State::kDone;
          entry.fresh = doc.at("fresh").as_bool();
          const JsonValue& m = doc.at("measurement");
          entry.measurement.sim = parse_sim_result_full(m.at("sim"));
          entry.measurement.parallel_cycles = m.at("parallel_cycles").as_u64();
          entry.measurement.run_seconds = m.at("run_seconds").as_double();
          if (doc.has("record")) {
            entry.record = parse_run_record(doc.at("record"));
          }
          if (doc.has("failure")) {
            entry.failure = parse_point_failure(doc.at("failure"));
            entry.has_failure = true;
          }
        } else if (ev == "failed") {
          entry = Entry{};
          entry.state = State::kFailed;
          entry.failure = parse_point_failure(doc.at("failure"));
          entry.has_failure = true;
        } else {
          throw SimError("unknown journal event: " + ev);
        }
      } catch (const std::exception& e) {
        replay.warnings.push_back("journal line " + std::to_string(line_no) +
                                  " unreadable (" + e.what() + "); skipped");
      }
    } else {
      replay.warnings.push_back("journal line " + std::to_string(line_no) +
                                " failed its integrity check; skipped");
    }
    line_start = line_end;
  }

  // Stale-lock pass: a "running" point whose owner died mid-simulation is
  // re-queued. A live foreign owner gets a warning — the resumed sweep owns
  // the journal and reclaims the point regardless.
  for (auto& [key, entry] : replay.points) {
    if (entry.state != State::kRunning) continue;
    const bool own = entry.pid == static_cast<int64_t>(::getpid());
    if (!own && pid_is_alive(entry.pid)) {
      replay.warnings.push_back(
          "stale lock: point " + key.first + "|" + key.second +
          " is recorded running under live pid " + std::to_string(entry.pid) +
          "; reclaiming");
    }
    entry.state = State::kQueued;
    entry.pid = 0;
  }
  return replay;
}

}  // namespace wecsim
