// Time-bounded point leases: the mutual-exclusion layer that lets multiple
// wecsimd daemons share one state dir without running the same sweep point
// twice (docs/SERVICE.md, "Sharing a state dir across daemons").
//
// A lease is one small JSON file per point under <job_dir>/leases/. It is
// acquired atomically (write a unique temp file, link(2) it to the lease
// name — link fails with EEXIST when someone else holds it), renewed by the
// holder before `ttl_ms` elapses (temp file + rename), and released by
// unlink. A holder that stops renewing — SIGKILLed, SIGSTOP-frozen, or
// partitioned away from the filesystem — lets the lease expire, after which
// any peer may STEAL it: the stealer first renames the expired file to a
// unique stale name (exactly one concurrent stealer wins the rename; the
// losers see ENOENT and re-contend), then acquires fresh.
//
// Leases are an efficiency mechanism, not the correctness mechanism: the
// sweep journal's duplicate-terminal dedup (harness/journal.h) keeps the
// final report byte-identical even if a frozen holder wakes up and finishes
// a point its peer already re-ran. What the lease buys is that the
// duplicated work window is bounded by ttl_ms instead of unbounded.
//
// Expiry compares wall-clock milliseconds (CLOCK_REALTIME): daemons sharing
// a state dir across hosts must keep their clocks within the lease TTL of
// each other (see the failure matrix in docs/SERVICE.md for the skew row).
#pragma once

#include <cstdint>
#include <string>

namespace wecsim {

/// Wall-clock milliseconds since the epoch (CLOCK_REALTIME).
int64_t wall_clock_ms();

/// What a lease file says about its holder.
struct LeaseInfo {
  int64_t pid = 0;         // holder process
  uint64_t token = 0;      // holder incarnation token (harness/journal.h)
  int64_t expires_ms = 0;  // wall-clock expiry; past this anyone may steal
  int64_t ttl_ms = 0;      // TTL the holder acquired/renewed with
};

/// One held lease. Default-constructed = not held. Move-only: the holder
/// identity lives in the object, and release() must happen exactly once.
class PointLease {
 public:
  /// Outcome of try_acquire.
  enum class Outcome {
    kAcquired,  // fresh lease created (no live holder)
    kStolen,    // an expired peer lease was evicted first
    kHeld,      // a live (unexpired) holder owns the point
    kError,     // lease dir unwritable (degraded state dir)
  };

  PointLease() = default;
  PointLease(PointLease&& other) noexcept;
  PointLease& operator=(PointLease&& other) noexcept;
  PointLease(const PointLease&) = delete;
  PointLease& operator=(const PointLease&) = delete;
  /// Destroying a still-held lease releases it (best effort).
  ~PointLease();

  /// Attempts to take the lease at `path` (parent dir must exist) for
  /// `ttl_ms`. On kAcquired/kStolen the returned object holds the lease;
  /// on kHeld, `held_remaining_ms` (when non-null) receives how long the
  /// live holder's lease has left.
  static Outcome try_acquire(const std::string& path, int64_t ttl_ms,
                             PointLease* out,
                             int64_t* held_remaining_ms = nullptr);

  /// Extends the lease by ttl_ms from now. Returns false when the lease
  /// was lost (stolen by a peer while this holder was frozen, or the file
  /// vanished) — the caller no longer owns the point.
  bool renew(int64_t ttl_ms);

  /// Releases (unlinks) the lease if still owned. Safe to call when not
  /// held.
  void release();

  bool held() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  uint64_t token() const { return token_; }

  /// Reads a lease file. Returns false when the file is missing or
  /// unreadable; a syntactically broken file yields info with token 0 and
  /// an already-passed expiry (stealable — a torn lease must not wedge the
  /// point forever).
  static bool peek(const std::string& path, LeaseInfo* info);

 private:
  std::string path_;   // empty = not held
  uint64_t token_ = 0; // our incarnation token at acquire time
  int64_t pid_ = 0;
};

}  // namespace wecsim
