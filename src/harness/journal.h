// Write-ahead sweep journal: the crash-safety backbone of the parallel
// sweep engine (docs/ROBUSTNESS.md, "Crash safety & resume").
//
// With WECSIM_STATE_DIR set, ParallelExperimentRunner::drain() records every
// point's lifecycle as one JSONL entry per transition in
// <state_dir>/sweep.journal.jsonl:
//
//   {"ev":"queued",  "workload":W, "key":K, ...}
//   {"ev":"running", "workload":W, "key":K, "pid":P, "worker":T, ...}
//   {"ev":"done",    "workload":W, "key":K, "fresh":B, "measurement":{...},
//                    "record":{...}?, "failure":{...}?, ...}
//   {"ev":"failed",  "workload":W, "key":K, "failure":{...}, ...}
//
// Each line is sealed with an fnv1a64 integrity digest (obs/integrity.h) and
// fsync'd on append, so after a SIGKILL or power cut the journal is a valid
// prefix plus at most one torn trailing line. A resumed sweep
// (WECSIM_RESUME=1 / --resume) replays terminal entries — "done" points
// rejoin the sweep with their full RunRecord so the final report is
// byte-identical to an uninterrupted run — and re-queues "queued"/"running"
// ones. A "running" entry whose recorded pid is still alive in another
// process is a stale-lock warning; the resumed sweep reclaims it either way.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"

namespace wecsim {

/// Identifies one sweep point in journal entries.
struct JournalPoint {
  std::string workload;
  std::string key;
};

/// Append-only journal writer. Thread-safe: workers append concurrently.
class SweepJournal {
 public:
  /// Opens (creating if needed) the journal for appending. When
  /// `truncate_to` is not npos the file is first truncated to that many
  /// bytes — the resume path cuts off a torn trailing line this way.
  /// Throws SimError when the file cannot be opened.
  explicit SweepJournal(std::string path,
                        size_t truncate_to = static_cast<size_t>(-1));
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  const std::string& path() const { return path_; }

  /// One "queued" entry per point, then a single fsync.
  void queued(const std::vector<JournalPoint>& points);

  /// "running" entry: this process/thread claimed the point.
  void running(const JournalPoint& point);

  /// Terminal success. `record` is non-null for a fresh simulation (it is
  /// what lets a resume rebuild the run report byte-for-byte); `recovered`
  /// is non-null when a transient failure preceded the success.
  void done(const JournalPoint& point, const RunMeasurement& m, bool fresh,
            const RunRecord* record, const PointFailure* recovered);

  /// Terminal failure (the point was quarantined).
  void failed(const JournalPoint& point, const PointFailure& failure);

 private:
  void append_line(std::string line);  // seals, writes, fsyncs; locks mu_
  void append_lines_locked(const std::vector<std::string>& lines);

  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
};

/// The parsed state of a journal: last transition per point, plus what the
/// loader had to skip or cut to get there.
struct JournalReplay {
  enum class State { kQueued, kRunning, kDone, kFailed };

  struct Entry {
    State state = State::kQueued;
    int64_t pid = 0;       // from the last "running" entry
    bool fresh = false;    // "done": simulated (vs served from disk cache)
    RunMeasurement measurement;  // "done"
    RunRecord record;            // "done" with fresh=true
    PointFailure failure;        // "failed", or "done" after a recovery
    bool has_failure = false;
  };

  using PointKey = std::pair<std::string, std::string>;  // (workload, key)

  std::map<PointKey, Entry> points;
  /// Byte length of the intact line prefix; a resume re-opens the journal
  /// truncated to this, cutting off a torn trailing line.
  size_t valid_bytes = 0;
  /// Human-readable notes: torn tail cut, corrupt lines skipped, stale
  /// locks reclaimed. The runner prints them once on resume.
  std::vector<std::string> warnings;

  /// Parses a journal file. A missing file yields an empty replay. Lines
  /// that fail the integrity check or do not parse are skipped with a
  /// warning — a mid-file bit flip costs one point's replay, never the
  /// whole journal. "running" entries whose pid is dead (or is this
  /// process) are demoted to re-queued silently; a live foreign pid adds a
  /// stale-lock warning but is reclaimed all the same.
  static JournalReplay load(const std::string& path);
};

}  // namespace wecsim
