// Write-ahead sweep journal: the crash-safety backbone of the parallel
// sweep engine (docs/ROBUSTNESS.md, "Crash safety & resume").
//
// With WECSIM_STATE_DIR set, ParallelExperimentRunner::drain() records every
// point's lifecycle as one JSONL entry per transition in
// <state_dir>/sweep.journal.jsonl:
//
//   {"ev":"queued",  "workload":W, "key":K, ...}
//   {"ev":"running", "workload":W, "key":K, "pid":P, "worker":T, "token":U,...}
//   {"ev":"done",    "workload":W, "key":K, "fresh":B, "measurement":{...},
//                    "record":{...}?, "failure":{...}?, ...}
//   {"ev":"failed",  "workload":W, "key":K, "failure":{...}, ...}
//
// Each line is sealed with an fnv1a64 integrity digest (obs/integrity.h) and
// fsync'd on append, so after a SIGKILL or power cut the journal is a valid
// prefix plus at most one torn trailing line. A resumed sweep
// (WECSIM_RESUME=1 / --resume) replays terminal entries — "done" points
// rejoin the sweep with their full RunRecord so the final report is
// byte-identical to an uninterrupted run — and re-queues "queued"/"running"
// ones. A "running" entry whose recorded pid is still alive in another
// process is a stale-lock warning; the resumed sweep reclaims it either way.
// The "token" field binds the lock to one incarnation of that pid (pid +
// /proc start time), so a recycled pid is recognized as a dead holder.
//
// The sealed-append-line machinery (SealedAppendLog / finish_sealed_line /
// scan_sealed_lines) is exposed separately: the wecsimd service queue uses
// the same fsync'd, checksummed, torn-tail-tolerant format for its own WAL.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/json.h"

namespace wecsim {

/// True when `pid` names a live process (kill(pid,0), EPERM counts as live).
bool pid_is_alive(int64_t pid);

/// starttime (clock ticks since boot, /proc/<pid>/stat field 22) of a live
/// process, or 0 when the pid is gone or /proc is unreadable. Two processes
/// sharing a recycled pid always differ in start ticks.
uint64_t process_start_ticks(int64_t pid);

/// Identity token for one incarnation of a process: fnv1a64 over
/// "<pid>:<start_ticks>". 0 when the process cannot be identified. Journal
/// "running" entries record the claimer's token so a stale-lock scan can
/// tell a live holder from an unrelated process that recycled its pid.
uint64_t worker_token(int64_t pid);

/// Closes the JSON object under construction with a sealed "integrity"
/// field, appends the trailing '\n', and returns the sealed line — the
/// common tail of every sealed-JSONL append (journal + service queue).
std::string finish_sealed_line(JsonWriter& w);

/// Scans a sealed-JSONL file, invoking `fn` once per intact sealed line
/// (already parsed). Returns the byte length of the '\n'-terminated prefix;
/// a torn trailing line is excluded (and noted in `warnings`) so the caller
/// can truncate it on reopen. A line that fails its integrity check, does
/// not parse, or makes `fn` throw is skipped with a warning — one bad line
/// never costs the rest of the file. A missing file scans as empty.
size_t scan_sealed_lines(const std::string& path,
                         const std::function<void(const JsonValue& doc)>& fn,
                         std::vector<std::string>& warnings);

/// Append-only sealed-JSONL log file: O_APPEND writes, fsync per append so
/// each line is durable before the caller proceeds. Thread-safe. The lines
/// themselves must already be sealed (finish_sealed_line).
///
/// Safe for MULTIPLE PROCESSES appending to one file: O_APPEND keeps
/// whole-line appends intact, and every append first checks that the file
/// currently ends in '\n' — if a peer crashed mid-append and left a torn
/// tail, the next writer prepends a newline so the torn bytes become one
/// isolated corrupt line (skipped by scan_sealed_lines) instead of fusing
/// with, and destroying, the fresh append. Truncation-on-reopen remains the
/// single-writer resume path; shared writers must NOT truncate (a peer's
/// in-flight append looks exactly like a torn tail to a reader).
class SealedAppendLog {
 public:
  /// Opens (creating if needed) the log for appending. When `truncate_to`
  /// is not npos the file is first truncated to that many bytes — the
  /// resume path cuts off a torn trailing line this way. Throws SimError
  /// when the file cannot be opened.
  explicit SealedAppendLog(std::string path,
                           size_t truncate_to = static_cast<size_t>(-1));
  ~SealedAppendLog();

  SealedAppendLog(const SealedAppendLog&) = delete;
  SealedAppendLog& operator=(const SealedAppendLog&) = delete;

  const std::string& path() const { return path_; }

  /// Appends one sealed line, then fsyncs.
  void append(std::string sealed_line);
  /// Appends a batch of sealed lines with a single fsync.
  void append_batch(const std::vector<std::string>& sealed_lines);

 private:
  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
};

/// Identifies one sweep point in journal entries.
struct JournalPoint {
  std::string workload;
  std::string key;
};

/// Append-only journal writer. Thread-safe: workers append concurrently.
class SweepJournal {
 public:
  /// Opens (creating if needed) the journal for appending. When
  /// `truncate_to` is not npos the file is first truncated to that many
  /// bytes — the resume path cuts off a torn trailing line this way.
  /// Throws SimError when the file cannot be opened.
  explicit SweepJournal(std::string path,
                        size_t truncate_to = static_cast<size_t>(-1));

  const std::string& path() const { return log_.path(); }

  /// One "queued" entry per point, then a single fsync.
  void queued(const std::vector<JournalPoint>& points);

  /// "running" entry: this process/thread claimed the point.
  void running(const JournalPoint& point);

  /// "running" entry for an out-of-process claimer (the wecsimd supervisor
  /// records the worker child's pid + incarnation token, not its own).
  void running(const JournalPoint& point, int64_t pid, uint64_t token);

  /// Terminal success. `record` is non-null for a fresh simulation (it is
  /// what lets a resume rebuild the run report byte-for-byte); `recovered`
  /// is non-null when a transient failure preceded the success. `via`
  /// (optional) tags how the run came to happen — the wecsimd federation
  /// records "stolen" for a point completed under a lease taken from an
  /// expired peer; it never affects replay semantics, only provenance
  /// reporting.
  void done(const JournalPoint& point, const RunMeasurement& m, bool fresh,
            const RunRecord* record, const PointFailure* recovered,
            const char* via = nullptr);

  /// Terminal failure (the point was quarantined).
  void failed(const JournalPoint& point, const PointFailure& failure);

 private:
  SealedAppendLog log_;
};

/// Digest of the deterministic content of a measurement (SimResult +
/// parallel_cycles; wall-clock `run_seconds` deliberately excluded). Two
/// journal "done" entries for the same point must agree on this digest —
/// re-runs of a deterministic simulator do — or the replay quarantines the
/// point instead of silently picking one.
uint64_t measurement_digest(const RunMeasurement& m);

/// The parsed state of a journal: last transition per point, plus what the
/// loader had to skip or cut to get there.
struct JournalReplay {
  enum class State { kQueued, kRunning, kDone, kFailed };

  struct Entry {
    State state = State::kQueued;
    int64_t pid = 0;       // from the last "running" entry
    uint64_t token = 0;    // claimer incarnation token ("running")
    bool fresh = false;    // "done": simulated (vs served from disk cache)
    std::string via;       // "done" provenance tag (e.g. "stolen"); may be ""
    RunMeasurement measurement;  // "done"
    RunRecord record;            // "done" with fresh=true
    PointFailure failure;        // "failed", or "done" after a recovery
    bool has_failure = false;
  };

  using PointKey = std::pair<std::string, std::string>;  // (workload, key)

  std::map<PointKey, Entry> points;
  /// Byte length of the intact line prefix; a resume re-opens the journal
  /// truncated to this, cutting off a torn trailing line.
  size_t valid_bytes = 0;
  /// Human-readable notes: torn tail cut, corrupt lines skipped, stale
  /// locks reclaimed, conflicting duplicates quarantined. The runner prints
  /// them once on resume.
  std::vector<std::string> warnings;

  /// Parses a journal file. A missing file yields an empty replay. Lines
  /// that fail the integrity check or do not parse are skipped with a
  /// warning — a mid-file bit flip costs one point's replay, never the
  /// whole journal. "running" entries whose pid is dead, is this process,
  /// or carries a token that no longer matches the live pid (pid recycled
  /// by an unrelated process) are demoted to re-queued; a genuinely live
  /// foreign holder adds a stale-lock warning but is reclaimed all the
  /// same. Duplicate terminal events for one point (no re-queue between)
  /// are tolerated when their measurements agree — the record-bearing copy
  /// wins — and quarantine the point when they conflict.
  static JournalReplay load(const std::string& path);
};

}  // namespace wecsim
