// Experiment driver shared by the bench binaries: run (workload, config)
// pairs, cache results within a process, and aggregate speedups the way the
// paper does. Every fresh simulation is also captured as a RunRecord so a
// bench can emit a machine-readable run report (see harness/report.h), and
// setting WECSIM_TRACE_DIR=<dir> in the environment makes each fresh run
// write its pipeline event trace (JSONL + Chrome trace_event) into <dir>.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "harness/report.h"
#include "workloads/workload.h"

namespace wecsim {

/// One simulation's relevant measurements (SimResult plus the parallel-
/// portion cycles used by Figure 8).
struct RunMeasurement {
  SimResult sim;
  Cycle parallel_cycles = 0;
};

/// Runs simulations and memoizes them by (workload, config-key) so sweeps
/// that share a baseline don't re-simulate it.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const WorkloadParams& params = {});

  /// Simulate `workload_name` on `config`. `key` must uniquely identify the
  /// configuration (e.g. "orig/8tu/l1=8k").
  const RunMeasurement& run(const std::string& workload_name,
                            const std::string& key, const StaConfig& config);

  const WorkloadParams& params() const { return params_; }

  /// One record per fresh (uncached) simulation, in execution order.
  const std::vector<RunRecord>& records() const { return records_; }

  /// Write the collected records as a run report (harness/report.h).
  void write_report(const std::string& path,
                    const std::string& bench_name) const;

 private:
  WorkloadParams params_;
  std::map<std::string, RunMeasurement> cache_;
  std::vector<RunRecord> records_;
  std::string trace_dir_;  // from WECSIM_TRACE_DIR; empty = tracing off
};

/// "workload|config/key" -> a safe filename fragment (alnum, '-', '_', '.').
std::string sanitize_run_name(const std::string& s);

/// speedup > 1 means `cycles` is faster than `base_cycles`.
double speedup(Cycle base_cycles, Cycle cycles);

/// Relative speedup in percent: 100 * (base/new - 1).
double relative_speedup_pct(Cycle base_cycles, Cycle cycles);

/// The paper reports "execution time weighted average" speedups that give
/// each benchmark equal importance [Lilja 2000]: the geometric mean of the
/// per-benchmark speedup ratios.
double mean_speedup(const std::vector<double>& per_benchmark_speedups);

}  // namespace wecsim
