// Experiment driver shared by the bench binaries: run (workload, config)
// pairs, cache results within a process, and aggregate speedups the way the
// paper does. Every fresh simulation is also captured as a RunRecord so a
// bench can emit a machine-readable run report (see harness/report.h), and
// setting WECSIM_TRACE_DIR=<dir> in the environment makes each fresh run
// write its pipeline event trace (JSONL + Chrome trace_event) into <dir>.
//
// Two caching layers sit in front of the simulator:
//   * an in-process memo keyed by the composite (workload, key) pair, so
//     sweeps that share a baseline don't re-simulate it;
//   * an optional persistent on-disk cache (WECSIM_CACHE_DIR, see
//     harness/result_cache.h) keyed by a content hash of the workload,
//     its parameters, the full StaConfig, and kSimulatorVersion, so
//     regenerating a figure skips simulation entirely. Disk hits do NOT
//     produce RunRecords — records() counts fresh simulations only.
//
// For multi-core execution of independent points, see
// harness/parallel.h (ParallelExperimentRunner).
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "fault/fault.h"
#include "harness/report.h"
#include "workloads/workload.h"

namespace wecsim {

class ProgressReporter;
class ResultCache;

/// Thrown by run() when the requested point has been quarantined by the
/// fail-soft machinery. Benches that want to keep going use try_run().
class PointQuarantined : public SimError {
 public:
  explicit PointQuarantined(const std::string& what) : SimError(what) {}
};

/// One simulation's relevant measurements (SimResult plus the parallel-
/// portion cycles used by Figure 8, plus the wall-clock it cost).
struct RunMeasurement {
  SimResult sim;
  Cycle parallel_cycles = 0;
  double run_seconds = 0.0;  // host wall-clock of the simulation run
};

/// Backoff before fail-soft retry `attempt` (0-based) of `point_key`
/// ("workload|key"): exponential base `base_ms << attempt`, with the upper
/// half replaced by deterministic jitter derived from (`fault_seed`,
/// `point_key`, `attempt`). Parallel workers retrying the same transient
/// blip therefore spread out instead of stampeding in lockstep, while any
/// given point's schedule is a pure function of the fault-plan seed —
/// reports stay byte-identical run over run. base_ms == 0 disables backoff.
uint64_t failsoft_backoff_ms(uint32_t base_ms, uint32_t attempt,
                             uint64_t fault_seed,
                             const std::string& point_key);

/// Runs simulations and memoizes them by (workload, key) so sweeps that
/// share a baseline don't re-simulate it.
class ExperimentRunner {
 public:
  /// `cache_dir` overrides the on-disk result cache location: std::nullopt
  /// honours WECSIM_CACHE_DIR, "" disables the cache (tests/benchmarks that
  /// must measure real simulations), anything else is used as the directory.
  explicit ExperimentRunner(const WorkloadParams& params = {},
                            std::optional<std::string> cache_dir = std::nullopt);
  virtual ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Simulate `workload_name` on `config`. `key` must uniquely identify the
  /// configuration (e.g. "orig/8tu/l1=8k") within this workload. Throws
  /// PointQuarantined when the point's fail-soft budget is exhausted.
  const RunMeasurement& run(const std::string& workload_name,
                            const std::string& key, const StaConfig& config);

  /// Fail-soft variant of run(): transient failures (injected worker
  /// crashes, I/O blips) are retried with exponential backoff; persistent
  /// ones (timeouts, simulator errors, lockstep divergence) quarantine the
  /// point. Returns nullptr for a quarantined point — the failure is
  /// recorded in failures() and in the run report — and a stable pointer
  /// into the memo otherwise.
  const RunMeasurement* try_run(const std::string& workload_name,
                                const std::string& key,
                                const StaConfig& config);

  const WorkloadParams& params() const { return params_; }

  /// One record per fresh (uncached) simulation, in execution order.
  const std::vector<RunRecord>& records() const { return records_; }

  /// Per-point failure records: quarantined points plus transient failures
  /// that a retry recovered. Empty on a clean run.
  const std::vector<PointFailure>& failures() const { return failures_; }

  /// Points dropped from the sweep (failures() entries with status
  /// "quarantined").
  size_t quarantined_count() const;

  /// Replace the fault plan picked up from WECSIM_FAULTS. Drives both the
  /// harness-level worker faults and the fault sessions of the simulations
  /// this runner launches.
  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Override the retry budget (default: 1 + WECSIM_RETRIES attempts,
  /// WECSIM_RETRY_BACKOFF_MS ms initial backoff). Tests use backoff 0.
  void set_failsoft_limits(uint32_t max_attempts, uint32_t backoff_ms) {
    max_attempts_ = max_attempts > 0 ? max_attempts : 1;
    backoff_ms_ = backoff_ms;
  }

  /// Worker count used to execute simulations (1 for the serial runner).
  virtual unsigned jobs() const { return 1; }

  /// True when a sweep was stopped early by SIGINT/SIGTERM (crash-safe mode
  /// only — see harness/journal.h). write_report marks such a report
  /// "interrupted": true; the bench exits with kExitInterrupted.
  bool interrupted() const { return interrupted_; }

  /// Wall-clock seconds since this runner was constructed.
  double elapsed_seconds() const;

  /// Write the collected records as a run report (harness/report.h).
  void write_report(const std::string& path,
                    const std::string& bench_name) const;

  /// Write the timing side-channel (harness/report.h) for this runner.
  void write_timing(const std::string& path,
                    const std::string& bench_name) const;

 protected:
  /// A fresh simulation's full outcome: the measurement handed back to the
  /// bench and the observability record behind the run report.
  struct PointOutcome {
    RunMeasurement m;
    RunRecord record;
  };

  /// Composite memo key — (workload, key) as a pair, NOT a concatenated
  /// string, so user keys containing separator characters cannot collide.
  using MemoKey = std::pair<std::string, std::string>;

  /// Outcome of the fail-soft attempt loop for one point.
  struct PointAttempt {
    bool ok = false;          // a measurement was produced
    PointOutcome out;         // valid when ok
    PointFailure failure;     // valid when !ok, or when a retry recovered
    bool recovered = false;   // ok after at least one transient failure
  };

  /// Simulate one point in an isolated Simulator instance. Pure function of
  /// its arguments (no runner state) — safe to call from worker threads.
  /// Writes trace files into `trace_dir` when non-empty; `faults` (when
  /// non-empty) replaces the environment's fault plan inside the simulator.
  /// With config.sampling.enabled the point runs on the SampledSimulator
  /// instead: result.cycles/committed are extrapolated estimates, the
  /// record's counters/gauges/histograms stay empty (window-level detail
  /// lives in record.sampling), and fault injection or WECSIM_CHECK raise a
  /// SimError — neither is meaningful on an estimated run. `progress` (may
  /// be null; thread-safe) receives live sampled-window ticks and the run's
  /// cycle-skip total.
  static PointOutcome simulate_point(const std::string& workload_name,
                                     const std::string& key,
                                     const WorkloadParams& params,
                                     const StaConfig& config,
                                     const std::string& trace_dir,
                                     const FaultPlan& faults = FaultPlan(),
                                     ProgressReporter* progress = nullptr);

  /// The fail-soft attempt loop: injected worker faults, per-point wall
  /// timeouts, bounded retry with exponential backoff. Touches no runner
  /// state besides reading the (immutable during a sweep) fail-soft knobs —
  /// safe to call from worker threads for distinct points.
  PointAttempt run_point_failsoft(const std::string& workload_name,
                                  const std::string& key,
                                  StaConfig config) const;

  /// Result-cache salt for the active fault plan ("" when no faults).
  std::string fault_salt() const;

  /// The configuration a point actually runs with: `config`, overridden to
  /// sampled mode when WECSIM_SAMPLE is set. Applied before any cache
  /// decision — a sampled point must never load from or store into the
  /// byte-identity result cache.
  StaConfig effective_config(const StaConfig& config) const;

  /// Record the failure side of a finished attempt (quarantine bookkeeping
  /// plus the recovered-transient audit trail). Call from the merge path
  /// only — not thread-safe.
  void record_attempt_failure(const MemoKey& memo_key,
                              const PointAttempt& attempt);

  WorkloadParams params_;
  bool interrupted_ = false;  // set by the parallel drain's signal guard
  std::map<MemoKey, RunMeasurement> cache_;
  std::vector<RunRecord> records_;
  std::vector<PointFailure> failures_;
  std::set<MemoKey> quarantined_;
  FaultPlan fault_plan_;        // WECSIM_FAULTS unless set_fault_plan() ran
  uint32_t max_attempts_ = 3;   // 1 + WECSIM_RETRIES
  uint32_t backoff_ms_ = 50;    // WECSIM_RETRY_BACKOFF_MS; doubles per retry
  double point_timeout_ = 0.0;  // WECSIM_POINT_TIMEOUT seconds; 0 = off
  std::string trace_dir_;  // from WECSIM_TRACE_DIR; empty = tracing off
  // WECSIM_SAMPLE / WECSIM_SAMPLE_{FF,WARMUP,MEASURE}: when enabled, every
  // point this runner simulates is overridden to sampled mode (applied in
  // try_run BEFORE any cache decision — sampled estimates must neither be
  // served from nor stored into the byte-identity result cache).
  StaConfig::Sampling env_sampling_;
  std::unique_ptr<ResultCache> disk_cache_;
  // Live telemetry (harness/progress.h); null unless WECSIM_PROGRESS_DIR or
  // WECSIM_PROGRESS_FIFO is set. Pure side-channel: feeds nothing back.
  std::unique_ptr<ProgressReporter> progress_;
  std::chrono::steady_clock::time_point start_;
};

/// "workload|config/key" -> a safe filename fragment (alnum, '-', '_', '.').
std::string sanitize_run_name(const std::string& s);

/// speedup > 1 means `cycles` is faster than `base_cycles`.
double speedup(Cycle base_cycles, Cycle cycles);

/// Relative speedup in percent: 100 * (base/new - 1).
double relative_speedup_pct(Cycle base_cycles, Cycle cycles);

/// The paper reports "execution time weighted average" speedups that give
/// each benchmark equal importance [Lilja 2000]: the geometric mean of the
/// per-benchmark speedup ratios. Throws (std::logic_error) on an empty
/// input or a non-positive speedup — never silently returns NaN/garbage.
double mean_speedup(const std::vector<double>& per_benchmark_speedups);

}  // namespace wecsim
