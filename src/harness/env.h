// Strict parsing of the numeric/boolean WECSIM_* environment knobs. The old
// atoi-style parsing silently truncated "8x" to 8 and accepted absurd values;
// these helpers reject trailing garbage and out-of-range input, and — in the
// WECSIM_FAULTS all-errors style — collect every problem into one list so a
// misconfigured environment is reported in a single aggregated SimError
// instead of one var at a time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wecsim {

/// Parses an unsigned integer env var. Unset or empty returns `fallback`.
/// A set value must be a pure decimal integer in [min_value, max_value];
/// otherwise an error naming the variable, the offending text, and the
/// accepted range is appended to *errors and `fallback` is returned.
uint32_t parse_env_u32(const char* name, uint32_t fallback, uint32_t min_value,
                       uint32_t max_value, std::vector<std::string>* errors);

/// Parses a positive duration in seconds. Unset or empty returns `fallback`.
/// A set value must be a finite decimal > 0 with no trailing garbage.
double parse_env_seconds(const char* name, double fallback,
                         std::vector<std::string>* errors);

/// Parses a boolean flag: 1/true/yes/on and 0/false/no/off, case-insensitive.
bool parse_env_flag(const char* name, bool fallback,
                    std::vector<std::string>* errors);

/// Throws one SimError listing every collected problem; no-op when empty.
void throw_if_env_errors(const std::vector<std::string>& errors);

/// Observability knobs (flight recorder), parsed strictly alongside the
/// retry/timeout/jobs variables so one aggregated SimError names every
/// misconfigured WECSIM_* variable.
struct ObsEnv {
  std::string progress_dir;    // WECSIM_PROGRESS_DIR (JSONL stream directory)
  std::string progress_fifo;   // WECSIM_PROGRESS_FIFO (optional named pipe);
                               // telemetry is off when both are empty
  uint32_t interval_ms = 500;  // WECSIM_PROGRESS_INTERVAL_MS in [10, 60000]
  bool profile = false;        // WECSIM_PROFILE (strict boolean)
  bool profile_set = false;    // WECSIM_PROFILE present in the environment
};

/// Reads the WECSIM_PROGRESS* / WECSIM_PROFILE variables, appending any
/// violations to *errors (same contract as the parse_env_* helpers).
ObsEnv parse_obs_env(std::vector<std::string>* errors);

/// wecsimd sweep-service knobs (docs/SERVICE.md), parsed with the same
/// strict aggregated contract. Flag-style overrides on the daemon/ctl
/// command line win over the environment; everything here has a sane
/// default so `wecsimd <state_dir>` alone is a working deployment.
struct ServiceEnv {
  std::string socket;            // WECSIM_SERVICE_SOCKET; default
                                 // <state_dir>/wecsimd.sock when empty
  std::string listen;            // WECSIM_SERVICE_LISTEN "host:port" TCP
                                 // endpoint; empty = Unix socket only
  uint32_t workers = 0;          // WECSIM_SERVICE_WORKERS; 0 = hw threads
  uint32_t max_queue = 1024;     // WECSIM_SERVICE_MAX_QUEUE queued points
  uint32_t quota = 256;          // WECSIM_SERVICE_QUOTA per-client queued pts
  uint32_t retries = 2;          // WECSIM_SERVICE_RETRIES per crashed point
  uint32_t backoff_ms = 100;     // WECSIM_SERVICE_BACKOFF_MS restart backoff
  uint32_t retry_after_ms = 500; // WECSIM_SERVICE_RETRY_AFTER_MS hint in
                                 // backpressure rejections
  uint32_t lease_ms = 5000;      // WECSIM_SERVICE_LEASE_MS point-lease TTL
                                 // shared-state-dir daemons steal after
  std::vector<std::string> endpoints;  // WECSIM_SERVICE_ENDPOINTS comma list
                                       // (client failover order)
};

/// Reads the WECSIM_SERVICE_* variables, appending any violations to
/// *errors (same contract as the parse_env_* helpers).
ServiceEnv parse_service_env(std::vector<std::string>* errors);

/// True when `endpoint` is syntactically a daemon endpoint: a Unix socket
/// path (contains '/') or a numeric "host:port" TCP address.
bool valid_service_endpoint(const std::string& endpoint);

/// Splits a comma-separated endpoint list, validating each element;
/// violations are appended to *errors naming `what` (the variable or flag).
std::vector<std::string> parse_endpoint_list(const std::string& text,
                                             const std::string& what,
                                             std::vector<std::string>* errors);

}  // namespace wecsim
