#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace wecsim {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  WEC_CHECK_MSG(cells.size() == rows_.front().size(),
                "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::pct(double value, int precision) {
  return num(value, precision) + "%";
}

std::string TextTable::render() const {
  std::vector<size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  for (size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << "  ";
      if (i == 0) {
        os << row[i] << std::string(widths[i] - row[i].size(), ' ');
      } else {
        os << std::string(widths[i] - row[i].size(), ' ') << row[i];
      }
    }
    os << '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w;
      os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
    }
  }
  return os.str();
}

}  // namespace wecsim
