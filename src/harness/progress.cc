#include "harness/progress.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "harness/env.h"
#include "obs/json.h"
#include "obs/profile.h"

namespace wecsim {

const char* progress_outcome_name(ProgressReporter::Outcome outcome) {
  switch (outcome) {
    case ProgressReporter::Outcome::kFresh:
      return "fresh";
    case ProgressReporter::Outcome::kCached:
      return "cached";
    case ProgressReporter::Outcome::kReplayed:
      return "replayed";
    case ProgressReporter::Outcome::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

ProgressReporter::Options ProgressReporter::options_from(const ObsEnv& env) {
  Options options;
  options.dir = env.progress_dir;
  options.fifo = env.progress_fifo;
  options.interval_ms = env.interval_ms;
  return options;
}

namespace {

/// Every event line starts with the same envelope so each line validates
/// independently of the rest of the stream.
void envelope(JsonWriter* w, const char* event) {
  w->begin_object();
  w->kv("schema", "wecsim.progress");
  w->kv("schema_version", kProgressSchemaVersion);
  w->kv("event", event);
}

}  // namespace

ProgressReporter::ProgressReporter(const Options& options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  if (!options_.dir.empty()) {
    // One stream file per reporter: a process can host several runners
    // (serial + parallel A/B benches), so the pid alone is not unique.
    static std::atomic<uint64_t> next_stream{0};
    stream_path_ = options_.dir + "/wecsim-" + std::to_string(::getpid()) +
                   "-" + std::to_string(next_stream++) + ".progress.jsonl";
    file_ = std::fopen(stream_path_.c_str(), "wb");
    if (file_ == nullptr) {
      std::fprintf(stderr,
                   "[warn] progress stream not written: cannot open %s (%s)\n",
                   stream_path_.c_str(), std::strerror(errno));
      stream_path_.clear();
    }
  }
  if (!options_.fifo.empty()) {
    // O_RDWR keeps a read end open on our side, so open() never blocks
    // waiting for a reader and writes never raise SIGPIPE; with O_NONBLOCK a
    // full pipe returns EAGAIN and the line is dropped — telemetry must
    // never stall the sweep.
    fifo_fd_ = ::open(options_.fifo.c_str(), O_RDWR | O_NONBLOCK);
    if (fifo_fd_ < 0) {
      std::fprintf(stderr,
                   "[warn] progress FIFO not written: cannot open %s (%s)\n",
                   options_.fifo.c_str(), std::strerror(errno));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  emit_start_locked();
  if (file_ != nullptr || fifo_fd_ >= 0) {
    emitter_ = std::thread([this] { heartbeat_loop(); });
  }
}

ProgressReporter::~ProgressReporter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (emitter_.joinable()) emitter_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A final heartbeat before the finish line: even a sweep shorter than
    // one interval yields a stream with at least one observable beat.
    emit_heartbeat_locked();
    emit_finish_locked();
  }
  if (file_ != nullptr) std::fclose(file_);
  if (fifo_fd_ >= 0) ::close(fifo_fd_);
}

double ProgressReporter::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void ProgressReporter::emit_locked(const std::string& line) {
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);  // per-line flush keeps the stream tailable
  }
  if (fifo_fd_ >= 0) {
    const std::string with_newline = line + "\n";
    // One write per line: POSIX guarantees atomicity below PIPE_BUF, so a
    // live reader never sees interleaved halves of two events.
    const ssize_t n =
        ::write(fifo_fd_, with_newline.data(), with_newline.size());
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && !fifo_warned_) {
      fifo_warned_ = true;
      std::fprintf(stderr, "[warn] progress FIFO write failed: %s\n",
                   std::strerror(errno));
    }
  }
}

void ProgressReporter::emit_start_locked() {
  JsonWriter w;
  envelope(&w, "start");
  w.kv("pid", static_cast<int64_t>(::getpid()));
  w.kv("interval_ms", options_.interval_ms);
  w.end_object();
  emit_locked(w.str());
}

void ProgressReporter::emit_heartbeat_locked() {
  size_t running = 0;
  for (const WorkerState& ws : workers_) {
    if (!ws.point.empty()) ++running;
  }
  // Serial runners never announce a total, so the best lower bound is what
  // has been seen so far; pending is relative to that bound.
  const size_t total = std::max(announced_, done_ + running);
  const size_t pending = total - done_ - running;
  const double cps =
      sim_seconds_ > 0.0 ? static_cast<double>(sim_cycles_) / sim_seconds_
                         : 0.0;
  const double eta =
      fresh_ > 0 && pending > 0
          ? static_cast<double>(pending) * (sim_seconds_ / fresh_) /
                std::max(1u, jobs_)
          : 0.0;

  JsonWriter w;
  envelope(&w, "heartbeat");
  w.kv("seq", seq_++);
  w.kv("elapsed_seconds", elapsed_seconds());
  w.kv("total", static_cast<uint64_t>(total));
  w.kv("done", static_cast<uint64_t>(done_));
  w.kv("running", static_cast<uint64_t>(running));
  w.kv("pending", static_cast<uint64_t>(pending));
  w.kv("quarantined", static_cast<uint64_t>(quarantined_));
  w.kv("fresh", static_cast<uint64_t>(fresh_));
  w.kv("cache_hits", static_cast<uint64_t>(cache_hits_));
  w.kv("replayed", static_cast<uint64_t>(replayed_));
  w.kv("retries", retries_);
  w.kv("sim_cycles_total", sim_cycles_);
  w.kv("sim_cycles_per_second", cps);
  w.kv("eta_seconds", eta);
  w.kv("skipped_cycles_total", skipped_cycles_);
  w.kv("skipped_pct", sim_cycles_ > 0
                          ? 100.0 * static_cast<double>(skipped_cycles_) /
                                static_cast<double>(sim_cycles_)
                          : 0.0);
  w.kv("sample_windows", sample_windows_);
  // Top self-profile phases by inclusive time (obs/profile.h), so a live
  // consumer can show where the host cycles are going without waiting for
  // the timing report. Only under WECSIM_PROFILE.
  if (profile_enabled()) {
    std::vector<ProfPhaseTotal> phases = profile_snapshot();
    std::sort(phases.begin(), phases.end(),
              [](const ProfPhaseTotal& a, const ProfPhaseTotal& b) {
                return a.ns > b.ns;
              });
    if (phases.size() > 3) phases.resize(3);
    w.key("profile_top").begin_array();
    for (const ProfPhaseTotal& p : phases) {
      w.begin_object();
      w.kv("phase", profile_phase_name(p.phase));
      w.kv("seconds", static_cast<double>(p.ns) / 1e9);
      w.end_object();
    }
    w.end_array();
  }
  w.key("workers").begin_array();
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < workers_.size(); ++i) {
    const WorkerState& ws = workers_[i];
    w.begin_object();
    w.kv("worker", static_cast<uint64_t>(i));
    w.kv("state", ws.point.empty() ? "idle" : "running");
    if (!ws.point.empty()) {
      w.kv("point", ws.point);
      w.kv("seconds",
           std::chrono::duration<double>(now - ws.since).count());
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  emit_locked(w.str());
}

void ProgressReporter::emit_finish_locked() {
  JsonWriter w;
  envelope(&w, "finish");
  w.kv("total", static_cast<uint64_t>(std::max(announced_, done_)));
  w.kv("done", static_cast<uint64_t>(done_));
  w.kv("quarantined", static_cast<uint64_t>(quarantined_));
  w.kv("fresh", static_cast<uint64_t>(fresh_));
  w.kv("cache_hits", static_cast<uint64_t>(cache_hits_));
  w.kv("replayed", static_cast<uint64_t>(replayed_));
  w.kv("retries", retries_);
  w.kv("sim_cycles_total", sim_cycles_);
  w.kv("skipped_cycles_total", skipped_cycles_);
  w.kv("sample_windows", sample_windows_);
  w.kv("wall_seconds", elapsed_seconds());
  w.end_object();
  emit_locked(w.str());
}

void ProgressReporter::note_skipped_cycles(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  skipped_cycles_ += n;
}

void ProgressReporter::note_sample_window() {
  std::lock_guard<std::mutex> lock(mu_);
  sample_windows_ += 1;
}

void ProgressReporter::heartbeat_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return shutdown_; });
    if (shutdown_) return;
    emit_heartbeat_locked();
  }
}

void ProgressReporter::sweep_begin(size_t points, unsigned jobs) {
  std::lock_guard<std::mutex> lock(mu_);
  announced_ = done_ + points;
  jobs_ = std::max(jobs_, jobs);
  emit_heartbeat_locked();
}

void ProgressReporter::point_started(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      slot_of_.emplace(std::this_thread::get_id(), workers_.size());
  if (inserted) workers_.emplace_back();
  WorkerState& ws = workers_[it->second];
  ws.point = point;
  ws.since = std::chrono::steady_clock::now();
}

void ProgressReporter::point_finished(const std::string& point,
                                      Outcome outcome, uint64_t cycles,
                                      double run_seconds, uint32_t retries) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = slot_of_.find(std::this_thread::get_id());
      it != slot_of_.end() && workers_[it->second].point == point) {
    workers_[it->second].point.clear();
  }
  ++done_;
  retries_ += retries;
  switch (outcome) {
    case Outcome::kFresh:
      ++fresh_;
      sim_cycles_ += cycles;
      sim_seconds_ += run_seconds;
      break;
    case Outcome::kCached:
      ++cache_hits_;
      break;
    case Outcome::kReplayed:
      ++replayed_;
      break;
    case Outcome::kQuarantined:
      ++quarantined_;
      break;
  }
  JsonWriter w;
  envelope(&w, "point");
  w.kv("point", point);
  w.kv("outcome", progress_outcome_name(outcome));
  w.kv("cycles", cycles);
  w.kv("run_seconds", run_seconds);
  w.kv("retries", retries);
  w.end_object();
  emit_locked(w.str());
}

void ProgressReporter::sweep_end() {
  std::lock_guard<std::mutex> lock(mu_);
  emit_heartbeat_locked();
}

}  // namespace wecsim
