// Versioned machine-readable run reports. Every bench binary (and the
// ExperimentRunner behind it) can serialize the simulations it performed —
// workload, configuration key, SimResult, WEC provenance breakdown, and the
// full counter/gauge/histogram state — as a single JSON document, so plots
// and regression checks consume structured data instead of scraping the
// printed tables. The schema is documented in docs/OBSERVABILITY.md; bump
// kRunReportSchemaVersion on any incompatible change.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/sampled.h"
#include "core/simulator.h"
#include "obs/json.h"

namespace wecsim {

/// Schema version stamped into every report ("schema_version" field).
/// v2: every report carries a self-checksum ("integrity" last field, see
/// obs/integrity.h) and an interrupted sweep marks itself "interrupted".
inline constexpr int kRunReportSchemaVersion = 2;

/// Sampled-simulation section of a run record. Present (serialized) only
/// when `enabled` — full-fidelity reports keep their exact byte shape. A
/// bench may instead fill just `func_instrs` (leaving enabled=false) for a
/// full-fidelity run whose architectural instruction count it measured:
/// nothing is serialized into the canonical run report, but the timing
/// report derives its additive per-run "ipc" field from it, giving the
/// full and sampled sides of an A/B comparison the same IPC basis.
struct SamplingInfo {
  bool enabled = false;
  uint64_t func_instrs = 0;   // N: whole-program architectural instructions
  Cycle detailed_cycles = 0;  // detailed cycles actually simulated
  double cpi = 0.0;           // pooled estimator (see core/sampled.h)
  double ipc = 0.0;           // architectural IPC, 1/cpi
  double ci95_pct = 0.0;      // 95% CI half-width, percent of mean
  std::vector<SampleWindow> windows;
};

/// Everything recorded about one (workload, configuration) simulation.
struct RunRecord {
  std::string workload;    // paper name, e.g. "181.mcf"
  std::string config_key;  // caller's configuration key, e.g. "wth_wp_wec"
  uint32_t scale = 0;      // WorkloadParams::scale used
  SimResult result;
  StatsSnapshot counters;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, int64_t> gauges;

  // Sampled-mode measurements; serialized (after "histograms") only when
  // sampling.enabled, so full-fidelity reports are byte-identical to before
  // the field existed.
  SamplingInfo sampling;

  // Host wall-clock of the simulation. Deliberately NOT serialized into the
  // canonical run report (which must stay byte-identical across runs and
  // across serial/parallel execution); render_timing_report carries it.
  double run_seconds = 0.0;

  double sim_cycles_per_second() const {
    return run_seconds > 0.0 ? static_cast<double>(result.cycles) / run_seconds
                             : 0.0;
  }
};

/// One point the fail-soft harness could not (or almost could not) measure.
/// "quarantined": every attempt failed and the point was dropped from the
/// sweep. "recovered": a transient failure was retried successfully — the
/// measurement is good, the record documents the blip.
struct PointFailure {
  std::string workload;
  std::string config_key;
  std::string status = "quarantined";  // "quarantined" | "recovered"
  std::string error;                   // last failure's message
  uint32_t attempts = 0;               // attempts consumed (including retries)
};

/// Renders the report document for a set of runs. Deterministic: the same
/// runs in the same order produce byte-identical output. The "failures"
/// array is emitted only when `failures` is non-empty, and the
/// "interrupted" marker only when `interrupted` is true, so a clean
/// uninterrupted report's shape is stable. The document is sealed with an
/// integrity checksum (obs/integrity.h) as its last field.
std::string render_run_report(const std::string& bench_name,
                              const std::vector<RunRecord>& runs,
                              const std::vector<PointFailure>& failures = {},
                              bool interrupted = false);

/// Renders and writes the report to `path` via a unique temp file + atomic
/// rename, so a reader (or a crash mid-write) can never observe a truncated
/// report under the final name. Throws SimError on I/O failure.
void write_run_report(const std::string& path, const std::string& bench_name,
                      const std::vector<RunRecord>& runs,
                      const std::vector<PointFailure>& failures = {},
                      bool interrupted = false);

/// Serializers shared by the run report, the result cache, and the sweep
/// journal. write_sim_result_full emits every SimResult field including the
/// WEC provenance arrays as one flat object; parse_sim_result_full is its
/// exact inverse (throws SimError on missing fields).
void write_sim_result_full(JsonWriter& w, const SimResult& r);
SimResult parse_sim_result_full(const JsonValue& v);

/// One element of the report's "runs" array. With `include_run_seconds` the
/// non-canonical wall-clock field is appended — the sweep journal needs it
/// to replay timing reports; the canonical run report never carries it.
void write_run_record(JsonWriter& w, const RunRecord& run,
                      bool include_run_seconds = false);
/// Inverse of write_run_record (either form). Throws SimError on a
/// malformed record.
RunRecord parse_run_record(const JsonValue& v);

/// One element of the report's "failures" array, and its inverse.
void write_point_failure(JsonWriter& w, const PointFailure& f);
PointFailure parse_point_failure(const JsonValue& v);

/// Schema version of the timing side-channel ("wecsim.bench_timing").
/// v2: sealed with the same integrity checksum as the run report.
inline constexpr int kTimingReportSchemaVersion = 2;

/// Wall-clock / throughput report for a bench invocation: per fresh run
/// `run_seconds` and `cycles_per_second`, plus bench totals (worker count,
/// wall-clock, aggregate simulated cycles per second). Kept separate from
/// the run report so that document stays byte-identical regardless of host
/// speed or WECSIM_JOBS. BENCH_harness.json uses the same schema.
std::string render_timing_report(const std::string& bench_name, unsigned jobs,
                                 double wall_seconds,
                                 const std::vector<RunRecord>& runs);

/// Renders and writes the timing report (temp file + atomic rename, like
/// write_run_report). Throws SimError on I/O failure.
void write_timing_report(const std::string& path, const std::string& bench_name,
                         unsigned jobs, double wall_seconds,
                         const std::vector<RunRecord>& runs);

}  // namespace wecsim
