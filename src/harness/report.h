// Versioned machine-readable run reports. Every bench binary (and the
// ExperimentRunner behind it) can serialize the simulations it performed —
// workload, configuration key, SimResult, WEC provenance breakdown, and the
// full counter/gauge/histogram state — as a single JSON document, so plots
// and regression checks consume structured data instead of scraping the
// printed tables. The schema is documented in docs/OBSERVABILITY.md; bump
// kRunReportSchemaVersion on any incompatible change.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/simulator.h"

namespace wecsim {

/// Schema version stamped into every report ("schema_version" field).
inline constexpr int kRunReportSchemaVersion = 1;

/// Everything recorded about one (workload, configuration) simulation.
struct RunRecord {
  std::string workload;    // paper name, e.g. "181.mcf"
  std::string config_key;  // caller's configuration key, e.g. "wth_wp_wec"
  uint32_t scale = 0;      // WorkloadParams::scale used
  SimResult result;
  StatsSnapshot counters;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, int64_t> gauges;

  // Host wall-clock of the simulation. Deliberately NOT serialized into the
  // canonical run report (which must stay byte-identical across runs and
  // across serial/parallel execution); render_timing_report carries it.
  double run_seconds = 0.0;

  double sim_cycles_per_second() const {
    return run_seconds > 0.0 ? static_cast<double>(result.cycles) / run_seconds
                             : 0.0;
  }
};

/// One point the fail-soft harness could not (or almost could not) measure.
/// "quarantined": every attempt failed and the point was dropped from the
/// sweep. "recovered": a transient failure was retried successfully — the
/// measurement is good, the record documents the blip.
struct PointFailure {
  std::string workload;
  std::string config_key;
  std::string status = "quarantined";  // "quarantined" | "recovered"
  std::string error;                   // last failure's message
  uint32_t attempts = 0;               // attempts consumed (including retries)
};

/// Renders the report document for a set of runs. Deterministic: the same
/// runs in the same order produce byte-identical output. The "failures"
/// array is emitted only when `failures` is non-empty, so a clean run's
/// report is byte-identical to one produced before fail-soft existed.
std::string render_run_report(const std::string& bench_name,
                              const std::vector<RunRecord>& runs,
                              const std::vector<PointFailure>& failures = {});

/// Renders and writes the report to `path`. Throws SimError on I/O failure.
void write_run_report(const std::string& path, const std::string& bench_name,
                      const std::vector<RunRecord>& runs,
                      const std::vector<PointFailure>& failures = {});

/// Schema version of the timing side-channel ("wecsim.bench_timing").
inline constexpr int kTimingReportSchemaVersion = 1;

/// Wall-clock / throughput report for a bench invocation: per fresh run
/// `run_seconds` and `cycles_per_second`, plus bench totals (worker count,
/// wall-clock, aggregate simulated cycles per second). Kept separate from
/// the run report so that document stays byte-identical regardless of host
/// speed or WECSIM_JOBS. BENCH_harness.json uses the same schema.
std::string render_timing_report(const std::string& bench_name, unsigned jobs,
                                 double wall_seconds,
                                 const std::vector<RunRecord>& runs);

/// Renders and writes the timing report. Throws SimError on I/O failure.
void write_timing_report(const std::string& path, const std::string& bench_name,
                         unsigned jobs, double wall_seconds,
                         const std::vector<RunRecord>& runs);

}  // namespace wecsim
