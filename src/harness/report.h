// Versioned machine-readable run reports. Every bench binary (and the
// ExperimentRunner behind it) can serialize the simulations it performed —
// workload, configuration key, SimResult, WEC provenance breakdown, and the
// full counter/gauge/histogram state — as a single JSON document, so plots
// and regression checks consume structured data instead of scraping the
// printed tables. The schema is documented in docs/OBSERVABILITY.md; bump
// kRunReportSchemaVersion on any incompatible change.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/simulator.h"

namespace wecsim {

/// Schema version stamped into every report ("schema_version" field).
inline constexpr int kRunReportSchemaVersion = 1;

/// Everything recorded about one (workload, configuration) simulation.
struct RunRecord {
  std::string workload;    // paper name, e.g. "181.mcf"
  std::string config_key;  // caller's configuration key, e.g. "wth_wp_wec"
  uint32_t scale = 0;      // WorkloadParams::scale used
  SimResult result;
  StatsSnapshot counters;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, int64_t> gauges;
};

/// Renders the report document for a set of runs. Deterministic: the same
/// runs in the same order produce byte-identical output.
std::string render_run_report(const std::string& bench_name,
                              const std::vector<RunRecord>& runs);

/// Renders and writes the report to `path`. Throws SimError on I/O failure.
void write_run_report(const std::string& path, const std::string& bench_name,
                      const std::vector<RunRecord>& runs);

}  // namespace wecsim
