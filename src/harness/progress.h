// Live sweep telemetry. A ProgressReporter is owned by an ExperimentRunner
// and fed by the serial and parallel execution paths (and, via the replay
// pre-pass, the resume journal). It emits a versioned `wecsim.progress`
// JSONL stream — one self-describing event object per line — into
// WECSIM_PROGRESS_DIR (one file per process) and, optionally, a named pipe
// (WECSIM_PROGRESS_FIFO) for live consumers like `wecsim-top` or the future
// wecsimd sweep farm.
//
// The stream is an observability side-channel in the same sense as the
// timing report: it never feeds back into the sweep, and the canonical run
// report stays byte-identical whether telemetry is on or off.
//
// Event grammar (every line carries schema/schema_version/event):
//   start      once, when the reporter comes up: pid, interval_ms
//   heartbeat  periodic (WECSIM_PROGRESS_INTERVAL_MS, default 500 ms) plus
//              one synchronous beat at sweep_begin/sweep_end so even a
//              sub-interval sweep produces a observable stream: counters
//              (total/done/running/pending/quarantined/fresh/cache_hits/
//              replayed/retries), sim-cycle throughput, an ETA estimate,
//              cycle-skip totals (skipped_cycles_total + skipped_pct),
//              sampled-window count (sample_windows), the top self-profile
//              phases when WECSIM_PROFILE is on (profile_top), and one
//              entry per worker slot with its current point
//   point      one per finished point: outcome fresh|cached|replayed|
//              quarantined, cycles, run_seconds, retries
//   finish     once, from the destructor: final counters + wall_seconds
//              (v2: plus skipped_cycles_total and sample_windows)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace wecsim {

struct ObsEnv;

/// v2: heartbeats carry skipped_cycles_total / skipped_pct / sample_windows
/// (and profile_top under WECSIM_PROFILE); finish carries the skip/window
/// totals. Additive only — a v1 consumer that ignores unknown keys still
/// parses a v2 stream.
inline constexpr int kProgressSchemaVersion = 2;

class ProgressReporter {
 public:
  enum class Outcome {
    kFresh,        // simulated in this process
    kCached,       // served from the on-disk result cache
    kReplayed,     // restored from the resume journal
    kQuarantined,  // fail-soft budget exhausted; dropped from the sweep
  };

  struct Options {
    std::string dir;          // JSONL stream directory ("" = no file)
    std::string fifo;         // named pipe path ("" = no FIFO)
    uint32_t interval_ms = 500;

    bool enabled() const { return !dir.empty() || !fifo.empty(); }
  };

  /// Builds Options from an already-validated ObsEnv.
  static Options options_from(const ObsEnv& env);

  explicit ProgressReporter(const Options& options);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// A batch of `points` is about to execute on `jobs` workers. Emits a
  /// synchronous heartbeat. Serial runners never call this; totals then
  /// grow as points start.
  void sweep_begin(size_t points, unsigned jobs);

  /// A worker began simulating `point` ("workload|key"). Thread-safe.
  void point_started(const std::string& point);

  /// A point reached a terminal state. For kFresh, `cycles`/`run_seconds`
  /// describe the simulation; `retries` counts attempts beyond the first.
  /// Pairs with point_started for fresh/quarantined points; cache and
  /// journal hits may finish without having started. Thread-safe.
  void point_finished(const std::string& point, Outcome outcome,
                      uint64_t cycles, double run_seconds, uint32_t retries);

  /// The batch announced by sweep_begin has drained. Emits a synchronous
  /// heartbeat.
  void sweep_end();

  /// A fresh run fast-forwarded `n` simulated cycles through the
  /// event-driven skip. Accumulates; heartbeats report the running total and
  /// its share of all fresh simulated cycles. Thread-safe.
  void note_skipped_cycles(uint64_t n);

  /// One sampled-mode measurement window completed (live tick while a
  /// sampled point is still running). Thread-safe.
  void note_sample_window();

  /// The path of the JSONL stream file ("" when writing to a FIFO only).
  const std::string& stream_path() const { return stream_path_; }

 private:
  struct WorkerState {
    std::string point;  // empty = idle
    std::chrono::steady_clock::time_point since;
  };

  void emit_locked(const std::string& line);
  void emit_start_locked();
  void emit_heartbeat_locked();
  void emit_finish_locked();
  void heartbeat_loop();
  double elapsed_seconds() const;

  Options options_;
  std::string stream_path_;
  std::FILE* file_ = nullptr;
  int fifo_fd_ = -1;
  bool fifo_warned_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  uint64_t seq_ = 0;

  // Sweep accounting (all guarded by mu_).
  size_t announced_ = 0;     // points announced via sweep_begin
  size_t done_ = 0;          // terminal points (any outcome)
  size_t fresh_ = 0;         // simulated in this process
  size_t cache_hits_ = 0;    // disk-cache hits
  size_t replayed_ = 0;      // journal replays
  size_t quarantined_ = 0;   // dropped points
  uint64_t retries_ = 0;     // attempts beyond the first, summed
  uint64_t sim_cycles_ = 0;  // simulated cycles across fresh points
  double sim_seconds_ = 0.0;  // host seconds spent simulating fresh points
  uint64_t skipped_cycles_ = 0;  // cycles fast-forwarded by the event skip
  uint64_t sample_windows_ = 0;  // sampled-mode measurement windows done
  unsigned jobs_ = 1;
  std::map<std::thread::id, size_t> slot_of_;
  std::vector<WorkerState> workers_;

  std::chrono::steady_clock::time_point start_;
  std::thread emitter_;
};

const char* progress_outcome_name(ProgressReporter::Outcome outcome);

}  // namespace wecsim
