#include "harness/report.h"

#include <sys/resource.h>

#include "common/error.h"
#include "harness/state_dir.h"
#include "mem/side_cache.h"
#include "obs/integrity.h"
#include "obs/json.h"
#include "obs/profile.h"

namespace wecsim {

namespace {

void write_histogram(JsonWriter& w, const HistogramData& h) {
  w.begin_object();
  w.kv("count", h.count);
  w.kv("sum", h.sum);
  w.kv("min", h.count == 0 ? uint64_t{0} : h.min);
  w.kv("max", h.max);
  w.kv("mean", h.mean());
  // Sparse bucket list: [bucket_index, count] pairs for occupied buckets.
  // Bucket 0 holds the value 0; bucket k holds [2^(k-1), 2^k).
  w.key("buckets").begin_array();
  for (uint32_t i = 0; i < HistogramData::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    w.begin_array().value(i).value(h.buckets[i]).end_array();
  }
  w.end_array();
  w.end_object();
}

HistogramData parse_histogram(const JsonValue& v) {
  HistogramData h;
  h.count = v.at("count").as_u64();
  h.sum = v.at("sum").as_u64();
  // The writer clamps an empty histogram's (undefined) min to 0; restore the
  // in-memory sentinel so a re-render is byte-identical either way.
  h.min = h.count == 0 ? ~uint64_t{0} : v.at("min").as_u64();
  h.max = v.at("max").as_u64();
  for (const JsonValue& pair : v.at("buckets").items()) {
    const uint64_t index = pair.at(size_t{0}).as_u64();
    if (index >= HistogramData::kNumBuckets) {
      throw SimError("histogram bucket index out of range");
    }
    h.buckets[index] = pair.at(size_t{1}).as_u64();
  }
  return h;
}

void write_wec_section(JsonWriter& w, const WecProvenance& wec) {
  w.begin_object();
  w.kv("total_fills", wec.total_fills());
  w.key("by_origin").begin_object();
  for (size_t i = 0; i < kNumSideOrigins; ++i) {
    w.key(side_origin_name(static_cast<SideOrigin>(i)));
    w.begin_object();
    w.kv("fills", wec.fills[i]);
    w.kv("used", wec.used[i]);
    w.kv("unused", wec.unused[i]);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void parse_wec_section(const JsonValue& v, WecProvenance& wec) {
  const JsonValue& by_origin = v.at("by_origin");
  for (size_t i = 0; i < kNumSideOrigins; ++i) {
    const JsonValue& o =
        by_origin.at(side_origin_name(static_cast<SideOrigin>(i)));
    wec.fills[i] = o.at("fills").as_u64();
    wec.used[i] = o.at("used").as_u64();
    wec.unused[i] = o.at("unused").as_u64();
  }
}

void write_result(JsonWriter& w, const SimResult& r) {
  w.begin_object();
  w.kv("cycles", r.cycles);
  w.kv("halted", r.halted);
  w.kv("committed", r.committed);
  w.kv("l1d_accesses", r.l1d_accesses);
  w.kv("l1d_wrong_accesses", r.l1d_wrong_accesses);
  w.kv("l1d_misses", r.l1d_misses);
  w.kv("l1d_wrong_misses", r.l1d_wrong_misses);
  w.kv("side_hits", r.side_hits);
  w.kv("wec_wrong_fills", r.wec_wrong_fills);
  w.kv("prefetches", r.prefetches);
  w.kv("l2_accesses", r.l2_accesses);
  w.kv("l2_misses", r.l2_misses);
  w.kv("mispredicts", r.mispredicts);
  w.kv("branches", r.branches);
  w.kv("forks", r.forks);
  w.kv("wrong_threads", r.wrong_threads);
  w.kv("wrong_path_loads", r.wrong_path_loads);
  w.kv("coherence_updates", r.coherence_updates);
  w.end_object();
}

void parse_result_fields(const JsonValue& v, SimResult& r) {
  r.cycles = v.at("cycles").as_u64();
  r.halted = v.at("halted").as_bool();
  r.committed = v.at("committed").as_u64();
  r.l1d_accesses = v.at("l1d_accesses").as_u64();
  r.l1d_wrong_accesses = v.at("l1d_wrong_accesses").as_u64();
  r.l1d_misses = v.at("l1d_misses").as_u64();
  r.l1d_wrong_misses = v.at("l1d_wrong_misses").as_u64();
  r.side_hits = v.at("side_hits").as_u64();
  r.wec_wrong_fills = v.at("wec_wrong_fills").as_u64();
  r.prefetches = v.at("prefetches").as_u64();
  r.l2_accesses = v.at("l2_accesses").as_u64();
  r.l2_misses = v.at("l2_misses").as_u64();
  r.mispredicts = v.at("mispredicts").as_u64();
  r.branches = v.at("branches").as_u64();
  r.forks = v.at("forks").as_u64();
  r.wrong_threads = v.at("wrong_threads").as_u64();
  r.wrong_path_loads = v.at("wrong_path_loads").as_u64();
  r.coherence_updates = v.at("coherence_updates").as_u64();
}

}  // namespace

void write_sim_result_full(JsonWriter& w, const SimResult& r) {
  w.begin_object();
  w.kv("cycles", r.cycles);
  w.kv("halted", r.halted);
  w.kv("committed", r.committed);
  w.kv("l1d_accesses", r.l1d_accesses);
  w.kv("l1d_wrong_accesses", r.l1d_wrong_accesses);
  w.kv("l1d_misses", r.l1d_misses);
  w.kv("l1d_wrong_misses", r.l1d_wrong_misses);
  w.kv("side_hits", r.side_hits);
  w.kv("wec_wrong_fills", r.wec_wrong_fills);
  w.kv("prefetches", r.prefetches);
  w.kv("l2_accesses", r.l2_accesses);
  w.kv("l2_misses", r.l2_misses);
  w.kv("mispredicts", r.mispredicts);
  w.kv("branches", r.branches);
  w.kv("forks", r.forks);
  w.kv("wrong_threads", r.wrong_threads);
  w.kv("wrong_path_loads", r.wrong_path_loads);
  w.kv("coherence_updates", r.coherence_updates);
  auto write_array = [&](const char* key, const auto& values) {
    w.key(key).begin_array();
    for (uint64_t v : values) w.value(v);
    w.end_array();
  };
  write_array("wec_fills", r.wec.fills);
  write_array("wec_used", r.wec.used);
  write_array("wec_unused", r.wec.unused);
  w.end_object();
}

SimResult parse_sim_result_full(const JsonValue& v) {
  SimResult r;
  parse_result_fields(v, r);
  const JsonValue& fills = v.at("wec_fills");
  const JsonValue& used = v.at("wec_used");
  const JsonValue& unused = v.at("wec_unused");
  for (size_t i = 0; i < kNumSideOrigins; ++i) {
    r.wec.fills[i] = fills.at(i).as_u64();
    r.wec.used[i] = used.at(i).as_u64();
    r.wec.unused[i] = unused.at(i).as_u64();
  }
  return r;
}

void write_run_record(JsonWriter& w, const RunRecord& run,
                      bool include_run_seconds) {
  w.begin_object();
  w.kv("workload", run.workload);
  w.kv("config", run.config_key);
  w.kv("scale", run.scale);
  w.key("result");
  write_result(w, run.result);
  w.key("wec");
  write_wec_section(w, run.result.wec);
  w.key("counters").begin_object();
  for (const auto& [name, value] : run.counters) w.kv(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : run.gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, data] : run.histograms) {
    w.key(name);
    write_histogram(w, data);
  }
  w.end_object();
  // Only present on sampled-mode runs: a full-fidelity record's byte shape
  // is unchanged by the field's existence.
  if (run.sampling.enabled) {
    const SamplingInfo& s = run.sampling;
    w.key("sampling").begin_object();
    w.kv("func_instrs", s.func_instrs);
    w.kv("detailed_cycles", s.detailed_cycles);
    w.kv("cpi", s.cpi);
    w.kv("ipc", s.ipc);
    w.kv("ci95_pct", s.ci95_pct);
    w.key("windows").begin_array();
    for (const SampleWindow& win : s.windows) {
      w.begin_object();
      w.kv("start_instr", win.start_instr);
      w.kv("warmup_cycles", win.warmup_cycles);
      w.kv("warmup_commits", win.warmup_commits);
      w.kv("measure_cycles", win.measure_cycles);
      w.kv("measure_commits", win.measure_commits);
      w.kv("measure_commits_all", win.measure_commits_all);
      w.kv("measure_parallel_cycles", win.measure_parallel_cycles);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (include_run_seconds) w.kv("run_seconds", run.run_seconds);
  w.end_object();
}

RunRecord parse_run_record(const JsonValue& v) {
  RunRecord run;
  run.workload = v.at("workload").as_string();
  run.config_key = v.at("config").as_string();
  run.scale = static_cast<uint32_t>(v.at("scale").as_u64());
  parse_result_fields(v.at("result"), run.result);
  parse_wec_section(v.at("wec"), run.result.wec);
  for (const auto& [name, value] : v.at("counters").fields()) {
    run.counters.emplace(name, value.as_u64());
  }
  for (const auto& [name, value] : v.at("gauges").fields()) {
    run.gauges.emplace(name, value.as_i64());
  }
  for (const auto& [name, value] : v.at("histograms").fields()) {
    run.histograms.emplace(name, parse_histogram(value));
  }
  if (v.has("sampling")) {
    const JsonValue& s = v.at("sampling");
    run.sampling.enabled = true;
    run.sampling.func_instrs = s.at("func_instrs").as_u64();
    run.sampling.detailed_cycles = s.at("detailed_cycles").as_u64();
    run.sampling.cpi = s.at("cpi").as_double();
    run.sampling.ipc = s.at("ipc").as_double();
    run.sampling.ci95_pct = s.at("ci95_pct").as_double();
    for (const JsonValue& win : s.at("windows").items()) {
      SampleWindow sw;
      sw.start_instr = win.at("start_instr").as_u64();
      sw.warmup_cycles = win.at("warmup_cycles").as_u64();
      sw.warmup_commits = win.at("warmup_commits").as_i64();
      sw.measure_cycles = win.at("measure_cycles").as_u64();
      sw.measure_commits = win.at("measure_commits").as_i64();
      sw.measure_commits_all = win.at("measure_commits_all").as_u64();
      sw.measure_parallel_cycles = win.at("measure_parallel_cycles").as_u64();
      run.sampling.windows.push_back(sw);
    }
  }
  if (v.has("run_seconds")) run.run_seconds = v.at("run_seconds").as_double();
  return run;
}

void write_point_failure(JsonWriter& w, const PointFailure& f) {
  w.begin_object();
  w.kv("workload", f.workload);
  w.kv("config", f.config_key);
  w.kv("status", f.status);
  w.kv("error", f.error);
  w.kv("attempts", static_cast<uint64_t>(f.attempts));
  w.end_object();
}

PointFailure parse_point_failure(const JsonValue& v) {
  PointFailure f;
  f.workload = v.at("workload").as_string();
  f.config_key = v.at("config").as_string();
  f.status = v.at("status").as_string();
  f.error = v.at("error").as_string();
  f.attempts = static_cast<uint32_t>(v.at("attempts").as_u64());
  return f;
}

std::string render_run_report(const std::string& bench_name,
                              const std::vector<RunRecord>& runs,
                              const std::vector<PointFailure>& failures,
                              bool interrupted) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "wecsim.run_report");
  w.kv("schema_version", kRunReportSchemaVersion);
  w.kv("bench", bench_name);
  // Only present on a partial report flushed by the graceful-shutdown path:
  // a finished sweep's report must stay byte-identical whether or not an
  // earlier attempt was interrupted and resumed.
  if (interrupted) w.kv("interrupted", true);
  w.key("runs").begin_array();
  for (const RunRecord& run : runs) write_run_record(w, run);
  w.end_array();
  // Only present when something actually failed: clean reports must stay
  // byte-identical to pre-fail-soft output.
  if (!failures.empty()) {
    w.key("failures").begin_array();
    for (const PointFailure& f : failures) write_point_failure(w, f);
    w.end_array();
  }
  w.kv("integrity", integrity_placeholder());
  w.end_object();
  // Seal AFTER appending the newline: the digest covers the exact bytes a
  // verifier reads back from disk.
  std::string out = w.take();
  out.push_back('\n');
  return seal_integrity(std::move(out));
}

void write_run_report(const std::string& path, const std::string& bench_name,
                      const std::vector<RunRecord>& runs,
                      const std::vector<PointFailure>& failures,
                      bool interrupted) {
  WEC_PROFILE_SCOPE(ProfPhase::kHarnessReportWrite);
  // Atomic: a crash mid-write, or a reader racing the writer, must never see
  // a truncated report under the final name.
  write_file_atomic(path,
                    render_run_report(bench_name, runs, failures, interrupted));
}

std::string render_timing_report(const std::string& bench_name, unsigned jobs,
                                 double wall_seconds,
                                 const std::vector<RunRecord>& runs) {
  double sim_seconds = 0.0;
  uint64_t sim_cycles = 0;
  for (const RunRecord& run : runs) {
    sim_seconds += run.run_seconds;
    sim_cycles += run.result.cycles;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "wecsim.bench_timing");
  w.kv("schema_version", kTimingReportSchemaVersion);
  w.kv("bench", bench_name);
  w.kv("jobs", static_cast<uint64_t>(jobs));
  w.kv("wall_seconds", wall_seconds);
  // Host resource footprint (getrusage). Additive side-channel fields only
  // (the schema promise allows adding fields without a version bump); on
  // Linux ru_maxrss is already in kilobytes.
  struct rusage ru = {};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
    w.kv("max_rss_kb", static_cast<uint64_t>(ru.ru_maxrss));
    w.kv("user_cpu_seconds",
         static_cast<double>(ru.ru_utime.tv_sec) +
             static_cast<double>(ru.ru_utime.tv_usec) / 1e6);
    w.kv("sys_cpu_seconds",
         static_cast<double>(ru.ru_stime.tv_sec) +
             static_cast<double>(ru.ru_stime.tv_usec) / 1e6);
  }
  w.kv("fresh_runs", static_cast<uint64_t>(runs.size()));
  w.kv("sim_seconds_total", sim_seconds);
  w.kv("sim_cycles_total", sim_cycles);
  w.kv("sim_cycles_per_second",
       sim_seconds > 0.0 ? static_cast<double>(sim_cycles) / sim_seconds : 0.0);
  w.key("runs").begin_array();
  for (const RunRecord& run : runs) {
    w.begin_object();
    w.kv("workload", run.workload);
    w.kv("config", run.config_key);
    w.kv("cycles", run.result.cycles);
    w.kv("run_seconds", run.run_seconds);
    w.kv("cycles_per_second", run.sim_cycles_per_second());
    // Additive fields (allowed without a version bump). "ipc" is the
    // architectural IPC — correct-path instructions per cycle — and appears
    // only when the record knows its architectural instruction count
    // (sampled runs always do; full-fidelity runs only when the bench also
    // measured the point functionally). Comparing a full and a sampled
    // report through bench_compare --metric=ipc therefore compares like
    // with like; "committed" (all commits, wrong execution included) is
    // emitted unconditionally for context.
    w.kv("committed", run.result.committed);
    if (run.sampling.func_instrs > 0 && run.result.cycles > 0) {
      w.kv("ipc", static_cast<double>(run.sampling.func_instrs) /
                      static_cast<double>(run.result.cycles));
    }
    w.end_object();
  }
  w.end_array();
  // Phase-time breakdown (obs/profile.h), present only when WECSIM_PROFILE
  // collected anything this process. Phase times are inclusive — nested
  // phases (mem.* inside core.*) overlap, so they do not sum to wall-clock.
  if (profile_enabled()) {
    w.key("profile").begin_object();
    for (const ProfPhaseTotal& p : profile_snapshot()) {
      w.key(profile_phase_name(p.phase)).begin_object();
      w.kv("seconds", static_cast<double>(p.ns) / 1e9);
      w.kv("calls", p.calls);
      w.end_object();
    }
    w.end_object();
  }
  w.kv("integrity", integrity_placeholder());
  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return seal_integrity(std::move(out));
}

void write_timing_report(const std::string& path, const std::string& bench_name,
                         unsigned jobs, double wall_seconds,
                         const std::vector<RunRecord>& runs) {
  WEC_PROFILE_SCOPE(ProfPhase::kHarnessReportWrite);
  write_file_atomic(path,
                    render_timing_report(bench_name, jobs, wall_seconds, runs));
}

}  // namespace wecsim
