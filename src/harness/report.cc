#include "harness/report.h"

#include <fstream>

#include "common/error.h"
#include "mem/side_cache.h"
#include "obs/json.h"

namespace wecsim {

namespace {

void write_histogram(JsonWriter& w, const HistogramData& h) {
  w.begin_object();
  w.kv("count", h.count);
  w.kv("sum", h.sum);
  w.kv("min", h.count == 0 ? uint64_t{0} : h.min);
  w.kv("max", h.max);
  w.kv("mean", h.mean());
  // Sparse bucket list: [bucket_index, count] pairs for occupied buckets.
  // Bucket 0 holds the value 0; bucket k holds [2^(k-1), 2^k).
  w.key("buckets").begin_array();
  for (uint32_t i = 0; i < HistogramData::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    w.begin_array().value(i).value(h.buckets[i]).end_array();
  }
  w.end_array();
  w.end_object();
}

void write_wec_section(JsonWriter& w, const WecProvenance& wec) {
  w.begin_object();
  w.kv("total_fills", wec.total_fills());
  w.key("by_origin").begin_object();
  for (size_t i = 0; i < kNumSideOrigins; ++i) {
    w.key(side_origin_name(static_cast<SideOrigin>(i)));
    w.begin_object();
    w.kv("fills", wec.fills[i]);
    w.kv("used", wec.used[i]);
    w.kv("unused", wec.unused[i]);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_result(JsonWriter& w, const SimResult& r) {
  w.begin_object();
  w.kv("cycles", r.cycles);
  w.kv("halted", r.halted);
  w.kv("committed", r.committed);
  w.kv("l1d_accesses", r.l1d_accesses);
  w.kv("l1d_wrong_accesses", r.l1d_wrong_accesses);
  w.kv("l1d_misses", r.l1d_misses);
  w.kv("l1d_wrong_misses", r.l1d_wrong_misses);
  w.kv("side_hits", r.side_hits);
  w.kv("wec_wrong_fills", r.wec_wrong_fills);
  w.kv("prefetches", r.prefetches);
  w.kv("l2_accesses", r.l2_accesses);
  w.kv("l2_misses", r.l2_misses);
  w.kv("mispredicts", r.mispredicts);
  w.kv("branches", r.branches);
  w.kv("forks", r.forks);
  w.kv("wrong_threads", r.wrong_threads);
  w.kv("wrong_path_loads", r.wrong_path_loads);
  w.kv("coherence_updates", r.coherence_updates);
  w.end_object();
}

}  // namespace

std::string render_run_report(const std::string& bench_name,
                              const std::vector<RunRecord>& runs,
                              const std::vector<PointFailure>& failures) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "wecsim.run_report");
  w.kv("schema_version", kRunReportSchemaVersion);
  w.kv("bench", bench_name);
  w.key("runs").begin_array();
  for (const RunRecord& run : runs) {
    w.begin_object();
    w.kv("workload", run.workload);
    w.kv("config", run.config_key);
    w.kv("scale", run.scale);
    w.key("result");
    write_result(w, run.result);
    w.key("wec");
    write_wec_section(w, run.result.wec);
    w.key("counters").begin_object();
    for (const auto& [name, value] : run.counters) w.kv(name, value);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, value] : run.gauges) w.kv(name, value);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, data] : run.histograms) {
      w.key(name);
      write_histogram(w, data);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  // Only present when something actually failed: clean reports must stay
  // byte-identical to pre-fail-soft output.
  if (!failures.empty()) {
    w.key("failures").begin_array();
    for (const PointFailure& f : failures) {
      w.begin_object();
      w.kv("workload", f.workload);
      w.kv("config", f.config_key);
      w.kv("status", f.status);
      w.kv("error", f.error);
      w.kv("attempts", static_cast<uint64_t>(f.attempts));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

void write_run_report(const std::string& path, const std::string& bench_name,
                      const std::vector<RunRecord>& runs,
                      const std::vector<PointFailure>& failures) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw SimError("cannot open report file: " + path);
  os << render_run_report(bench_name, runs, failures);
  if (!os) throw SimError("failed writing report file: " + path);
}

std::string render_timing_report(const std::string& bench_name, unsigned jobs,
                                 double wall_seconds,
                                 const std::vector<RunRecord>& runs) {
  double sim_seconds = 0.0;
  uint64_t sim_cycles = 0;
  for (const RunRecord& run : runs) {
    sim_seconds += run.run_seconds;
    sim_cycles += run.result.cycles;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "wecsim.bench_timing");
  w.kv("schema_version", kTimingReportSchemaVersion);
  w.kv("bench", bench_name);
  w.kv("jobs", static_cast<uint64_t>(jobs));
  w.kv("wall_seconds", wall_seconds);
  w.kv("fresh_runs", static_cast<uint64_t>(runs.size()));
  w.kv("sim_seconds_total", sim_seconds);
  w.kv("sim_cycles_total", sim_cycles);
  w.kv("sim_cycles_per_second",
       sim_seconds > 0.0 ? static_cast<double>(sim_cycles) / sim_seconds : 0.0);
  w.key("runs").begin_array();
  for (const RunRecord& run : runs) {
    w.begin_object();
    w.kv("workload", run.workload);
    w.kv("config", run.config_key);
    w.kv("cycles", run.result.cycles);
    w.kv("run_seconds", run.run_seconds);
    w.kv("cycles_per_second", run.sim_cycles_per_second());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

void write_timing_report(const std::string& path, const std::string& bench_name,
                         unsigned jobs, double wall_seconds,
                         const std::vector<RunRecord>& runs) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw SimError("cannot open timing file: " + path);
  os << render_timing_report(bench_name, jobs, wall_seconds, runs);
  if (!os) throw SimError("failed writing timing file: " + path);
}

}  // namespace wecsim
