#include "harness/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "common/log.h"

namespace wecsim {

ExperimentRunner::ExperimentRunner(const WorkloadParams& params)
    : params_(params) {
  if (const char* dir = std::getenv("WECSIM_TRACE_DIR"); dir != nullptr) {
    trace_dir_ = dir;
  }
}

const RunMeasurement& ExperimentRunner::run(const std::string& workload_name,
                                            const std::string& key,
                                            const StaConfig& config) {
  const std::string cache_key = workload_name + "|" + key;
  if (auto it = cache_.find(cache_key); it != cache_.end()) return it->second;

  Workload w = make_workload(workload_name, params_);
  Simulator sim(w.program, config);
  w.init(sim.memory());
  if (!trace_dir_.empty()) sim.trace().enable();
  RunMeasurement m;
  m.sim = sim.run();
  if (!m.sim.halted) {
    throw SimError("simulation did not finish: " + cache_key);
  }
  m.parallel_cycles = sim.stats().value("sta.parallel_cycles");

  RunRecord record;
  record.workload = w.name;
  record.config_key = key;
  record.scale = params_.scale;
  record.result = m.sim;
  record.counters = sim.stats().snapshot();
  record.histograms = sim.stats().histogram_snapshot();
  record.gauges = sim.stats().gauge_snapshot();
  records_.push_back(std::move(record));

  if (!trace_dir_.empty()) {
    const std::string base = trace_dir_ + "/" + sanitize_run_name(cache_key);
    const bool ok = sim.trace().write_jsonl(base + ".trace.jsonl") &&
                    sim.trace().write_chrome_trace(base + ".trace.chrome.json");
    if (ok) {
      WEC_LOG(kInfo, "wrote trace: " << base << ".trace.jsonl ("
                                     << sim.trace().size() << " events)");
    } else {
      std::fprintf(stderr, "[warn] trace not written under %s (directory "
                           "missing or unwritable)\n", trace_dir_.c_str());
    }
  }
  return cache_.emplace(cache_key, std::move(m)).first->second;
}

void ExperimentRunner::write_report(const std::string& path,
                                    const std::string& bench_name) const {
  write_run_report(path, bench_name, records_);
}

std::string sanitize_run_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out.push_back(safe ? c : '_');
  }
  return out;
}

double speedup(Cycle base_cycles, Cycle cycles) {
  WEC_CHECK(cycles > 0);
  return static_cast<double>(base_cycles) / static_cast<double>(cycles);
}

double relative_speedup_pct(Cycle base_cycles, Cycle cycles) {
  return 100.0 * (speedup(base_cycles, cycles) - 1.0);
}

double mean_speedup(const std::vector<double>& per_benchmark_speedups) {
  WEC_CHECK(!per_benchmark_speedups.empty());
  double log_sum = 0.0;
  for (double s : per_benchmark_speedups) {
    WEC_CHECK(s > 0.0);
    log_sum += std::log(s);
  }
  return std::exp(log_sum / per_benchmark_speedups.size());
}

}  // namespace wecsim
