#include "harness/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "common/log.h"
#include "harness/result_cache.h"

namespace wecsim {

ExperimentRunner::ExperimentRunner(const WorkloadParams& params,
                                   std::optional<std::string> cache_dir)
    : params_(params), start_(std::chrono::steady_clock::now()) {
  if (const char* dir = std::getenv("WECSIM_TRACE_DIR"); dir != nullptr) {
    trace_dir_ = dir;
  }
  disk_cache_ = std::make_unique<ResultCache>(
      cache_dir.has_value() ? *cache_dir : ResultCache::dir_from_env());
}

ExperimentRunner::~ExperimentRunner() = default;

double ExperimentRunner::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ExperimentRunner::PointOutcome ExperimentRunner::simulate_point(
    const std::string& workload_name, const std::string& key,
    const WorkloadParams& params, const StaConfig& config,
    const std::string& trace_dir) {
  Workload w = make_workload(workload_name, params);
  Simulator sim(w.program, config);
  w.init(sim.memory());
  if (!trace_dir.empty()) sim.trace().enable();

  PointOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.m.sim = sim.run();
  out.m.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!out.m.sim.halted) {
    throw SimError("simulation did not finish: " + workload_name + "|" + key);
  }
  out.m.parallel_cycles = sim.stats().value("sta.parallel_cycles");

  out.record.workload = w.name;
  out.record.config_key = key;
  out.record.scale = params.scale;
  out.record.result = out.m.sim;
  out.record.counters = sim.stats().snapshot();
  out.record.histograms = sim.stats().histogram_snapshot();
  out.record.gauges = sim.stats().gauge_snapshot();
  out.record.run_seconds = out.m.run_seconds;

  if (!trace_dir.empty()) {
    const std::string base =
        trace_dir + "/" + sanitize_run_name(workload_name + "|" + key);
    const bool ok = sim.trace().write_jsonl(base + ".trace.jsonl") &&
                    sim.trace().write_chrome_trace(base + ".trace.chrome.json");
    if (ok) {
      WEC_LOG(kInfo, "wrote trace: " << base << ".trace.jsonl ("
                                     << sim.trace().size() << " events)");
    } else {
      std::fprintf(stderr, "[warn] trace not written under %s (directory "
                           "missing or unwritable)\n", trace_dir.c_str());
    }
  }
  return out;
}

const RunMeasurement& ExperimentRunner::run(const std::string& workload_name,
                                            const std::string& key,
                                            const StaConfig& config) {
  const MemoKey memo_key{workload_name, key};
  if (auto it = cache_.find(memo_key); it != cache_.end()) return it->second;

  const std::string description =
      disk_cache_->enabled()
          ? ResultCache::describe(workload_name, params_, config)
          : std::string();
  if (disk_cache_->enabled()) {
    if (auto cached = disk_cache_->load(description)) {
      // Disk hit: the measurement is served without simulating, and no
      // RunRecord is appended — records() counts fresh simulations only.
      return cache_.emplace(memo_key, std::move(*cached)).first->second;
    }
  }

  PointOutcome out =
      simulate_point(workload_name, key, params_, config, trace_dir_);
  if (disk_cache_->enabled()) disk_cache_->store(description, out.m);
  records_.push_back(std::move(out.record));
  return cache_.emplace(memo_key, std::move(out.m)).first->second;
}

void ExperimentRunner::write_report(const std::string& path,
                                    const std::string& bench_name) const {
  write_run_report(path, bench_name, records_);
}

void ExperimentRunner::write_timing(const std::string& path,
                                    const std::string& bench_name) const {
  write_timing_report(path, bench_name, jobs(), elapsed_seconds(), records_);
}

std::string sanitize_run_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out.push_back(safe ? c : '_');
  }
  return out;
}

double speedup(Cycle base_cycles, Cycle cycles) {
  WEC_CHECK(cycles > 0);
  return static_cast<double>(base_cycles) / static_cast<double>(cycles);
}

double relative_speedup_pct(Cycle base_cycles, Cycle cycles) {
  return 100.0 * (speedup(base_cycles, cycles) - 1.0);
}

double mean_speedup(const std::vector<double>& per_benchmark_speedups) {
  WEC_CHECK_MSG(!per_benchmark_speedups.empty(),
                "mean_speedup of an empty vector is undefined");
  double log_sum = 0.0;
  for (double s : per_benchmark_speedups) {
    WEC_CHECK_MSG(s > 0.0, "speedup ratios must be positive");
    log_sum += std::log(s);
  }
  return std::exp(log_sum / per_benchmark_speedups.size());
}

}  // namespace wecsim
