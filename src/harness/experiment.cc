#include "harness/experiment.h"

#include <csignal>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "core/sampled.h"
#include "harness/env.h"
#include "harness/progress.h"
#include "harness/result_cache.h"
#include "obs/integrity.h"
#include "obs/profile.h"

namespace wecsim {

uint64_t failsoft_backoff_ms(uint32_t base_ms, uint32_t attempt,
                             uint64_t fault_seed,
                             const std::string& point_key) {
  if (base_ms == 0) return 0;
  const uint64_t exp = static_cast<uint64_t>(base_ms)
                       << (attempt < 63 ? attempt : 63);
  // Keep the exponential floor (exp/2) so a retry still waits out the blip,
  // and spread the rest deterministically: the jitter is a pure function of
  // (fault seed, point, attempt), never of wall clock or thread identity.
  const uint64_t floor_ms = exp / 2;
  const uint64_t span = exp - floor_ms + 1;
  const uint64_t h = fnv1a64(std::to_string(fault_seed) + "|" + point_key +
                             "|" + std::to_string(attempt));
  return floor_ms + h % span;
}

ExperimentRunner::ExperimentRunner(const WorkloadParams& params,
                                   std::optional<std::string> cache_dir)
    : params_(params),
      fault_plan_(FaultPlan::from_env()),
      start_(std::chrono::steady_clock::now()) {
  if (const char* dir = std::getenv("WECSIM_TRACE_DIR"); dir != nullptr) {
    trace_dir_ = dir;
  }
  // Strict, aggregated env validation (harness/env.h): every malformed
  // WECSIM_* knob is reported in one SimError, nothing is silently
  // atoi-truncated. WECSIM_JOBS and WECSIM_RESUME are validated here too so
  // a serial bench also rejects a misconfigured environment.
  std::vector<std::string> env_errors;
  max_attempts_ =
      1 + parse_env_u32("WECSIM_RETRIES", 2, 0, 1000, &env_errors);
  backoff_ms_ =
      parse_env_u32("WECSIM_RETRY_BACKOFF_MS", 50, 0, 600000, &env_errors);
  point_timeout_ = parse_env_seconds("WECSIM_POINT_TIMEOUT", 0.0, &env_errors);
  parse_env_u32("WECSIM_JOBS", 0, 1, 4096, &env_errors);
  parse_env_flag("WECSIM_RESUME", false, &env_errors);
  // Sampled-mode override (core/sampled.h): strict like every other knob,
  // so WECSIM_SAMPLE=2 or WECSIM_SAMPLE_FF=1e6 is a hard error, not a
  // silently-ignored estimate setting.
  env_sampling_.enabled = parse_env_flag("WECSIM_SAMPLE", false, &env_errors);
  env_sampling_.ff_instrs =
      parse_env_u32("WECSIM_SAMPLE_FF", 0, 0, 4294967295u, &env_errors);
  env_sampling_.warmup_instrs =
      parse_env_u32("WECSIM_SAMPLE_WARMUP", 0, 0, 4294967295u, &env_errors);
  env_sampling_.measure_instrs =
      parse_env_u32("WECSIM_SAMPLE_MEASURE", 0, 0, 4294967295u, &env_errors);
  const ObsEnv obs = parse_obs_env(&env_errors);
  throw_if_env_errors(env_errors);
  // The harness is the strict authority on WECSIM_PROFILE; this overrides
  // any earlier lenient init_profile_from_env().
  if (obs.profile_set) set_profile_enabled(obs.profile);
  if (const auto options = ProgressReporter::options_from(obs);
      options.enabled()) {
    progress_ = std::make_unique<ProgressReporter>(options);
  }
  disk_cache_ = std::make_unique<ResultCache>(
      cache_dir.has_value() ? *cache_dir : ResultCache::dir_from_env());
}

ExperimentRunner::~ExperimentRunner() = default;

double ExperimentRunner::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ExperimentRunner::PointOutcome ExperimentRunner::simulate_point(
    const std::string& workload_name, const std::string& key,
    const WorkloadParams& params, const StaConfig& config,
    const std::string& trace_dir, const FaultPlan& faults,
    ProgressReporter* progress) {
  WEC_PROFILE_SCOPE(ProfPhase::kHarnessSimulate);
  if (config.sampling.enabled) {
    // Sampled runs produce estimates, so the machinery that depends on exact
    // per-cycle behaviour is rejected up front rather than silently skewed:
    // fault injection fires at precise points the fast-forward never
    // executes, and the lockstep checker compares a commit stream the
    // sampled run only produces inside windows.
    if (faults.any()) {
      throw SimError("sampled simulation (WECSIM_SAMPLE) is incompatible "
                     "with fault injection (WECSIM_FAULTS)");
    }
    if (const char* check = std::getenv("WECSIM_CHECK");
        check != nullptr && *check != '\0') {
      throw SimError("sampled simulation (WECSIM_SAMPLE) is incompatible "
                     "with architectural checking (WECSIM_CHECK)");
    }
    Workload w = make_workload(workload_name, params);
    SampledSimulator sim(w.program, config);
    w.init(sim.memory());
    if (progress != nullptr) {
      sim.set_window_hook([progress] { progress->note_sample_window(); });
    }
    PointOutcome out;
    const auto t0 = std::chrono::steady_clock::now();
    const SampledResult s = sim.run();
    out.m.run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!s.halted) {
      throw SimError("sampled simulation did not finish: " + workload_name +
                     "|" + key);
    }
    if (progress != nullptr) progress->note_skipped_cycles(sim.skipped_cycles());
    // Only the extrapolated headline quantities are meaningful: the window-
    // local cache/branch counters cover a fraction of the program, so the
    // record's counters/gauges/histograms stay empty and the per-window
    // detail lives in record.sampling.
    out.m.sim.cycles = s.extrapolated_cycles;
    out.m.sim.committed = s.extrapolated_committed;
    out.m.sim.halted = true;
    out.m.parallel_cycles = s.extrapolated_parallel_cycles;
    out.record.workload = w.name;
    out.record.config_key = key;
    out.record.scale = params.scale;
    out.record.result = out.m.sim;
    out.record.run_seconds = out.m.run_seconds;
    out.record.sampling.enabled = true;
    out.record.sampling.func_instrs = s.func_instrs;
    out.record.sampling.detailed_cycles = s.detailed_cycles;
    out.record.sampling.cpi = s.cpi;
    out.record.sampling.ipc = s.ipc;
    out.record.sampling.ci95_pct = s.ci95_pct;
    out.record.sampling.windows = s.windows;
    return out;
  }
  Workload w = make_workload(workload_name, params);
  Simulator sim(w.program, config);
  if (faults.any()) sim.set_fault_plan(faults);
  w.init(sim.memory());
  if (!trace_dir.empty()) sim.trace().enable();

  PointOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.m.sim = sim.run();
  out.m.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!out.m.sim.halted) {
    throw SimError("simulation did not finish: " + workload_name + "|" + key);
  }
  if (progress != nullptr) {
    progress->note_skipped_cycles(sim.processor().skipped_cycles());
  }
  out.m.parallel_cycles = sim.stats().value("sta.parallel_cycles");

  out.record.workload = w.name;
  out.record.config_key = key;
  out.record.scale = params.scale;
  out.record.result = out.m.sim;
  out.record.counters = sim.stats().snapshot();
  out.record.histograms = sim.stats().histogram_snapshot();
  out.record.gauges = sim.stats().gauge_snapshot();
  out.record.run_seconds = out.m.run_seconds;

  if (!trace_dir.empty()) {
    const std::string base =
        trace_dir + "/" + sanitize_run_name(workload_name + "|" + key);
    const bool ok = sim.trace().write_jsonl(base + ".trace.jsonl") &&
                    sim.trace().write_chrome_trace(base + ".trace.chrome.json");
    if (ok) {
      WEC_LOG(kInfo, "wrote trace: " << base << ".trace.jsonl ("
                                     << sim.trace().size() << " events)");
    } else {
      std::fprintf(stderr, "[warn] trace not written under %s (directory "
                           "missing or unwritable)\n", trace_dir.c_str());
    }
  }
  return out;
}

std::string ExperimentRunner::fault_salt() const {
  return fault_plan_.any() ? "faults=" + fault_plan_.describe() + ';'
                           : std::string();
}

StaConfig ExperimentRunner::effective_config(const StaConfig& config) const {
  StaConfig out = config;
  if (env_sampling_.enabled && !out.sampling.enabled) {
    out.sampling = env_sampling_;
  }
  return out;
}

ExperimentRunner::PointAttempt ExperimentRunner::run_point_failsoft(
    const std::string& workload_name, const std::string& key,
    StaConfig config) const {
  // Per-point wall-clock budget: WECSIM_POINT_TIMEOUT applies unless the
  // config already carries its own (tighter or looser) budget.
  if (point_timeout_ > 0.0 && config.wall_timeout_seconds == 0.0) {
    config.wall_timeout_seconds = point_timeout_;
  }
  const std::string point = workload_name + "|" + key;

  PointAttempt attempt;
  attempt.failure.workload = workload_name;
  attempt.failure.config_key = key;
  for (uint32_t n = 0; n < max_attempts_; ++n) {
    attempt.failure.attempts = n + 1;
    try {
      // Injected harness-level faults fire before the simulation so a
      // "crashed worker" costs nothing to reproduce.
      if (fault_plan_.should_fail_point(FaultKind::kWorkerTimeout, point, n)) {
        throw SimTimeout("injected worker timeout: " + point);
      }
      if (fault_plan_.should_fail_point(FaultKind::kWorkerCrash, point, n)) {
        // arg=<signo> escalates the injected crash from an in-process throw
        // to real process death — the recovery-smoke harness SIGKILLs a
        // forked sweep child at a deterministic mid-sweep point this way.
        if (const uint64_t signo = fault_plan_.spec(FaultKind::kWorkerCrash).arg;
            signo != 0) {
          std::raise(static_cast<int>(signo));
        }
        throw FaultInjected("injected worker crash: " + point + " (attempt " +
                            std::to_string(n + 1) + ")");
      }
      attempt.out = simulate_point(workload_name, key, params_, config,
                                   trace_dir_, fault_plan_, progress_.get());
      attempt.ok = true;
      if (attempt.recovered) attempt.failure.status = "recovered";
      return attempt;
    } catch (const FaultInjected& e) {
      // Transient: retry with exponential backoff until the budget runs out.
      attempt.failure.error = e.what();
      attempt.recovered = true;  // provisionally; cleared if we never succeed
      if (n + 1 < max_attempts_ && backoff_ms_ > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            failsoft_backoff_ms(backoff_ms_, n, fault_plan_.seed(), point)));
      }
    } catch (const SimTimeout& e) {
      // Persistent by construction: the simulator is deterministic, so the
      // same point would blow the same budget again.
      attempt.failure.error = e.what();
      break;
    } catch (const SimError& e) {
      // Simulator errors (bad run, lockstep divergence) are deterministic
      // too — quarantine immediately and keep the sweep alive.
      attempt.failure.error = e.what();
      break;
    }
  }
  attempt.ok = false;
  attempt.recovered = false;
  attempt.failure.status = "quarantined";
  return attempt;
}

void ExperimentRunner::record_attempt_failure(const MemoKey& memo_key,
                                              const PointAttempt& attempt) {
  if (attempt.ok && !attempt.recovered) return;
  PointFailure failure = attempt.failure;
  failure.workload = memo_key.first;
  failure.config_key = memo_key.second;
  if (!attempt.ok) quarantined_.insert(memo_key);
  failures_.push_back(std::move(failure));
}

size_t ExperimentRunner::quarantined_count() const {
  return quarantined_.size();
}

const RunMeasurement* ExperimentRunner::try_run(
    const std::string& workload_name, const std::string& key,
    const StaConfig& config) {
  const MemoKey memo_key{workload_name, key};
  if (auto it = cache_.find(memo_key); it != cache_.end()) return &it->second;
  if (quarantined_.count(memo_key) != 0) return nullptr;

  // The sampled override lands BEFORE any cache decision: a sampled point's
  // estimates must neither be served from nor stored into the byte-identity
  // result cache (the in-process memo above is fine — sampled runs are
  // deterministic within a process).
  const StaConfig effective = effective_config(config);
  const bool use_disk = disk_cache_->enabled() && !effective.sampling.enabled;
  const std::string description =
      use_disk
          ? ResultCache::describe(workload_name, params_, config, fault_salt())
          : std::string();
  const std::string point_name = workload_name + "|" + key;
  if (use_disk) {
    if (auto cached = disk_cache_->load(description)) {
      // Disk hit: the measurement is served without simulating, and no
      // RunRecord is appended — records() counts fresh simulations only.
      if (progress_ != nullptr) {
        progress_->point_finished(point_name,
                                  ProgressReporter::Outcome::kCached,
                                  cached->sim.cycles, 0.0, 0);
      }
      return &cache_.emplace(memo_key, std::move(*cached)).first->second;
    }
  }

  if (progress_ != nullptr) progress_->point_started(point_name);
  PointAttempt attempt = run_point_failsoft(workload_name, key, effective);
  if (progress_ != nullptr) {
    const uint32_t retries =
        attempt.failure.attempts > 0 ? attempt.failure.attempts - 1 : 0;
    progress_->point_finished(
        point_name,
        attempt.ok ? ProgressReporter::Outcome::kFresh
                   : ProgressReporter::Outcome::kQuarantined,
        attempt.ok ? attempt.out.m.sim.cycles : 0, attempt.out.m.run_seconds,
        retries);
  }
  record_attempt_failure(memo_key, attempt);
  if (!attempt.ok) return nullptr;
  if (use_disk) disk_cache_->store(description, attempt.out.m);
  records_.push_back(std::move(attempt.out.record));
  return &cache_.emplace(memo_key, std::move(attempt.out.m)).first->second;
}

const RunMeasurement& ExperimentRunner::run(const std::string& workload_name,
                                            const std::string& key,
                                            const StaConfig& config) {
  const RunMeasurement* m = try_run(workload_name, key, config);
  if (m == nullptr) {
    std::string why;
    for (const PointFailure& f : failures_) {
      if (f.workload == workload_name && f.config_key == key &&
          f.status == "quarantined") {
        why = f.error;
      }
    }
    throw PointQuarantined("point quarantined: " + workload_name + "|" + key +
                           (why.empty() ? "" : ": " + why));
  }
  return *m;
}

void ExperimentRunner::write_report(const std::string& path,
                                    const std::string& bench_name) const {
  write_run_report(path, bench_name, records_, failures_, interrupted_);
}

void ExperimentRunner::write_timing(const std::string& path,
                                    const std::string& bench_name) const {
  write_timing_report(path, bench_name, jobs(), elapsed_seconds(), records_);
}

std::string sanitize_run_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out.push_back(safe ? c : '_');
  }
  return out;
}

double speedup(Cycle base_cycles, Cycle cycles) {
  WEC_CHECK(cycles > 0);
  return static_cast<double>(base_cycles) / static_cast<double>(cycles);
}

double relative_speedup_pct(Cycle base_cycles, Cycle cycles) {
  return 100.0 * (speedup(base_cycles, cycles) - 1.0);
}

double mean_speedup(const std::vector<double>& per_benchmark_speedups) {
  WEC_CHECK_MSG(!per_benchmark_speedups.empty(),
                "mean_speedup of an empty vector is undefined");
  double log_sum = 0.0;
  for (double s : per_benchmark_speedups) {
    WEC_CHECK_MSG(s > 0.0, "speedup ratios must be positive");
    log_sum += std::log(s);
  }
  return std::exp(log_sum / per_benchmark_speedups.size());
}

}  // namespace wecsim
