#include "harness/experiment.h"

#include <cmath>

#include "common/error.h"

namespace wecsim {

const RunMeasurement& ExperimentRunner::run(const std::string& workload_name,
                                            const std::string& key,
                                            const StaConfig& config) {
  const std::string cache_key = workload_name + "|" + key;
  if (auto it = cache_.find(cache_key); it != cache_.end()) return it->second;

  Workload w = make_workload(workload_name, params_);
  Simulator sim(w.program, config);
  w.init(sim.memory());
  RunMeasurement m;
  m.sim = sim.run();
  if (!m.sim.halted) {
    throw SimError("simulation did not finish: " + cache_key);
  }
  m.parallel_cycles = sim.stats().value("sta.parallel_cycles");
  return cache_.emplace(cache_key, std::move(m)).first->second;
}

double speedup(Cycle base_cycles, Cycle cycles) {
  WEC_CHECK(cycles > 0);
  return static_cast<double>(base_cycles) / static_cast<double>(cycles);
}

double relative_speedup_pct(Cycle base_cycles, Cycle cycles) {
  return 100.0 * (speedup(base_cycles, cycles) - 1.0);
}

double mean_speedup(const std::vector<double>& per_benchmark_speedups) {
  WEC_CHECK(!per_benchmark_speedups.empty());
  double log_sum = 0.0;
  for (double s : per_benchmark_speedups) {
    WEC_CHECK(s > 0.0);
    log_sum += std::log(s);
  }
  return std::exp(log_sum / per_benchmark_speedups.size());
}

}  // namespace wecsim
