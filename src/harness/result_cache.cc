#include "harness/result_cache.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/report.h"
#include "harness/state_dir.h"
#include "obs/json.h"
#include "obs/profile.h"

namespace wecsim {

namespace {

const char* side_kind_tag(SideKind kind) {
  switch (kind) {
    case SideKind::kNone:
      return "none";
    case SideKind::kVictim:
      return "vc";
    case SideKind::kWec:
      return "wec";
    case SideKind::kPrefetchBuffer:
      return "nlp";
  }
  return "?";
}

const char* bpred_kind_tag(BpredKind kind) {
  switch (kind) {
    case BpredKind::kBimodal:
      return "bimodal";
    case BpredKind::kGshare:
      return "gshare";
    case BpredKind::kTaken:
      return "taken";
    case BpredKind::kNotTaken:
      return "nottaken";
  }
  return "?";
}

void describe_geom(std::ostringstream& os, const char* name,
                   const CacheGeom& g) {
  os << name << '=' << g.size_bytes << '/' << g.assoc << '/' << g.block_bytes
     << ';';
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::dir_from_env() {
  const char* dir = std::getenv("WECSIM_CACHE_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

std::string ResultCache::describe(const std::string& workload_name,
                                  const WorkloadParams& params,
                                  const StaConfig& c,
                                  const std::string& salt) {
  std::ostringstream os;
  os << "wecsim-result/v" << kSimulatorVersion << ';';
  os << "workload=" << workload_name << ';';
  os << "scale=" << params.scale << ';';
  os << "seed=" << params.seed << ';';
  // StaConfig proper.
  os << "tus=" << c.num_tus << ';';
  os << "fork_delay=" << c.fork_delay << ';';
  os << "ring_hop=" << c.ring_hop_cycles << ';';
  os << "membuf=" << c.membuf_entries << ';';
  os << "wb_ports=" << c.wb_ports << ';';
  os << "wth=" << c.wrong_thread_exec << ';';
  os << "max_cycles=" << c.max_cycles << ';';
  os << "watchdog=" << c.watchdog_cycles << ';';
  // cycle_skip and wall_timeout_seconds are deliberately NOT part of the
  // key: neither affects results (skipping is bit-identical by contract —
  // see docs/PERFORMANCE.md), so runs with either setting share cache
  // entries. `sampling` is excluded for the opposite reason: sampled runs
  // produce estimates and are kept out of the cache entirely (the harness
  // never calls load/store for them), so serializing the knobs here would
  // only pollute the full-fidelity key space.
  // CoreConfig.
  const CoreConfig& core = c.core;
  os << "fetch_w=" << core.fetch_width << ';';
  os << "issue_w=" << core.issue_width << ';';
  os << "rob=" << core.rob_size << ';';
  os << "lsq=" << core.lsq_size << ';';
  os << "fu=" << core.int_alu << '/' << core.int_mult << '/' << core.fp_alu
     << '/' << core.fp_mult << ';';
  os << "mem_ports=" << core.mem_ports << ';';
  os << "fetch_q=" << core.fetch_queue_size << ';';
  os << "mp_penalty=" << core.mispredict_penalty << ';';
  os << "ifetch_block=" << core.ifetch_block_bytes << ';';
  os << "wp=" << core.wrong_path_exec << ';';
  const BpredConfig& bp = core.bpred;
  os << "bpred=" << bpred_kind_tag(bp.kind) << '/' << bp.table_bits << '/'
     << bp.hist_bits << '/' << bp.btb_entries << '/' << bp.btb_assoc << '/'
     << bp.ras_entries << ';';
  // MemConfig.
  const MemConfig& mem = c.mem;
  describe_geom(os, "l1i", mem.l1i);
  describe_geom(os, "l1d", mem.l1d);
  describe_geom(os, "l2", mem.l2);
  os << "lat=" << mem.l1_hit_lat << '/' << mem.side_hit_lat << '/'
     << mem.l2_hit_lat << '/' << mem.l2_occupancy << '/' << mem.mem_lat << ';';
  os << "side=" << side_kind_tag(mem.side) << '/' << mem.side_entries << ';';
  os << "nlp_tagged=" << mem.nlp_tagged << ';';
  os << "wec_chain=" << mem.wec_chain_prefetch << ';';
  os << salt;
  return os.str();
}

std::string ResultCache::entry_path(const std::string& description) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, fnv1a64(description));
  return dir_ + "/wec-" + hex + ".json";
}

void ResultCache::quarantine(const std::string& path, const char* why) const {
  // Never trust a broken entry: move it aside (the evidence survives for a
  // postmortem) so the caller's recompute can heal the slot.
  const std::string corrupt = path + ".corrupt";
  std::remove(corrupt.c_str());
  if (std::rename(path.c_str(), corrupt.c_str()) == 0) {
    std::fprintf(stderr,
                 "[warn] quarantined corrupt cache entry (%s): %s -> %s\n",
                 why, path.c_str(), corrupt.c_str());
  }
}

std::optional<RunMeasurement> ResultCache::load(
    const std::string& description) const {
  if (!enabled()) return std::nullopt;
  WEC_PROFILE_SCOPE(ProfPhase::kHarnessCacheLookup);
  const std::string path = entry_path(description);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  // Integrity gate first: a torn write or bit flip anywhere in the file is
  // detected before any field is trusted. kUnsealed (a pre-v2 entry) falls
  // through to the schema check below, which treats it as a stale miss.
  if (check_integrity(content) == IntegrityStatus::kMismatch) {
    quarantine(path, "integrity digest mismatch");
    return std::nullopt;
  }
  try {
    const JsonValue doc = parse_json(content);
    if (doc.at("schema").as_string() != "wecsim.result_cache" ||
        doc.at("schema_version").as_i64() != kResultCacheSchemaVersion ||
        doc.at("description").as_string() != description) {
      // Intact but stale (old schema) or a filename-hash collision: a plain
      // miss — the recompute will overwrite the slot.
      return std::nullopt;
    }
    RunMeasurement m;
    m.sim = parse_sim_result_full(doc.at("sim"));
    m.parallel_cycles = doc.at("parallel_cycles").as_u64();
    m.run_seconds = doc.at("run_seconds").as_double();
    return m;
  } catch (const std::exception& e) {
    // Unparseable or structurally broken under our name: quarantine it.
    quarantine(path, e.what());
    return std::nullopt;
  }
}

void ResultCache::store(const std::string& description,
                        const RunMeasurement& m) const {
  if (!enabled()) return;
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "wecsim.result_cache");
  w.kv("schema_version", kResultCacheSchemaVersion);
  w.kv("description", description);
  w.key("sim");
  write_sim_result_full(w, m.sim);
  w.kv("parallel_cycles", m.parallel_cycles);
  w.kv("run_seconds", m.run_seconds);
  w.kv("integrity", integrity_placeholder());
  w.end_object();
  std::string doc = w.take();
  doc.push_back('\n');
  doc = seal_integrity(std::move(doc));

  std::string error;
  if (!try_write_file_atomic(entry_path(description), doc, &error)) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "[warn] result cache not writable: %s (WECSIM_CACHE_DIR "
                   "missing?): %s\n",
                   dir_.c_str(), error.c_str());
    }
  }
}

}  // namespace wecsim
