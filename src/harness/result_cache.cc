#include "harness/result_cache.h"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/json.h"

namespace wecsim {

namespace {

const char* side_kind_tag(SideKind kind) {
  switch (kind) {
    case SideKind::kNone:
      return "none";
    case SideKind::kVictim:
      return "vc";
    case SideKind::kWec:
      return "wec";
    case SideKind::kPrefetchBuffer:
      return "nlp";
  }
  return "?";
}

const char* bpred_kind_tag(BpredKind kind) {
  switch (kind) {
    case BpredKind::kBimodal:
      return "bimodal";
    case BpredKind::kGshare:
      return "gshare";
    case BpredKind::kTaken:
      return "taken";
    case BpredKind::kNotTaken:
      return "nottaken";
  }
  return "?";
}

void describe_geom(std::ostringstream& os, const char* name,
                   const CacheGeom& g) {
  os << name << '=' << g.size_bytes << '/' << g.assoc << '/' << g.block_bytes
     << ';';
}

}  // namespace

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::dir_from_env() {
  const char* dir = std::getenv("WECSIM_CACHE_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

std::string ResultCache::describe(const std::string& workload_name,
                                  const WorkloadParams& params,
                                  const StaConfig& c,
                                  const std::string& salt) {
  std::ostringstream os;
  os << "wecsim-result/v" << kSimulatorVersion << ';';
  os << "workload=" << workload_name << ';';
  os << "scale=" << params.scale << ';';
  os << "seed=" << params.seed << ';';
  // StaConfig proper.
  os << "tus=" << c.num_tus << ';';
  os << "fork_delay=" << c.fork_delay << ';';
  os << "ring_hop=" << c.ring_hop_cycles << ';';
  os << "membuf=" << c.membuf_entries << ';';
  os << "wb_ports=" << c.wb_ports << ';';
  os << "wth=" << c.wrong_thread_exec << ';';
  os << "max_cycles=" << c.max_cycles << ';';
  os << "watchdog=" << c.watchdog_cycles << ';';
  // cycle_skip and wall_timeout_seconds are deliberately NOT part of the
  // key: neither affects results (skipping is bit-identical by contract —
  // see docs/PERFORMANCE.md), so runs with either setting share cache
  // entries.
  // CoreConfig.
  const CoreConfig& core = c.core;
  os << "fetch_w=" << core.fetch_width << ';';
  os << "issue_w=" << core.issue_width << ';';
  os << "rob=" << core.rob_size << ';';
  os << "lsq=" << core.lsq_size << ';';
  os << "fu=" << core.int_alu << '/' << core.int_mult << '/' << core.fp_alu
     << '/' << core.fp_mult << ';';
  os << "mem_ports=" << core.mem_ports << ';';
  os << "fetch_q=" << core.fetch_queue_size << ';';
  os << "mp_penalty=" << core.mispredict_penalty << ';';
  os << "ifetch_block=" << core.ifetch_block_bytes << ';';
  os << "wp=" << core.wrong_path_exec << ';';
  const BpredConfig& bp = core.bpred;
  os << "bpred=" << bpred_kind_tag(bp.kind) << '/' << bp.table_bits << '/'
     << bp.hist_bits << '/' << bp.btb_entries << '/' << bp.btb_assoc << '/'
     << bp.ras_entries << ';';
  // MemConfig.
  const MemConfig& mem = c.mem;
  describe_geom(os, "l1i", mem.l1i);
  describe_geom(os, "l1d", mem.l1d);
  describe_geom(os, "l2", mem.l2);
  os << "lat=" << mem.l1_hit_lat << '/' << mem.side_hit_lat << '/'
     << mem.l2_hit_lat << '/' << mem.l2_occupancy << '/' << mem.mem_lat << ';';
  os << "side=" << side_kind_tag(mem.side) << '/' << mem.side_entries << ';';
  os << "nlp_tagged=" << mem.nlp_tagged << ';';
  os << "wec_chain=" << mem.wec_chain_prefetch << ';';
  os << salt;
  return os.str();
}

std::string ResultCache::entry_path(const std::string& description) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, fnv1a64(description));
  return dir_ + "/wec-" + hex + ".json";
}

std::optional<RunMeasurement> ResultCache::load(
    const std::string& description) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(entry_path(description), std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    const JsonValue doc = parse_json(buf.str());
    if (doc.at("schema").as_string() != "wecsim.result_cache" ||
        doc.at("schema_version").as_i64() != kResultCacheSchemaVersion ||
        doc.at("description").as_string() != description) {
      return std::nullopt;
    }
    RunMeasurement m;
    const JsonValue& sim = doc.at("sim");
    SimResult& r = m.sim;
    r.cycles = sim.at("cycles").as_u64();
    r.halted = sim.at("halted").as_bool();
    r.committed = sim.at("committed").as_u64();
    r.l1d_accesses = sim.at("l1d_accesses").as_u64();
    r.l1d_wrong_accesses = sim.at("l1d_wrong_accesses").as_u64();
    r.l1d_misses = sim.at("l1d_misses").as_u64();
    r.l1d_wrong_misses = sim.at("l1d_wrong_misses").as_u64();
    r.side_hits = sim.at("side_hits").as_u64();
    r.wec_wrong_fills = sim.at("wec_wrong_fills").as_u64();
    r.prefetches = sim.at("prefetches").as_u64();
    r.l2_accesses = sim.at("l2_accesses").as_u64();
    r.l2_misses = sim.at("l2_misses").as_u64();
    r.mispredicts = sim.at("mispredicts").as_u64();
    r.branches = sim.at("branches").as_u64();
    r.forks = sim.at("forks").as_u64();
    r.wrong_threads = sim.at("wrong_threads").as_u64();
    r.wrong_path_loads = sim.at("wrong_path_loads").as_u64();
    r.coherence_updates = sim.at("coherence_updates").as_u64();
    const JsonValue& fills = sim.at("wec_fills");
    const JsonValue& used = sim.at("wec_used");
    const JsonValue& unused = sim.at("wec_unused");
    for (size_t i = 0; i < kNumSideOrigins; ++i) {
      r.wec.fills[i] = fills.at(i).as_u64();
      r.wec.used[i] = used.at(i).as_u64();
      r.wec.unused[i] = unused.at(i).as_u64();
    }
    m.parallel_cycles = doc.at("parallel_cycles").as_u64();
    m.run_seconds = doc.at("run_seconds").as_double();
    return m;
  } catch (const std::exception&) {
    // Corrupt or foreign file under our name: treat as a miss.
    return std::nullopt;
  }
}

void ResultCache::store(const std::string& description,
                        const RunMeasurement& m) const {
  if (!enabled()) return;
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "wecsim.result_cache");
  w.kv("schema_version", kResultCacheSchemaVersion);
  w.kv("description", description);
  w.key("sim").begin_object();
  const SimResult& r = m.sim;
  w.kv("cycles", r.cycles);
  w.kv("halted", r.halted);
  w.kv("committed", r.committed);
  w.kv("l1d_accesses", r.l1d_accesses);
  w.kv("l1d_wrong_accesses", r.l1d_wrong_accesses);
  w.kv("l1d_misses", r.l1d_misses);
  w.kv("l1d_wrong_misses", r.l1d_wrong_misses);
  w.kv("side_hits", r.side_hits);
  w.kv("wec_wrong_fills", r.wec_wrong_fills);
  w.kv("prefetches", r.prefetches);
  w.kv("l2_accesses", r.l2_accesses);
  w.kv("l2_misses", r.l2_misses);
  w.kv("mispredicts", r.mispredicts);
  w.kv("branches", r.branches);
  w.kv("forks", r.forks);
  w.kv("wrong_threads", r.wrong_threads);
  w.kv("wrong_path_loads", r.wrong_path_loads);
  w.kv("coherence_updates", r.coherence_updates);
  auto write_array = [&](const char* key, const auto& values) {
    w.key(key).begin_array();
    for (uint64_t v : values) w.value(v);
    w.end_array();
  };
  write_array("wec_fills", r.wec.fills);
  write_array("wec_used", r.wec.used);
  write_array("wec_unused", r.wec.unused);
  w.end_object();
  w.kv("parallel_cycles", m.parallel_cycles);
  w.kv("run_seconds", m.run_seconds);
  w.end_object();

  const std::string path = entry_path(description);
  // Unique-per-writer temp name, then an atomic rename: concurrent workers
  // and concurrent bench processes may share the cache directory.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<uint64_t>(::getpid())) +
      "." +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream os(tmp, std::ios::binary);
    if (!os) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "[warn] result cache not writable: %s (WECSIM_CACHE_DIR "
                     "missing?)\n",
                     dir_.c_str());
      }
      return;
    }
    os << w.take() << '\n';
    if (!os) {
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

}  // namespace wecsim
