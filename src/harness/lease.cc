#include "harness/lease.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "harness/journal.h"
#include "obs/json.h"

namespace wecsim {

namespace {

// A unique sibling name for temp/stale files: pid + a per-process counter
// keeps two threads (and two processes) from colliding.
std::string unique_sibling(const std::string& path, const char* tag) {
  static int counter = 0;
  return path + "." + tag + "." + std::to_string(::getpid()) + "." +
         std::to_string(++counter);
}

std::string render_lease(int64_t pid, uint64_t token, int64_t expires_ms,
                         int64_t ttl_ms) {
  JsonWriter w;
  w.begin_object();
  w.kv("pid", pid);
  w.kv("token", token);
  w.kv("expires_ms", expires_ms);
  w.kv("ttl_ms", ttl_ms);
  w.end_object();
  std::string doc = w.take();
  doc.push_back('\n');
  return doc;
}

// Writes `content` to a unique temp sibling of `path` and returns its name;
// "" on I/O failure. The content is fully on disk (fsync'd) before return,
// so the subsequent link()/rename() publishes a complete lease — a peer can
// never observe a half-written file under a published name.
std::string write_temp(const std::string& path, const std::string& content) {
  const std::string tmp = unique_sibling(path, "tmp");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return "";
  size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return "";
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return "";
  }
  ::close(fd);
  return tmp;
}

}  // namespace

int64_t wall_clock_ms() {
  timespec ts;
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000000;
}

PointLease::PointLease(PointLease&& other) noexcept
    : path_(std::move(other.path_)), token_(other.token_), pid_(other.pid_) {
  other.path_.clear();
}

PointLease& PointLease::operator=(PointLease&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    token_ = other.token_;
    pid_ = other.pid_;
    other.path_.clear();
  }
  return *this;
}

PointLease::~PointLease() { release(); }

bool PointLease::peek(const std::string& path, LeaseInfo* info) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  *info = LeaseInfo{};
  try {
    const JsonValue v = parse_json(content);
    info->pid = v.at("pid").as_i64();
    info->token = v.at("token").as_u64();
    info->expires_ms = v.at("expires_ms").as_i64();
    info->ttl_ms = v.at("ttl_ms").as_i64();
  } catch (const std::exception&) {
    // Unreadable lease: report it as long expired so it can be stolen — a
    // corrupted lease file must never wedge its point forever.
    info->expires_ms = 0;
  }
  return true;
}

PointLease::Outcome PointLease::try_acquire(const std::string& path,
                                            int64_t ttl_ms, PointLease* out,
                                            int64_t* held_remaining_ms) {
  const int64_t pid = static_cast<int64_t>(::getpid());
  const uint64_t token = worker_token(pid);
  bool stole = false;
  // A few contention rounds: each iteration either links a fresh lease,
  // observes a live holder, or evicts an expired one and re-contends.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::string content =
        render_lease(pid, token, wall_clock_ms() + ttl_ms, ttl_ms);
    const std::string tmp = write_temp(path, content);
    if (tmp.empty()) return Outcome::kError;
    const int rc = ::link(tmp.c_str(), path.c_str());
    const int link_errno = errno;
    ::unlink(tmp.c_str());
    if (rc == 0) {
      out->release();
      out->path_ = path;
      out->token_ = token;
      out->pid_ = pid;
      return stole ? Outcome::kStolen : Outcome::kAcquired;
    }
    if (link_errno != EEXIST) return Outcome::kError;
    LeaseInfo info;
    if (!peek(path, &info)) continue;  // vanished under us: re-contend
    const int64_t now = wall_clock_ms();
    if (info.expires_ms > now && info.token != token) {
      if (held_remaining_ms != nullptr) {
        *held_remaining_ms = info.expires_ms - now;
      }
      return Outcome::kHeld;
    }
    // Expired (or an earlier lease of this very incarnation, e.g. leaked
    // by a crashed spawn path): evict. rename() of the existing file to a
    // unique stale name succeeds for exactly one concurrent stealer; the
    // losers land in ENOENT and re-contend against the winner's fresh
    // lease.
    const std::string stale = unique_sibling(path, "stale");
    if (::rename(path.c_str(), stale.c_str()) == 0) {
      ::unlink(stale.c_str());
      if (info.token != token) stole = true;
    }
  }
  if (held_remaining_ms != nullptr) *held_remaining_ms = ttl_ms;
  return Outcome::kHeld;  // lost every contention round: someone holds it
}

bool PointLease::renew(int64_t ttl_ms) {
  if (!held()) return false;
  LeaseInfo info;
  if (!peek(path_, &info) || info.token != token_) {
    // Stolen while this holder was frozen (or the file vanished): the
    // point belongs to a peer now. Forget the path — releasing would
    // unlink the peer's lease.
    path_.clear();
    return false;
  }
  const std::string content =
      render_lease(pid_, token_, wall_clock_ms() + ttl_ms, ttl_ms);
  const std::string tmp = write_temp(path_, content);
  if (tmp.empty()) return true;  // still held; renewal retried next beat
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
  }
  return true;
}

void PointLease::release() {
  if (!held()) return;
  LeaseInfo info;
  // Only unlink a lease this holder still owns: after a steal the file at
  // this path is the peer's.
  if (peek(path_, &info) && info.token == token_) {
    ::unlink(path_.c_str());
  }
  path_.clear();
}

}  // namespace wecsim
