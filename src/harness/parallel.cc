#include "harness/parallel.h"

#include <signal.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <map>
#include <thread>

#include "common/error.h"
#include "harness/env.h"
#include "harness/progress.h"
#include "harness/result_cache.h"
#include "harness/state_dir.h"

namespace wecsim {

namespace {

// Sticky, process-wide interrupt flag. sig_atomic_t is the only type the
// standard lets a signal handler touch; sticky so every drain after the
// signal stops immediately instead of starting fresh work.
volatile std::sig_atomic_t g_sweep_interrupt = 0;

void sweep_signal_handler(int) { g_sweep_interrupt = 1; }

// Installs SIGINT/SIGTERM handlers for the duration of a journaled drain and
// restores the previous disposition afterwards. Only the crash-safe path
// hooks signals: an unjournaled bench keeps the default die-on-Ctrl-C.
class SignalGuard {
 public:
  SignalGuard() {
    struct sigaction sa = {};
    sa.sa_handler = sweep_signal_handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &old_int_);
    ::sigaction(SIGTERM, &sa, &old_term_);
  }
  ~SignalGuard() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }

 private:
  struct sigaction old_int_ = {};
  struct sigaction old_term_ = {};
};

std::string aggregate_header(size_t failures) {
  return std::to_string(failures) + " parallel worker failure(s):";
}

std::string render_messages(const std::vector<std::string>& messages) {
  std::string out = aggregate_header(messages.size());
  for (const std::string& m : messages) out += "\n  - " + m;
  return out;
}

// Rethrow the single failure as-is, or collect ALL of them (index order)
// into one ParallelError so no worker's diagnosis is lost.
void rethrow_collected(const std::vector<std::exception_ptr>& errors) {
  std::vector<std::string> messages;
  const std::exception_ptr* first = nullptr;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (first == nullptr) first = &e;
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      messages.emplace_back(ex.what());
    } catch (...) {
      messages.emplace_back("unknown error");
    }
  }
  if (messages.empty()) return;
  if (messages.size() == 1) std::rethrow_exception(*first);
  throw ParallelError(std::move(messages));
}

}  // namespace

void request_sweep_interrupt() { g_sweep_interrupt = 1; }

bool sweep_interrupt_requested() { return g_sweep_interrupt != 0; }

void clear_sweep_interrupt() { g_sweep_interrupt = 0; }

unsigned resolve_jobs(int explicit_jobs) {
  if (explicit_jobs > 0) return static_cast<unsigned>(explicit_jobs);
  std::vector<std::string> errors;
  const uint32_t env = parse_env_u32("WECSIM_JOBS", 0, 1, 4096, &errors);
  throw_if_env_errors(errors);
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ParallelError::ParallelError(std::vector<std::string> messages)
    : SimError(render_messages(messages)), messages_(std::move(messages)) {}

void parallel_for(size_t n, unsigned jobs,
                  const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  if (jobs <= 1 || n == 1) {
    // Same contract as the pooled path: attempt every index, then report.
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    rethrow_collected(errors);
    return;
  }

  std::atomic<size_t> next{0};
  const unsigned workers = jobs < n ? jobs : static_cast<unsigned>(n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  rethrow_collected(errors);
}

ParallelExperimentRunner::ParallelExperimentRunner(
    const WorkloadParams& params, int jobs,
    std::optional<std::string> cache_dir)
    : ExperimentRunner(params, std::move(cache_dir)),
      jobs_(resolve_jobs(jobs)),
      state_dir_(state_dir_from_env()),
      resume_(resume_from_env()) {}

void ParallelExperimentRunner::submit(const std::string& workload_name,
                                      const std::string& key,
                                      const StaConfig& config) {
  MemoKey memo_key{workload_name, key};
  if (cache_.count(memo_key) != 0 || quarantined_.count(memo_key) != 0 ||
      !queued_.insert(memo_key).second) {
    return;
  }
  // The sampled override is applied at submit time so the drain's disk-cache
  // and alias decisions see the configuration the point actually runs with.
  pending_.push_back(Job{workload_name, key, effective_config(config)});
}

void ParallelExperimentRunner::ensure_journal() {
  if (journal_ready_) return;
  journal_ready_ = true;
  if (state_dir_.empty()) {
    if (resume_) {
      std::fprintf(stderr,
                   "[warn] resume requested but WECSIM_STATE_DIR is unset; "
                   "running the sweep from scratch\n");
    }
    return;
  }
  const std::string path = journal_path(state_dir_);
  if (resume_) {
    replay_ = JournalReplay::load(path);
    for (const std::string& w : replay_.warnings) {
      std::fprintf(stderr, "[warn] journal: %s\n", w.c_str());
    }
    size_t done = 0;
    for (const auto& [key, entry] : replay_.points) {
      if (entry.state == JournalReplay::State::kDone ||
          entry.state == JournalReplay::State::kFailed) {
        ++done;
      }
    }
    std::fprintf(stderr,
                 "[info] resuming sweep from %s: %zu point(s) replayed "
                 "(%zu finished)\n",
                 path.c_str(), replay_.points.size(), done);
    // Reopen truncated to the intact prefix so the torn tail (if any) is
    // gone before the first new append.
    journal_ = std::make_unique<SweepJournal>(path, replay_.valid_bytes);
  } else {
    // A fresh journaled sweep starts a fresh journal: stale entries from an
    // earlier sweep must not replay into this one by accident.
    journal_ = std::make_unique<SweepJournal>(path, 0);
  }
}

void ParallelExperimentRunner::drain() {
  if (pending_.empty()) return;
  ensure_journal();
  if (progress_ != nullptr) progress_->sweep_begin(pending_.size(), jobs_);

  // Telemetry helper: reports one point's terminal state, deriving the
  // retry count from the attempt bookkeeping. A null reporter is a no-op.
  const auto notify_finished = [this](const Job& job,
                                      const PointAttempt& attempt,
                                      ProgressReporter::Outcome outcome) {
    if (progress_ == nullptr) return;
    const uint32_t retries =
        attempt.failure.attempts > 0 ? attempt.failure.attempts - 1 : 0;
    progress_->point_finished(job.workload + "|" + job.key, outcome,
                              attempt.ok ? attempt.out.m.sim.cycles : 0,
                              attempt.out.m.run_seconds, retries);
  };

  struct JobOutcome {
    bool fresh = false;  // simulated this drain (vs served from disk cache)
    bool replayed = false;  // served from the resume journal, not a worker
    bool skipped = false;   // interrupt arrived before a worker claimed it
    PointAttempt attempt;
  };
  std::vector<JobOutcome> outcomes(pending_.size());

  // Resume pre-pass: points with a terminal journal entry rejoin the sweep
  // without touching a worker. A replayed "done" carries the measurement,
  // the RunRecord (for fresh points), and any recovered-transient failure,
  // so the merge below is indistinguishable from having simulated it here.
  if (journal_ != nullptr && !replay_.points.empty()) {
    for (size_t i = 0; i < pending_.size(); ++i) {
      const auto it = replay_.points.find(
          JournalReplay::PointKey{pending_[i].workload, pending_[i].key});
      if (it == replay_.points.end()) continue;
      const JournalReplay::Entry& entry = it->second;
      JobOutcome& out = outcomes[i];
      if (entry.state == JournalReplay::State::kDone) {
        out.replayed = true;
        out.fresh = entry.fresh;
        out.attempt.ok = true;
        out.attempt.out.m = entry.measurement;
        if (entry.fresh) out.attempt.out.record = entry.record;
        if (entry.has_failure) {
          out.attempt.recovered = true;
          out.attempt.failure = entry.failure;
        }
      } else if (entry.state == JournalReplay::State::kFailed) {
        out.replayed = true;
        out.attempt.ok = false;
        out.attempt.failure = entry.failure;
      }
      // kQueued / kRunning (stale lock already demoted by the loader): the
      // point runs again below.
      if (out.replayed) {
        notify_finished(pending_[i], out.attempt,
                        out.attempt.ok
                            ? ProgressReporter::Outcome::kReplayed
                            : ProgressReporter::Outcome::kQuarantined);
      }
    }
  }

  // With the disk cache enabled, two queued points whose configurations are
  // identical (distinct keys, same description) must behave like serial
  // execution: the first simulates, the later ones are disk hits. Alias them
  // up front so the outcome is deterministic rather than a store/load race.
  constexpr size_t kNoAlias = static_cast<size_t>(-1);
  std::vector<std::string> descriptions(pending_.size());
  std::vector<size_t> alias_of(pending_.size(), kNoAlias);
  if (disk_cache_->enabled()) {
    const std::string salt = fault_salt();
    std::map<std::string, size_t> first_with;
    for (size_t i = 0; i < pending_.size(); ++i) {
      // Sampled points never touch the disk cache: their description stays
      // empty, which also keeps them out of the alias map (every sampled
      // point simulates independently, as in serial execution).
      if (pending_[i].config.sampling.enabled) continue;
      descriptions[i] =
          ResultCache::describe(pending_[i].workload, params_,
                                pending_[i].config, salt);
      const auto [it, inserted] = first_with.emplace(descriptions[i], i);
      if (!inserted) alias_of[i] = it->second;
    }
  }

  // Write-ahead: every point a worker may claim is journaled "queued" before
  // any work starts, so a crash at any later instant leaves each point in a
  // well-defined state.
  if (journal_ != nullptr) {
    std::vector<JournalPoint> to_queue;
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (outcomes[i].replayed) continue;
      to_queue.push_back(JournalPoint{pending_[i].workload, pending_[i].key});
    }
    journal_->queued(to_queue);
  }

  // The signal guard turns SIGINT/SIGTERM into a graceful stop — but only
  // while the journal makes stopping safe to resume from.
  std::unique_ptr<SignalGuard> guard;
  if (journal_ != nullptr) guard = std::make_unique<SignalGuard>();

  // Thread-safe per job: run_point_failsoft touches no shared runner state,
  // the disk cache uses atomic renames, the journal serializes appends
  // internally, and each worker touches only outcomes[i]. Failures never
  // escape a worker — run_point_failsoft folds them into the attempt — so a
  // crashing point cannot take down the drain.
  parallel_for(pending_.size(), jobs_, [&](size_t i) {
    if (outcomes[i].replayed) return;
    if (alias_of[i] != kNoAlias) return;  // filled from the primary below
    if (journal_ != nullptr && sweep_interrupt_requested()) {
      outcomes[i].skipped = true;  // stays "queued" in the journal
      return;
    }
    const Job& job = pending_[i];
    const JournalPoint point{job.workload, job.key};
    JobOutcome& out = outcomes[i];
    if (journal_ != nullptr) journal_->running(point);
    if (disk_cache_->enabled() && !descriptions[i].empty()) {
      if (auto cached = disk_cache_->load(descriptions[i])) {
        out.attempt.ok = true;
        out.attempt.out.m = std::move(*cached);
        if (journal_ != nullptr) {
          journal_->done(point, out.attempt.out.m, /*fresh=*/false, nullptr,
                         nullptr);
        }
        notify_finished(job, out.attempt, ProgressReporter::Outcome::kCached);
        return;
      }
    }
    if (progress_ != nullptr) {
      progress_->point_started(job.workload + "|" + job.key);
    }
    out.attempt = run_point_failsoft(job.workload, job.key, job.config);
    notify_finished(job, out.attempt,
                    out.attempt.ok ? ProgressReporter::Outcome::kFresh
                                   : ProgressReporter::Outcome::kQuarantined);
    if (!out.attempt.ok) {
      if (journal_ != nullptr) journal_->failed(point, out.attempt.failure);
      return;
    }
    if (disk_cache_->enabled() && !descriptions[i].empty()) {
      disk_cache_->store(descriptions[i], out.attempt.out.m);
    }
    out.fresh = true;
    if (journal_ != nullptr) {
      journal_->done(point, out.attempt.out.m, /*fresh=*/true,
                     &out.attempt.out.record,
                     out.attempt.recovered ? &out.attempt.failure : nullptr);
    }
  });

  // Merge in submission order: because submit() mirrors the serial call
  // order, records_, failures_, and the memo end up byte-identical to a
  // serial run — whether a point was simulated here, served from the disk
  // cache, or replayed from the journal.
  bool any_skipped = false;
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Job& job = pending_[i];
    JobOutcome& out = outcomes[i];
    const MemoKey memo_key{job.workload, job.key};
    if (out.skipped) {
      any_skipped = true;
      continue;
    }
    if (!out.replayed && alias_of[i] != kNoAlias) {
      const JobOutcome& primary = outcomes[alias_of[i]];
      if (primary.skipped) {
        // Nothing reached the disk cache; the alias stays queued too.
        out.skipped = true;
        any_skipped = true;
        continue;
      }
      const JournalPoint point{job.workload, job.key};
      if (primary.attempt.ok) {
        // Serial equivalent: a disk hit right after the primary stored, so
        // no record and no failure entry for the alias.
        cache_.emplace(memo_key, primary.attempt.out.m);
        if (journal_ != nullptr) {
          journal_->done(point, primary.attempt.out.m, /*fresh=*/false,
                         nullptr, nullptr);
        }
        notify_finished(job, primary.attempt,
                        ProgressReporter::Outcome::kCached);
        continue;
      }
      // The primary failed, so nothing reached the disk cache; serial
      // execution would give this point its own independent attempt.
      if (progress_ != nullptr) {
        progress_->point_started(job.workload + "|" + job.key);
      }
      out.attempt = run_point_failsoft(job.workload, job.key, job.config);
      notify_finished(job, out.attempt,
                      out.attempt.ok
                          ? ProgressReporter::Outcome::kFresh
                          : ProgressReporter::Outcome::kQuarantined);
      if (out.attempt.ok && disk_cache_->enabled()) {
        disk_cache_->store(descriptions[i], out.attempt.out.m);
      }
      out.fresh = out.attempt.ok;
      if (journal_ != nullptr) {
        if (out.attempt.ok) {
          journal_->done(point, out.attempt.out.m, /*fresh=*/true,
                         &out.attempt.out.record,
                         out.attempt.recovered ? &out.attempt.failure
                                               : nullptr);
        } else {
          journal_->failed(point, out.attempt.failure);
        }
      }
    }
    record_attempt_failure(memo_key, out.attempt);
    if (!out.attempt.ok) continue;
    if (out.fresh) records_.push_back(std::move(out.attempt.out.record));
    cache_.emplace(memo_key, std::move(out.attempt.out.m));
  }
  if (any_skipped) interrupted_ = true;
  // Replayed points are consumed exactly once: a later drain in the same
  // process must not resurrect them for points it never submitted.
  replay_.points.clear();
  // Interrupt-skipped points stay pending (and "queued" in the journal), so
  // pending() reports what a --resume would pick up and an in-process
  // re-drain after clear_sweep_interrupt() finishes the sweep.
  std::vector<Job> remaining;
  std::set<MemoKey> remaining_keys;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!outcomes[i].skipped) continue;
    remaining_keys.insert(MemoKey{pending_[i].workload, pending_[i].key});
    remaining.push_back(std::move(pending_[i]));
  }
  pending_ = std::move(remaining);
  queued_ = std::move(remaining_keys);
  if (progress_ != nullptr) progress_->sweep_end();
}

}  // namespace wecsim
