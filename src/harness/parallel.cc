#include "harness/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <map>
#include <thread>

#include "common/error.h"
#include "harness/result_cache.h"

namespace wecsim {

unsigned resolve_jobs(int explicit_jobs) {
  if (explicit_jobs > 0) return static_cast<unsigned>(explicit_jobs);
  if (const char* env = std::getenv("WECSIM_JOBS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

std::string aggregate_header(size_t failures) {
  return std::to_string(failures) + " parallel worker failure(s):";
}

std::string render_messages(const std::vector<std::string>& messages) {
  std::string out = aggregate_header(messages.size());
  for (const std::string& m : messages) out += "\n  - " + m;
  return out;
}

// Rethrow the single failure as-is, or collect ALL of them (index order)
// into one ParallelError so no worker's diagnosis is lost.
void rethrow_collected(const std::vector<std::exception_ptr>& errors) {
  std::vector<std::string> messages;
  const std::exception_ptr* first = nullptr;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (first == nullptr) first = &e;
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      messages.emplace_back(ex.what());
    } catch (...) {
      messages.emplace_back("unknown error");
    }
  }
  if (messages.empty()) return;
  if (messages.size() == 1) std::rethrow_exception(*first);
  throw ParallelError(std::move(messages));
}

}  // namespace

ParallelError::ParallelError(std::vector<std::string> messages)
    : SimError(render_messages(messages)), messages_(std::move(messages)) {}

void parallel_for(size_t n, unsigned jobs,
                  const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  if (jobs <= 1 || n == 1) {
    // Same contract as the pooled path: attempt every index, then report.
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    rethrow_collected(errors);
    return;
  }

  std::atomic<size_t> next{0};
  const unsigned workers = jobs < n ? jobs : static_cast<unsigned>(n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  rethrow_collected(errors);
}

ParallelExperimentRunner::ParallelExperimentRunner(
    const WorkloadParams& params, int jobs,
    std::optional<std::string> cache_dir)
    : ExperimentRunner(params, std::move(cache_dir)),
      jobs_(resolve_jobs(jobs)) {}

void ParallelExperimentRunner::submit(const std::string& workload_name,
                                      const std::string& key,
                                      const StaConfig& config) {
  MemoKey memo_key{workload_name, key};
  if (cache_.count(memo_key) != 0 || quarantined_.count(memo_key) != 0 ||
      !queued_.insert(memo_key).second) {
    return;
  }
  pending_.push_back(Job{workload_name, key, config});
}

void ParallelExperimentRunner::drain() {
  if (pending_.empty()) return;

  struct JobOutcome {
    bool fresh = false;  // simulated this drain (vs served from disk cache)
    PointAttempt attempt;
  };
  std::vector<JobOutcome> outcomes(pending_.size());

  // With the disk cache enabled, two queued points whose configurations are
  // identical (distinct keys, same description) must behave like serial
  // execution: the first simulates, the later ones are disk hits. Alias them
  // up front so the outcome is deterministic rather than a store/load race.
  constexpr size_t kNoAlias = static_cast<size_t>(-1);
  std::vector<std::string> descriptions(pending_.size());
  std::vector<size_t> alias_of(pending_.size(), kNoAlias);
  if (disk_cache_->enabled()) {
    const std::string salt = fault_salt();
    std::map<std::string, size_t> first_with;
    for (size_t i = 0; i < pending_.size(); ++i) {
      descriptions[i] =
          ResultCache::describe(pending_[i].workload, params_,
                                pending_[i].config, salt);
      const auto [it, inserted] = first_with.emplace(descriptions[i], i);
      if (!inserted) alias_of[i] = it->second;
    }
  }

  // Thread-safe per job: run_point_failsoft touches no shared runner state,
  // the disk cache uses atomic renames, and each worker touches only
  // outcomes[i]. Failures never escape a worker — run_point_failsoft folds
  // them into the attempt — so a crashing point cannot take down the drain.
  parallel_for(pending_.size(), jobs_, [&](size_t i) {
    if (alias_of[i] != kNoAlias) return;  // filled from the primary below
    const Job& job = pending_[i];
    JobOutcome& out = outcomes[i];
    if (disk_cache_->enabled()) {
      if (auto cached = disk_cache_->load(descriptions[i])) {
        out.attempt.ok = true;
        out.attempt.out.m = std::move(*cached);
        return;
      }
    }
    out.attempt = run_point_failsoft(job.workload, job.key, job.config);
    if (!out.attempt.ok) return;
    if (disk_cache_->enabled()) {
      disk_cache_->store(descriptions[i], out.attempt.out.m);
    }
    out.fresh = true;
  });

  // Merge in submission order: because submit() mirrors the serial call
  // order, records_, failures_, and the memo end up byte-identical to a
  // serial run.
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Job& job = pending_[i];
    JobOutcome& out = outcomes[i];
    const MemoKey memo_key{job.workload, job.key};
    if (alias_of[i] != kNoAlias) {
      const JobOutcome& primary = outcomes[alias_of[i]];
      if (primary.attempt.ok) {
        // Serial equivalent: a disk hit right after the primary stored, so
        // no record and no failure entry for the alias.
        cache_.emplace(memo_key, primary.attempt.out.m);
        continue;
      }
      // The primary failed, so nothing reached the disk cache; serial
      // execution would give this point its own independent attempt.
      out.attempt = run_point_failsoft(job.workload, job.key, job.config);
      if (out.attempt.ok && disk_cache_->enabled()) {
        disk_cache_->store(descriptions[i], out.attempt.out.m);
      }
      out.fresh = out.attempt.ok;
    }
    record_attempt_failure(memo_key, out.attempt);
    if (!out.attempt.ok) continue;
    if (out.fresh) records_.push_back(std::move(out.attempt.out.record));
    cache_.emplace(memo_key, std::move(out.attempt.out.m));
  }
  pending_.clear();
  queued_.clear();
}

}  // namespace wecsim
