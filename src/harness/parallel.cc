#include "harness/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <map>
#include <thread>

#include "common/error.h"
#include "harness/result_cache.h"

namespace wecsim {

unsigned resolve_jobs(int explicit_jobs) {
  if (explicit_jobs > 0) return static_cast<unsigned>(explicit_jobs);
  if (const char* env = std::getenv("WECSIM_JOBS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(size_t n, unsigned jobs,
                  const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::vector<std::exception_ptr> errors(n);
  const unsigned workers = jobs < n ? jobs : static_cast<unsigned>(n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

ParallelExperimentRunner::ParallelExperimentRunner(
    const WorkloadParams& params, int jobs,
    std::optional<std::string> cache_dir)
    : ExperimentRunner(params, std::move(cache_dir)),
      jobs_(resolve_jobs(jobs)) {}

void ParallelExperimentRunner::submit(const std::string& workload_name,
                                      const std::string& key,
                                      const StaConfig& config) {
  MemoKey memo_key{workload_name, key};
  if (cache_.count(memo_key) != 0 || !queued_.insert(memo_key).second) return;
  pending_.push_back(Job{workload_name, key, config});
}

void ParallelExperimentRunner::drain() {
  if (pending_.empty()) return;

  struct JobOutcome {
    bool fresh = false;  // simulated this drain (vs served from disk cache)
    RunMeasurement m;
    RunRecord record;
  };
  std::vector<JobOutcome> outcomes(pending_.size());

  // With the disk cache enabled, two queued points whose configurations are
  // identical (distinct keys, same description) must behave like serial
  // execution: the first simulates, the later ones are disk hits. Alias them
  // up front so the outcome is deterministic rather than a store/load race.
  constexpr size_t kNoAlias = static_cast<size_t>(-1);
  std::vector<std::string> descriptions(pending_.size());
  std::vector<size_t> alias_of(pending_.size(), kNoAlias);
  if (disk_cache_->enabled()) {
    std::map<std::string, size_t> first_with;
    for (size_t i = 0; i < pending_.size(); ++i) {
      descriptions[i] =
          ResultCache::describe(pending_[i].workload, params_,
                                pending_[i].config);
      const auto [it, inserted] = first_with.emplace(descriptions[i], i);
      if (!inserted) alias_of[i] = it->second;
    }
  }

  // Thread-safe per job: simulate_point is a pure function, the disk cache
  // uses atomic renames, and each worker touches only outcomes[i].
  parallel_for(pending_.size(), jobs_, [&](size_t i) {
    if (alias_of[i] != kNoAlias) return;  // filled from the primary below
    const Job& job = pending_[i];
    JobOutcome& out = outcomes[i];
    if (disk_cache_->enabled()) {
      if (auto cached = disk_cache_->load(descriptions[i])) {
        out.m = std::move(*cached);
        return;
      }
    }
    PointOutcome fresh =
        simulate_point(job.workload, job.key, params_, job.config, trace_dir_);
    if (disk_cache_->enabled()) disk_cache_->store(descriptions[i], fresh.m);
    out.fresh = true;
    out.m = std::move(fresh.m);
    out.record = std::move(fresh.record);
  });

  // Merge in submission order: because submit() mirrors the serial call
  // order, records_ and the memo end up byte-identical to a serial run.
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Job& job = pending_[i];
    JobOutcome& out = outcomes[i];
    if (alias_of[i] != kNoAlias) out.m = outcomes[alias_of[i]].m;
    if (out.fresh) records_.push_back(std::move(out.record));
    cache_.emplace(MemoKey{job.workload, job.key}, std::move(out.m));
  }
  pending_.clear();
  queued_.clear();
}

}  // namespace wecsim
