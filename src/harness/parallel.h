// Worker-pool execution of independent simulation points. The paper's
// evaluation is a large grid of independent (workload, config) simulations;
// ParallelExperimentRunner runs each point in an isolated Simulator on a
// pool of host threads and merges the results back in submission order, so
// run reports, traces, and every derived table are byte-identical to serial
// execution.
//
// Usage (the pattern every bench binary follows):
//
//   ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(...));
//   for (...) runner.submit(workload, key, config);   // mirror the run()
//   runner.drain();                                   // simulate in parallel
//   for (...) runner.run(workload, key, config);      // memo hits: free
//
// submit() deduplicates on the composite (workload, key) memo key, so the
// submission pre-pass can literally mirror the measurement loops — including
// repeated baselines — and the merged RunRecord order equals the order a
// serial runner would have produced.
//
// Worker count: constructor argument (e.g. a --jobs flag) > WECSIM_JOBS
// environment variable > std::thread::hardware_concurrency().
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace wecsim {

/// Resolve a worker count: `explicit_jobs` > 0 wins, else WECSIM_JOBS, else
/// the hardware concurrency; always at least 1.
unsigned resolve_jobs(int explicit_jobs = 0);

/// Aggregate failure of a parallel_for: every worker failure, not just the
/// first. what() lists them all; messages() exposes them individually.
class ParallelError : public SimError {
 public:
  explicit ParallelError(std::vector<std::string> messages);
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  std::vector<std::string> messages_;
};

/// Run fn(0), ..., fn(n-1) on up to `jobs` worker threads. Indices are
/// handed out atomically; fn must be safe to call concurrently for distinct
/// indices. All indices are attempted even when some fail; afterwards a
/// single failure is rethrown as-is, and two or more are collected (in index
/// order) into one ParallelError, so no worker's diagnosis is lost. jobs <=
/// 1 degenerates to an in-order loop with the same failure contract.
void parallel_for(size_t n, unsigned jobs,
                  const std::function<void(size_t)>& fn);

class ParallelExperimentRunner : public ExperimentRunner {
 public:
  /// `jobs` <= 0 defers to WECSIM_JOBS / hardware concurrency.
  /// `cache_dir` as in ExperimentRunner.
  explicit ParallelExperimentRunner(
      const WorkloadParams& params = {}, int jobs = 0,
      std::optional<std::string> cache_dir = std::nullopt);

  /// Queue a point for drain(). Deduplicates against both already-memoized
  /// results and already-queued points; submission order is preserved.
  void submit(const std::string& workload_name, const std::string& key,
              const StaConfig& config);

  /// Points queued and not yet drained.
  size_t pending() const { return pending_.size(); }

  /// Execute every queued point (worker pool + disk cache), then merge
  /// measurements and records in submission order. After drain(), run() on
  /// a submitted point is a memo hit.
  void drain();

  unsigned jobs() const override { return jobs_; }

 private:
  struct Job {
    std::string workload;
    std::string key;
    StaConfig config;
  };

  unsigned jobs_;
  std::vector<Job> pending_;
  std::set<MemoKey> queued_;
};

}  // namespace wecsim
