// Worker-pool execution of independent simulation points. The paper's
// evaluation is a large grid of independent (workload, config) simulations;
// ParallelExperimentRunner runs each point in an isolated Simulator on a
// pool of host threads and merges the results back in submission order, so
// run reports, traces, and every derived table are byte-identical to serial
// execution.
//
// Usage (the pattern every bench binary follows):
//
//   ParallelExperimentRunner runner(bench_params(), parse_jobs_flag(...));
//   for (...) runner.submit(workload, key, config);   // mirror the run()
//   runner.drain();                                   // simulate in parallel
//   for (...) runner.run(workload, key, config);      // memo hits: free
//
// submit() deduplicates on the composite (workload, key) memo key, so the
// submission pre-pass can literally mirror the measurement loops — including
// repeated baselines — and the merged RunRecord order equals the order a
// serial runner would have produced.
//
// Worker count: constructor argument (e.g. a --jobs flag) > WECSIM_JOBS
// environment variable > std::thread::hardware_concurrency().
//
// Crash safety: with WECSIM_STATE_DIR set, drain() write-ahead-journals every
// point transition (harness/journal.h) and installs a SIGINT/SIGTERM guard
// that drains cleanly instead of dying mid-sweep; WECSIM_RESUME=1 (or a
// bench's --resume flag) replays the journal so an interrupted sweep finishes
// with a report byte-identical to an uninterrupted run. See
// docs/ROBUSTNESS.md, "Crash safety & resume".
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/journal.h"

namespace wecsim {

/// Resolve a worker count: `explicit_jobs` > 0 wins, else WECSIM_JOBS, else
/// the hardware concurrency; always at least 1. A malformed WECSIM_JOBS is a
/// SimError (aggregated env validation, harness/env.h), never silently 1.
unsigned resolve_jobs(int explicit_jobs = 0);

/// Ask the active crash-safe drain to stop: workers finish their current
/// point, remaining points stay "queued" in the journal, and the runner is
/// marked interrupted(). This is exactly what the SIGINT/SIGTERM guard calls
/// from signal context; tests call it directly to interrupt deterministically.
void request_sweep_interrupt();

/// True once request_sweep_interrupt() (or a guarded signal) fired. The flag
/// is process-wide and sticky — it is never cleared automatically, so a
/// sequence of drain() calls after an interrupt all stop immediately.
bool sweep_interrupt_requested();

/// Reset the interrupt flag (tests that simulate interrupt + resume within
/// one process).
void clear_sweep_interrupt();

/// Aggregate failure of a parallel_for: every worker failure, not just the
/// first. what() lists them all; messages() exposes them individually.
class ParallelError : public SimError {
 public:
  explicit ParallelError(std::vector<std::string> messages);
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  std::vector<std::string> messages_;
};

/// Run fn(0), ..., fn(n-1) on up to `jobs` worker threads. Indices are
/// handed out atomically; fn must be safe to call concurrently for distinct
/// indices. All indices are attempted even when some fail; afterwards a
/// single failure is rethrown as-is, and two or more are collected (in index
/// order) into one ParallelError, so no worker's diagnosis is lost. jobs <=
/// 1 degenerates to an in-order loop with the same failure contract.
void parallel_for(size_t n, unsigned jobs,
                  const std::function<void(size_t)>& fn);

class ParallelExperimentRunner : public ExperimentRunner {
 public:
  /// `jobs` <= 0 defers to WECSIM_JOBS / hardware concurrency.
  /// `cache_dir` as in ExperimentRunner. The crash-safe state directory and
  /// resume flag default from WECSIM_STATE_DIR / WECSIM_RESUME; a bench's
  /// --resume flag overrides via set_resume().
  explicit ParallelExperimentRunner(
      const WorkloadParams& params = {}, int jobs = 0,
      std::optional<std::string> cache_dir = std::nullopt);

  /// Queue a point for drain(). Deduplicates against both already-memoized
  /// results and already-queued points; submission order is preserved.
  void submit(const std::string& workload_name, const std::string& key,
              const StaConfig& config);

  /// Points queued and not yet drained.
  size_t pending() const { return pending_.size(); }

  /// Execute every queued point (worker pool + disk cache), then merge
  /// measurements and records in submission order. After drain(), run() on
  /// a submitted point is a memo hit — unless the sweep was interrupted, in
  /// which case interrupted() is true and unfinished points were left
  /// "queued" in the journal for a future --resume.
  void drain();

  unsigned jobs() const override { return jobs_; }

  /// Override the journal directory ("" disables journaling). Takes effect
  /// at the next drain(); tests point this at a temp dir instead of racing
  /// on the WECSIM_STATE_DIR environment variable.
  void set_state_dir(std::string dir) { state_dir_ = std::move(dir); }
  const std::string& state_dir() const { return state_dir_; }

  /// Request (or cancel) journal replay for the next drain(). Replayed
  /// "done" points rejoin the sweep without re-simulating.
  void set_resume(bool resume) { resume_ = resume; }
  bool resume() const { return resume_; }

 private:
  struct Job {
    std::string workload;
    std::string key;
    StaConfig config;
  };

  /// Opens the journal (and, on resume, loads the replay) on the first
  /// journaled drain. No-op when state_dir_ is empty.
  void ensure_journal();

  unsigned jobs_;
  std::vector<Job> pending_;
  std::set<MemoKey> queued_;
  std::string state_dir_;  // WECSIM_STATE_DIR; "" = journaling off
  bool resume_ = false;    // WECSIM_RESUME / --resume
  bool journal_ready_ = false;
  std::unique_ptr<SweepJournal> journal_;
  JournalReplay replay_;
};

}  // namespace wecsim
