// Fixed-width text tables for the bench binaries (same rows/series the
// paper's tables and figures report).
#pragma once

#include <string>
#include <vector>

namespace wecsim {

class TextTable {
 public:
  /// First row is the header.
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double value, int precision = 1);
  static std::string pct(double value, int precision = 1);

  /// Render with aligned columns (first column left, rest right).
  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wecsim
