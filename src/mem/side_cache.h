// Small fully-associative cache placed in parallel with an L1 data cache.
// One implementation backs three roles from the paper:
//   * victim cache (Jouppi)            — entries originate from L1 evictions
//   * Wrong Execution Cache (WEC)      — plus wrong-execution fills and
//                                        next-line prefetches
//   * prefetch buffer for nlp          — entries originate from prefetches
// The entry origin is recorded because the WEC's correct-path hit rule
// ("a hit on a block previously fetched by a wrong-execution load initiates
// a next-line prefetch") depends on it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "mem/cache.h"  // Evicted

namespace wecsim {

/// How a block got into the side cache.
enum class SideOrigin : uint8_t {
  kVictim,     // evicted from L1 by a correct-path fill
  kWrongExec,  // fetched by a wrong-path or wrong-thread load
  kPrefetch,   // fetched by a next-line prefetch
};

class SideCache {
 public:
  /// A fully-associative cache with the given number of block entries.
  SideCache(uint32_t entries, uint32_t block_bytes);

  uint32_t entries() const { return static_cast<uint32_t>(lines_.size()); }
  uint32_t block_bytes() const { return block_bytes_; }
  Addr block_addr(Addr addr) const { return addr & ~Addr{block_bytes_ - 1}; }

  bool contains(Addr addr) const;

  /// Full state of a resident entry (hit path reads origin and readiness).
  struct Hit {
    SideOrigin origin;
    bool dirty;
    Cycle ready;
  };

  /// Probe without LRU update.
  std::optional<Hit> probe(Addr addr) const;

  /// Hit + LRU update. Returns the data-ready cycle (≥ now).
  std::optional<Cycle> access(Addr addr, Cycle now);

  /// Remove the entry for addr and return its state (swap-out path).
  std::optional<Hit> extract(Addr addr);

  /// Insert a block; evicts LRU if full. Returns the displaced block if it
  /// was dirty (needs write-back) — clean victims vanish silently, matching
  /// a victim cache whose lower level is inclusive of nothing.
  std::optional<Evicted> insert(Addr addr, SideOrigin origin, bool dirty,
                                Cycle ready_cycle);

  void invalidate(Addr addr);

  /// Coherence refresh: returns true if addr was present (counted as update
  /// traffic by the caller).
  bool touch_update(Addr addr);

  void clear();

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    Addr block = 0;
    SideOrigin origin = SideOrigin::kVictim;
    uint64_t lru = 0;
    Cycle ready = 0;
  };

  Line* find(Addr addr);
  const Line* find(Addr addr) const;

  uint32_t block_bytes_;
  uint64_t lru_clock_ = 0;
  std::vector<Line> lines_;
};

}  // namespace wecsim
