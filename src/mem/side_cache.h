// Small fully-associative cache placed in parallel with an L1 data cache.
// One implementation backs three roles from the paper:
//   * victim cache (Jouppi)            — entries originate from L1 evictions
//   * Wrong Execution Cache (WEC)      — plus wrong-execution fills and
//                                        next-line prefetches
//   * prefetch buffer for nlp          — entries originate from prefetches
// Every entry carries its provenance: the origin that brought it in (victim,
// wrong-path fill, wrong-thread fill, next-line prefetch) and the cycle it
// was filled. The WEC's correct-path hit rule ("a hit on a block previously
// fetched by a wrong-execution load initiates a next-line prefetch") depends
// on the origin, and the observability layer uses the full provenance to
// score every fill as used/unused by correct execution — the paper's central
// attribution claim.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/cache.h"  // Evicted

namespace wecsim {

/// How a block got into the side cache. The enumerator order is the index
/// order used by provenance counters, reports, and trace serialization.
enum class SideOrigin : uint8_t {
  kVictim,       // evicted from L1 by a correct-path fill
  kWrongPath,    // fetched by a wrong-path load (past a resolved branch)
  kWrongThread,  // fetched by a load of an aborted speculative thread
  kPrefetch,     // fetched by a next-line prefetch
};

inline constexpr uint32_t kNumSideOrigins = 4;

constexpr uint8_t side_origin_index(SideOrigin origin) {
  return static_cast<uint8_t>(origin);
}

constexpr bool is_wrong_exec(SideOrigin origin) {
  return origin == SideOrigin::kWrongPath ||
         origin == SideOrigin::kWrongThread;
}

/// Stable snake_case names used in stats, reports, and traces.
const char* side_origin_name(SideOrigin origin);

class SideCache {
 public:
  /// A fully-associative cache with the given number of block entries.
  SideCache(uint32_t entries, uint32_t block_bytes);

  uint32_t entries() const { return static_cast<uint32_t>(lines_.size()); }
  uint32_t block_bytes() const { return block_bytes_; }
  Addr block_addr(Addr addr) const { return addr & ~Addr{block_bytes_ - 1}; }

  bool contains(Addr addr) const;

  /// Full state of a resident entry (hit path reads origin and readiness).
  struct Hit {
    SideOrigin origin;
    bool dirty;
    Cycle ready;
    Cycle filled;  // cycle the block entered the side cache
  };

  /// A fill whose residency ended: displaced by an insert, dropped by an
  /// invalidate/drain, or overwritten in place by a fill of the same block.
  /// The caller accounts the exit (provenance stats, lifetime histogram) and
  /// writes the block back when `displaced && dirty`.
  struct SideEvicted {
    Addr block;
    bool dirty;
    SideOrigin origin;
    Cycle filled;
    bool displaced;  // false: merged in place, data still resident
  };

  /// Probe without LRU update.
  std::optional<Hit> probe(Addr addr) const;

  /// Hit + LRU update. Returns the data-ready cycle (≥ now).
  std::optional<Cycle> access(Addr addr, Cycle now);

  /// Remove the entry for addr and return its state (swap-out path).
  std::optional<Hit> extract(Addr addr);

  /// Insert a block; evicts LRU if full. Returns the fill whose residency
  /// this insert ended: the displaced LRU block (write-back needed if dirty),
  /// or the previous fill of the same block when re-inserting over it
  /// (`displaced == false`; dirty bits are merged into the surviving line).
  std::optional<SideEvicted> insert(Addr addr, SideOrigin origin, bool dirty,
                                    Cycle ready_cycle, Cycle now = 0);

  /// Remove addr if present, returning its state for accounting.
  std::optional<SideEvicted> invalidate(Addr addr);

  /// Remove the least-recently-used resident line (fault injection: a lost
  /// WEC/victim line). Returns its state, or nullopt when empty.
  std::optional<SideEvicted> invalidate_lru();

  /// Remove every resident line and return their states — end-of-run
  /// provenance accounting for blocks that were never used.
  std::vector<SideEvicted> drain();

  /// Coherence refresh: returns true if addr was present (counted as update
  /// traffic by the caller).
  bool touch_update(Addr addr);

  /// Latest data-ready cycle across resident lines (0 when empty): the
  /// horizon past which no in-flight side-cache fill is still arriving.
  /// Passive state — fills complete by comparison against `now` on the next
  /// access, never by an autonomous tick — so cycle skipping needs no event
  /// from here; the accessor exists for the skip invariant checks in tests.
  Cycle ready_horizon() const;

  void clear();

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    Addr block = 0;
    SideOrigin origin = SideOrigin::kVictim;
    uint64_t lru = 0;
    Cycle ready = 0;
    Cycle filled = 0;
  };

  Line* find(Addr addr);
  const Line* find(Addr addr) const;

  uint32_t block_bytes_;
  uint64_t lru_clock_ = 0;
  std::vector<Line> lines_;
  // block address -> index into lines_, maintained for valid lines only.
  // Every lookup used to be a linear scan of all entries; with the paper's
  // sweeps probing the side cache on each L1 access this map is the
  // simulator's hottest data structure.
  std::unordered_map<Addr, uint32_t> index_;
};

}  // namespace wecsim
