// Generic set-associative cache tag array with true-LRU replacement.
//
// Tag-only timing model: data values live in FlatMemory plus the speculative
// buffers; caches track presence, dirtiness, and the cycle at which an
// in-flight fill completes (ready_cycle), which models MSHR-style partial
// miss coverage for prefetched blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace wecsim {

/// Geometry of one cache level.
struct CacheGeom {
  uint64_t size_bytes = 8 * 1024;
  uint32_t assoc = 1;
  uint32_t block_bytes = 64;

  uint64_t num_blocks() const { return size_bytes / block_bytes; }
  uint64_t num_sets() const { return num_blocks() / assoc; }
};

/// A block evicted by an insertion.
struct Evicted {
  Addr block_addr;  // block-aligned address
  bool dirty;
};

/// Full outcome of a hit (access_ex): when the data is ready plus the state
/// of the tagged-prefetch bit before the access.
struct CacheHit {
  Cycle ready;
  bool was_prefetch_tagged;
};

class SetAssocCache {
 public:
  /// Geometry must be power-of-two sized with assoc dividing the block count.
  explicit SetAssocCache(const CacheGeom& geom);

  uint32_t block_bytes() const { return geom_.block_bytes; }
  Addr block_addr(Addr addr) const { return addr & ~block_mask_; }

  /// Presence test without touching replacement state.
  bool contains(Addr addr) const;

  /// Hit test that updates LRU on hit. Returns the block's ready cycle if
  /// present (kNoCycle-free: a hit on a still-filling block returns when the
  /// fill completes), or std::nullopt on miss.
  std::optional<Cycle> access(Addr addr, bool mark_dirty, Cycle now);

  /// Like access(), but also reports (and optionally clears) the block's
  /// tagged-prefetch bit in the same tag lookup — the nlp hit path needs
  /// all three and would otherwise walk the set once per question.
  std::optional<CacheHit> access_ex(Addr addr, bool mark_dirty,
                                    bool clear_prefetch_tag, Cycle now);

  /// Insert (allocating) the block containing addr; returns the victim if a
  /// valid block was displaced. ready_cycle records when the fill completes.
  std::optional<Evicted> insert(Addr addr, bool dirty, Cycle ready_cycle);

  /// Remove the block if present; returns whether it was dirty.
  std::optional<bool> invalidate(Addr addr);

  /// Mark an existing block dirty (e.g. coherence update); no-op on miss.
  /// Returns true if the block was present.
  bool touch_update(Addr addr);

  /// Tagged-prefetch support: per-block "prefetched, not yet referenced" bit.
  bool prefetch_tag(Addr addr) const;
  void set_prefetch_tag(Addr addr, bool tag);

  /// Ready cycle of a resident block (fill completion time).
  std::optional<Cycle> ready_cycle(Addr addr) const;

  /// Drop everything.
  void clear();

  uint64_t num_sets() const { return geom_.num_sets(); }
  uint32_t assoc() const { return geom_.assoc; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    bool prefetch_tag = false;
    Addr tag = 0;
    uint64_t lru = 0;  // larger = more recently used
    Cycle ready = 0;
  };

  Line* find(Addr addr);
  const Line* find(Addr addr) const;
  uint64_t set_index(Addr addr) const;
  Addr tag_of(Addr addr) const;

  CacheGeom geom_;
  Addr block_mask_;
  uint32_t set_shift_;
  uint64_t set_mask_;
  uint64_t lru_clock_ = 0;
  std::vector<Line> lines_;  // sets * assoc, row-major by set
};

}  // namespace wecsim
