#include "mem/cache.h"

#include "common/bits.h"
#include "common/error.h"

namespace wecsim {

SetAssocCache::SetAssocCache(const CacheGeom& geom) : geom_(geom) {
  WEC_CHECK_MSG(is_pow2(geom.block_bytes), "block size must be a power of 2");
  WEC_CHECK_MSG(geom.size_bytes % geom.block_bytes == 0,
                "cache size must be a multiple of the block size");
  WEC_CHECK_MSG(geom.assoc >= 1 && geom.num_blocks() % geom.assoc == 0,
                "associativity must divide the block count");
  WEC_CHECK_MSG(is_pow2(geom.num_sets()), "set count must be a power of 2");
  block_mask_ = geom.block_bytes - 1;
  set_shift_ = exact_log2(geom.block_bytes);
  set_mask_ = geom.num_sets() - 1;
  lines_.resize(geom.num_blocks());
}

uint64_t SetAssocCache::set_index(Addr addr) const {
  return (addr >> set_shift_) & set_mask_;
}

Addr SetAssocCache::tag_of(Addr addr) const {
  return addr >> set_shift_ >> exact_log2(geom_.num_sets());
}

SetAssocCache::Line* SetAssocCache::find(Addr addr) {
  const uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * geom_.assoc];
  for (uint32_t way = 0; way < geom_.assoc; ++way) {
    if (base[way].valid && base[way].tag == tag) return &base[way];
  }
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(Addr addr) const {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

bool SetAssocCache::contains(Addr addr) const { return find(addr) != nullptr; }

std::optional<Cycle> SetAssocCache::access(Addr addr, bool mark_dirty,
                                           Cycle now) {
  const auto hit = access_ex(addr, mark_dirty, /*clear_prefetch_tag=*/false,
                             now);
  if (!hit) return std::nullopt;
  return hit->ready;
}

std::optional<CacheHit> SetAssocCache::access_ex(Addr addr, bool mark_dirty,
                                                 bool clear_prefetch_tag,
                                                 Cycle now) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  line->lru = ++lru_clock_;
  if (mark_dirty) line->dirty = true;
  const bool was_tagged = line->prefetch_tag;
  if (clear_prefetch_tag) line->prefetch_tag = false;
  return CacheHit{line->ready > now ? line->ready : now, was_tagged};
}

std::optional<Evicted> SetAssocCache::insert(Addr addr, bool dirty,
                                             Cycle ready_cycle) {
  if (Line* hit = find(addr); hit != nullptr) {
    // Re-insertion of a resident block (e.g. coherence refresh): just renew.
    hit->lru = ++lru_clock_;
    hit->dirty = hit->dirty || dirty;
    return std::nullopt;
  }
  const uint64_t set = set_index(addr);
  Line* base = &lines_[set * geom_.assoc];
  Line* victim = &base[0];
  for (uint32_t way = 1; way < geom_.assoc; ++way) {
    Line& candidate = base[way];
    if (!candidate.valid) {
      victim = &candidate;
      break;
    }
    if (victim->valid && candidate.lru < victim->lru) victim = &candidate;
  }
  std::optional<Evicted> evicted;
  if (victim->valid) {
    const Addr victim_addr =
        ((victim->tag << exact_log2(geom_.num_sets()) | set) << set_shift_);
    evicted = Evicted{victim_addr, victim->dirty};
  }
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetch_tag = false;
  victim->tag = tag_of(addr);
  victim->lru = ++lru_clock_;
  victim->ready = ready_cycle;
  return evicted;
}

std::optional<bool> SetAssocCache::invalidate(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  line->valid = false;
  return line->dirty;
}

bool SetAssocCache::touch_update(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return false;
  line->dirty = true;
  return true;
}

bool SetAssocCache::prefetch_tag(Addr addr) const {
  const Line* line = find(addr);
  return line != nullptr && line->prefetch_tag;
}

void SetAssocCache::set_prefetch_tag(Addr addr, bool tag) {
  Line* line = find(addr);
  if (line != nullptr) line->prefetch_tag = tag;
}

std::optional<Cycle> SetAssocCache::ready_cycle(Addr addr) const {
  const Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  return line->ready;
}

void SetAssocCache::clear() {
  for (Line& line : lines_) line = Line{};
  lru_clock_ = 0;
}

}  // namespace wecsim
