// Sparse byte-addressable functional memory. Holds the architectural memory
// image shared by the functional interpreter and the timing simulator (the
// timing caches are tag-only; data values always come from here plus the
// speculative buffers layered on top).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace wecsim {

class FlatMemory {
 public:
  FlatMemory() = default;
  FlatMemory(const FlatMemory&) = delete;
  FlatMemory& operator=(const FlatMemory&) = delete;
  FlatMemory(FlatMemory&&) = default;
  FlatMemory& operator=(FlatMemory&&) = default;

  /// Read n bytes (n ≤ 8) little-endian, zero-extended. Unwritten memory
  /// reads as zero.
  uint64_t read(Addr addr, uint32_t n) const;

  /// Write the low n bytes (n ≤ 8) of value little-endian.
  void write(Addr addr, uint64_t value, uint32_t n);

  uint64_t read_u64(Addr addr) const { return read(addr, 8); }
  uint32_t read_u32(Addr addr) const {
    return static_cast<uint32_t>(read(addr, 4));
  }
  uint8_t read_u8(Addr addr) const { return static_cast<uint8_t>(read(addr, 1)); }
  void write_u64(Addr addr, uint64_t value) { write(addr, value, 8); }
  void write_u32(Addr addr, uint32_t value) { write(addr, value, 4); }
  void write_u8(Addr addr, uint8_t value) { write(addr, value, 1); }

  double read_f64(Addr addr) const;
  void write_f64(Addr addr, double value);

  /// Copy a program's initialized data segment into memory.
  void load_program(const Program& program);

  /// Deep copy of the current image (the lockstep checker's private golden
  /// memory). Explicit rather than a copy constructor: accidental copies of
  /// a multi-megabyte image should not compile silently.
  FlatMemory clone() const {
    FlatMemory copy;
    copy.pages_ = pages_;
    return copy;
  }

  /// Lowest address whose byte differs between the two images (unmapped
  /// pages compare as zeros), or nullopt when identical.
  std::optional<Addr> first_difference(const FlatMemory& other) const;

  /// Number of resident pages (for tests / footprint reporting).
  size_t resident_pages() const { return pages_.size(); }

  /// Drop all contents.
  void clear() { pages_.clear(); }

 private:
  static constexpr uint32_t kPageBits = 12;
  static constexpr Addr kPageSize = Addr{1} << kPageBits;
  static constexpr Addr kPageMask = kPageSize - 1;

  using Page = std::vector<uint8_t>;

  const Page* find_page(Addr addr) const;
  Page& get_page(Addr addr);

  std::unordered_map<Addr, Page> pages_;
};

}  // namespace wecsim
