#include "mem/side_cache.h"

#include "common/bits.h"
#include "common/error.h"

namespace wecsim {

const char* side_origin_name(SideOrigin origin) {
  switch (origin) {
    case SideOrigin::kVictim:
      return "victim";
    case SideOrigin::kWrongPath:
      return "wrong_path";
    case SideOrigin::kWrongThread:
      return "wrong_thread";
    case SideOrigin::kPrefetch:
      return "next_line";
  }
  return "?";
}

SideCache::SideCache(uint32_t entries, uint32_t block_bytes)
    : block_bytes_(block_bytes) {
  WEC_CHECK_MSG(entries >= 1, "side cache needs at least one entry");
  WEC_CHECK_MSG(is_pow2(block_bytes), "block size must be a power of 2");
  lines_.resize(entries);
  index_.reserve(entries);
}

SideCache::Line* SideCache::find(Addr addr) {
  const auto it = index_.find(block_addr(addr));
  return it != index_.end() ? &lines_[it->second] : nullptr;
}

const SideCache::Line* SideCache::find(Addr addr) const {
  return const_cast<SideCache*>(this)->find(addr);
}

bool SideCache::contains(Addr addr) const { return find(addr) != nullptr; }

std::optional<SideCache::Hit> SideCache::probe(Addr addr) const {
  const Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  return Hit{line->origin, line->dirty, line->ready, line->filled};
}

std::optional<Cycle> SideCache::access(Addr addr, Cycle now) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  line->lru = ++lru_clock_;
  return line->ready > now ? line->ready : now;
}

std::optional<SideCache::Hit> SideCache::extract(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  Hit hit{line->origin, line->dirty, line->ready, line->filled};
  line->valid = false;
  index_.erase(line->block);
  return hit;
}

std::optional<SideCache::SideEvicted> SideCache::insert(Addr addr,
                                                        SideOrigin origin,
                                                        bool dirty,
                                                        Cycle ready_cycle,
                                                        Cycle now) {
  Line* slot = find(addr);
  std::optional<SideEvicted> ended;
  if (slot == nullptr) {
    slot = &lines_[0];
    for (Line& line : lines_) {
      if (!line.valid) {
        slot = &line;
        break;
      }
      if (slot->valid && line.lru < slot->lru) slot = &line;
    }
    if (slot->valid) {
      ended = SideEvicted{slot->block, slot->dirty, slot->origin, slot->filled,
                          /*displaced=*/true};
      index_.erase(slot->block);
    }
  } else {
    // Re-fill of a resident block: the prior fill's residency ends here and
    // the new fill takes over the line; dirty data merges into it.
    ended = SideEvicted{slot->block, slot->dirty, slot->origin, slot->filled,
                        /*displaced=*/false};
    dirty = dirty || slot->dirty;
  }
  slot->valid = true;
  slot->dirty = dirty;
  slot->block = block_addr(addr);
  slot->origin = origin;
  slot->lru = ++lru_clock_;
  slot->ready = ready_cycle;
  slot->filled = now;
  index_[slot->block] = static_cast<uint32_t>(slot - lines_.data());
  return ended;
}

std::optional<SideCache::SideEvicted> SideCache::invalidate(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  SideEvicted ended{line->block, line->dirty, line->origin, line->filled,
                    /*displaced=*/true};
  line->valid = false;
  index_.erase(line->block);
  return ended;
}

std::optional<SideCache::SideEvicted> SideCache::invalidate_lru() {
  Line* lru = nullptr;
  for (Line& line : lines_) {
    if (!line.valid) continue;
    if (lru == nullptr || line.lru < lru->lru) lru = &line;
  }
  if (lru == nullptr) return std::nullopt;
  SideEvicted ended{lru->block, lru->dirty, lru->origin, lru->filled,
                    /*displaced=*/true};
  lru->valid = false;
  index_.erase(lru->block);
  return ended;
}

std::vector<SideCache::SideEvicted> SideCache::drain() {
  std::vector<SideEvicted> ended;
  for (Line& line : lines_) {
    if (!line.valid) continue;
    ended.push_back(SideEvicted{line.block, line.dirty, line.origin,
                                line.filled, /*displaced=*/true});
    line.valid = false;
  }
  index_.clear();
  return ended;
}

bool SideCache::touch_update(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return false;
  line->dirty = true;
  return true;
}

Cycle SideCache::ready_horizon() const {
  Cycle horizon = 0;
  for (const Line& line : lines_) {
    if (line.valid && line.ready > horizon) horizon = line.ready;
  }
  return horizon;
}

void SideCache::clear() {
  for (Line& line : lines_) line = Line{};
  index_.clear();
  lru_clock_ = 0;
}

}  // namespace wecsim
