#include "mem/side_cache.h"

#include "common/bits.h"
#include "common/error.h"

namespace wecsim {

SideCache::SideCache(uint32_t entries, uint32_t block_bytes)
    : block_bytes_(block_bytes) {
  WEC_CHECK_MSG(entries >= 1, "side cache needs at least one entry");
  WEC_CHECK_MSG(is_pow2(block_bytes), "block size must be a power of 2");
  lines_.resize(entries);
}

SideCache::Line* SideCache::find(Addr addr) {
  const Addr block = block_addr(addr);
  for (Line& line : lines_) {
    if (line.valid && line.block == block) return &line;
  }
  return nullptr;
}

const SideCache::Line* SideCache::find(Addr addr) const {
  return const_cast<SideCache*>(this)->find(addr);
}

bool SideCache::contains(Addr addr) const { return find(addr) != nullptr; }

std::optional<SideCache::Hit> SideCache::probe(Addr addr) const {
  const Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  return Hit{line->origin, line->dirty, line->ready};
}

std::optional<Cycle> SideCache::access(Addr addr, Cycle now) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  line->lru = ++lru_clock_;
  return line->ready > now ? line->ready : now;
}

std::optional<SideCache::Hit> SideCache::extract(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  Hit hit{line->origin, line->dirty, line->ready};
  line->valid = false;
  return hit;
}

std::optional<Evicted> SideCache::insert(Addr addr, SideOrigin origin,
                                         bool dirty, Cycle ready_cycle) {
  Line* slot = find(addr);
  std::optional<Evicted> displaced;
  if (slot == nullptr) {
    slot = &lines_[0];
    for (Line& line : lines_) {
      if (!line.valid) {
        slot = &line;
        break;
      }
      if (slot->valid && line.lru < slot->lru) slot = &line;
    }
    if (slot->valid && slot->dirty) {
      displaced = Evicted{slot->block, true};
    }
  } else {
    dirty = dirty || slot->dirty;
  }
  slot->valid = true;
  slot->dirty = dirty;
  slot->block = block_addr(addr);
  slot->origin = origin;
  slot->lru = ++lru_clock_;
  slot->ready = ready_cycle;
  return displaced;
}

void SideCache::invalidate(Addr addr) {
  Line* line = find(addr);
  if (line != nullptr) line->valid = false;
}

bool SideCache::touch_update(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return false;
  line->dirty = true;
  return true;
}

void SideCache::clear() {
  for (Line& line : lines_) line = Line{};
  lru_clock_ = 0;
}

}  // namespace wecsim
