#include "mem/mem_system.h"

#include "common/error.h"
#include "fault/fault.h"

namespace wecsim {

// ---------------------------------------------------------------------------
// SharedL2
// ---------------------------------------------------------------------------

SharedL2::SharedL2(const MemConfig& config, StatsRegistry& stats)
    : config_(config),
      tags_(config.l2),
      accesses_(stats.counter("l2.accesses")),
      misses_(stats.counter("l2.misses")),
      writebacks_(stats.counter("l2.writebacks")),
      mem_reads_(stats.counter("mem.reads")) {}

Cycle SharedL2::access(Addr addr, Cycle now) {
  accesses_.inc();
  const Cycle start = std::max(now, next_free_);
  next_free_ = start + config_.l2_occupancy;
  if (auto hit = tags_.access(addr, /*mark_dirty=*/false, start)) {
    // Hit (possibly on a still-filling line: wait for the fill).
    return std::max(*hit, start + config_.l2_hit_lat);
  }
  misses_.inc();
  mem_reads_.inc();
  const Cycle done = start + config_.l2_hit_lat + config_.mem_lat;
  auto evicted = tags_.insert(addr, /*dirty=*/false, done);
  if (evicted.has_value() && evicted->dirty) {
    writebacks_.inc();
    next_free_ += config_.l2_occupancy;  // write-back consumes bandwidth
  }
  return done;
}

void SharedL2::write_back(Addr addr, Cycle now) {
  writebacks_.inc();
  const Cycle start = std::max(now, next_free_);
  next_free_ = start + config_.l2_occupancy;
  // Mark (or allocate) the block dirty in L2; a miss here models a
  // write-back going straight to memory.
  if (!tags_.touch_update(addr)) {
    // No allocation on write-back miss: memory absorbs it.
  }
}

void SharedL2::warm(Addr addr) {
  if (!tags_.access(addr, /*mark_dirty=*/false, /*now=*/0).has_value()) {
    tags_.insert(addr, /*dirty=*/false, /*ready_cycle=*/0);
  }
}

void SharedL2::reset() {
  tags_.clear();
  next_free_ = 0;
}

// ---------------------------------------------------------------------------
// TuMemSystem
// ---------------------------------------------------------------------------

TuMemSystem::TuMemSystem(const MemConfig& config, SharedL2& l2,
                         StatsRegistry& stats, const std::string& stat_prefix,
                         TuId tu, TraceSink* trace, FaultSession* faults)
    : config_(config),
      l2_(l2),
      l1i_(config.l1i),
      l1d_(config.l1d),
      tu_(tu),
      trace_(trace),
      faults_(faults),
      l1d_accesses_(stats.counter(stat_prefix + "l1d.accesses")),
      l1d_wrong_accesses_(stats.counter(stat_prefix + "l1d.wrong_accesses")),
      l1d_misses_(stats.counter(stat_prefix + "l1d.misses")),
      l1d_wrong_misses_(stats.counter(stat_prefix + "l1d.wrong_misses")),
      side_hits_(stats.counter(stat_prefix + "side.hits")),
      side_wrong_hits_(stats.counter(stat_prefix + "side.wrong_hits")),
      wec_fills_(stats.counter(stat_prefix + "side.wrong_fills")),
      prefetches_(stats.counter(stat_prefix + "side.prefetches")),
      l1i_accesses_(stats.counter(stat_prefix + "l1i.accesses")),
      l1i_misses_(stats.counter(stat_prefix + "l1i.misses")),
      coherence_updates_(stats.counter(stat_prefix + "coherence.updates")) {
  if (config.side != SideKind::kNone) {
    side_ = std::make_unique<SideCache>(config.side_entries,
                                        config.l1d.block_bytes);
    for (uint32_t i = 0; i < kNumSideOrigins; ++i) {
      const std::string origin = side_origin_name(static_cast<SideOrigin>(i));
      side_fill_by_origin_[i] =
          stats.counter(stat_prefix + "side.fill." + origin);
      side_used_by_origin_[i] =
          stats.counter(stat_prefix + "side.used." + origin);
      side_unused_by_origin_[i] =
          stats.counter(stat_prefix + "side.unused." + origin);
    }
    side_lifetime_ = stats.histogram(stat_prefix + "side.block_lifetime");
  }
  miss_latency_ = stats.histogram(stat_prefix + "l1d.miss_latency");
}

void TuMemSystem::account_side_exit(SideOrigin origin, bool used, Cycle filled,
                                    Cycle now) {
  auto& by_origin = used ? side_used_by_origin_ : side_unused_by_origin_;
  by_origin[side_origin_index(origin)].inc();
  side_lifetime_.record(now > filled ? now - filled : 0);
}

void TuMemSystem::side_insert(Addr addr, SideOrigin origin, bool dirty,
                              Cycle ready, Cycle now) {
  side_fill_by_origin_[side_origin_index(origin)].inc();
  // The event-type selection lives inside the macro so it costs nothing when
  // no sink is attached (WEC_TRACE evaluates its arguments lazily).
  WEC_TRACE(trace_, now, tu_,
            origin == SideOrigin::kVictim ? TraceEventType::kVictimEvict
            : origin == SideOrigin::kPrefetch
                ? TraceEventType::kNextLinePrefetch
                : TraceEventType::kWecFill,
            side_->block_addr(addr), 0, side_origin_index(origin));
  auto ended = side_->insert(addr, origin, dirty, ready, now);
  if (ended.has_value()) {
    account_side_exit(ended->origin, /*used=*/false, ended->filled, now);
    if (ended->displaced && ended->dirty) {
      l2_.write_back(ended->block, now);
    }
  }
}

Cycle TuMemSystem::fill_l1(Addr addr, bool dirty, Cycle now) {
  Cycle done = l2_.access(addr, now);
  if (faults_ != nullptr) {
    if (faults_->armed(FaultKind::kMemDelay) &&
        faults_->fire(FaultKind::kMemDelay)) {
      done += faults_->arg(FaultKind::kMemDelay, config_.mem_lat);
    }
    // Dropped fill: the data arrives but the line is never allocated, so the
    // next access misses again. Clean fills only — dropping a dirty
    // write-allocate would lose the store.
    if (!dirty && faults_->armed(FaultKind::kMemDrop) &&
        faults_->fire(FaultKind::kMemDrop)) {
      return done;
    }
  }
  auto victim = l1d_.insert(addr, dirty, done);
  if (victim.has_value()) {
    if (side_ != nullptr && (config_.side == SideKind::kVictim ||
                             config_.side == SideKind::kWec)) {
      // Victim-caching role: the displaced L1 block moves into the side
      // structure, dirty bit and all.
      side_insert(victim->block_addr, SideOrigin::kVictim, victim->dirty, now,
                  now);
    } else if (victim->dirty) {
      l2_.write_back(victim->block_addr, now);
    }
  }
  return done;
}

void TuMemSystem::prefetch_next(Addr addr, Cycle now) {
  WEC_CHECK(side_ != nullptr);
  const Addr next = l1d_.block_addr(addr) + l1d_.block_bytes();
  if (l1d_.contains(next) || side_->contains(next)) return;
  prefetches_.inc();
  const Cycle done = l2_.access(next, now);
  side_insert(next, SideOrigin::kPrefetch, /*dirty=*/false, done, now);
}

MemOutcome TuMemSystem::correct_load(Addr addr, Cycle now) {
  l1d_accesses_.inc();
  // Tagged next-line prefetch: the first demand hit to a prefetched block
  // triggers the next prefetch. access_ex reads and clears the tag in the
  // same lookup that serves the hit (was three tag-array walks).
  const bool tagged_nlp =
      config_.side == SideKind::kPrefetchBuffer && config_.nlp_tagged;
  if (auto hit = l1d_.access_ex(addr, /*mark_dirty=*/false,
                                /*clear_prefetch_tag=*/tagged_nlp, now)) {
    if (tagged_nlp && hit->was_prefetch_tagged) prefetch_next(addr, now);
    return {hit->ready + config_.l1_hit_lat, true, false};
  }
  l1d_misses_.inc();

  if (side_ != nullptr) {
    // extract() reports the full entry state, so the hit path needs no
    // separate probe.
    if (auto entry = side_->extract(addr)) {
      side_hits_.inc();
      WEC_TRACE(trace_, now, tu_, TraceEventType::kWecHit,
                side_->block_addr(addr), 0, side_origin_index(entry->origin));
      const Cycle ready = std::max(now, entry->ready);
      // Correct execution consumed this fill — the outcome the paper's
      // usefulness breakdown scores.
      account_side_exit(entry->origin, /*used=*/true, entry->filled, now);
      // The block moves into the L1; under vc/wec the L1 victim swaps into
      // the side cache, under nlp the promoted block keeps its prefetch tag.
      auto victim = l1d_.insert(addr, entry->dirty, ready);
      if (config_.side == SideKind::kPrefetchBuffer) {
        l1d_.set_prefetch_tag(addr, true);
        if (victim.has_value() && victim->dirty) {
          l2_.write_back(victim->block_addr, now);
        }
      } else if (victim.has_value()) {
        side_insert(victim->block_addr, SideOrigin::kVictim, victim->dirty,
                    now, now);
      }
      // WEC rule: a correct-path hit on a wrong-fetched block initiates a
      // next-line prefetch into the WEC (Fig. 6).
      if (config_.side == SideKind::kWec &&
          (is_wrong_exec(entry->origin) ||
           (config_.wec_chain_prefetch &&
            entry->origin == SideOrigin::kPrefetch))) {
        prefetch_next(addr, ready);
      }
      return {ready + config_.side_hit_lat, false, true};
    }
  }

  // Miss everywhere: demand fill from L2/memory into the L1.
  const Cycle done = fill_l1(addr, /*dirty=*/false, now);
  miss_latency_.record(done > now ? done - now : 0);
  // Plain next-line prefetch-on-miss for the nlp configuration.
  if (config_.side == SideKind::kPrefetchBuffer) {
    l1d_.set_prefetch_tag(addr, true);
    prefetch_next(addr, now);
  }
  return {done, false, false};
}

MemOutcome TuMemSystem::wrong_load(Addr addr, ExecMode mode, Cycle now) {
  l1d_accesses_.inc();
  l1d_wrong_accesses_.inc();
  if (auto hit = l1d_.access(addr, /*mark_dirty=*/false, now)) {
    return {*hit + config_.l1_hit_lat, true, false};
  }
  l1d_wrong_misses_.inc();

  if (config_.side == SideKind::kWec) {
    if (auto ready = side_->access(addr, now)) {
      side_wrong_hits_.inc();
      WEC_TRACE(trace_, now, tu_, TraceEventType::kWecHit,
                side_->block_addr(addr), /*arg=*/1);
      // Served by the WEC; no promotion into the L1 (Fig. 6 wrong-exec path).
      return {*ready + config_.side_hit_lat, false, true};
    }
    // Fill the WEC from the next level; the L1 is untouched so wrong
    // execution can never pollute it.
    wec_fills_.inc();
    Cycle done = l2_.access(addr, now);
    if (faults_ != nullptr && faults_->armed(FaultKind::kMemDelay) &&
        faults_->fire(FaultKind::kMemDelay)) {
      done += faults_->arg(FaultKind::kMemDelay, config_.mem_lat);
    }
    side_insert(addr, side_origin_for(mode), /*dirty=*/false, done, now);
    return {done, false, false};
  }

  // No WEC: wrong-execution loads are treated like correct loads (they fill
  // the L1 and may pollute it). This is exactly the wp/wth/wth-wp(-vc)
  // behaviour the paper measures against. Note l1d.misses stays correct-path
  // only; wrong-execution misses are tracked separately.
  if (side_ != nullptr) {
    if (auto entry = side_->extract(addr)) {
      side_hits_.inc();
      WEC_TRACE(trace_, now, tu_, TraceEventType::kWecHit,
                side_->block_addr(addr), /*arg=*/1,
                side_origin_index(entry->origin));
      const Cycle ready = std::max(now, entry->ready);
      // Promoted into the L1 by wrong execution — not a correct-path use.
      account_side_exit(entry->origin, /*used=*/false, entry->filled, now);
      auto victim = l1d_.insert(addr, entry->dirty, ready);
      if (config_.side == SideKind::kVictim) {
        if (victim.has_value()) {
          side_insert(victim->block_addr, SideOrigin::kVictim, victim->dirty,
                      now, now);
        }
      } else if (victim.has_value() && victim->dirty) {
        l2_.write_back(victim->block_addr, now);
      }
      return {ready + config_.side_hit_lat, false, true};
    }
  }
  const Cycle done = fill_l1(addr, /*dirty=*/false, now);
  if (config_.side == SideKind::kPrefetchBuffer) {
    l1d_.set_prefetch_tag(addr, true);
    prefetch_next(addr, now);
  }
  return {done, false, false};
}

MemOutcome TuMemSystem::load(Addr addr, ExecMode mode, Cycle now) {
  // Injected loss of a side-cache line (models a flushed/corrupted WEC or
  // victim entry). The exit is fully accounted so the fills == used + unused
  // provenance invariant survives injection.
  if (faults_ != nullptr && side_ != nullptr &&
      faults_->armed(FaultKind::kSideInvalidate) &&
      faults_->fire(FaultKind::kSideInvalidate)) {
    if (auto ended = side_->invalidate_lru()) {
      account_side_exit(ended->origin, /*used=*/false, ended->filled, now);
      if (ended->dirty) l2_.write_back(ended->block, now);
    }
  }
  const MemOutcome outcome = is_wrong(mode) ? wrong_load(addr, mode, now)
                                            : correct_load(addr, now);
  if (outcome.done > fill_horizon_) fill_horizon_ = outcome.done;
  return outcome;
}

MemOutcome TuMemSystem::store(Addr addr, Cycle now) {
  l1d_accesses_.inc();
  if (auto hit = l1d_.access(addr, /*mark_dirty=*/true, now)) {
    return {*hit + config_.l1_hit_lat, true, false};
  }
  l1d_misses_.inc();
  if (side_ != nullptr) {
    if (auto entry = side_->extract(addr)) {
      side_hits_.inc();
      WEC_TRACE(trace_, now, tu_, TraceEventType::kWecHit,
                side_->block_addr(addr), 0, side_origin_index(entry->origin));
      const Cycle ready = std::max(now, entry->ready);
      // A committing store is correct execution consuming the fill.
      account_side_exit(entry->origin, /*used=*/true, entry->filled, now);
      auto victim = l1d_.insert(addr, /*dirty=*/true, ready);
      if (config_.side != SideKind::kPrefetchBuffer && victim.has_value()) {
        side_insert(victim->block_addr, SideOrigin::kVictim, victim->dirty,
                    now, now);
      } else if (victim.has_value() && victim->dirty) {
        l2_.write_back(victim->block_addr, now);
      }
      return {ready + config_.side_hit_lat, false, true};
    }
  }
  // Write-allocate miss; the store buffer hides the fill latency from the
  // committing thread, so the returned cycle is just the port occupancy.
  const Cycle fill_done = fill_l1(addr, /*dirty=*/true, now);
  if (fill_done > fill_horizon_) fill_horizon_ = fill_done;
  return {now + config_.l1_hit_lat, false, false};
}

Cycle TuMemSystem::ifetch(Addr pc, Cycle now) {
  l1i_accesses_.inc();
  if (auto hit = l1i_.access(pc, /*mark_dirty=*/false, now)) {
    return *hit + config_.l1_hit_lat;
  }
  l1i_misses_.inc();
  const Cycle done = l2_.access(pc, now);
  auto victim = l1i_.insert(pc, /*dirty=*/false, done);
  (void)victim;  // instruction blocks are never dirty
  if (done > fill_horizon_) fill_horizon_ = done;
  return done;
}

void TuMemSystem::warm_access(Addr addr, bool store) {
  if (l1d_.access(addr, /*mark_dirty=*/store, /*now=*/0).has_value()) return;
  l2_.warm(addr);
  // Displaced victims vanish silently: warming is cost-free by definition,
  // so their write-back bandwidth is deliberately not modelled.
  l1d_.insert(addr, /*dirty=*/store, /*ready_cycle=*/0);
}

void TuMemSystem::warm_shared(Addr addr) { l2_.warm(addr); }

void TuMemSystem::warm_ifetch(Addr pc) {
  if (l1i_.access(pc, /*mark_dirty=*/false, /*now=*/0).has_value()) return;
  l2_.warm(pc);
  l1i_.insert(pc, /*dirty=*/false, /*ready_cycle=*/0);
}

void TuMemSystem::coherence_update(Addr addr) {
  bool touched = l1d_.touch_update(addr);
  if (side_ != nullptr) touched = side_->touch_update(addr) || touched;
  if (touched) coherence_updates_.inc();
}

void TuMemSystem::finalize_accounting(Cycle now) {
  if (side_ == nullptr) return;
  for (const auto& ended : side_->drain()) {
    account_side_exit(ended.origin, /*used=*/false, ended.filled, now);
  }
}

void TuMemSystem::reset() {
  l1i_.clear();
  l1d_.clear();
  if (side_ != nullptr) side_->clear();
}

}  // namespace wecsim
