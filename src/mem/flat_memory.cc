#include "mem/flat_memory.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace wecsim {

const FlatMemory::Page* FlatMemory::find_page(Addr addr) const {
  auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : &it->second;
}

FlatMemory::Page& FlatMemory::get_page(Addr addr) {
  auto [it, inserted] = pages_.try_emplace(addr >> kPageBits);
  if (inserted) it->second.assign(kPageSize, 0);
  return it->second;
}

uint64_t FlatMemory::read(Addr addr, uint32_t n) const {
  WEC_CHECK_MSG(n >= 1 && n <= 8, "read width must be 1..8");
  uint64_t value = 0;
  // Fast path: access within one page.
  const Addr offset = addr & kPageMask;
  if (offset + n <= kPageSize) {
    const Page* page = find_page(addr);
    if (page == nullptr) return 0;
    std::memcpy(&value, page->data() + offset, n);
    return value;
  }
  for (uint32_t i = 0; i < n; ++i) {
    const Page* page = find_page(addr + i);
    const uint8_t byte =
        page == nullptr ? 0 : (*page)[(addr + i) & kPageMask];
    value |= static_cast<uint64_t>(byte) << (8 * i);
  }
  return value;
}

void FlatMemory::write(Addr addr, uint64_t value, uint32_t n) {
  WEC_CHECK_MSG(n >= 1 && n <= 8, "write width must be 1..8");
  const Addr offset = addr & kPageMask;
  if (offset + n <= kPageSize) {
    Page& page = get_page(addr);
    std::memcpy(page.data() + offset, &value, n);
    return;
  }
  for (uint32_t i = 0; i < n; ++i) {
    Page& page = get_page(addr + i);
    page[(addr + i) & kPageMask] = static_cast<uint8_t>(value >> (8 * i));
  }
}

double FlatMemory::read_f64(Addr addr) const {
  const uint64_t bits = read_u64(addr);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void FlatMemory::write_f64(Addr addr, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  write_u64(addr, bits);
}

std::optional<Addr> FlatMemory::first_difference(
    const FlatMemory& other) const {
  // Compare over the sorted union of resident page numbers; a page mapped on
  // one side only is compared against zeros (unwritten memory reads as 0).
  std::vector<Addr> page_nums;
  page_nums.reserve(pages_.size() + other.pages_.size());
  for (const auto& [num, page] : pages_) page_nums.push_back(num);
  for (const auto& [num, page] : other.pages_) page_nums.push_back(num);
  std::sort(page_nums.begin(), page_nums.end());
  page_nums.erase(std::unique(page_nums.begin(), page_nums.end()),
                  page_nums.end());
  for (Addr num : page_nums) {
    const auto a_it = pages_.find(num);
    const auto b_it = other.pages_.find(num);
    const Page* a = a_it == pages_.end() ? nullptr : &a_it->second;
    const Page* b = b_it == other.pages_.end() ? nullptr : &b_it->second;
    for (Addr off = 0; off < kPageSize; ++off) {
      const uint8_t av = a == nullptr ? 0 : (*a)[off];
      const uint8_t bv = b == nullptr ? 0 : (*b)[off];
      if (av != bv) return (num << kPageBits) | off;
    }
  }
  return std::nullopt;
}

void FlatMemory::load_program(const Program& program) {
  const auto& data = program.data();
  for (size_t i = 0; i < data.size(); ++i) {
    write_u8(program.data_base() + i, data[i]);
  }
}

}  // namespace wecsim
