// Per-thread-unit memory hierarchy plus the shared L2, implementing the
// paper's memory-system semantics (Section 3.2, Figures 5 and 6):
//
//   * every TU has a private L1 I-cache and L1 D-cache;
//   * an optional fully-associative side structure sits in parallel with the
//     L1 D-cache, configured as a victim cache (vc configs), a Wrong
//     Execution Cache (wec configs), or a next-line-prefetch buffer (nlp);
//   * a unified L2 is shared by all TUs with limited bandwidth;
//   * main memory is a flat round-trip latency.
//
// Loads carry an execution mode: correct, wrong-path, or wrong-thread.
// Routing rules (Fig. 6):
//   correct load,  L1 hit             -> normal hit
//   correct load,  L1 miss, side hit  -> vc/wec: swap block into L1, victim
//                                        into side; wec additionally issues a
//                                        next-line prefetch when the side
//                                        block was wrong-fetched/prefetched;
//                                        nlp: promote to L1, tagged prefetch
//   correct load,  both miss          -> fill L1 from L2/memory; vc/wec: L1
//                                        victim into the side cache; nlp:
//                                        prefetch next line into the buffer
//   wrong load,    L1 hit             -> normal hit (LRU update only)
//   wrong load,    L1 miss, side hit  -> wec: serve from WEC, update its LRU,
//                                        no promotion into L1
//   wrong load,    both miss          -> wec: fill the WEC, never the L1;
//                                        without a WEC (wp/wth/wth-wp/vc
//                                        configs) wrong loads fill the L1
//                                        directly — that is the pollution the
//                                        WEC exists to remove
// Stores reach the hierarchy only from correct execution (write-back stage /
// sequential commit); they are write-back write-allocate and never stall the
// committing thread (store-buffer assumption).
//
// Observability: every side-cache fill is tagged with its origin and scored
// on exit as used/unused by correct execution ("tuN.side.{fill,used,unused}.
// <origin>" counters plus a block-lifetime histogram), and the hierarchy
// emits typed trace events (WEC fill/hit, victim eviction, next-line
// prefetch) to an optional TraceSink.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "mem/cache.h"
#include "mem/side_cache.h"
#include "obs/trace.h"

namespace wecsim {

class FaultSession;

/// Execution provenance of a memory access.
enum class ExecMode : uint8_t { kCorrect, kWrongPath, kWrongThread };

inline bool is_wrong(ExecMode mode) { return mode != ExecMode::kCorrect; }

/// Side-cache fill origin for a wrong-execution load of the given mode.
inline SideOrigin side_origin_for(ExecMode mode) {
  return mode == ExecMode::kWrongThread ? SideOrigin::kWrongThread
                                        : SideOrigin::kWrongPath;
}

/// What sits beside the L1 data cache.
enum class SideKind : uint8_t { kNone, kVictim, kWec, kPrefetchBuffer };

struct MemConfig {
  CacheGeom l1i{32 * 1024, 2, 64};
  CacheGeom l1d{8 * 1024, 1, 64};
  CacheGeom l2{512 * 1024, 4, 128};
  uint32_t l1_hit_lat = 1;
  uint32_t side_hit_lat = 2;   // L1-miss/side-hit service (swap) latency
  uint32_t l2_hit_lat = 12;
  uint32_t l2_occupancy = 1;   // L2 bandwidth: cycles a request holds the L2
  uint32_t mem_lat = 200;      // round-trip main-memory latency (paper: 200)
  SideKind side = SideKind::kNone;
  uint32_t side_entries = 8;   // paper default WEC: 8 entries
  bool nlp_tagged = true;      // nlp: prefetch on miss AND first hit to a
                               // prefetched block (tagged prefetching)
  bool wec_chain_prefetch = true;  // WEC: next-line prefetch also when the
                                   // hit block came from an earlier prefetch
};

/// Unified L2 shared by every thread unit. Models tag state, bandwidth
/// occupancy, and the flat memory latency behind it.
class SharedL2 {
 public:
  SharedL2(const MemConfig& config, StatsRegistry& stats);

  /// Fetch the block containing addr into L2 (if absent) and return the
  /// cycle its data is available to the requester.
  Cycle access(Addr addr, Cycle now);

  /// Account a dirty write-back from an L1/side cache (consumes bandwidth,
  /// does not return data).
  void write_back(Addr addr, Cycle now);

  /// Functional warming (sampled fast-forward): make the block resident and
  /// most-recently-used without consuming bandwidth or touching statistics.
  void warm(Addr addr);

  /// Cycle the L2 port frees up. Passive bandwidth state: it only delays
  /// requests that arrive before it, it never acts on its own — so cycle
  /// skipping treats the L2 as event-free. Exposed for the skip invariant
  /// checks in tests.
  Cycle busy_until() const { return next_free_; }

  void reset();

 private:
  MemConfig config_;
  SetAssocCache tags_;
  Cycle next_free_ = 0;
  StatsRegistry::Counter accesses_;
  StatsRegistry::Counter misses_;
  StatsRegistry::Counter writebacks_;
  StatsRegistry::Counter mem_reads_;
};

/// Outcome of a data access, for stats and core scheduling.
struct MemOutcome {
  Cycle done;        // cycle the value is available / store is accepted
  bool l1_hit;
  bool side_hit;     // hit in vc/wec/prefetch buffer
};

/// One thread unit's private hierarchy, sharing a SharedL2 with its peers.
class TuMemSystem {
 public:
  /// stat_prefix is e.g. "tu3." — counters land under "tu3.l1d.*". `tu` and
  /// `trace` feed the optional event trace (null sink: tracing off);
  /// `faults` (may be null) injects fill delays/drops and side-cache
  /// invalidations (src/fault/fault.h).
  TuMemSystem(const MemConfig& config, SharedL2& l2, StatsRegistry& stats,
              const std::string& stat_prefix, TuId tu = 0,
              TraceSink* trace = nullptr, FaultSession* faults = nullptr);

  /// Data-side load. The mode selects the routing rules above.
  MemOutcome load(Addr addr, ExecMode mode, Cycle now);

  /// Data-side store commit (correct execution only).
  MemOutcome store(Addr addr, Cycle now);

  /// Instruction fetch of the block containing pc. Returns the cycle the
  /// fetch group is available.
  Cycle ifetch(Addr pc, Cycle now);

  /// Coherence: another TU (or the sequential thread) committed a store to
  /// addr. Refreshes any local copy; counts the shared-bus update. Per the
  /// paper this adds no delay — traffic goes to otherwise idle caches.
  void coherence_update(Addr addr);

  /// Functional warming (sampled fast-forward): replay an architectural
  /// access into the L1d + shared-L2 tag arrays — residency and LRU only, no
  /// latency, no bandwidth, no statistics, no side-cache involvement. Keeps
  /// the long-lived cache working set tracking the program between detailed
  /// windows, which a window-local warmup phase alone cannot rebuild.
  void warm_access(Addr addr, bool store);
  void warm_ifetch(Addr pc);
  /// Warm only the shared L2: for accesses made inside parallel regions,
  /// whose L1 residency the real machine spreads across thread units.
  void warm_shared(Addr addr);

  /// End-of-run provenance close-out: every block still resident in the side
  /// cache is accounted as an unused fill, so that per origin
  /// fills == used + unused. Idempotent once the side cache is empty.
  void finalize_accounting(Cycle now);

  void reset();

  SideKind side_kind() const { return config_.side; }
  uint32_t l1d_block_bytes() const { return l1d_.block_bytes(); }

  /// Latest fill/service completion cycle issued by this hierarchy (load
  /// outcomes, store fills, ifetches). Every outcome is computed
  /// synchronously at request time and
  /// scheduled in the requesting core's ROB, so the memory system holds no
  /// autonomous future events: the cores' next_event_cycle() already covers
  /// every outstanding fill. Exposed, with SharedL2::busy_until() and
  /// SideCache::ready_horizon(), for the cycle-skip invariant checks in
  /// tests (a skip jump may never land past an event only the memory system
  /// knows about — which is to say, past nothing).
  Cycle fill_horizon() const { return fill_horizon_; }

 private:
  MemOutcome correct_load(Addr addr, Cycle now);
  MemOutcome wrong_load(Addr addr, ExecMode mode, Cycle now);
  /// Fill the L1 from L2/memory; routes the L1 victim per the side config.
  Cycle fill_l1(Addr addr, bool dirty, Cycle now);
  /// Issue a next-line prefetch into the side structure (WEC or nlp buffer).
  void prefetch_next(Addr addr, Cycle now);

  /// Insert into the side cache with provenance accounting: counts the fill
  /// by origin, emits the matching trace event, accounts the displaced /
  /// overwritten fill as unused, and writes back displaced dirty data.
  void side_insert(Addr addr, SideOrigin origin, bool dirty, Cycle ready,
                   Cycle now);
  /// A fill's residency ended: score it used/unused and record its lifetime.
  void account_side_exit(SideOrigin origin, bool used, Cycle filled,
                         Cycle now);

  MemConfig config_;
  SharedL2& l2_;
  SetAssocCache l1i_;
  SetAssocCache l1d_;
  std::unique_ptr<SideCache> side_;
  TuId tu_;
  TraceSink* trace_;
  FaultSession* faults_;  // may be null: no injection
  Cycle fill_horizon_ = 0;  // max completion cycle returned so far

  // Statistics (names mirror the paper's reported quantities).
  StatsRegistry::Counter l1d_accesses_;        // processor<->L1 traffic
  StatsRegistry::Counter l1d_wrong_accesses_;  // portion from wrong execution
  StatsRegistry::Counter l1d_misses_;          // correct-path L1 misses
  StatsRegistry::Counter l1d_wrong_misses_;
  StatsRegistry::Counter side_hits_;
  StatsRegistry::Counter side_wrong_hits_;
  StatsRegistry::Counter wec_fills_;           // wrong-execution fills
  StatsRegistry::Counter prefetches_;
  StatsRegistry::Counter l1i_accesses_;
  StatsRegistry::Counter l1i_misses_;
  StatsRegistry::Counter coherence_updates_;

  // Provenance accounting, indexed by SideOrigin.
  std::array<StatsRegistry::Counter, kNumSideOrigins> side_fill_by_origin_;
  std::array<StatsRegistry::Counter, kNumSideOrigins> side_used_by_origin_;
  std::array<StatsRegistry::Counter, kNumSideOrigins> side_unused_by_origin_;
  StatsRegistry::Histogram side_lifetime_;   // cycles from fill to exit
  StatsRegistry::Histogram miss_latency_;    // correct-load full-miss service
};

}  // namespace wecsim
