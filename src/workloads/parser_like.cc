// 197.parser analog: hash-dictionary probing with chained buckets.
//
// parser's dictionary lookups hash a word and walk a collision chain of
// heap-allocated nodes — short pointer chases with a compare-and-branch per
// node. Each parallel iteration looks one word up; the chain-walk branches
// mispredict at chain ends and the wrong path loads the next node (which a
// later lookup of a colliding word will need). Glue posts hit counts to the
// matched nodes; a final pass sweeps every bucket.
#include "workloads/workload.h"

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/expand.h"

namespace wecsim {

namespace {

constexpr const char* kSource = R"(
  .data
buckets:
  .space {NB_BYTES}       # dword node byte-offsets (0 = empty)
nodes:
  .space {NN_BYTES}       # 24B nodes: key@0 next@8 count@16; node 0 unused
words:
  .space {NW_BYTES}       # dword keys to look up
results:
  .space {NW_BYTES}       # matched node offset or 0
checksum:
  .dword 0

  .text
entry:
  li   r1, 0
  li   r3, {NW}
outer:
  addi r2, r1, {CHUNK}
  begin
  j    body

body:
  addi r5, r1, 1
  mv   r4, r1
  mv   r1, r5
  forksp body
  tsagd
  # computation: hash words[my], walk the bucket chain
  la   r6, words
  slli r7, r4, 3
  add  r6, r6, r7
  ld   r8, 0(r6)          # key
  li   r9, 2654435761
  mul  r10, r8, r9
  srli r10, r10, 16
  andi r10, r10, {NB_MASK}
  slli r10, r10, 3
  la   r11, buckets
  add  r11, r11, r10
  ld   r12, 0(r11)        # off
  la   r13, nodes
  li   r14, 0             # result
walk:
  beqz r12, done          # end of chain
  add  r15, r13, r12
  ld   r16, 0(r15)        # node key
  bne  r16, r8, miss
  mv   r14, r12           # found
  j    done
miss:
  ld   r12, 8(r15)        # next
  j    walk
done:
  la   r17, results
  add  r17, r17, r7
  sd   r14, 0(r17)
  # exit check
  addi r18, r4, 1
  bge  r18, r2, exitreg
  thend

exitreg:
  abort
  endpar
  # glue: post hit counts for this chunk, fold into the checksum
  la   r20, results
  subi r21, r2, {CHUNK}
  slli r22, r21, 3
  add  r20, r20, r22
  li   r23, 0
  la   r24, checksum
  ld   r25, 0(r24)
  la   r13, nodes
post:
  ld   r26, 0(r20)
  beqz r26, nohit
  add  r27, r13, r26
  ld   r28, 16(r27)
  addi r28, r28, 1
  sd   r28, 16(r27)
  addi r25, r25, 1
nohit:
  add  r25, r25, r26
  addi r20, r20, 8
  addi r23, r23, 1
  li   r29, {CHUNK}
  blt  r23, r29, post
  sd   r25, 0(r24)
  blt  r2, r3, outer

  # final sequential pass: walk a pseudo-random sample of the buckets'
  # chains summing counts (hash-order traversal, like the real dictionary)
  li   r23, 0
  la   r24, checksum
  ld   r25, 0(r24)
  la   r13, nodes
sweep:
  li   r29, 97
  mul  r11, r23, r29
  li   r29, {NB_MASK}
  and  r11, r11, r29
  slli r11, r11, 3
  la   r29, buckets
  add  r11, r11, r29
  ld   r12, 0(r11)
chain:
  beqz r12, chaindone
  add  r15, r13, r12
  ld   r16, 16(r15)
  add  r25, r25, r16
  ld   r12, 8(r15)
  j    chain
chaindone:
  addi r23, r23, 1
  li   r29, {NB8}
  blt  r23, r29, sweep
  sd   r25, 0(r24)
  halt
)";

}  // namespace

Workload make_parser_like(const WorkloadParams& params) {
  // Dictionary sized past the shared L2 so probes miss in steady state.
  const uint64_t nb = 2048 * params.scale;  // buckets (power of two)
  const uint64_t nn = 8192 * params.scale;  // nodes: ~768KB at scale 4, well
                                            // past the shared L2 like the
                                            // real dictionary heap
  const uint64_t nw = 160 * params.scale;   // lookups (iterations)
  const uint64_t chunk = 16;

  AsmParams asm_params = {
      {"NB", nb},           {"NB_MASK", nb - 1},
      {"NB8", nb / 32},
      {"NB_BYTES", nb * 8}, {"NN_BYTES", nn * 24},
      {"NW", nw},           {"NW_BYTES", nw * 8},
      {"CHUNK", chunk},
  };
  Workload w;
  w.name = "197.parser";
  w.description = "hash-dictionary probing with chained buckets";
  w.program = assemble(expand_asm(kSource, asm_params));
  w.checksum_addr = w.program.symbol("checksum");

  const Addr buckets = w.program.symbol("buckets");
  const Addr nodes = w.program.symbol("nodes");
  const Addr words = w.program.symbol("words");
  const uint64_t seed = params.seed;
  w.init = [=](FlatMemory& memory) {
    Rng rng(seed + 3);
    auto hash_of = [&](uint64_t key) {
      return ((key * 2654435761ull) >> 16) & (nb - 1);
    };
    // Insert nn-1 nodes (node 0 is the null sentinel) with shuffled keys.
    std::vector<uint64_t> keys;
    keys.reserve(nn);
    for (uint64_t n = 1; n < nn; ++n) {
      const uint64_t key = rng.below(1ull << 40) | 1;
      keys.push_back(key);
      const Addr node = nodes + n * 24;
      const uint64_t h = hash_of(key);
      const uint64_t head = memory.read_u64(buckets + h * 8);
      memory.write_u64(node + 0, key);
      memory.write_u64(node + 8, head);  // push front
      memory.write_u64(node + 16, 0);
      memory.write_u64(buckets + h * 8, node - nodes);
    }
    // 70% of lookups hit, 30% miss (absent keys are even).
    for (uint64_t i = 0; i < nw; ++i) {
      const uint64_t key = rng.chance(7, 10) ? keys[rng.below(keys.size())]
                                             : rng.below(1ull << 40) << 1;
      memory.write_u64(words + i * 8, key);
    }
  };
  return w;
}

}  // namespace wecsim
