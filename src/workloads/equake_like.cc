// 183.equake analog: FP sparse matrix-vector products with gathers.
//
// equake's time-stepping loop multiplies a sparse stiffness matrix by a
// displacement vector; the column gathers have poor locality. Each parallel
// iteration computes one row's dot product: NNZ (value, column) pairs, a
// data-dependent branch choosing between two gather vectors (its wrong path
// prefetches the other vector's entry), and an FP accumulate into y[row].
// Sequential glue accumulates a partial norm and relaxes a slice of x so
// later regions read updated data.
#include "workloads/workload.h"

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/expand.h"

namespace wecsim {

namespace {

constexpr const char* kSource = R"(
  .data
vals:
  .space {VALS_BYTES}     # NR*NNZ doubles
cols:
  .space {COLS_BYTES}     # NR*NNZ dword indices into x/xb
x:
  .space {X_BYTES}        # NX doubles
  .space 512              # offset xb by half a set-stride: partial aliasing
xb:
  .space {X_BYTES}
y:
  .space {Y_BYTES}        # NR doubles
checksum:
  .dword 0

  .text
entry:
  li   r1, 0              # I: next row
  li   r3, {NR}
outer:
  addi r2, r1, {CHUNK}
  begin
  j    body

body:
  addi r5, r1, 1
  mv   r4, r1             # my row
  mv   r1, r5
  forksp body
  tsagd
  # computation: y[my] = sum_k vals[my*NNZ+k] * gather(cols[my*NNZ+k])
  li   r6, {NNZ}
  mul  r7, r4, r6         # base entry index
  slli r8, r7, 3
  la   r9, vals
  add  r9, r9, r8
  la   r10, cols
  add  r10, r10, r8
  li   r11, 0             # k
  fli  f1, 0.0            # acc
dot:
  fld  f2, 0(r9)          # val
  ld   r12, 0(r10)        # col
  slli r13, r12, 3
  # both gather addresses are ready before the parity branch resolves; the
  # wrong arm's gather becomes an indirect prefetch under wrong-path
  # execution (paper Fig. 3)
  la   r15, xb
  add  r15, r15, r13
  la   r14, x
  add  r14, r14, r13
  andi r19, r12, 1
  beqz r19, evencol
  fld  f3, 0(r15)         # odd columns gather from the backup vector
  j    gathered
evencol:
  fld  f3, 0(r14)
gathered:
  fmul f4, f2, f3
  fadd f1, f1, f4
  addi r9, r9, 8
  addi r10, r10, 8
  addi r11, r11, 1
  blt  r11, r6, dot
  la   r16, y
  slli r17, r4, 3
  add  r16, r16, r17
  fsd  f1, 0(r16)
  # exit check
  addi r18, r4, 1
  bge  r18, r2, exitreg
  thend

exitreg:
  abort
  endpar
  # glue 1: partial norm of this chunk's y into the checksum
  la   r20, y
  subi r21, r2, {CHUNK}
  slli r22, r21, 3
  add  r20, r20, r22
  li   r23, 0
  la   r24, checksum
  fld  f5, 0(r24)
norm:
  fld  f6, 0(r20)
  fmul f7, f6, f6
  fadd f5, f5, f7
  addi r20, r20, 8
  addi r23, r23, 1
  li   r25, {CHUNK}
  blt  r23, r25, norm
  fsd  f5, 0(r24)
  # glue 2: relax a slice of x (so following regions read fresh data)
  la   r26, x
  add  r26, r26, r22
  li   r23, 0
  fli  f8, 0.96875
relax:
  fld  f6, 0(r26)
  fmul f6, f6, f8
  fsd  f6, 0(r26)
  addi r26, r26, 8
  addi r23, r23, 1
  li   r25, {CHUNK}
  blt  r23, r25, relax
  blt  r2, r3, outer

  # final sequential pass: fold x into the checksum
  la   r26, x
  li   r23, 0
  la   r24, checksum
  fld  f5, 0(r24)
xsum:
  fld  f6, 0(r26)
  fadd f5, f5, f6
  addi r26, r26, 16
  addi r23, r23, 2
  li   r25, {NX}
  blt  r23, r25, xsum
  fsd  f5, 0(r24)
  halt
)";

}  // namespace

Workload make_equake_like(const WorkloadParams& params) {
  const uint64_t nr = 128 * params.scale;  // rows (parallel iterations)
  const uint64_t nnz = 8;                  // nonzeros per row
  const uint64_t nx = 1024 * params.scale; // gather vector length
  const uint64_t chunk = 16;

  AsmParams asm_params = {
      {"NR", nr},
      {"NNZ", nnz},
      {"NX", nx},
      {"CHUNK", chunk},
      {"VALS_BYTES", nr * nnz * 8},
      {"COLS_BYTES", nr * nnz * 8},
      {"X_BYTES", nx * 8},
      {"Y_BYTES", nr * 8},
  };
  Workload w;
  w.name = "183.equake";
  w.description = "FP sparse matrix-vector products with gathers";
  w.program = assemble(expand_asm(kSource, asm_params));
  w.checksum_addr = w.program.symbol("checksum");

  const Addr vals = w.program.symbol("vals");
  const Addr cols = w.program.symbol("cols");
  const Addr x = w.program.symbol("x");
  const Addr xb = w.program.symbol("xb");
  const uint64_t seed = params.seed;
  w.init = [=](FlatMemory& memory) {
    Rng rng(seed + 1);
    for (uint64_t i = 0; i < nr * nnz; ++i) {
      memory.write_f64(vals + i * 8, 0.25 + rng.uniform());
      // Columns cluster loosely around the row (banded matrix with
      // scatter), so nearby rows touch nearby — but not identical — lines.
      const uint64_t row = i / nnz;
      const uint64_t band = (row * nx) / nr;
      const uint64_t col = (band + rng.below(96)) % nx;
      memory.write_u64(cols + i * 8, col);
    }
    for (uint64_t i = 0; i < nx; ++i) {
      memory.write_f64(x + i * 8, rng.uniform() * 2.0 - 1.0);
      memory.write_f64(xb + i * 8, rng.uniform() * 2.0 - 1.0);
    }
  };
  return w;
}

}  // namespace wecsim
