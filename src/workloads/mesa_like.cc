// 177.mesa analog: FP span interpolation with large-stride framebuffer
// accesses.
//
// mesa's software rasterizer walks spans of the framebuffer interpolating
// colors; walking a *column* of a row-major framebuffer strides by the row
// pitch, and with an 8KB pitch every element of a span maps to the same
// direct-mapped L1 set. The resulting conflict storm is exactly the
// pathology victim caching fixes, which is why the paper's mesa shows the
// suite's largest miss-count reduction (73%) under the WEC. Each parallel
// iteration blends one 16-pixel column span (read-modify-write, so wrong
// threads' reads prefetch the next region's column into the WEC) against a
// gathered texture.
#include "workloads/workload.h"

#include <algorithm>

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/expand.h"

namespace wecsim {

namespace {

constexpr const char* kSource = R"(
  .data
fb:
  .space {FB_BYTES}       # ROWS x PITCH doubles, row-major
bg:
  .space {FB_BYTES}       # background layer (the span's marching loads)
palette:
  .space {PAL_BYTES}      # 8KB: palette[s] maps to the same L1 set as every
                          # bg[k][s] of span s — the span's repeated palette
                          # reads thrash against the marching bg fills in a
                          # direct-mapped cache (canonical victim-cache case)
shade:
  .space {PAL_BYTES}      # second per-span state line, same conflict set
tex:
  .space {TEX_BYTES}      # NT doubles
checksum:
  .dword 0

  .text
entry:
  li   r1, 0              # I: next span (column index)
  li   r3, {NS}
outer:
  addi r2, r1, {CHUNK}
  begin
  j    body

body:
  addi r5, r1, 1
  mv   r4, r1
  mv   r1, r5
  forksp body
  tsagd
  # computation: compose column my across ROWS rows; the span's palette and
  # shade state lines live in the same L1 set as its bg column, so every
  # pixel refetches state the previous bg fill just evicted
  la   r6, fb
  la   r14, bg
  la   r15, palette
  la   r16, shade
  slli r7, r4, 3
  add  r6, r6, r7         # &fb[0][my]
  add  r14, r14, r7       # &bg[0][my]
  add  r15, r15, r7       # &palette[my]
  add  r16, r16, r7       # &shade[my]
  li   r8, 0              # k (row)
  fli  f1, 0.125          # color step
  fli  f2, 0.0            # c
blend:
  # texture gather: tex[(my*7 + k*13) mod NT]
  li   r9, 7
  mul  r10, r4, r9
  li   r9, 13
  mul  r11, r8, r9
  add  r10, r10, r11
  andi r10, r10, {NT_MASK}
  slli r10, r10, 3
  la   r11, tex
  add  r11, r11, r10
  fld  f3, 0(r11)
  fadd f2, f2, f1         # c += step
  fld  f4, 0(r14)         # bg pixel (marches through the conflict set)
  fld  f5, 0(r15)         # palette state (same set: evicted every pixel)
  fld  f6, 0(r16)         # shade state (same set again)
  fmul f4, f4, f5
  fmul f5, f3, f2
  fmul f5, f5, f6
  fadd f4, f4, f5
  fsd  f4, 0(r6)          # fb pixel (buffered until write-back)
  addi r6, r6, {PITCH_BYTES}
  addi r14, r14, {PITCH_BYTES}
  addi r8, r8, 1
  li   r12, {ROWS}
  blt  r8, r12, blend
  # exit check
  addi r13, r4, 1
  bge  r13, r2, exitreg
  thend

exitreg:
  abort
  endpar
  # glue: read back the chunk's first fb and bg columns (the data wrong
  # threads of the previous region prefetched lives one chunk ahead)
  la   r6, fb
  la   r14, bg
  subi r20, r2, {CHUNK}
  slli r21, r20, 3
  add  r6, r6, r21
  add  r14, r14, r21
  li   r8, 0
  la   r24, checksum
  fld  f6, 0(r24)
readback:
  fld  f7, 0(r6)
  fld  f8, 0(r14)
  fadd f7, f7, f8
  fadd f6, f6, f7
  addi r6, r6, {PITCH_BYTES}
  addi r14, r14, {PITCH_BYTES}
  addi r8, r8, 1
  li   r12, {ROWS}
  blt  r8, r12, readback
  fsd  f6, 0(r24)
  blt  r2, r3, outer

  # final sequential pass: stream one full row into the checksum
  la   r6, fb
  li   r8, 0
  la   r24, checksum
  fld  f6, 0(r24)
rowsum:
  fld  f7, 0(r6)
  fadd f6, f6, f7
  addi r6, r6, 16
  addi r8, r8, 2
  li   r12, {PITCH}
  blt  r8, r12, rowsum
  fsd  f6, 0(r24)
  halt
)";

}  // namespace

Workload make_mesa_like(const WorkloadParams& params) {
  const uint64_t rows = 16;                 // span height
  const uint64_t pitch = 1024;              // doubles per row: 8KB stride —
                                            // one L1 set per whole column
  const uint64_t ns = std::min<uint64_t>(96 * params.scale, pitch - 16);
  uint64_t nt = 256;                        // texture entries (power of two)
  while (nt < 256 * params.scale) nt *= 2;

  AsmParams asm_params = {
      {"FB_BYTES", rows * pitch * 8},
      {"PAL_BYTES", pitch * 8},
      {"TEX_BYTES", nt * 8},
      {"NT_MASK", nt - 1},
      {"NS", ns},
      {"CHUNK", 12},
      {"ROWS", rows},
      {"PITCH", pitch},
      {"PITCH_BYTES", pitch * 8},
  };
  Workload w;
  w.name = "177.mesa";
  w.description = "FP span interpolation with strided framebuffer access";
  w.program = assemble(expand_asm(kSource, asm_params));
  w.checksum_addr = w.program.symbol("checksum");

  const Addr fb = w.program.symbol("fb");
  const Addr bg = w.program.symbol("bg");
  const Addr palette = w.program.symbol("palette");
  const Addr shade = w.program.symbol("shade");
  const Addr tex = w.program.symbol("tex");
  const uint64_t seed = params.seed;
  w.init = [=](FlatMemory& memory) {
    Rng rng(seed + 5);
    for (uint64_t r = 0; r < rows; ++r) {
      for (uint64_t c = 0; c < pitch; c += 4) {
        memory.write_f64(fb + (r * pitch + c) * 8, rng.uniform());
        memory.write_f64(bg + (r * pitch + c) * 8, rng.uniform());
      }
    }
    for (uint64_t c = 0; c < pitch; ++c) {
      memory.write_f64(palette + c * 8, 0.5 + rng.uniform());
      memory.write_f64(shade + c * 8, 0.75 + rng.uniform() * 0.5);
    }
    for (uint64_t i = 0; i < nt; ++i) {
      memory.write_f64(tex + i * 8, rng.uniform() * 4.0 - 2.0);
    }
  };
  return w;
}

}  // namespace wecsim
