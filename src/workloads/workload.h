// Synthetic SPEC2000-analog workloads.
//
// The paper evaluates six manually parallelized SPEC2000 programs (175.vpr,
// 164.gzip, 181.mcf, 197.parser, 183.equake, 177.mesa) with MinneSPEC
// reduced inputs. SPEC sources and the PISA toolchain are unavailable, so
// each workload here is a kernel written in the wecsim ISA that models the
// dominant parallelized loops of its namesake:
//
//   vpr_like    — placement-swap evaluation over a netlist: short, branchy
//                 iterations with a serializing cost recurrence (more ILP
//                 than TLP; superthreading overhead dominates)
//   gzip_like   — LZ77-style sliding-window match search: independent,
//                 byte-granular iterations (high TLP)
//   mcf_like    — pointer chasing over shuffled arc lists (cache-miss bound)
//   parser_like — hash-dictionary probing with chained buckets
//   equake_like — FP sparse matrix-vector products with gathers
//   mesa_like   — FP span interpolation with large-stride framebuffer
//                 accesses (severe direct-mapped conflict misses)
//
// Every workload follows the superthreaded code discipline:
//   * parallel regions are chunked: region r processes elements
//     [r*chunk, (r+1)*chunk); sequential glue runs between regions and the
//     next region continues where the previous stopped, so wrong threads
//     running past a region's end prefetch exactly the data the following
//     region (or the glue) needs;
//   * every thread body: fork first, then TSADDR*/TSAGD, then computation
//     loads/stores, then the exit check (abort/endpar vs. thend);
//   * cross-thread data flows only through target stores;
//   * a checksum accumulates in memory for differential validation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "isa/program.h"
#include "mem/flat_memory.h"

namespace wecsim {

/// Size scaling. scale=1 is the default "MinneSPEC-like" reduced size used
/// by the benches; tests use smaller, quicker sizes.
struct WorkloadParams {
  uint32_t scale = 4;    // multiplies working-set size and iteration counts
  uint64_t seed = 42;    // deterministic data initialization
};

struct Workload {
  std::string name;         // paper benchmark it stands in for ("181.mcf")
  std::string description;
  Program program;
  std::function<void(FlatMemory&)> init;  // writes input data into memory
  Addr checksum_addr = 0;   // 8-byte checksum the program leaves in memory
};

/// The six benchmarks in the paper's presentation order.
const std::vector<std::string>& workload_names();

/// Build a workload by paper name ("175.vpr", ... or the short "vpr", ...).
Workload make_workload(const std::string& name,
                       const WorkloadParams& params = {});

// Individual factories.
Workload make_vpr_like(const WorkloadParams& params = {});
Workload make_gzip_like(const WorkloadParams& params = {});
Workload make_mcf_like(const WorkloadParams& params = {});
Workload make_parser_like(const WorkloadParams& params = {});
Workload make_equake_like(const WorkloadParams& params = {});
Workload make_mesa_like(const WorkloadParams& params = {});

}  // namespace wecsim
