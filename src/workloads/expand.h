// Tiny template expansion for workload assembly sources: "{NAME}" tokens are
// replaced by decimal values computed in C++ (the assembler's expression
// language is deliberately minimal, so sizes are resolved here).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace wecsim {

using AsmParams = std::map<std::string, uint64_t, std::less<>>;

/// Replace every "{KEY}" in templ with the decimal value of params[KEY].
/// Throws SimError on unknown keys or unbalanced braces.
std::string expand_asm(std::string_view templ, const AsmParams& params);

}  // namespace wecsim
