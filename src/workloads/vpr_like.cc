// 175.vpr analog: placement-swap cost evaluation over a netlist.
//
// vpr's placer evaluates bounding-box wirelength deltas for candidate moves:
// short, branchy computations (absolute differences) over randomly indexed
// cell positions, with the running placement cost as a serial recurrence.
// That recurrence is carried here through a target store, so iterations
// serialize through the ring — the paper observes exactly this shape for
// vpr: more instruction-level than thread-level parallelism, and a net
// slowdown under superthreading once fork overhead outweighs overlap. Each
// iteration evaluates four nets (unrolled) to give a wide core ILP to chew
// on.
#include "workloads/workload.h"

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/expand.h"

namespace wecsim {

namespace {

// One net evaluation: cells a=nets[base], b=nets[base+8];
// acc += |x_a - x_b| + |y_a - y_b|. Expanded four times per iteration.
constexpr const char* kNetEval = R"(
  ld   r12, {OFF0}(r10)   # cell a index
  ld   r13, {OFF8}(r10)   # cell b index
  slli r12, r12, 4
  slli r13, r13, 4
  add  r14, r11, r12
  add  r15, r11, r13
  ld   r16, 0(r14)        # x_a
  ld   r17, 0(r15)        # x_b
  sub  r18, r16, r17
  bge  r18, r0, xpos{ID}
  sub  r18, r0, r18
xpos{ID}:
  ld   r16, 8(r14)        # y_a
  ld   r17, 8(r15)        # y_b
  sub  r19, r16, r17
  bge  r19, r0, ypos{ID}
  sub  r19, r0, r19
ypos{ID}:
  add  r9, r9, r18
  add  r9, r9, r19
)";

constexpr const char* kSource = R"(
  .data
cells:
  .space {CELLS_BYTES}    # 16B records: x@0 y@8
nets:
  .space {NETS_BYTES}     # pairs of dword cell indices (16B per net)
total:
  .dword 0                # running placement cost (target store)
checksum:
  .dword 0

  .text
entry:
  li   r1, 0
  li   r3, {NI}
outer:
  addi r2, r1, {CHUNK}
  begin
  j    body

body:
  addi r5, r1, 1
  mv   r4, r1
  mv   r1, r5
  forksp body
  # TSAG: this thread updates the running total
  la   r6, total
  tsaddr r6, 0
  tsagd
  # computation: evaluate 4 nets (indices my*4 .. my*4+3)
  slli r7, r4, 6          # my * 4 nets * 16 bytes
  li   r8, {NETS_WRAP}
  and  r7, r7, r8         # nets are revisited (annealing passes)
  la   r10, nets
  add  r10, r10, r7
  la   r11, cells
  li   r9, 0              # acc
{NET0}
{NET1}
{NET2}
{NET3}
  ld   r20, 0(r6)         # running total (waits on upstream target store)
  add  r20, r20, r9
  sd   r20, 0(r6)         # forwarded downstream
  # exit check
  addi r21, r4, 1
  bge  r21, r2, exitreg
  thend

exitreg:
  abort
  endpar
  # glue: fold the running total into the checksum
  la   r24, checksum
  ld   r25, 0(r24)
  ld   r26, 0(r6)
  add  r25, r25, r26
  sd   r25, 0(r24)
  blt  r2, r3, outer

  # final sequential pass: recheck nets in pseudo-random order
  li   r23, 0
  la   r24, checksum
  ld   r25, 0(r24)
recheck:
  li   r28, 193
  mul  r29, r23, r28
  li   r28, {NNETS_MASK}
  and  r29, r29, r28
  slli r29, r29, 4
  la   r10, nets
  add  r10, r10, r29
  ld   r12, 0(r10)
  ld   r13, 8(r10)
  slli r12, r12, 4
  slli r13, r13, 4
  la   r11, cells
  add  r14, r11, r12
  add  r15, r11, r13
  ld   r16, 0(r14)
  ld   r17, 0(r15)
  sub  r18, r16, r17
  bge  r18, r0, fpos
  sub  r18, r0, r18
fpos:
  add  r25, r25, r18
  addi r23, r23, 1
  li   r27, {NNETS4}
  blt  r23, r27, recheck
  sd   r25, 0(r24)
  halt
)";

std::string net_eval(int id, uint64_t offset) {
  return expand_asm(kNetEval, {{"OFF0", offset},
                               {"OFF8", offset + 8},
                               {"ID", static_cast<uint64_t>(id)}});
}

}  // namespace

Workload make_vpr_like(const WorkloadParams& params) {
  const uint64_t nc = 64 * params.scale;   // cells (4KB at scale 4: hot)
  const uint64_t ni = 256 * params.scale;  // iterations (4 nets each)
  const uint64_t nnets = 256;              // fixed 4KB netlist (L1-hot)
  const uint64_t chunk = 16;

  // The four unrolled net evaluations are generated, then spliced into the
  // main template (expand_asm only substitutes numbers, so the generated
  // blocks are inserted by string replacement on unique markers).
  std::string source = expand_asm(
      kSource,
      {{"CELLS_BYTES", nc * 16},
       {"NETS_BYTES", nnets * 16},
       {"NI", ni},
       {"CHUNK", chunk},
       {"NNETS_MASK", nnets - 1},
       {"NNETS4", nnets / 4},
       {"NETS_WRAP", nnets * 16 - 1},
       {"NET0", 0},  // placeholder markers, replaced below
       {"NET1", 1},
       {"NET2", 2},
       {"NET3", 3}});
  // expand_asm replaced {NETn} with "n"; swap those single digits (each on
  // its own line) for the evaluation blocks.
  for (int i = 0; i < 4; ++i) {
    const std::string marker = "\n" + std::to_string(i) + "\n";
    const size_t at = source.find(marker);
    source = source.substr(0, at) + "\n" + net_eval(i, i * 16) +
             source.substr(at + marker.size() - 1);
  }

  Workload w;
  w.name = "175.vpr";
  w.description = "placement-swap evaluation with a serial cost recurrence";
  w.program = assemble(source);
  w.checksum_addr = w.program.symbol("checksum");

  const Addr cells = w.program.symbol("cells");
  const Addr nets = w.program.symbol("nets");
  const uint64_t seed = params.seed;
  w.init = [=](FlatMemory& memory) {
    Rng rng(seed + 4);
    for (uint64_t i = 0; i < nc; ++i) {
      memory.write_u64(cells + i * 16 + 0, rng.below(4096));
      memory.write_u64(cells + i * 16 + 8, rng.below(4096));
    }
    for (uint64_t i = 0; i < nnets; ++i) {
      memory.write_u64(nets + i * 16 + 0, rng.below(nc));
      memory.write_u64(nets + i * 16 + 8, rng.below(nc));
    }
  };
  return w;
}

}  // namespace wecsim
