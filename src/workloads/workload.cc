#include "workloads/workload.h"

#include "common/error.h"

namespace wecsim {

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "175.vpr",    "164.gzip",   "181.mcf",
      "197.parser", "183.equake", "177.mesa",
  };
  return names;
}

Workload make_workload(const std::string& name, const WorkloadParams& params) {
  if (name == "175.vpr" || name == "vpr") return make_vpr_like(params);
  if (name == "164.gzip" || name == "gzip") return make_gzip_like(params);
  if (name == "181.mcf" || name == "mcf") return make_mcf_like(params);
  if (name == "197.parser" || name == "parser")
    return make_parser_like(params);
  if (name == "183.equake" || name == "equake")
    return make_equake_like(params);
  if (name == "177.mesa" || name == "mesa") return make_mesa_like(params);
  throw SimError("unknown workload: " + name);
}

}  // namespace wecsim
