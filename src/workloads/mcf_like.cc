// 181.mcf analog: pointer chasing over shuffled arc lists.
//
// mcf's dominant loops walk linked arc/node structures whose layout defeats
// spatial locality, making it the most cache-miss-bound program in the
// paper's suite (and the one with the largest WEC gain, 18.5%). This kernel
// reproduces that shape: each parallel iteration chases a K-deep chain of
// 32-byte arc records laid out in shuffled order, with a data-dependent
// branch per step selecting between two side tables (its wrong path loads
// the table entry later iterations need). Sequential glue re-walks chains
// to post updates, and a final sequential pass streams over the arc array.
#include "workloads/workload.h"

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/expand.h"

namespace wecsim {

namespace {

constexpr const char* kSource = R"(
  .data
arcs:
  .space {ARCS_BYTES}     # {NA} records of 32B: cost@0 next@8 aux@16 pad@24
heads:
  .space {HEADS_BYTES}    # {NH} chain-head byte offsets into arcs
results:
  .space {HEADS_BYTES}
penalty:
  .space 2048             # 256 dwords
bonus:
  .space 2048
checksum:
  .dword 0

  .text
entry:
  li   r1, 0              # I: next iteration index
  li   r3, {NH}           # total iterations
outer:
  addi r2, r1, {CHUNK}    # L: this region's limit
  begin
  j    body

body:
  # continuation: claim my index, fork the next iteration
  addi r5, r1, 1
  mv   r4, r1             # my = I
  mv   r1, r5
  forksp body
  # TSAG: no cross-iteration target stores in this kernel
  tsagd
  # computation: chase the chain at heads[my], K steps
  la   r6, heads
  slli r7, r4, 3
  add  r6, r6, r7
  ld   r8, 0(r6)          # off
  la   r9, arcs
  li   r10, 0             # acc
  li   r11, 0             # k
chase:
  add  r12, r9, r8
  ld   r13, 0(r12)        # cost
  add  r10, r10, r13
  andi r14, r13, 255
  slli r14, r14, 3
  # both table addresses are computed before the branch (scheduled code),
  # so the wrong arm's load is address-ready when the branch resolves and
  # wp-mode machines issue it as an indirect prefetch (paper Fig. 3)
  la   r16, penalty
  add  r16, r16, r14
  la   r21, bonus
  add  r21, r21, r14
  andi r15, r13, 1
  beqz r15, even
  ld   r17, 0(r16)        # odd costs pay a penalty...
  add  r10, r10, r17
  j    chased
even:
  ld   r17, 0(r21)        # ...even costs earn a bonus
  sub  r10, r10, r17
chased:
  ld   r8, 8(r12)         # off = next
  addi r11, r11, 1
  li   r18, {K}
  blt  r11, r18, chase
  la   r19, results
  add  r19, r19, r7
  sd   r10, 0(r19)
  # exit check
  addi r20, r4, 1
  bge  r20, r2, exitreg
  thend

exitreg:
  abort
  endpar
  # glue 1: fold this chunk's results into the checksum
  la   r21, results
  subi r22, r2, {CHUNK}
  slli r23, r22, 3
  add  r21, r21, r23
  li   r24, 0
  la   r25, checksum
  ld   r26, 0(r25)
glue1:
  ld   r27, 0(r21)
  add  r26, r26, r27
  addi r21, r21, 8
  addi r24, r24, 1
  li   r28, {CHUNK}
  blt  r24, r28, glue1
  sd   r26, 0(r25)
  # glue 2: re-walk the chunk's first chain posting aux updates
  la   r6, heads
  add  r6, r6, r23
  ld   r8, 0(r6)
  la   r9, arcs
  li   r11, 0
glue2:
  add  r12, r9, r8
  ld   r13, 0(r12)
  ld   r29, 16(r12)
  add  r29, r29, r13
  sd   r29, 16(r12)
  ld   r8, 8(r12)
  addi r11, r11, 1
  li   r18, {K2}
  blt  r11, r18, glue2
  blt  r2, r3, outer

  # final sequential pass: fold aux fields into the checksum, visiting
  # records in multiplicative order (block-random, like mcf's arc scans)
  li   r11, 0
  la   r25, checksum
  ld   r26, 0(r25)
final:
  li   r18, 181
  mul  r9, r11, r18
  li   r18, {NA_MASK}
  and  r9, r9, r18
  slli r9, r9, 5
  la   r18, arcs
  add  r9, r9, r18
  ld   r13, 16(r9)
  add  r26, r26, r13
  addi r11, r11, 1
  li   r18, {NA3}
  blt  r11, r18, final
  sd   r26, 0(r25)
  halt
)";

}  // namespace

Workload make_mcf_like(const WorkloadParams& params) {
  // The arc array deliberately exceeds the 512KB shared L2 (like mcf's
  // multi-megabyte arc lists), so chases keep missing to memory in steady
  // state instead of running from a once-warmed L2.
  const uint64_t na = 8192 * params.scale;   // arc records (32B each)
  const uint64_t nh = 192 * params.scale;    // iterations (chains)
  const uint64_t chunk = 12;
  const uint64_t k = 6;

  AsmParams asm_params = {
      {"NA", na},          {"NH", nh},
      {"NA_MASK", na - 1}, {"NA3", na / 16},
      {"ARCS_BYTES", na * 32}, {"HEADS_BYTES", nh * 8},
      {"CHUNK", chunk},    {"K", k},
      {"K2", 2 * k},
  };
  Workload w;
  w.name = "181.mcf";
  w.description = "pointer chasing over shuffled arc lists";
  w.program = assemble(expand_asm(kSource, asm_params));
  w.checksum_addr = w.program.symbol("checksum");

  const Addr arcs = w.program.symbol("arcs");
  const Addr heads = w.program.symbol("heads");
  const Addr penalty = w.program.symbol("penalty");
  const Addr bonus = w.program.symbol("bonus");
  const uint64_t seed = params.seed;
  w.init = [=](FlatMemory& memory) {
    Rng rng(seed);
    // Shuffled ring: record i links to a pseudo-random successor; the walk
    // has no spatial locality, like mcf's arc lists.
    std::vector<uint64_t> order(na);
    for (uint64_t i = 0; i < na; ++i) order[i] = i;
    for (uint64_t i = na - 1; i > 0; --i) {
      std::swap(order[i], order[rng.below(i + 1)]);
    }
    for (uint64_t i = 0; i < na; ++i) {
      const Addr rec = arcs + order[i] * 32;
      const uint64_t next = order[(i + 1) % na];
      memory.write_u64(rec + 0, rng.below(10'000));  // cost
      memory.write_u64(rec + 8, next * 32);          // next byte offset
      memory.write_u64(rec + 16, 0);                 // aux
    }
    // Chain heads march forward through the shuffled order so that wrong
    // threads chasing iteration L+1's chain prefetch the next region's data.
    for (uint64_t i = 0; i < nh; ++i) {
      memory.write_u64(heads + i * 8, order[(i * 37) % na] * 32);
    }
    for (uint64_t i = 0; i < 256; ++i) {
      memory.write_u64(penalty + i * 8, rng.below(100));
      memory.write_u64(bonus + i * 8, rng.below(100));
    }
  };
  return w;
}

}  // namespace wecsim
