#include "workloads/expand.h"

#include "common/error.h"

namespace wecsim {

std::string expand_asm(std::string_view templ, const AsmParams& params) {
  std::string out;
  out.reserve(templ.size());
  size_t pos = 0;
  while (pos < templ.size()) {
    const size_t open = templ.find('{', pos);
    if (open == std::string_view::npos) {
      out.append(templ.substr(pos));
      break;
    }
    out.append(templ.substr(pos, open - pos));
    const size_t close = templ.find('}', open);
    if (close == std::string_view::npos) {
      throw SimError("expand_asm: unbalanced '{' in template");
    }
    const std::string_view key = templ.substr(open + 1, close - open - 1);
    auto it = params.find(key);
    if (it == params.end()) {
      throw SimError("expand_asm: unknown parameter {" + std::string(key) +
                     "}");
    }
    out.append(std::to_string(it->second));
    pos = close + 1;
  }
  return out;
}

}  // namespace wecsim
