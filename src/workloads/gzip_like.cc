// 164.gzip analog: LZ77-style sliding-window match search.
//
// gzip's deflate loop compares the string at the current position against a
// candidate at some earlier distance, byte by byte, exiting on the first
// mismatch — a data-dependent loop branch that mispredicts at every match
// end. Iterations are independent (match positions march forward through
// the window), which gives this workload the suite's highest thread-level
// parallelism, as the paper observes for gzip (14x at 16 TUs).
#include "workloads/workload.h"

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/expand.h"

namespace wecsim {

namespace {

constexpr const char* kSource = R"(
  .data
window:
  .space {W_BYTES}
positions:
  .space {NP_BYTES}       # dword byte positions into window
dists:
  .space {NP_BYTES}       # dword match distances
results:
  .space {NP_BYTES}
histo:
  .space 264              # 33 dword buckets (match lengths 0..32)
checksum:
  .dword 0

  .text
entry:
  li   r1, 0              # I
  li   r3, {NP}
outer:
  addi r2, r1, {CHUNK}
  begin
  j    body

body:
  addi r5, r1, 1
  mv   r4, r1
  mv   r1, r5
  forksp body
  tsagd
  # computation: match length at positions[my] against distance dists[my]
  la   r6, positions
  slli r7, r4, 3
  add  r6, r6, r7
  ld   r8, 0(r6)          # p
  la   r9, dists
  add  r9, r9, r7
  ld   r10, 0(r9)         # d
  la   r11, window
  add  r12, r11, r8       # cur = window + p
  sub  r13, r12, r10      # cand = cur - d
  li   r14, 0             # len
match:
  lbu  r15, 0(r12)
  lbu  r16, 0(r13)
  bne  r15, r16, matched  # data-dependent exit: mispredicts at match end
  addi r12, r12, 1
  addi r13, r13, 1
  addi r14, r14, 1
  li   r17, {MAXLEN}
  blt  r14, r17, match
matched:
  la   r18, results
  add  r18, r18, r7
  sd   r14, 0(r18)
  # exit check
  addi r19, r4, 1
  bge  r19, r2, exitreg
  thend

exitreg:
  abort
  endpar
  # glue 1: histogram this chunk's match lengths, fold into checksum
  la   r20, results
  subi r21, r2, {CHUNK}
  slli r22, r21, 3
  add  r20, r20, r22
  li   r23, 0
  la   r24, checksum
  ld   r25, 0(r24)
hist:
  ld   r26, 0(r20)        # len
  slli r27, r26, 3
  la   r28, histo
  add  r28, r28, r27
  ld   r29, 0(r28)
  addi r29, r29, 1
  sd   r29, 0(r28)
  add  r25, r25, r26
  addi r20, r20, 8
  addi r23, r23, 1
  li   r27, {CHUNK}
  blt  r23, r27, hist
  sd   r25, 0(r24)
  blt  r2, r3, outer

  # final sequential pass: rolling byte checksum over a window prefix
  la   r11, window
  li   r23, 0
  la   r24, checksum
  ld   r25, 0(r24)
crc:
  lbu  r15, 0(r11)
  slli r26, r25, 1
  add  r25, r26, r15
  addi r11, r11, 4
  addi r23, r23, 4
  li   r27, {CRCLEN}
  blt  r23, r27, crc
  sd   r25, 0(r24)
  halt
)";

}  // namespace

Workload make_gzip_like(const WorkloadParams& params) {
  const uint64_t wb = 16 * 1024 * params.scale;  // window bytes
  const uint64_t np = 128 * params.scale;        // match probes (iterations)
  const uint64_t chunk = 16;
  const uint64_t maxlen = 32;

  AsmParams asm_params = {
      {"W_BYTES", wb},   {"NP", np},       {"NP_BYTES", np * 8},
      {"CHUNK", chunk},  {"MAXLEN", maxlen},
      {"CRCLEN", wb / 2},
  };
  Workload w;
  w.name = "164.gzip";
  w.description = "LZ77 sliding-window match search";
  w.program = assemble(expand_asm(kSource, asm_params));
  w.checksum_addr = w.program.symbol("checksum");

  const Addr window = w.program.symbol("window");
  const Addr positions = w.program.symbol("positions");
  const Addr dists = w.program.symbol("dists");
  const uint64_t seed = params.seed;
  w.init = [=](FlatMemory& memory) {
    Rng rng(seed + 2);
    // Text with repeated phrases so matches have a realistic length mix.
    const uint64_t phrase = 61;
    for (uint64_t i = 0; i < wb; ++i) {
      uint8_t byte = static_cast<uint8_t>('a' + (i % phrase) % 23);
      if (rng.chance(1, 7)) byte = static_cast<uint8_t>(rng.below(256));
      memory.write_u8(window + i, byte);
    }
    // Probe positions march forward; distances often phrase multiples so
    // matches frequently run several bytes.
    const uint64_t start = 4096;
    const uint64_t step = (wb - start - maxlen - 8) / np;
    for (uint64_t i = 0; i < np; ++i) {
      memory.write_u64(positions + i * 8, start + i * step);
      uint64_t d;
      if (rng.chance(1, 4)) {
        d = 8192 * (1 + rng.below(2)) + rng.below(32);  // same-set candidate
      } else if (rng.chance(2, 3)) {
        d = phrase * (1 + rng.below(8));                // real match
      } else {
        d = 1 + rng.below(2048);
      }
      memory.write_u64(dists + i * 8, d);
    }
  };
  return w;
}

}  // namespace wecsim
