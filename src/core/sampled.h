// SimPoint-style sampled simulation: alternate functional fast-forward (the
// ISA interpreter, which the lockstep checker proves architecturally
// equivalent to the timing machine) with detailed warmup + measurement
// windows on the full OoO+STA processor, then extrapolate whole-program
// cycles and IPC from the measured windows.
//
// State carried across the functional/detailed boundary:
//   * registers + PC       — reseeded exactly from the interpreter snapshot;
//   * memory               — the detailed machine's FlatMemory is re-cloned
//                            from the master image at every window entry;
//   * branch predictors and cache tags — deliberately NOT reset between
//     windows (one persistent StaProcessor serves every window), so the
//     microarchitectural warm state accumulated by earlier windows survives,
//     and each window's warmup phase corrects the working set before
//     measurement starts.
//
// Windows may only start at interpreter safe points (outside parallel
// regions, no pending forked threads — Interpreter::at_safe_point), where
// (pc, registers, memory) fully describe the architectural state.
//
// Results are estimates with confidence intervals, not bit-exact cycle
// counts: sampled runs bypass the result cache and emit a run-report variant
// with per-window measurements (see harness/report.h RunRecord::sampling and
// docs/PERFORMANCE.md "Sampled simulation").
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "func/interpreter.h"
#include "isa/program.h"
#include "mem/flat_memory.h"
#include "sta/sta_config.h"

namespace wecsim {

class StaProcessor;

/// One detailed window's measurements. Commit counts are architectural
/// (correct-path, aborted iterations netted out — see
/// OooCore::set_arch_commit_sink) unless suffixed _all.
struct SampleWindow {
  uint64_t start_instr = 0;   // dynamic instruction index at window entry
  Cycle warmup_cycles = 0;
  int64_t warmup_commits = 0;
  Cycle measure_cycles = 0;
  int64_t measure_commits = 0;      // extrapolation basis
  uint64_t measure_commits_all = 0;  // incl. wrong-execution commits
  Cycle measure_parallel_cycles = 0;  // region-open subset of measure_cycles
};

struct SampledResult {
  bool halted = false;        // program ran to HALT within max_cycles
  uint64_t func_instrs = 0;   // N: whole-program dynamic instruction count
  Cycle detailed_cycles = 0;  // detailed cycles spent (warmup + measure)
  uint64_t extrapolated_cycles = 0;     // llround(N * cpi)
  uint64_t extrapolated_committed = 0;  // llround(N * all/arch ratio)
  uint64_t extrapolated_parallel_cycles = 0;  // extrapolated_cycles scaled by
                                              // the measured parallel fraction
  double cpi = 0.0;      // pooled measure_cycles / measure_commits
  double ipc = 0.0;      // architectural IPC, 1/cpi: useful (correct-path)
                         // instructions per cycle. The comparable full-run
                         // quantity is func_instrs / cycles — NOT the run
                         // report's committed/cycles, whose committed also
                         // counts wrong-execution commits
  double ci95_pct = 0.0;  // 95% CI half-width of the per-window CPI, as a
                          // percent of the mean; 0 when fewer than 2 windows
  FuncResult func;        // the master interpreter's whole-program accounting
  std::vector<SampleWindow> windows;
};

class SampledSimulator {
 public:
  /// Validates the configuration up front (same contract as Simulator).
  /// Honours the lenient WECSIM_SKIP override for the detailed windows.
  SampledSimulator(const Program& program, const StaConfig& config);
  ~SampledSimulator();

  SampledSimulator(const SampledSimulator&) = delete;
  SampledSimulator& operator=(const SampledSimulator&) = delete;

  /// The master architectural memory. Workloads write their input data here
  /// before run(), exactly like Simulator::memory().
  FlatMemory& memory() { return memory_; }

  /// Invoked once per completed measurement window (live progress ticks).
  void set_window_hook(std::function<void()> hook) {
    window_hook_ = std::move(hook);
  }

  /// Cycles the detailed machine's event-driven skip fast-forwarded inside
  /// windows (telemetry; 0 before run or with WECSIM_SKIP=0).
  uint64_t skipped_cycles() const;

  /// Run the whole program once. Throws SimError when the functional
  /// pre-pass does not halt or no usable measurement window was produced;
  /// returns halted=false when max_cycles expired inside a window.
  SampledResult run();

 private:
  struct Plan {
    uint64_t warmup = 0;
    uint64_t measure = 0;
    uint64_t ff = 0;
    bool exact = false;  // single window measuring the entire program
  };
  Plan plan_for(const FuncResult& probe) const;

  const Program& program_;
  StaConfig config_;
  FlatMemory memory_;      // master architectural image (interpreter-owned)
  FlatMemory window_mem_;  // detailed machine's image, re-cloned per window
  StatsRegistry stats_;    // detailed machine stats (cumulative; not reported)
  std::unique_ptr<StaProcessor> proc_;
  std::function<void()> window_hook_;
  bool ran_ = false;
};

}  // namespace wecsim
