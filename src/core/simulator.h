// Top-level public API: assemble (or build) a program, pick a paper
// configuration, run, and read back the measurements the paper reports.
//
//   Program program = assemble(source);
//   Simulator sim(program, make_paper_config(PaperConfig::kWthWpWec));
//   init_my_data(sim.memory());
//   SimResult result = sim.run();
//   std::cout << result.cycles << " cycles\n";
#pragma once

#include <array>
#include <memory>
#include <string>

#include "common/stats.h"
#include "core/sim_config.h"
#include "fault/fault.h"
#include "fault/lockstep.h"
#include "mem/flat_memory.h"
#include "mem/side_cache.h"
#include "obs/trace.h"
#include "sta/sta_processor.h"

namespace wecsim {

/// Behavioural version of the simulator. Bump whenever a change can alter
/// the measurements produced for a given (workload, config) point — it is
/// part of the on-disk result-cache key (harness/result_cache.h), so stale
/// cached measurements are invalidated automatically.
inline constexpr uint32_t kSimulatorVersion = 2;

/// Per-origin side-cache (WEC/VC/prefetch buffer) fill accounting: how many
/// blocks each source brought in, and whether correct-path execution ever
/// touched them before they left the cache. For every origin,
/// fills[o] == used[o] + unused[o] once the run is over.
struct WecProvenance {
  std::array<uint64_t, kNumSideOrigins> fills{};   // indexed by SideOrigin
  std::array<uint64_t, kNumSideOrigins> used{};
  std::array<uint64_t, kNumSideOrigins> unused{};

  uint64_t total_fills() const {
    uint64_t total = 0;
    for (uint64_t f : fills) total += f;
    return total;
  }
};

/// Aggregated measurements of one simulation, summed over all thread units.
struct SimResult {
  Cycle cycles = 0;
  bool halted = false;
  uint64_t committed = 0;

  // Data-side L1 behaviour (the paper's Figure 17 quantities).
  uint64_t l1d_accesses = 0;        // processor <-> L1 traffic, all loads/stores
  uint64_t l1d_wrong_accesses = 0;  // portion issued by wrong execution
  uint64_t l1d_misses = 0;          // correct-execution misses
  uint64_t l1d_wrong_misses = 0;    // wrong-execution misses
  uint64_t side_hits = 0;           // vc/wec/prefetch-buffer hits
  uint64_t wec_wrong_fills = 0;     // blocks brought in by wrong execution
  uint64_t prefetches = 0;          // next-line prefetches issued
  uint64_t l2_accesses = 0;
  uint64_t l2_misses = 0;
  uint64_t mispredicts = 0;
  uint64_t branches = 0;
  uint64_t forks = 0;
  uint64_t wrong_threads = 0;
  uint64_t wrong_path_loads = 0;
  uint64_t coherence_updates = 0;
  WecProvenance wec;  // side-cache fills by origin x used/unused

  double l1d_miss_rate() const {
    return l1d_accesses == 0
               ? 0.0
               : static_cast<double>(l1d_misses) / l1d_accesses;
  }
};

/// Owns the full simulated machine: flat memory, statistics, thread units.
class Simulator {
 public:
  /// The program's initialized data segment is loaded into memory; further
  /// workload-specific initialization can write through memory().
  Simulator(const Program& program, const StaConfig& config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Architectural memory (pre-run initialization / post-run inspection).
  FlatMemory& memory() { return memory_; }

  /// Raw statistics registry (per-TU counters, cache details).
  StatsRegistry& stats() { return stats_; }

  /// The underlying processor (tests and examples poke at it directly).
  StaProcessor& processor() { return *processor_; }

  /// Pipeline event trace. Disabled by default; call trace().enable()
  /// before run() to record events (see docs/OBSERVABILITY.md).
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }

  /// Replace the fault plan picked up from WECSIM_FAULTS. Call before run().
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return faults_->plan(); }

  /// Turn on lockstep architectural checking (also enabled by
  /// WECSIM_CHECK=lockstep): every committed instruction is replayed against
  /// the functional interpreter; run() throws CheckFailure on divergence.
  void enable_lockstep() { lockstep_ = true; }
  bool lockstep_enabled() const { return lockstep_; }

  /// Run to completion and aggregate the results. Call once.
  SimResult run();

 private:
  const Program& program_;
  StaConfig config_;
  FlatMemory memory_;
  StatsRegistry stats_;
  TraceSink trace_;  // must outlive processor_
  // Always allocated (possibly with an empty plan) so the pointer handed to
  // the processor stays valid when set_fault_plan swaps the plan in place.
  std::unique_ptr<FaultSession> faults_;
  std::unique_ptr<StaProcessor> processor_;
  std::unique_ptr<LockstepChecker> checker_;
  bool lockstep_ = false;
  bool ran_ = false;
};

}  // namespace wecsim
