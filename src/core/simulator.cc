#include "core/simulator.h"

#include <cstdlib>

#include "common/error.h"
#include "obs/profile.h"

namespace wecsim {

Simulator::Simulator(const Program& program, const StaConfig& config)
    : program_(program), config_(config) {
  // Standalone users (unit tests, bench --core) get lenient WECSIM_PROFILE
  // parsing here; the sweep harness parses it strictly first, which wins.
  init_profile_from_env();
  memory_.load_program(program);
  faults_ = std::make_unique<FaultSession>(FaultPlan::from_env());
  if (const char* check = std::getenv("WECSIM_CHECK");
      check != nullptr && *check != '\0') {
    if (std::string(check) != "lockstep") {
      throw SimError("WECSIM_CHECK: unknown mode '" + std::string(check) +
                     "' (supported: lockstep)");
    }
    lockstep_ = true;
  }
  // Event-driven cycle skipping is bit-identical to plain stepping (see
  // docs/PERFORMANCE.md), so toggling it neither bumps kSimulatorVersion nor
  // enters the result-cache key. The env var, when set, wins over the config
  // knob: "0" disables, anything else enables.
  if (const char* skip = std::getenv("WECSIM_SKIP");
      skip != nullptr && *skip != '\0') {
    config_.cycle_skip = std::string(skip) != "0";
  }
  processor_ = std::make_unique<StaProcessor>(config_, program_, stats_,
                                              memory_, &trace_,
                                              faults_.get());
}

Simulator::~Simulator() = default;

void Simulator::set_fault_plan(const FaultPlan& plan) {
  WEC_CHECK_MSG(!ran_, "set_fault_plan after run");
  *faults_ = FaultSession(plan);
}

SimResult Simulator::run() {
  WEC_CHECK_MSG(!ran_, "Simulator::run may only be called once");
  ran_ = true;
  if (lockstep_) {
    // Clone memory here, not at construction: the workload's init code
    // writes the input data through memory() between the two points, and the
    // golden model must start from the same image. The timing memory races
    // ahead of the replay point during the run, so the checker needs its own
    // copy either way.
    checker_ = std::make_unique<LockstepChecker>(program_, memory_, &stats_);
    processor_->attach_checker(checker_.get());
  }
  const StaRunResult sta = processor_->run();
  if (lockstep_ && sta.halted) {
    const OooCore& seq = processor_->tu(processor_->sequential_tu()).core();
    checker_->finalize(memory_, seq.int_regs(), seq.fp_regs());
  }

  // Close the provenance books: blocks still resident in a side cache at the
  // end of the run count as unused fills.
  for (TuId id = 0; id < processor_->num_tus(); ++id) {
    processor_->tu(id).mem().finalize_accounting(sta.cycles);
  }

  SimResult result;
  result.cycles = sta.cycles;
  result.halted = sta.halted;
  result.committed = sta.committed;

  auto sum = [&](const char* suffix) {
    return stats_.sum_matching("tu", suffix);
  };
  result.l1d_accesses = sum(".l1d.accesses");
  result.l1d_wrong_accesses = sum(".l1d.wrong_accesses");
  result.l1d_misses = sum(".l1d.misses");
  result.l1d_wrong_misses = sum(".l1d.wrong_misses");
  result.side_hits = sum(".side.hits") + sum(".side.wrong_hits");
  result.wec_wrong_fills = sum(".side.wrong_fills");
  result.prefetches = sum(".side.prefetches");
  result.mispredicts = sum(".core.mispredicts");
  result.branches = sum(".core.branches");
  result.wrong_path_loads = sum(".core.wrong_path_loads");
  result.coherence_updates = sum(".coherence.updates");
  result.l2_accesses = stats_.value("l2.accesses");
  result.l2_misses = stats_.value("l2.misses");
  result.forks = stats_.value("sta.forks");
  result.wrong_threads = stats_.value("sta.wrong_threads");
  for (size_t i = 0; i < kNumSideOrigins; ++i) {
    const std::string origin(side_origin_name(static_cast<SideOrigin>(i)));
    result.wec.fills[i] = sum((".side.fill." + origin).c_str());
    result.wec.used[i] = sum((".side.used." + origin).c_str());
    result.wec.unused[i] = sum((".side.unused." + origin).c_str());
  }
  return result;
}

}  // namespace wecsim
