#include "core/sim_config.h"

#include "common/error.h"

namespace wecsim {

const char* paper_config_name(PaperConfig config) {
  switch (config) {
    case PaperConfig::kOrig:
      return "orig";
    case PaperConfig::kVc:
      return "vc";
    case PaperConfig::kWp:
      return "wp";
    case PaperConfig::kWth:
      return "wth";
    case PaperConfig::kWthWp:
      return "wth-wp";
    case PaperConfig::kWthWpVc:
      return "wth-wp-vc";
    case PaperConfig::kWthWpWec:
      return "wth-wp-wec";
    case PaperConfig::kNlp:
      return "nlp";
  }
  return "?";
}

PaperConfig paper_config_from_name(const std::string& name) {
  for (PaperConfig config : kAllPaperConfigs) {
    if (name == paper_config_name(config)) return config;
  }
  throw SimError("unknown configuration name: " + name);
}

StaConfig make_paper_config(PaperConfig config, uint32_t num_tus) {
  StaConfig sta;
  sta.num_tus = num_tus;
  sta.wrong_thread_exec = false;

  CoreConfig& core = sta.core;
  core.fetch_width = 8;
  core.issue_width = 8;
  core.rob_size = 64;
  core.lsq_size = 64;
  core.int_alu = 8;
  core.int_mult = 4;
  core.fp_alu = 8;
  core.fp_mult = 4;
  core.mem_ports = 2;
  core.wrong_path_exec = false;
  core.bpred.btb_entries = 1024;
  core.bpred.btb_assoc = 4;

  MemConfig& mem = sta.mem;
  mem.l1i = {32 * 1024, 2, 64};
  mem.l1d = {8 * 1024, 1, 64};
  mem.l2 = {512 * 1024, 4, 128};
  mem.mem_lat = 200;
  mem.side = SideKind::kNone;
  mem.side_entries = 8;

  switch (config) {
    case PaperConfig::kOrig:
      break;
    case PaperConfig::kVc:
      mem.side = SideKind::kVictim;
      break;
    case PaperConfig::kWp:
      core.wrong_path_exec = true;
      break;
    case PaperConfig::kWth:
      sta.wrong_thread_exec = true;
      break;
    case PaperConfig::kWthWp:
      core.wrong_path_exec = true;
      sta.wrong_thread_exec = true;
      break;
    case PaperConfig::kWthWpVc:
      core.wrong_path_exec = true;
      sta.wrong_thread_exec = true;
      mem.side = SideKind::kVictim;
      break;
    case PaperConfig::kWthWpWec:
      core.wrong_path_exec = true;
      sta.wrong_thread_exec = true;
      mem.side = SideKind::kWec;
      break;
    case PaperConfig::kNlp:
      mem.side = SideKind::kPrefetchBuffer;
      break;
  }
  core.ifetch_block_bytes = mem.l1i.block_bytes;
  return sta;
}

StaConfig make_table3_config(uint32_t num_tus) {
  StaConfig sta = make_paper_config(PaperConfig::kOrig, num_tus);
  CoreConfig& core = sta.core;
  MemConfig& mem = sta.mem;
  switch (num_tus) {
    case 1:
      core.issue_width = 16;
      core.rob_size = 128;
      core.int_alu = 16;
      core.int_mult = 8;
      core.fp_alu = 16;
      core.fp_mult = 8;
      mem.l1d.size_bytes = 32 * 1024;
      break;
    case 2:
      core.issue_width = 8;
      core.rob_size = 64;
      core.int_alu = 8;
      core.int_mult = 4;
      core.fp_alu = 8;
      core.fp_mult = 4;
      mem.l1d.size_bytes = 16 * 1024;
      break;
    case 4:
      core.issue_width = 4;
      core.rob_size = 32;
      core.int_alu = 4;
      core.int_mult = 2;
      core.fp_alu = 4;
      core.fp_mult = 2;
      mem.l1d.size_bytes = 8 * 1024;
      break;
    case 8:
      core.issue_width = 2;
      core.rob_size = 16;
      core.int_alu = 2;
      core.int_mult = 1;
      core.fp_alu = 2;
      core.fp_mult = 1;
      mem.l1d.size_bytes = 4 * 1024;
      break;
    case 16:
      core.issue_width = 1;
      core.rob_size = 8;
      core.int_alu = 1;
      core.int_mult = 1;
      core.fp_alu = 1;
      core.fp_mult = 1;
      mem.l1d.size_bytes = 2 * 1024;
      break;
    default:
      throw SimError("table 3 defines 1/2/4/8/16 thread units only");
  }
  // Table 3 uses a 4-way associative L1 data cache throughout.
  mem.l1d.assoc = 4;
  core.fetch_width = core.issue_width;
  core.lsq_size = core.rob_size;
  return sta;
}

StaConfig make_table3_baseline() {
  StaConfig sta = make_table3_config(16);  // per-TU resources of the 16-TU row
  sta.num_tus = 1;
  return sta;
}

}  // namespace wecsim
