// The eight processor configurations evaluated in the paper (Section 4.3)
// and the hardware scaling rules of Table 3, expressed over the wecsim
// building blocks.
#pragma once

#include <string>

#include "sta/sta_config.h"

namespace wecsim {

/// Paper Section 4.3 configuration names.
enum class PaperConfig {
  kOrig,      // baseline superthreaded processor
  kVc,        // orig + victim cache
  kWp,        // wrong-path load execution
  kWth,       // wrong-thread load execution
  kWthWp,     // both
  kWthWpVc,   // both + victim cache
  kWthWpWec,  // both + Wrong Execution Cache (the paper's proposal)
  kNlp,       // next-line tagged prefetching with a prefetch buffer
};

const char* paper_config_name(PaperConfig config);
PaperConfig paper_config_from_name(const std::string& name);

/// All eight configs in presentation order (Figure 11).
inline constexpr PaperConfig kAllPaperConfigs[] = {
    PaperConfig::kOrig,    PaperConfig::kVc,       PaperConfig::kWp,
    PaperConfig::kWth,     PaperConfig::kWthWp,    PaperConfig::kWthWpVc,
    PaperConfig::kWthWpWec, PaperConfig::kNlp,
};

/// Build the default 8-issue-per-TU machine of Section 5.2 for the given
/// paper configuration: ROB/LSQ 64 per TU, 8 INT ALU / 4 INT MUL / 8 FP ADD /
/// 4 FP MUL, L1D 8KB direct-mapped 64B blocks, 8-entry WEC/VC/prefetch
/// buffer, L1I 32KB 2-way, shared L2 512KB 4-way 128B, 200-cycle memory.
StaConfig make_paper_config(PaperConfig config, uint32_t num_tus = 8);

/// Table 3 machine for the baseline ILP-vs-TLP study (Figure 8): total issue
/// capacity fixed at 16, per-TU resources scale down as TUs scale up, and
/// per-TU L1D size keeps the total at 32KB. num_tus must be one of
/// {1, 2, 4, 8, 16}.
StaConfig make_table3_config(uint32_t num_tus);

/// Figure 8's baseline: the single-thread single-issue processor (Table 3's
/// first column: 1 TU, 1-issue, 8-entry ROB, 2KB L1D).
StaConfig make_table3_baseline();

}  // namespace wecsim
