#include "core/sampled.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "obs/profile.h"
#include "sta/sta_processor.h"
#include "sta/thread_unit.h"

namespace wecsim {

namespace {

/// Functional warming: architectural accesses replayed from the master
/// interpreter into TU 0's cache tags during fast-forward, so the long-lived
/// cache working set tracks the program between windows (a window-local
/// warmup alone cannot rebuild a working set built over many periods). TU 0
/// is the right target: reseed restarts the sequential thread there.
class WarmSink final : public Interpreter::MemTouchSink {
 public:
  explicit WarmSink(TuMemSystem& mem) : mem_(mem) {}
  bool enabled = false;
  void touch(Addr addr, bool store, bool parallel) override {
    if (!enabled) return;
    if (parallel) {
      mem_.warm_shared(addr);
    } else {
      mem_.warm_access(addr, store);
    }
  }

 private:
  TuMemSystem& mem_;
};

constexpr uint64_t kFuncInstrCap = 2'000'000'000;

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom.
/// Sampled runs typically produce 4–10 windows, so the small-n values
/// matter; beyond 30 the normal approximation is within 2%.
double student_t95(size_t dof) {
  static constexpr double kSmall[] = {0.0,   12.706, 4.303, 3.182, 2.776,
                                      2.571, 2.447,  2.365, 2.306, 2.262,
                                      2.228};
  if (dof == 0) return 0.0;
  if (dof <= 10) return kSmall[dof];
  if (dof <= 20) return 2.086;
  if (dof <= 30) return 2.042;
  return 1.960;
}

}  // namespace

SampledSimulator::SampledSimulator(const Program& program,
                                   const StaConfig& config)
    : program_(program), config_(config) {
  // Standalone users get lenient env parsing, like Simulator; the sweep
  // harness parses strictly first, which wins.
  init_profile_from_env();
  memory_.load_program(program);
  // The detailed windows run on the normal core, so the bit-identical
  // event-driven skip applies inside them too; WECSIM_SKIP wins over the
  // config knob exactly as in full-fidelity mode.
  if (const char* skip = std::getenv("WECSIM_SKIP");
      skip != nullptr && *skip != '\0') {
    config_.cycle_skip = std::string(skip) != "0";
  }
  config_.sampling.enabled = true;
  validate_sta_config(config_);
}

SampledSimulator::~SampledSimulator() = default;

uint64_t SampledSimulator::skipped_cycles() const {
  return proc_ != nullptr ? proc_->skipped_cycles() : 0;
}

SampledSimulator::Plan SampledSimulator::plan_for(
    const FuncResult& probe) const {
  const StaConfig::Sampling& s = config_.sampling;
  const uint64_t n = std::max<uint64_t>(probe.instrs_total, 1);
  Plan p;
  p.warmup = s.warmup_instrs;
  p.measure = s.measure_instrs;
  p.ff = s.ff_instrs;
  if (p.measure == 0) {
    // Span targets are minimums: window boundaries snap forward to the next
    // interpreter safe point, so every window grows to end just past a
    // parallel-region boundary. The target must cover whole glue+region
    // PERIODS (n / regions): from any safe point, a period-length span
    // crosses the next region and the snap lands in the glue right after
    // it, so every window's sequential-vs-parallel instruction mix matches
    // the whole program's. A shorter target can fit entirely inside the
    // sequential glue — such windows never see a region and the estimator
    // oversamples glue, badly overestimating CPI. Four periods per window:
    // per-period CPI fluctuates on a super-period of a few regions
    // (empirically ±8% on mcf), and single-period windows alias it.
    uint64_t measure = std::max<uint64_t>(n / 100, 400);
    if (probe.parallel_regions > 0) {
      measure = std::max(measure, 4 * (n / probe.parallel_regions));
    }
    p.measure = std::min(measure, n);
  }
  if (p.warmup == 0) {
    // Functional warming keeps the cache working set current across
    // fast-forward gaps, so the detailed warmup only has to refill the
    // pipeline, local predictors, and — crucially — cross one parallel
    // region: the machine's steady state includes wrong threads spawned at
    // the previous region's end, whose wrong-path execution prefetches the
    // upcoming glue's data (the WEC effect under study). Half a period
    // reaches the next region from most safe points; the boundary snap
    // extends it through that region when it does.
    p.warmup = probe.parallel_regions > 0
                   ? std::max(p.measure / 8, (n / probe.parallel_regions) / 2)
                   : std::max<uint64_t>(p.measure / 4, 100);
  }
  if (p.ff == 0) {
    // Aim for ~8 windows across the run. Sampling only pays when the
    // detailed windows cover well under half the program; below that, fall
    // back to one exact window over the whole program: zero sampling error,
    // full-fidelity cost.
    constexpr uint64_t kTargetWindows = 8;
    const uint64_t span = p.warmup + p.measure;
    p.exact = kTargetWindows * span > n / 2;
    p.ff = p.exact ? 0 : n / kTargetWindows - span;
  }
  return p;
}

SampledResult SampledSimulator::run() {
  WEC_CHECK_MSG(!ran_, "SampledSimulator::run may only be called once");
  ran_ = true;
  SampledResult r;

  // Functional pre-pass on a throwaway clone: window placement needs the
  // dynamic instruction count before the master interpreter consumes the
  // program (the workload's input data is already in memory_ by now).
  FuncResult probe;
  {
    FlatMemory probe_mem = memory_.clone();
    Interpreter pre(program_, probe_mem);
    probe = pre.run(kFuncInstrCap);
    if (!probe.halted) {
      throw SimError(
          "sampled mode: functional pre-pass did not halt within " +
          std::to_string(kFuncInstrCap) + " instructions");
    }
  }
  const Plan plan = plan_for(probe);

  // One persistent detailed machine for every window: its branch predictors
  // and cache tags stay warm across windows (data correctness is unaffected
  // — the timing caches are tag-only, values come from FlatMemory, and
  // window_mem_ is re-cloned from the master image at each window entry).
  window_mem_ = memory_.clone();
  proc_ = std::make_unique<StaProcessor>(config_, program_, stats_,
                                         window_mem_);

  Interpreter master(program_, memory_);
  TuMemSystem& mem0 = proc_->tu(0).mem();
  WarmSink warm(mem0);
  master.set_mem_touch_sink(&warm);
  const Addr iblock_mask = ~static_cast<Addr>(config_.core.ifetch_block_bytes - 1);
  // Fast-forward the master to the next safe point at/after `target`.
  // `warming` replays the skipped slice's data accesses and fetch blocks
  // into the detailed machine's cache tags; it must be OFF while planning a
  // window's interior boundaries (the detailed machine executes that slice
  // itself — pre-touching its own working set would hand the window future
  // knowledge and understate its CPI).
  Addr last_iblock = ~static_cast<Addr>(0);
  auto advance_master = [&](uint64_t target, bool warming) {
    warm.enabled = warming;
    while (!master.halted() && (master.result().instrs_total < target ||
                                !master.at_safe_point())) {
      if (warming) {
        const Addr blk = master.pc() & iblock_mask;
        if (blk != last_iblock) {
          last_iblock = blk;
          mem0.warm_ifetch(blk);
        }
      }
      master.step();
    }
    warm.enabled = false;
  };

  uint64_t next_window = 0;
  bool capped = false;
  while (!capped) {
    advance_master(next_window, /*warming=*/true);
    if (master.halted()) break;

    // Snapshot the architectural state at the window entry (A0); the master
    // then runs AHEAD of the detailed machine to plan the window's interior
    // boundaries, so copy what reseed needs by value.
    const uint64_t start_instr = master.result().instrs_total;
    const Addr start_pc = master.pc();
    const std::array<Word, kNumIntRegs> start_int = master.int_regs();
    const std::array<Word, kNumFpRegs> start_fp = master.fp_regs();
    window_mem_ = memory_.clone();

    // Plan the warmup/measure boundaries on the master: the first safe
    // points at/after the span targets. Boundaries therefore fall between
    // glue+region periods, so each window measures whole periods — the only
    // placement whose instruction mix (sequential glue vs parallel region)
    // matches the whole program's. The first window starts cold at
    // instruction 0 with no warmup phase: its real cold-start cycles are
    // measured, just as a full-fidelity run pays them.
    const uint64_t warmup_target = r.windows.empty() ? 0 : plan.warmup;
    if (warmup_target > 0) {
      advance_master(start_instr + warmup_target, /*warming=*/false);
    }
    uint64_t warmup_end = master.result().instrs_total;
    if (master.halted()) {
      // The warmup span already reaches program end: measure the whole tail
      // instead of warming across all of it.
      warmup_end = start_instr;
    } else if (!plan.exact) {
      advance_master(warmup_end + plan.measure, /*warming=*/false);
    }
    const uint64_t measure_end =
        plan.exact ? start_instr + kFuncInstrCap : master.result().instrs_total;

    proc_->reseed(start_pc, start_int, start_fp);

    SampleWindow win;
    win.start_instr = start_instr;
    bool window_halted = false;

    // Pace the detailed machine to the planned boundaries by architectural
    // commit count. Deltas are compared signed: an abort retracts the killed
    // iterations' commits, so the counter can step backwards transiently —
    // it equals the interpreter's instruction count exactly at safe points,
    // which is where both boundaries sit. The region gate keeps stepping
    // through any region still open when the count is reached (speculative
    // not-yet-retracted commits can hit the target mid-region).
    const uint64_t a0 = proc_->arch_committed_total();
    auto drive_to = [&](uint64_t boundary_instr) {
      const int64_t target = static_cast<int64_t>(boundary_instr - start_instr);
      while (static_cast<int64_t>(proc_->arch_committed_total() - a0) <
                 target ||
             proc_->region_active()) {
        if (proc_->now() >= config_.max_cycles) {
          capped = true;
          return;
        }
        if (!proc_->step()) {
          window_halted = true;
          return;
        }
      }
    };

    const Cycle c0 = proc_->now();
    drive_to(warmup_end);
    const Cycle c1 = proc_->now();
    const uint64_t a1 = proc_->arch_committed_total();
    const uint64_t all1 = proc_->committed_total();
    const uint64_t par1 = proc_->parallel_cycles_total();
    win.warmup_cycles = c1 - c0;
    win.warmup_commits = static_cast<int64_t>(a1 - a0);
    if (!window_halted && !capped) drive_to(measure_end);
    win.measure_cycles = proc_->now() - c1;
    win.measure_commits =
        static_cast<int64_t>(proc_->arch_committed_total() - a1);
    win.measure_commits_all = proc_->committed_total() - all1;
    win.measure_parallel_cycles = proc_->parallel_cycles_total() - par1;
    r.windows.push_back(win);
    if (window_hook_) window_hook_();
    if (capped) break;
    if (window_halted || plan.exact || master.halted()) {
      // The detailed machine reached the program end: drain the master for
      // the exact whole-program instruction count and stop sampling.
      next_window = ~0ull;
    } else {
      // The master is already at the window's end boundary (it planned it);
      // skip the fast-forward gap from there.
      next_window = measure_end + plan.ff;
    }
  }

  r.func = master.result();
  r.func_instrs = r.func.instrs_total;
  r.halted = !capped && master.halted();
  if (!r.halted) return r;

  // Pooled ratio estimators over the usable windows (positive measured
  // commit delta). Pooling weights windows by their measured instruction
  // count, which is what extrapolating a whole-program total wants.
  double sum_cycles = 0.0;
  double sum_arch = 0.0;
  double sum_all = 0.0;
  double sum_parallel = 0.0;
  std::vector<double> cpis;
  for (const SampleWindow& w : r.windows) {
    r.detailed_cycles += w.warmup_cycles + w.measure_cycles;
    if (w.measure_commits <= 0 || w.measure_cycles == 0) continue;
    sum_cycles += static_cast<double>(w.measure_cycles);
    sum_arch += static_cast<double>(w.measure_commits);
    sum_all += static_cast<double>(w.measure_commits_all);
    sum_parallel += static_cast<double>(w.measure_parallel_cycles);
    cpis.push_back(static_cast<double>(w.measure_cycles) /
                   static_cast<double>(w.measure_commits));
  }
  if (cpis.empty()) {
    throw SimError("sampled mode produced no usable measurement windows");
  }
  r.cpi = sum_cycles / sum_arch;
  r.ipc = sum_arch / sum_cycles;
  r.extrapolated_cycles = static_cast<uint64_t>(
      std::llround(static_cast<double>(r.func_instrs) * r.cpi));
  r.extrapolated_committed = static_cast<uint64_t>(std::llround(
      static_cast<double>(r.func_instrs) * (sum_all / sum_arch)));
  // Parallel cycles extrapolate as a fraction of total cycles (windows
  // measure whole glue+region periods, so the measured region-open fraction
  // is representative), clamped so the estimate stays internally consistent.
  r.extrapolated_parallel_cycles = std::min(
      r.extrapolated_cycles,
      static_cast<uint64_t>(std::llround(
          static_cast<double>(r.extrapolated_cycles) *
          (sum_parallel / sum_cycles))));
  if (cpis.size() >= 2) {
    const size_t n = cpis.size();
    double mean = 0.0;
    for (double c : cpis) mean += c;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double c : cpis) var += (c - mean) * (c - mean);
    var /= static_cast<double>(n - 1);
    r.ci95_pct = 100.0 * student_t95(n - 1) * std::sqrt(var) /
                 (std::sqrt(static_cast<double>(n)) * mean);
  }
  return r;
}

}  // namespace wecsim
