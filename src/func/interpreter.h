// Functional (ISA-level) reference interpreter.
//
// Executes a superthreaded program with sequential thread semantics: FORK
// records a pending successor (start PC + register snapshot), THEND switches
// to it, ABORT discards pending successors, ENDPAR resumes sequential
// execution. This yields exactly the architectural state the parallel timing
// simulation must produce (the superthreaded execution model preserves
// sequential memory semantics via target-store forwarding and in-order
// write-back), so it serves as the golden model for differential tests.
//
// It also produces the dynamic-instruction accounting behind the paper's
// Table 2: total instructions and the fraction executed inside parallel
// regions.
#pragma once

#include <array>
#include <deque>
#include <optional>

#include "common/stats.h"
#include "common/types.h"
#include "isa/program.h"
#include "mem/flat_memory.h"

namespace wecsim {

/// Aggregate results of a functional run.
struct FuncResult {
  bool halted = false;          // reached HALT (vs. hit the instruction cap)
  uint64_t instrs_total = 0;    // dynamic instructions executed
  uint64_t instrs_parallel = 0; // executed between BEGIN and ENDPAR
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t branches = 0;
  uint64_t branches_taken = 0;
  uint64_t forks = 0;
  uint64_t parallel_regions = 0;

  double fraction_parallel() const {
    return instrs_total == 0
               ? 0.0
               : static_cast<double>(instrs_parallel) / instrs_total;
  }
};

class Interpreter {
 public:
  /// The interpreter mutates memory in place (program data must already be
  /// loaded via FlatMemory::load_program, or by a workload initializer).
  Interpreter(const Program& program, FlatMemory& memory);

  /// Reset architectural registers and PC to the program entry. Memory is
  /// not touched.
  void reset();

  /// Execute one instruction. Returns false once halted.
  bool step();

  /// Run until HALT or max_instrs, whichever first.
  FuncResult run(uint64_t max_instrs = 100'000'000);

  bool halted() const { return halted_; }
  Addr pc() const { return pc_; }

  Word int_reg(RegId r) const { return int_regs_[r]; }
  Word fp_reg(RegId r) const { return fp_regs_[r]; }
  double fp_reg_double(RegId r) const;
  void set_int_reg(RegId r, Word value) {
    if (r != 0) int_regs_[r] = value;
  }

  const FuncResult& result() const { return result_; }

  /// True when the architectural state is fully described by (pc, registers,
  /// memory): outside any parallel region with no pending forked threads.
  /// Sampled simulation (core/sampled.h) may only hand state to the detailed
  /// machine at such points — mid-region state would also need the pending
  /// thread queue and speculative buffers.
  bool at_safe_point() const { return !in_parallel_ && pending_.empty(); }

  const std::array<Word, kNumIntRegs>& int_regs() const { return int_regs_; }
  const std::array<Word, kNumFpRegs>& fp_regs() const { return fp_regs_; }

  /// Observer for every architectural data access (sampled fast-forward
  /// feeds these into the detailed machine's cache tags — functional
  /// warming). Raw pointers, not std::function: the call sits on the
  /// interpreter's hot loop. nullptr (the default) disables the hook.
  /// `parallel` reports whether the access executed inside a parallel
  /// region — such accesses are spread across thread units by the real
  /// machine, so warming must not attribute them all to one private L1.
  class MemTouchSink {
   public:
    virtual ~MemTouchSink() = default;
    virtual void touch(Addr addr, bool store, bool parallel) = 0;
  };
  void set_mem_touch_sink(MemTouchSink* sink) { mem_touch_ = sink; }

 private:
  struct PendingThread {
    Addr start_pc;
    std::array<Word, kNumIntRegs> int_regs;
    std::array<Word, kNumFpRegs> fp_regs;
    bool speculative;
  };

  void exec_thread_op(const Instruction& instr);

  const Program& program_;
  FlatMemory& memory_;
  Addr pc_;
  bool halted_ = false;
  bool in_parallel_ = false;
  std::array<Word, kNumIntRegs> int_regs_{};
  std::array<Word, kNumFpRegs> fp_regs_{};
  std::deque<PendingThread> pending_;
  FuncResult result_;
  MemTouchSink* mem_touch_ = nullptr;
};

}  // namespace wecsim
