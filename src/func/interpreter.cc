#include "func/interpreter.h"

#include <cstring>

#include "common/error.h"
#include "isa/semantics.h"

namespace wecsim {

Interpreter::Interpreter(const Program& program, FlatMemory& memory)
    : program_(program), memory_(memory), pc_(program.entry()) {}

void Interpreter::reset() {
  pc_ = program_.entry();
  halted_ = false;
  in_parallel_ = false;
  int_regs_.fill(0);
  fp_regs_.fill(0);
  pending_.clear();
  result_ = FuncResult{};
}

double Interpreter::fp_reg_double(RegId r) const {
  double d;
  const Word bits = fp_regs_[r];
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void Interpreter::exec_thread_op(const Instruction& instr) {
  switch (instr.op) {
    case Opcode::kBegin:
      // Hardware: kill lingering wrong threads. Functionally: open a region.
      in_parallel_ = true;
      ++result_.parallel_regions;
      break;
    case Opcode::kFork:
    case Opcode::kForksp: {
      if (!in_parallel_) {
        throw SimError("fork outside a parallel region at pc 0x" +
                       std::to_string(pc_));
      }
      PendingThread child;
      child.start_pc = static_cast<Addr>(instr.imm);
      child.int_regs = int_regs_;
      child.fp_regs = fp_regs_;
      child.speculative = instr.op == Opcode::kForksp;
      pending_.push_back(child);
      ++result_.forks;
      break;
    }
    case Opcode::kAbort:
      // Kill all successor threads. Functionally: discard pending forks.
      pending_.clear();
      break;
    case Opcode::kTsaddr:
    case Opcode::kTsagd:
      // Target-store bookkeeping has no architectural effect; the sequential
      // order already realizes every cross-thread dependence.
      break;
    case Opcode::kThend: {
      if (pending_.empty()) {
        throw SimError(
            "thend with no successor thread (missing fork or abort?) at pc "
            "0x" + std::to_string(pc_));
      }
      PendingThread next = pending_.front();
      pending_.pop_front();
      int_regs_ = next.int_regs;
      fp_regs_ = next.fp_regs;
      pc_ = next.start_pc - kInstrBytes;  // step() adds kInstrBytes back
      break;
    }
    case Opcode::kEndpar:
      if (!pending_.empty()) {
        throw SimError("endpar with live successor threads at pc 0x" +
                       std::to_string(pc_));
      }
      in_parallel_ = false;
      break;
    default:
      WEC_CHECK_MSG(false, "not a thread opcode");
  }
}

bool Interpreter::step() {
  if (halted_) return false;
  const Instruction* instr = program_.fetch(pc_);
  if (instr == nullptr) {
    throw SimError("functional: PC outside text segment: 0x" +
                   std::to_string(pc_));
  }
  ++result_.instrs_total;
  if (in_parallel_) ++result_.instrs_parallel;

  const OpcodeInfo& info = opcode_info(instr->op);
  Addr next_pc = pc_ + kInstrBytes;

  auto src = [&](RegFile file, RegId r) -> Word {
    switch (file) {
      case RegFile::kInt:
        return int_regs_[r];
      case RegFile::kFp:
        return fp_regs_[r];
      case RegFile::kNone:
        return 0;
    }
    return 0;
  };
  auto write_dst = [&](Word value) {
    if (info.dst == RegFile::kInt) {
      if (instr->rd != 0) int_regs_[instr->rd] = value;
    } else if (info.dst == RegFile::kFp) {
      fp_regs_[instr->rd] = value;
    }
  };

  switch (info.kind) {
    case InstrKind::kAlu:
      write_dst(eval_alu(*instr, src(info.src1, instr->rs1),
                         src(info.src2, instr->rs2)));
      break;
    case InstrKind::kLoad: {
      const Addr addr = eval_mem_addr(*instr, int_regs_[instr->rs1]);
      const uint64_t raw = memory_.read(addr, instr->mem_bytes());
      write_dst(extend_loaded(instr->op, raw));
      ++result_.loads;
      if (mem_touch_ != nullptr) {
        mem_touch_->touch(addr, /*store=*/false, in_parallel_);
      }
      break;
    }
    case InstrKind::kStore: {
      const Addr addr = eval_mem_addr(*instr, int_regs_[instr->rs1]);
      const Word data = src(info.src2, instr->rs2);
      memory_.write(addr, data, instr->mem_bytes());
      ++result_.stores;
      if (mem_touch_ != nullptr) {
        mem_touch_->touch(addr, /*store=*/true, in_parallel_);
      }
      break;
    }
    case InstrKind::kBranch: {
      const bool taken =
          eval_branch(*instr, int_regs_[instr->rs1], int_regs_[instr->rs2]);
      ++result_.branches;
      if (taken) {
        ++result_.branches_taken;
        next_pc = static_cast<Addr>(instr->imm);
      }
      break;
    }
    case InstrKind::kJump: {
      const Addr target = instr->op == Opcode::kJal
                              ? static_cast<Addr>(instr->imm)
                              : eval_mem_addr(*instr, int_regs_[instr->rs1]);
      write_dst(pc_ + kInstrBytes);  // link register
      next_pc = target;
      break;
    }
    case InstrKind::kSys:
      if (instr->op == Opcode::kHalt) {
        halted_ = true;
        result_.halted = true;
        return false;
      }
      break;
    case InstrKind::kThread:
      exec_thread_op(*instr);
      // kThend rewrites pc_ so the uniform increment lands on the child.
      next_pc = pc_ + kInstrBytes;
      break;
  }
  pc_ = next_pc;
  return true;
}

FuncResult Interpreter::run(uint64_t max_instrs) {
  while (!halted_ && result_.instrs_total < max_instrs) {
    step();
  }
  return result_;
}

}  // namespace wecsim
