// One instruction leaving a thread unit's reorder buffer, as observed by the
// core's commit hook. Deliberately a plain record with no dependencies
// beyond the ISA, so cpu/core.h can expose the hook without pulling the
// functional interpreter into every translation unit.
#pragma once

#include "common/types.h"
#include "isa/isa.h"

namespace wecsim {

struct CommittedInstr {
  Cycle cycle = 0;
  TuId tu = 0;
  uint64_t iter = 0;  // iteration within the parallel region (owner-stamped)
  Addr pc = 0;
  Instruction instr;
  Word result = 0;        // value written to rd (when the op writes a reg)
  bool is_store = false;
  Addr mem_addr = 0;      // effective address (loads/stores/tsaddr)
  uint32_t mem_bytes = 0;
  Word store_value = 0;
};

}  // namespace wecsim
