#include "fault/fault.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace wecsim {

namespace {

constexpr const char* kKindNames[kNumFaultKinds] = {
    "mem_delay",       "mem_drop",     "mispredict",     "wrong_kill",
    "side_invalidate", "worker_crash", "worker_timeout", "commit_corrupt",
};

/// FNV-1a over the seed, kind, and point key: the stateless point-fault
/// selector. Local copy (harness/result_cache.h has one too) so the fault
/// library depends only on wecsim_common.
uint64_t point_fnv(uint64_t seed, FaultKind kind, const std::string& key) {
  uint64_t h = 1469598103934665603ull ^ (seed * 0x9e3779b97f4a7c15ull);
  h ^= static_cast<uint64_t>(kind) + 1;
  h *= 1099511628211ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

double hash_to_uniform(uint64_t h) {
  // Same [0, 1) mapping as Rng::uniform.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool parse_u64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string trim(const std::string& s) {
  size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  return kKindNames[static_cast<size_t>(kind)];
}

void FaultPlan::enable(FaultKind kind, const FaultSpec& spec) {
  specs_[index(kind)] = spec;
  specs_[index(kind)].enabled = true;
}

bool FaultPlan::any() const {
  for (const FaultSpec& s : specs_) {
    if (s.enabled) return true;
  }
  return false;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::vector<std::string> errors;
  for (const std::string& raw_clause : split(spec, ';')) {
    const std::string clause = trim(raw_clause);
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      uint64_t seed = 0;
      if (!parse_u64(clause.substr(5), &seed)) {
        errors.push_back("bad seed value: '" + clause + "'");
      } else {
        plan.seed_ = seed;
      }
      continue;
    }
    const size_t colon = clause.find(':');
    const std::string name = trim(clause.substr(0, colon));
    int kind = -1;
    for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
      if (name == kKindNames[k]) kind = static_cast<int>(k);
    }
    if (kind < 0) {
      errors.push_back("unknown fault kind: '" + name + "'");
      continue;
    }
    FaultSpec s;
    s.enabled = true;
    if (colon != std::string::npos) {
      for (const std::string& raw_kv : split(clause.substr(colon + 1), ',')) {
        const std::string kv = trim(raw_kv);
        if (kv.empty()) continue;
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          errors.push_back(name + ": expected key=value, got '" + kv + "'");
          continue;
        }
        const std::string key = trim(kv.substr(0, eq));
        const std::string val = trim(kv.substr(eq + 1));
        bool ok = true;
        if (key == "p") {
          ok = parse_double(val, &s.p) && s.p >= 0.0 && s.p <= 1.0;
        } else if (key == "every") {
          ok = parse_u64(val, &s.every);
        } else if (key == "after") {
          ok = parse_u64(val, &s.after);
        } else if (key == "count") {
          ok = parse_u64(val, &s.count);
        } else if (key == "arg" || key == "cycles") {
          ok = parse_u64(val, &s.arg);
        } else if (key == "match") {
          s.match = val;
        } else {
          errors.push_back(name + ": unknown key '" + key + "'");
          continue;
        }
        if (!ok) {
          errors.push_back(name + ": bad value for '" + key + "': '" + val +
                           "'");
        }
      }
    }
    plan.specs_[static_cast<size_t>(kind)] = s;
  }
  if (!errors.empty()) {
    std::ostringstream os;
    os << "WECSIM_FAULTS: " << errors.size() << " error(s) in '" << spec
       << "':";
    for (const std::string& e : errors) os << "\n  - " << e;
    throw SimError(os.str());
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("WECSIM_FAULTS");
  if (env == nullptr || *env == '\0') return FaultPlan();
  return parse(env);
}

std::string FaultPlan::describe() const {
  if (!any()) return std::string();
  std::ostringstream os;
  os << "seed=" << seed_;
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    const FaultSpec& s = specs_[k];
    if (!s.enabled) continue;
    os << ';' << kKindNames[k];
    std::vector<std::string> kvs;
    if (s.p > 0.0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "p=%.17g", s.p);
      kvs.push_back(buf);
    }
    if (s.every != 0) kvs.push_back("every=" + std::to_string(s.every));
    if (s.after != 0) kvs.push_back("after=" + std::to_string(s.after));
    if (s.count != UINT64_MAX) kvs.push_back("count=" + std::to_string(s.count));
    if (s.arg != 0) kvs.push_back("arg=" + std::to_string(s.arg));
    if (!s.match.empty()) kvs.push_back("match=" + s.match);
    for (size_t i = 0; i < kvs.size(); ++i) {
      os << (i == 0 ? ':' : ',') << kvs[i];
    }
  }
  return os.str();
}

bool FaultPlan::should_fail_point(FaultKind kind, const std::string& point_key,
                                  uint64_t attempt) const {
  const FaultSpec& s = specs_[index(kind)];
  if (!s.enabled) return false;
  if (!s.match.empty() && point_key.find(s.match) == std::string::npos) {
    return false;
  }
  // count bounds failing *attempts*: count=1 is a transient blip (the first
  // retry succeeds), the default is a persistently failing point.
  if (attempt >= s.count) return false;
  const uint64_t h = point_fnv(seed_, kind, point_key);
  if (s.p > 0.0) return hash_to_uniform(h) < s.p;
  const uint64_t every = s.every == 0 ? 1 : s.every;
  return h % every == 0;
}

FaultSession::FaultSession(const FaultPlan& plan) : plan_(plan) {
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    // Mix the kind into the seed so each kind draws an independent stream.
    state_[k].rng = Rng(plan.seed() * 0x9e3779b97f4a7c15ull + k + 1);
  }
}

bool FaultSession::fire(FaultKind kind) {
  const FaultSpec& s = plan_.spec(kind);
  if (!s.enabled) return false;
  KindState& st = state_[static_cast<size_t>(kind)];
  const uint64_t n = st.seen++;
  if (n < s.after) return false;
  if (st.fired >= s.count) return false;
  bool hit;
  if (s.p > 0.0) {
    hit = st.rng.uniform() < s.p;
  } else {
    const uint64_t every = s.every == 0 ? 1 : s.every;
    hit = (n - s.after) % every == 0;
  }
  if (hit) ++st.fired;
  return hit;
}

uint64_t FaultSession::arg(FaultKind kind, uint64_t fallback) const {
  const uint64_t a = plan_.spec(kind).arg;
  return a != 0 ? a : fallback;
}

}  // namespace wecsim
