#include "fault/lockstep.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/bits.h"
#include "mem/side_cache.h"

namespace wecsim {

namespace {

std::string hex(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  return buf;
}

}  // namespace

LockstepChecker::LockstepChecker(const Program& program,
                                 const FlatMemory& memory,
                                 const StatsRegistry* stats, size_t history)
    : shadow_(memory.clone()),
      interp_(program, shadow_),
      stats_(stats),
      history_cap_(history) {}

void LockstepChecker::fail(const std::string& reason) const {
  std::ostringstream os;
  os << "lockstep divergence: " << reason;
  os << "\nlast " << history_.size() << " committed instruction(s):";
  for (const CommittedInstr& h : history_) {
    os << "\n  [" << h.cycle << "] tu" << static_cast<unsigned>(h.tu)
       << " iter" << h.iter << ' ' << hex(h.pc) << "  " << to_string(h.instr);
    if (h.instr.writes_reg()) os << "  => " << hex(h.result);
    if (h.is_store) {
      os << "  mem[" << hex(h.mem_addr) << "] <- " << hex(h.store_value);
    }
  }
  if (stats_ != nullptr) {
    os << "\nwec provenance at failure:";
    for (uint32_t i = 0; i < kNumSideOrigins; ++i) {
      const std::string origin(side_origin_name(static_cast<SideOrigin>(i)));
      os << "\n  " << origin << ": fills="
         << stats_->sum_matching("tu", ".side.fill." + origin)
         << " used=" << stats_->sum_matching("tu", ".side.used." + origin)
         << " unused=" << stats_->sum_matching("tu", ".side.unused." + origin);
    }
  }
  throw CheckFailure(os.str());
}

void LockstepChecker::replay(const CommittedInstr& ci) {
  history_.push_back(ci);
  if (history_.size() > history_cap_) history_.pop_front();

  if (interp_.halted()) {
    fail("timing core committed " + to_string(ci.instr) + " at " +
         hex(ci.pc) + " after the functional model halted");
  }
  if (interp_.pc() != ci.pc) {
    fail("PC divergence: functional model at " + hex(interp_.pc()) +
         ", timing core committed " + hex(ci.pc));
  }
  try {
    interp_.step();
  } catch (const SimError& e) {
    fail(std::string("functional model rejected the commit stream: ") +
         e.what());
  }
  ++replayed_;

  const OpcodeInfo& info = opcode_info(ci.instr.op);
  if (info.dst == RegFile::kInt && ci.instr.rd != 0) {
    const Word golden = interp_.int_reg(ci.instr.rd);
    if (golden != ci.result) {
      fail("register divergence at " + hex(ci.pc) + " (" +
           to_string(ci.instr) + "): functional r" +
           std::to_string(ci.instr.rd) + " = " + hex(golden) +
           ", timing committed " + hex(ci.result));
    }
  } else if (info.dst == RegFile::kFp) {
    const Word golden = interp_.fp_reg(ci.instr.rd);
    if (golden != ci.result) {
      fail("register divergence at " + hex(ci.pc) + " (" +
           to_string(ci.instr) + "): functional f" +
           std::to_string(ci.instr.rd) + " = " + hex(golden) +
           ", timing committed " + hex(ci.result));
    }
  }

  if (ci.is_store) {
    // The interpreter just performed the golden store into shadow memory;
    // read it back and compare against what the timing core committed.
    const uint32_t n = ci.mem_bytes > 8 ? 8 : ci.mem_bytes;
    const uint64_t golden = shadow_.read(ci.mem_addr, n);
    const uint64_t committed = ci.store_value & low_mask(8 * n);
    if (golden != committed) {
      fail("store divergence at " + hex(ci.pc) + " (" + to_string(ci.instr) +
           "): functional mem[" + hex(ci.mem_addr) + "] = " + hex(golden) +
           ", timing committed " + hex(committed));
    }
  }
}

void LockstepChecker::finalize(
    const FlatMemory& timing_memory,
    const std::array<Word, kNumIntRegs>& int_regs,
    const std::array<Word, kNumFpRegs>& fp_regs) {
  if (!interp_.halted()) {
    fail("timing simulation halted but the functional model did not (at pc " +
         hex(interp_.pc()) + " after " + std::to_string(replayed_) +
         " replayed commits)");
  }
  for (RegId r = 1; r < kNumIntRegs; ++r) {
    if (interp_.int_reg(r) != int_regs[r]) {
      fail("final state divergence: r" + std::to_string(r) +
           " functional = " + hex(interp_.int_reg(r)) + ", timing = " +
           hex(int_regs[r]));
    }
  }
  for (RegId r = 0; r < kNumFpRegs; ++r) {
    if (interp_.fp_reg(r) != fp_regs[r]) {
      fail("final state divergence: f" + std::to_string(r) +
           " functional = " + hex(interp_.fp_reg(r)) + ", timing = " +
           hex(fp_regs[r]));
    }
  }
  if (auto diff = shadow_.first_difference(timing_memory)) {
    fail("final memory divergence at " + hex(*diff) + ": functional = " +
         hex(shadow_.read(*diff, 8)) + ", timing = " +
         hex(timing_memory.read(*diff, 8)));
  }
}

}  // namespace wecsim
