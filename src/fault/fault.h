// Deterministic fault injection (docs/ROBUSTNESS.md). A FaultPlan describes
// which failure modes to provoke and how often; it is parsed once from the
// WECSIM_FAULTS environment variable (or built programmatically) and then
// drives two kinds of decisions:
//
//   * FaultSession — per-Simulator, stateful, seeded. Every injection site
//     inside the machine (memory fills, branch resolution, commit, wrong
//     threads) asks fire(kind) at each opportunity; the answer stream is a
//     pure function of the plan, so a faulty run is exactly reproducible.
//
//   * FaultPlan::should_fail_point — harness-level, stateless. Worker
//     crash/timeout faults must behave identically whether a sweep runs
//     serially or on a pool of threads, so the decision hashes the
//     (workload, config) point key instead of consuming RNG state.
//
// All kinds except commit_corrupt are timing-only: they perturb when things
// happen, never architectural state, so a lockstep-checked run stays green
// under them. commit_corrupt deliberately breaks architectural state — it is
// the seeded bug the lockstep checker must catch (mutation testing).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/error.h"
#include "common/rng.h"

namespace wecsim {

/// Thrown when an injected fault surfaces as a failure (worker crashes).
/// The harness treats it as transient: retry-with-backoff applies.
class FaultInjected : public SimError {
 public:
  explicit FaultInjected(const std::string& what) : SimError(what) {}
};

/// Every injectable failure mode. Enumerator order is the canonical order
/// used by FaultPlan::describe().
enum class FaultKind : uint8_t {
  kMemDelay,        // mem_delay: fill completes `arg` cycles late
  kMemDrop,         // mem_drop: fill data returns but the L1 line is dropped
  kMispredict,      // mispredict: squash a correctly-predicted branch
  kWrongKill,       // wrong_kill: kill a running wrong thread early
  kSideInvalidate,  // side_invalidate: evict the side cache's LRU line
  kWorkerCrash,     // worker_crash: sweep worker throws FaultInjected
  kWorkerTimeout,   // worker_timeout: sweep worker throws SimTimeout
  kCommitCorrupt,   // commit_corrupt: XOR a committed result with `arg`
};

inline constexpr uint32_t kNumFaultKinds = 8;

/// Stable snake_case name used in WECSIM_FAULTS and reports.
const char* fault_kind_name(FaultKind kind);

/// How often one fault kind fires. Selection: with p > 0, each opportunity
/// fires with probability p; otherwise every `every`-th opportunity fires
/// (every == 0 means every opportunity). `after` opportunities are skipped
/// first, and at most `count` firings happen in total. For the point-level
/// worker faults, `match` restricts injection to points whose
/// "workload|config" key contains it, and `count` bounds the number of
/// *attempts* that fail (count=1 models a transient blip that a retry
/// survives).
struct FaultSpec {
  bool enabled = false;
  double p = 0.0;
  uint64_t every = 0;
  uint64_t after = 0;
  uint64_t count = UINT64_MAX;
  uint64_t arg = 0;
  std::string match;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse a WECSIM_FAULTS string:
  ///   spec   := clause (';' clause)*
  ///   clause := 'seed=' N | kind | kind ':' key '=' val (',' key '=' val)*
  ///   key    := 'p' | 'every' | 'after' | 'count' | 'arg' | 'cycles'
  ///          |  'match'                   ('cycles' is an alias for 'arg')
  /// Throws one SimError listing *all* problems found, not just the first.
  static FaultPlan parse(const std::string& spec);

  /// Plan from $WECSIM_FAULTS (empty plan when unset).
  static FaultPlan from_env();

  bool any() const;
  bool has(FaultKind kind) const { return specs_[index(kind)].enabled; }
  const FaultSpec& spec(FaultKind kind) const { return specs_[index(kind)]; }
  uint64_t seed() const { return seed_; }

  void set_seed(uint64_t seed) { seed_ = seed; }
  void enable(FaultKind kind, const FaultSpec& spec);

  /// Canonical round-trippable description ("" for an empty plan). Also the
  /// result-cache salt: faulty measurements never collide with clean ones.
  std::string describe() const;

  /// Stateless harness-level decision: does `kind` fail attempt number
  /// `attempt` of the point identified by `point_key` ("workload|config")?
  /// Deterministic under any worker interleaving.
  bool should_fail_point(FaultKind kind, const std::string& point_key,
                         uint64_t attempt) const;

 private:
  static size_t index(FaultKind kind) { return static_cast<size_t>(kind); }

  std::array<FaultSpec, kNumFaultKinds> specs_{};
  uint64_t seed_ = 0;
};

/// Per-simulation fault state: one independently-seeded RNG and opportunity
/// counter per kind, so adding opportunities of one kind never perturbs the
/// decision stream of another.
class FaultSession {
 public:
  explicit FaultSession(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Cheap inline guard for hot paths: is this kind enabled at all?
  bool armed(FaultKind kind) const { return plan_.has(kind); }

  /// Register one opportunity for `kind`; true when the fault fires.
  bool fire(FaultKind kind);

  /// The kind's `arg` parameter, or `fallback` when left at 0.
  uint64_t arg(FaultKind kind, uint64_t fallback) const;

  /// How many times `kind` actually fired (reporting / tests).
  uint64_t injected(FaultKind kind) const {
    return state_[static_cast<size_t>(kind)].fired;
  }

 private:
  struct KindState {
    Rng rng{0};
    uint64_t seen = 0;
    uint64_t fired = 0;
  };

  FaultPlan plan_;
  std::array<KindState, kNumFaultKinds> state_;
};

}  // namespace wecsim
