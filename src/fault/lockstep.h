// Lockstep architectural checking (WECSIM_CHECK=lockstep): replay the timing
// simulator's commit stream against the functional interpreter and fail
// loudly on any divergence.
//
// Why the commit stream is comparable at all: the superthreaded execution
// model preserves sequential memory semantics (target-store forwarding plus
// in-order write-back), so the instructions committed by *correct* threads,
// concatenated in iteration order, are exactly the sequential instruction
// stream the interpreter executes. ThreadUnit buffers each parallel
// iteration's commits and flushes them at THEND/ENDPAR — which the WB_DONE
// chain already serializes in iteration order — while sequential commits
// replay immediately. Wrong threads and wrong-path work never reach the
// checker.
//
// The checker owns a private clone of post-init architectural memory: the
// timing simulator's FlatMemory runs ahead of the replay point (write-back
// drains whole iterations at once), so sharing it would poison the golden
// model's loads.
#pragma once

#include <array>
#include <deque>
#include <string>

#include "common/error.h"
#include "common/stats.h"
#include "fault/committed_instr.h"
#include "func/interpreter.h"
#include "isa/program.h"
#include "mem/flat_memory.h"

namespace wecsim {

/// Structured lockstep divergence: the reason, the last N committed
/// instructions, and the WEC provenance books at the moment of failure.
class CheckFailure : public SimError {
 public:
  explicit CheckFailure(const std::string& what) : SimError(what) {}
};

class LockstepChecker {
 public:
  /// Clones `memory` (the post-workload-init architectural image) as the
  /// golden model's private memory. `stats` (may be null) supplies the WEC
  /// provenance snapshot attached to failures.
  LockstepChecker(const Program& program, const FlatMemory& memory,
                  const StatsRegistry* stats, size_t history = 32);

  /// Replay one committed instruction. Throws CheckFailure on divergence
  /// (PC, register result, or stored value).
  void replay(const CommittedInstr& ci);

  /// End-of-run check: the golden model must have halted, every committed
  /// register must match the sequential thread's, and the two memory images
  /// must be identical. Throws CheckFailure on divergence.
  void finalize(const FlatMemory& timing_memory,
                const std::array<Word, kNumIntRegs>& int_regs,
                const std::array<Word, kNumFpRegs>& fp_regs);

  uint64_t replayed() const { return replayed_; }

 private:
  [[noreturn]] void fail(const std::string& reason) const;

  FlatMemory shadow_;
  Interpreter interp_;
  const StatsRegistry* stats_;
  size_t history_cap_;
  std::deque<CommittedInstr> history_;
  uint64_t replayed_ = 0;
};

}  // namespace wecsim
