# Empty dependencies file for bench_ext_bpred.
# This may be replaced when dependencies are built.
