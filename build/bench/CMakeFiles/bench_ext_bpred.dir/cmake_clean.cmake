file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bpred.dir/bench_ext_bpred.cc.o"
  "CMakeFiles/bench_ext_bpred.dir/bench_ext_bpred.cc.o.d"
  "bench_ext_bpred"
  "bench_ext_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
