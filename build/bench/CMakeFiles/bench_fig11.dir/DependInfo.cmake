
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11.cc" "bench/CMakeFiles/bench_fig11.dir/bench_fig11.cc.o" "gcc" "bench/CMakeFiles/bench_fig11.dir/bench_fig11.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/wecsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/wecsim_func.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wecsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/wecsim_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/wecsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wecsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wecsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/wecsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wecsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
