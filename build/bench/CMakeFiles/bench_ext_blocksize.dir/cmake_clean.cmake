file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_blocksize.dir/bench_ext_blocksize.cc.o"
  "CMakeFiles/bench_ext_blocksize.dir/bench_ext_blocksize.cc.o.d"
  "bench_ext_blocksize"
  "bench_ext_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
