# Empty compiler generated dependencies file for bench_ext_blocksize.
# This may be replaced when dependencies are built.
