# Empty dependencies file for bench_ext_memlat.
# This may be replaced when dependencies are built.
