file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_memlat.dir/bench_ext_memlat.cc.o"
  "CMakeFiles/bench_ext_memlat.dir/bench_ext_memlat.cc.o.d"
  "bench_ext_memlat"
  "bench_ext_memlat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_memlat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
