# Empty dependencies file for wecsim_core.
# This may be replaced when dependencies are built.
