file(REMOVE_RECURSE
  "CMakeFiles/wecsim_core.dir/sim_config.cc.o"
  "CMakeFiles/wecsim_core.dir/sim_config.cc.o.d"
  "CMakeFiles/wecsim_core.dir/simulator.cc.o"
  "CMakeFiles/wecsim_core.dir/simulator.cc.o.d"
  "libwecsim_core.a"
  "libwecsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
