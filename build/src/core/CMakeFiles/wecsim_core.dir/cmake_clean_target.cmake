file(REMOVE_RECURSE
  "libwecsim_core.a"
)
