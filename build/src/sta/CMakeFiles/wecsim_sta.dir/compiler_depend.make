# Empty compiler generated dependencies file for wecsim_sta.
# This may be replaced when dependencies are built.
