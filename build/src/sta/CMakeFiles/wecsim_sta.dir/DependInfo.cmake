
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/memory_buffer.cc" "src/sta/CMakeFiles/wecsim_sta.dir/memory_buffer.cc.o" "gcc" "src/sta/CMakeFiles/wecsim_sta.dir/memory_buffer.cc.o.d"
  "/root/repo/src/sta/sta_processor.cc" "src/sta/CMakeFiles/wecsim_sta.dir/sta_processor.cc.o" "gcc" "src/sta/CMakeFiles/wecsim_sta.dir/sta_processor.cc.o.d"
  "/root/repo/src/sta/thread_unit.cc" "src/sta/CMakeFiles/wecsim_sta.dir/thread_unit.cc.o" "gcc" "src/sta/CMakeFiles/wecsim_sta.dir/thread_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/wecsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wecsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/wecsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wecsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
