file(REMOVE_RECURSE
  "CMakeFiles/wecsim_sta.dir/memory_buffer.cc.o"
  "CMakeFiles/wecsim_sta.dir/memory_buffer.cc.o.d"
  "CMakeFiles/wecsim_sta.dir/sta_processor.cc.o"
  "CMakeFiles/wecsim_sta.dir/sta_processor.cc.o.d"
  "CMakeFiles/wecsim_sta.dir/thread_unit.cc.o"
  "CMakeFiles/wecsim_sta.dir/thread_unit.cc.o.d"
  "libwecsim_sta.a"
  "libwecsim_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
