file(REMOVE_RECURSE
  "libwecsim_sta.a"
)
