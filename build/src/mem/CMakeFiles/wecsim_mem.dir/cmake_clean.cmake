file(REMOVE_RECURSE
  "CMakeFiles/wecsim_mem.dir/cache.cc.o"
  "CMakeFiles/wecsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/wecsim_mem.dir/flat_memory.cc.o"
  "CMakeFiles/wecsim_mem.dir/flat_memory.cc.o.d"
  "CMakeFiles/wecsim_mem.dir/mem_system.cc.o"
  "CMakeFiles/wecsim_mem.dir/mem_system.cc.o.d"
  "CMakeFiles/wecsim_mem.dir/side_cache.cc.o"
  "CMakeFiles/wecsim_mem.dir/side_cache.cc.o.d"
  "libwecsim_mem.a"
  "libwecsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
