file(REMOVE_RECURSE
  "libwecsim_mem.a"
)
