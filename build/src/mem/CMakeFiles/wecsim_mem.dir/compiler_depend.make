# Empty compiler generated dependencies file for wecsim_mem.
# This may be replaced when dependencies are built.
