file(REMOVE_RECURSE
  "CMakeFiles/wecsim_cpu.dir/bpred.cc.o"
  "CMakeFiles/wecsim_cpu.dir/bpred.cc.o.d"
  "CMakeFiles/wecsim_cpu.dir/core.cc.o"
  "CMakeFiles/wecsim_cpu.dir/core.cc.o.d"
  "libwecsim_cpu.a"
  "libwecsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
