file(REMOVE_RECURSE
  "libwecsim_cpu.a"
)
