# Empty dependencies file for wecsim_cpu.
# This may be replaced when dependencies are built.
