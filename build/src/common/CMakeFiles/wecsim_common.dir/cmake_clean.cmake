file(REMOVE_RECURSE
  "CMakeFiles/wecsim_common.dir/log.cc.o"
  "CMakeFiles/wecsim_common.dir/log.cc.o.d"
  "CMakeFiles/wecsim_common.dir/stats.cc.o"
  "CMakeFiles/wecsim_common.dir/stats.cc.o.d"
  "libwecsim_common.a"
  "libwecsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
