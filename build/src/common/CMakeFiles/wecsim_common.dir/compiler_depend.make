# Empty compiler generated dependencies file for wecsim_common.
# This may be replaced when dependencies are built.
