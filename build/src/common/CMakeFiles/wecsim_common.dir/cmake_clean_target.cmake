file(REMOVE_RECURSE
  "libwecsim_common.a"
)
