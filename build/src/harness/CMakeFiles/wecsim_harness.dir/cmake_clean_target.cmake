file(REMOVE_RECURSE
  "libwecsim_harness.a"
)
