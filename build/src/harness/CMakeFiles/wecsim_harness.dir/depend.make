# Empty dependencies file for wecsim_harness.
# This may be replaced when dependencies are built.
