file(REMOVE_RECURSE
  "CMakeFiles/wecsim_harness.dir/experiment.cc.o"
  "CMakeFiles/wecsim_harness.dir/experiment.cc.o.d"
  "CMakeFiles/wecsim_harness.dir/table.cc.o"
  "CMakeFiles/wecsim_harness.dir/table.cc.o.d"
  "libwecsim_harness.a"
  "libwecsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
