file(REMOVE_RECURSE
  "libwecsim_isa.a"
)
