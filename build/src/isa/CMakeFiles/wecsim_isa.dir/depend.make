# Empty dependencies file for wecsim_isa.
# This may be replaced when dependencies are built.
