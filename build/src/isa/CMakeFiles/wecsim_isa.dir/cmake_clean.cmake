file(REMOVE_RECURSE
  "CMakeFiles/wecsim_isa.dir/assembler.cc.o"
  "CMakeFiles/wecsim_isa.dir/assembler.cc.o.d"
  "CMakeFiles/wecsim_isa.dir/disasm.cc.o"
  "CMakeFiles/wecsim_isa.dir/disasm.cc.o.d"
  "CMakeFiles/wecsim_isa.dir/isa.cc.o"
  "CMakeFiles/wecsim_isa.dir/isa.cc.o.d"
  "CMakeFiles/wecsim_isa.dir/program.cc.o"
  "CMakeFiles/wecsim_isa.dir/program.cc.o.d"
  "CMakeFiles/wecsim_isa.dir/semantics.cc.o"
  "CMakeFiles/wecsim_isa.dir/semantics.cc.o.d"
  "libwecsim_isa.a"
  "libwecsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
