file(REMOVE_RECURSE
  "CMakeFiles/wecsim_workloads.dir/equake_like.cc.o"
  "CMakeFiles/wecsim_workloads.dir/equake_like.cc.o.d"
  "CMakeFiles/wecsim_workloads.dir/expand.cc.o"
  "CMakeFiles/wecsim_workloads.dir/expand.cc.o.d"
  "CMakeFiles/wecsim_workloads.dir/gzip_like.cc.o"
  "CMakeFiles/wecsim_workloads.dir/gzip_like.cc.o.d"
  "CMakeFiles/wecsim_workloads.dir/mcf_like.cc.o"
  "CMakeFiles/wecsim_workloads.dir/mcf_like.cc.o.d"
  "CMakeFiles/wecsim_workloads.dir/mesa_like.cc.o"
  "CMakeFiles/wecsim_workloads.dir/mesa_like.cc.o.d"
  "CMakeFiles/wecsim_workloads.dir/parser_like.cc.o"
  "CMakeFiles/wecsim_workloads.dir/parser_like.cc.o.d"
  "CMakeFiles/wecsim_workloads.dir/vpr_like.cc.o"
  "CMakeFiles/wecsim_workloads.dir/vpr_like.cc.o.d"
  "CMakeFiles/wecsim_workloads.dir/workload.cc.o"
  "CMakeFiles/wecsim_workloads.dir/workload.cc.o.d"
  "libwecsim_workloads.a"
  "libwecsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
