file(REMOVE_RECURSE
  "libwecsim_workloads.a"
)
