
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/equake_like.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/equake_like.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/equake_like.cc.o.d"
  "/root/repo/src/workloads/expand.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/expand.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/expand.cc.o.d"
  "/root/repo/src/workloads/gzip_like.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/gzip_like.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/gzip_like.cc.o.d"
  "/root/repo/src/workloads/mcf_like.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/mcf_like.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/mcf_like.cc.o.d"
  "/root/repo/src/workloads/mesa_like.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/mesa_like.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/mesa_like.cc.o.d"
  "/root/repo/src/workloads/parser_like.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/parser_like.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/parser_like.cc.o.d"
  "/root/repo/src/workloads/vpr_like.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/vpr_like.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/vpr_like.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/wecsim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/wecsim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/wecsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wecsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wecsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
