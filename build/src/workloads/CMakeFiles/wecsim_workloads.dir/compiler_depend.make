# Empty compiler generated dependencies file for wecsim_workloads.
# This may be replaced when dependencies are built.
