# Empty dependencies file for wecsim_func.
# This may be replaced when dependencies are built.
