file(REMOVE_RECURSE
  "CMakeFiles/wecsim_func.dir/interpreter.cc.o"
  "CMakeFiles/wecsim_func.dir/interpreter.cc.o.d"
  "libwecsim_func.a"
  "libwecsim_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wecsim_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
