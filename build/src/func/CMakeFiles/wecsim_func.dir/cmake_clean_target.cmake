file(REMOVE_RECURSE
  "libwecsim_func.a"
)
