file(REMOVE_RECURSE
  "CMakeFiles/superthreaded_loop.dir/superthreaded_loop.cpp.o"
  "CMakeFiles/superthreaded_loop.dir/superthreaded_loop.cpp.o.d"
  "superthreaded_loop"
  "superthreaded_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superthreaded_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
