# Empty dependencies file for superthreaded_loop.
# This may be replaced when dependencies are built.
