# Empty compiler generated dependencies file for wrong_path_prefetch.
# This may be replaced when dependencies are built.
