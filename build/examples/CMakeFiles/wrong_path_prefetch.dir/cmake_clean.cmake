file(REMOVE_RECURSE
  "CMakeFiles/wrong_path_prefetch.dir/wrong_path_prefetch.cpp.o"
  "CMakeFiles/wrong_path_prefetch.dir/wrong_path_prefetch.cpp.o.d"
  "wrong_path_prefetch"
  "wrong_path_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrong_path_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
