# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/mem_system_test[1]_include.cmake")
include("/root/repo/build/tests/bpred_test[1]_include.cmake")
include("/root/repo/build/tests/membuf_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/workload_structure_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/mem_policy_property_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_table3_test[1]_include.cmake")
include("/root/repo/build/tests/disasm_test[1]_include.cmake")
