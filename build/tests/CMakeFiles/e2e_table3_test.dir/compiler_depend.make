# Empty compiler generated dependencies file for e2e_table3_test.
# This may be replaced when dependencies are built.
