# Empty dependencies file for membuf_test.
# This may be replaced when dependencies are built.
