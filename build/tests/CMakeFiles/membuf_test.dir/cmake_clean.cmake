file(REMOVE_RECURSE
  "CMakeFiles/membuf_test.dir/membuf_test.cc.o"
  "CMakeFiles/membuf_test.dir/membuf_test.cc.o.d"
  "membuf_test"
  "membuf_test.pdb"
  "membuf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
