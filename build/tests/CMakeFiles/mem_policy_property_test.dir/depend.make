# Empty dependencies file for mem_policy_property_test.
# This may be replaced when dependencies are built.
