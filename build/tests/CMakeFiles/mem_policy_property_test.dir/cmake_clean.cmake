file(REMOVE_RECURSE
  "CMakeFiles/mem_policy_property_test.dir/mem_policy_property_test.cc.o"
  "CMakeFiles/mem_policy_property_test.dir/mem_policy_property_test.cc.o.d"
  "mem_policy_property_test"
  "mem_policy_property_test.pdb"
  "mem_policy_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_policy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
