// Lockstep architectural checking (docs/ROBUSTNESS.md): the timing core's
// committed instruction stream, concatenated across thread units in
// write-back (= iteration) order, must replay cleanly on the functional
// interpreter. The mutation tests seed a deliberate commit-stage bug
// (commit_corrupt fault) and require the checker to catch it — the checker
// is only trustworthy if it fails when the machine is actually broken.
#include <gtest/gtest.h>

#include <string>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "fault/fault.h"
#include "fault/lockstep.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

SimResult run_workload(const std::string& name, PaperConfig config,
                       bool lockstep, const std::string& faults = "") {
  WorkloadParams params;
  params.scale = 1;
  Workload w = make_workload(name, params);
  Simulator sim(w.program, make_paper_config(config));
  if (lockstep) sim.enable_lockstep();
  if (!faults.empty()) sim.set_fault_plan(FaultPlan::parse(faults));
  w.init(sim.memory());
  return sim.run();
}

TEST(Lockstep, CleanRunsReplayCleanlyAcrossWorkloads) {
  for (const std::string& name : workload_names()) {
    SimResult result;
    ASSERT_NO_THROW(result = run_workload(name, PaperConfig::kWthWpWec,
                                          /*lockstep=*/true))
        << name;
    EXPECT_TRUE(result.halted) << name;
  }
}

TEST(Lockstep, CleanRunsReplayCleanlyAcrossConfigs) {
  for (PaperConfig config : kAllPaperConfigs) {
    SimResult result;
    ASSERT_NO_THROW(result = run_workload("mcf", config, /*lockstep=*/true))
        << paper_config_name(config);
    EXPECT_TRUE(result.halted) << paper_config_name(config);
  }
}

TEST(Lockstep, CheckerIsTimingNeutral) {
  const SimResult plain =
      run_workload("mcf", PaperConfig::kWthWpWec, /*lockstep=*/false);
  const SimResult checked =
      run_workload("mcf", PaperConfig::kWthWpWec, /*lockstep=*/true);
  EXPECT_EQ(plain.cycles, checked.cycles);
  EXPECT_EQ(plain.committed, checked.committed);
}

// The mutation test: seed a commit-stage bug (a committed result has one bit
// flipped just before it becomes architectural) and require the checker to
// raise a structured CheckFailure naming the divergence.
TEST(Lockstep, CatchesSeededCommitStageBug) {
  try {
    run_workload("mcf", PaperConfig::kWthWpWec, /*lockstep=*/true,
                 "seed=7;commit_corrupt:after=500,count=1,arg=4096");
    FAIL() << "seeded commit-stage bug went undetected";
  } catch (const CheckFailure& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("lockstep divergence"), std::string::npos)
        << message;
    EXPECT_NE(message.find("committed instruction"), std::string::npos)
        << message;
    EXPECT_NE(message.find("wec provenance at failure"), std::string::npos)
        << message;
  }
}

// Without the checker the same seeded bug is silent (the run still halts):
// exactly the gap lockstep checking exists to close.
TEST(Lockstep, SeededBugIsSilentWithoutChecker) {
  SimResult result;
  ASSERT_NO_THROW(
      result = run_workload("mcf", PaperConfig::kWthWpWec, /*lockstep=*/false,
                            "seed=7;commit_corrupt:after=500,count=1,arg=4096"));
  EXPECT_TRUE(result.halted);
}

// Timing-only faults perturb when things happen, never architectural state:
// a lockstep-checked run must stay green under all of them at once.
TEST(Lockstep, TimingFaultsStayArchitecturallyClean) {
  SimResult result;
  ASSERT_NO_THROW(result = run_workload(
                      "mcf", PaperConfig::kWthWpWec, /*lockstep=*/true,
                      "seed=3;mem_delay:every=97,cycles=40;mem_drop:every=131;"
                      "mispredict:every=211;wrong_kill:every=53;"
                      "side_invalidate:every=89"));
  EXPECT_TRUE(result.halted);
}

// Timing faults must change the timing to be worth anything.
TEST(Lockstep, InjectedDelaysActuallySlowTheMachine) {
  const SimResult clean =
      run_workload("mcf", PaperConfig::kWthWpWec, /*lockstep=*/false);
  const SimResult delayed =
      run_workload("mcf", PaperConfig::kWthWpWec, /*lockstep=*/false,
                   "mem_delay:every=3,cycles=300");
  EXPECT_GT(delayed.cycles, clean.cycles);
}

}  // namespace
}  // namespace wecsim
