// Out-of-order core correctness: directed pipeline cases plus a randomized
// differential property test — for any generated program, the timing core's
// committed architectural state must equal the functional interpreter's,
// regardless of speculation depth or wrong-path execution.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "func/interpreter.h"
#include "isa/assembler.h"

namespace wecsim {
namespace {

struct DualRun {
  Program program;
  FlatMemory ref_mem;
  FuncResult func;
  SimResult sim;
  std::unique_ptr<Simulator> simulator;
};

DualRun run_both(const std::string& source, PaperConfig config) {
  DualRun r;
  r.program = assemble(source);
  r.ref_mem.load_program(r.program);
  Interpreter interp(r.program, r.ref_mem);
  r.func = interp.run(10'000'000);
  EXPECT_TRUE(r.func.halted);

  r.simulator =
      std::make_unique<Simulator>(r.program, make_paper_config(config, 1));
  r.sim = r.simulator->run();
  EXPECT_TRUE(r.sim.halted);
  return r;
}

TEST(OooCore, DependentChainCommitsInOrder) {
  auto r = run_both(R"(
  .data
out: .space 32
  .text
  li r1, 1
  add r2, r1, r1
  add r3, r2, r2
  mul r4, r3, r3
  la r5, out
  sd r4, 0(r5)
  halt
)",
                    PaperConfig::kOrig);
  EXPECT_EQ(r.simulator->memory().read_u64(r.program.symbol("out")), 16u);
}

TEST(OooCore, StoreToLoadForwarding) {
  auto r = run_both(R"(
  .data
buf: .dword 0
out: .dword 0
  .text
  la r1, buf
  li r2, 77
  sd r2, 0(r1)
  ld r3, 0(r1)       # must forward from the in-flight store
  addi r3, r3, 1
  la r4, out
  sd r3, 0(r4)
  halt
)",
                    PaperConfig::kOrig);
  EXPECT_EQ(r.simulator->memory().read_u64(r.program.symbol("out")), 78u);
}

TEST(OooCore, PartialOverlapStoreLoadIsExact) {
  auto r = run_both(R"(
  .data
buf: .dword 0
out: .dword 0
  .text
  la r1, buf
  li r2, 0x1122334455667788
  sd r2, 0(r1)
  li r3, 0xAB
  sb r3, 2(r1)       # overwrite byte 2
  ld r4, 0(r1)       # partially overlapping: must see the merged value
  la r5, out
  sd r4, 0(r5)
  halt
)",
                    PaperConfig::kOrig);
  EXPECT_EQ(r.simulator->memory().read_u64(r.program.symbol("out")),
            0x1122334455AB7788ull);
}

TEST(OooCore, MispredictedLoopExitRecovers) {
  auto r = run_both(R"(
  .data
out: .dword 0
  .text
  li r1, 0
  li r2, 100
loop:
  addi r1, r1, 1
  blt r1, r2, loop    # mispredicts at exit once trained taken
  la r3, out
  sd r1, 0(r3)
  halt
)",
                    PaperConfig::kOrig);
  EXPECT_EQ(r.simulator->memory().read_u64(r.program.symbol("out")), 100u);
  EXPECT_GE(r.sim.mispredicts, 1u);
}

TEST(OooCore, WrongPathLoadsAreIssuedAndDiscarded) {
  // A data-dependent branch selects between two arrays; the wrong path's
  // load must reach the cache (wp mode) without changing any result.
  auto r = run_both(R"(
  .data
a:   .space 512
b:   .space 512
out: .dword 0
  .text
  li r1, 0
  li r2, 64
  li r10, 0
loop:
  andi r3, r1, 1
  la r4, a
  la r5, b
  slli r6, r1, 3
  beqz r3, even
  add r7, r5, r6
  ld r8, 0(r7)
  j next
even:
  add r7, r4, r6
  ld r8, 0(r7)
next:
  add r10, r10, r8
  addi r1, r1, 1
  blt r1, r2, loop
  la r9, out
  sd r10, 0(r9)
  halt
)",
                    PaperConfig::kWp);
  EXPECT_EQ(r.simulator->memory().read_u64(r.program.symbol("out")),
            r.ref_mem.read_u64(r.program.symbol("out")));
}

TEST(OooCore, IndirectJumpThroughRegister) {
  auto r = run_both(R"(
  .data
out: .dword 0
  .text
  la r1, target
  jalr r5, r1, 0
dead:
  li r2, 666        # must be skipped
target:
  li r2, 42
  la r3, out
  sd r2, 0(r3)
  halt
)",
                    PaperConfig::kOrig);
  EXPECT_EQ(r.simulator->memory().read_u64(r.program.symbol("out")), 42u);
}

TEST(OooCore, DivideLatencyDoesNotReorderResults) {
  auto r = run_both(R"(
  .data
out: .space 16
  .text
  li r1, 1000
  li r2, 7
  div r3, r1, r2     # long latency
  addi r4, r2, 1     # independent, completes first
  la r5, out
  sd r3, 0(r5)
  sd r4, 8(r5)
  halt
)",
                    PaperConfig::kOrig);
  const Addr out = r.program.symbol("out");
  EXPECT_EQ(r.simulator->memory().read_u64(out), 142u);
  EXPECT_EQ(r.simulator->memory().read_u64(out + 8), 8u);
}

// ---------------------------------------------------------------------------
// Randomized differential property test
// ---------------------------------------------------------------------------

/// Generates a terminating program: an outer counted loop whose body is a
/// random mix of ALU ops, loads/stores into a scratch region, FP ops, and
/// short data-dependent forward branches. Results are spilled to memory at
/// the end for comparison.
std::string generate_program(uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  os << "  .data\nscratch:\n  .space 512\nregs_out:\n  .space 256\n"
     << "  .text\n"
     << "  la r19, scratch\n"
     << "  li r20, 0\n"            // loop counter
     << "  li r21, " << 3 + rng.below(6) << "\n"  // trip count
     << "  fli f1, 1.5\n  fli f2, 0.25\n";
  // Seed some registers.
  for (int reg = 1; reg <= 8; ++reg) {
    os << "  li r" << reg << ", " << static_cast<int64_t>(rng.below(1000)) - 500
       << "\n";
  }
  os << "loop:\n";
  int label = 0;
  const int body_len = 12 + static_cast<int>(rng.below(20));
  for (int i = 0; i < body_len; ++i) {
    const auto a = 1 + rng.below(15), b = 1 + rng.below(15),
               c = 1 + rng.below(15);
    switch (rng.below(8)) {
      case 0:
        os << "  add r" << a << ", r" << b << ", r" << c << "\n";
        break;
      case 1:
        os << "  mul r" << a << ", r" << b << ", r" << c << "\n";
        break;
      case 2:
        os << "  xor r" << a << ", r" << b << ", r" << c << "\n";
        break;
      case 3:  // store then load elsewhere
        os << "  andi r16, r" << b << ", 63\n"
           << "  slli r16, r16, 3\n"
           << "  add r16, r16, r19\n"
           << "  sd r" << c << ", 0(r16)\n";
        break;
      case 4:
        os << "  andi r17, r" << b << ", 63\n"
           << "  slli r17, r17, 3\n"
           << "  add r17, r17, r19\n"
           << "  ld r" << a << ", 0(r17)\n";
        break;
      case 5:  // forward branch over one instruction
        os << "  beq r" << a << ", r" << b << ", skip" << label << "\n"
           << "  addi r" << c << ", r" << c << ", 13\n"
           << "skip" << label << ":\n";
        ++label;
        break;
      case 6:
        os << "  fadd f3, f1, f2\n  fmul f1, f3, f2\n";
        break;
      case 7:
        os << "  srai r" << a << ", r" << b << ", 3\n";
        break;
    }
  }
  os << "  addi r20, r20, 1\n  blt r20, r21, loop\n";
  // Spill r1..r15 and the FP accumulator for comparison.
  os << "  la r18, regs_out\n";
  for (int reg = 1; reg <= 15; ++reg) {
    os << "  sd r" << reg << ", " << (reg * 8) << "(r18)\n";
  }
  os << "  fsd f1, 128(r18)\n  halt\n";
  return os.str();
}

class RandomProgram
    : public ::testing::TestWithParam<std::tuple<uint64_t, PaperConfig>> {};

TEST_P(RandomProgram, TimingMatchesFunctional) {
  const auto [seed, config] = GetParam();
  const std::string source = generate_program(seed);
  auto r = run_both(source, config);
  const Addr regs_out = r.program.symbol("regs_out");
  for (int reg = 1; reg <= 15; ++reg) {
    EXPECT_EQ(r.simulator->memory().read_u64(regs_out + reg * 8),
              r.ref_mem.read_u64(regs_out + reg * 8))
        << "r" << reg << " diverged (seed " << seed << ")";
  }
  EXPECT_EQ(r.simulator->memory().read_u64(regs_out + 128),
            r.ref_mem.read_u64(regs_out + 128))
      << "f1 diverged (seed " << seed << ")";
  const Addr scratch = r.program.symbol("scratch");
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(r.simulator->memory().read_u64(scratch + 8 * i),
              r.ref_mem.read_u64(scratch + 8 * i))
        << "scratch[" << i << "] diverged (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgram,
    ::testing::Combine(::testing::Range<uint64_t>(1, 26),
                       ::testing::Values(PaperConfig::kOrig, PaperConfig::kWp,
                                         PaperConfig::kWthWpWec)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace wecsim
