// Functional interpreter: instruction semantics end to end, the sequential
// thread model for superthreaded ops, accounting, and error detection.
#include <gtest/gtest.h>

#include "common/error.h"
#include "func/interpreter.h"
#include "isa/assembler.h"

namespace wecsim {
namespace {

struct Run {
  Program program;
  FlatMemory memory;
  FuncResult result;
};

Run run(const char* source, uint64_t max_instrs = 1'000'000) {
  Run r{assemble(source), {}, {}};
  r.memory.load_program(r.program);
  Interpreter interp(r.program, r.memory);
  r.result = interp.run(max_instrs);
  return r;
}

TEST(Interpreter, ArithmeticAndMemory) {
  auto r = run(R"(
  .data
out: .dword 0
  .text
  li r1, 6
  li r2, 7
  mul r3, r1, r2
  la r4, out
  sd r3, 0(r4)
  halt
)");
  EXPECT_TRUE(r.result.halted);
  EXPECT_EQ(r.memory.read_u64(r.program.symbol("out")), 42u);
  EXPECT_EQ(r.result.instrs_total, 6u);
  EXPECT_EQ(r.result.stores, 1u);
}

TEST(Interpreter, LoopAndBranchAccounting) {
  auto r = run(R"(
  li r1, 0
  li r2, 10
loop:
  addi r1, r1, 1
  blt r1, r2, loop
  halt
)");
  EXPECT_TRUE(r.result.halted);
  EXPECT_EQ(r.result.branches, 10u);
  EXPECT_EQ(r.result.branches_taken, 9u);
}

TEST(Interpreter, CallAndReturn) {
  auto r = run(R"(
  .data
out: .dword 0
  .text
  li r1, 5
  call double_it
  la r3, out
  sd r1, 0(r3)
  halt
double_it:
  slli r1, r1, 1
  ret
)");
  EXPECT_EQ(r.memory.read_u64(r.program.symbol("out")), 10u);
}

TEST(Interpreter, SubWordLoadsAndStores) {
  auto r = run(R"(
  .data
buf: .dword 0
out: .space 32
  .text
  la r1, buf
  li r2, -1
  sb r2, 0(r1)          # one 0xff byte
  lb r3, 0(r1)          # sign-extends to -1
  lbu r4, 0(r1)         # zero-extends to 255
  lw r5, 0(r1)          # 0x000000ff
  la r6, out
  sd r3, 0(r6)
  sd r4, 8(r6)
  sd r5, 16(r6)
  halt
)");
  const Addr out = r.program.symbol("out");
  EXPECT_EQ(r.memory.read_u64(out), static_cast<uint64_t>(-1));
  EXPECT_EQ(r.memory.read_u64(out + 8), 255u);
  EXPECT_EQ(r.memory.read_u64(out + 16), 255u);
}

TEST(Interpreter, FpPipeline) {
  auto r = run(R"(
  .data
out: .dword 0
  .text
  fli f1, 2.5
  fli f2, 4.0
  fmul f3, f1, f2
  fcvt.l.d r1, f3
  la r2, out
  sd r1, 0(r2)
  halt
)");
  EXPECT_EQ(r.memory.read_u64(r.program.symbol("out")), 10u);
}

TEST(Interpreter, ForkRunsChildAfterParentEnds) {
  auto r = run(R"(
  .data
order: .space 16
  .text
  li r9, 0          # slot counter
  begin
  jal r0, body
body:
  # parent records first, THEN forks: the child's register snapshot sees
  # the incremented slot counter
  la r1, order
  slli r2, r9, 3
  add r1, r1, r2
  li r3, 111
  sd r3, 0(r1)
  addi r9, r9, 1
  forksp child_code
  tsagd
  thend
child_code:
  tsagd
  la r1, order
  slli r2, r9, 3
  add r1, r1, r2
  li r3, 222
  sd r3, 0(r1)
  abort
  endpar
  halt
)");
  EXPECT_TRUE(r.result.halted);
  EXPECT_EQ(r.result.forks, 1u);
  EXPECT_EQ(r.result.parallel_regions, 1u);
  const Addr order = r.program.symbol("order");
  EXPECT_EQ(r.memory.read_u64(order), 111u);
  EXPECT_EQ(r.memory.read_u64(order + 8), 222u);  // child saw r9 == 1
}

TEST(Interpreter, AbortDiscardsPendingFork) {
  auto r = run(R"(
  begin
  jal r0, body
body:
  forksp body       # would loop forever if abort did not kill it
  tsagd
  abort
  endpar
  halt
)");
  EXPECT_TRUE(r.result.halted);
  EXPECT_EQ(r.result.forks, 1u);
}

TEST(Interpreter, ParallelFractionAccounting) {
  auto r = run(R"(
  li r1, 1           # sequential
  li r2, 2
  begin
  jal r0, body
body:
  forksp dummy
  tsagd
  abort
  endpar
  li r3, 3           # sequential again
  halt
dummy:
  thend
)");
  EXPECT_GT(r.result.instrs_parallel, 0u);
  EXPECT_LT(r.result.instrs_parallel, r.result.instrs_total);
  EXPECT_GT(r.result.fraction_parallel(), 0.0);
  EXPECT_LT(r.result.fraction_parallel(), 1.0);
}

TEST(Interpreter, ThendWithoutForkThrows) {
  EXPECT_THROW(run("begin\nthend\nhalt\n"), SimError);
}

TEST(Interpreter, ForkOutsideRegionThrows) {
  EXPECT_THROW(run("forksp target\ntarget:\nhalt\n"), SimError);
}

TEST(Interpreter, EndparWithLiveSuccessorsThrows) {
  EXPECT_THROW(run(R"(
  begin
  forksp dummy
  endpar
  halt
dummy:
  thend
)"),
               SimError);
}

TEST(Interpreter, RunawayProgramHitsInstructionCap) {
  auto r = run("spin:\n  j spin\n", /*max_instrs=*/1000);
  EXPECT_FALSE(r.result.halted);
  EXPECT_EQ(r.result.instrs_total, 1000u);
}

TEST(Interpreter, InvalidPcThrows) {
  Program p = assemble("j somewhere\n.equ somewhere, 0x9999000\n");
  FlatMemory memory;
  Interpreter interp(p, memory);
  EXPECT_THROW(interp.run(10), SimError);
}

TEST(Interpreter, ResetRestoresInitialState) {
  Program p = assemble("li r1, 42\nhalt\n");
  FlatMemory memory;
  Interpreter interp(p, memory);
  interp.run();
  EXPECT_EQ(interp.int_reg(1), 42u);
  interp.reset();
  EXPECT_EQ(interp.int_reg(1), 0u);
  EXPECT_FALSE(interp.halted());
  interp.run();
  EXPECT_EQ(interp.int_reg(1), 42u);
}

TEST(Interpreter, R0StaysZero) {
  auto r = run(R"(
  .data
out: .dword 0
  .text
  addi r0, r0, 99
  la r1, out
  sd r0, 0(r1)
  halt
)");
  EXPECT_EQ(r.memory.read_u64(r.program.symbol("out")), 0u);
}

}  // namespace
}  // namespace wecsim
