// Differential validation of every workload: the timing simulator must leave
// exactly the checksum the functional interpreter computes, in the baseline
// and in the full wrong-execution configuration (wrong execution must never
// change architectural state), across thread-unit counts.
#include <gtest/gtest.h>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "func/interpreter.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

struct Case {
  const char* workload;
  PaperConfig config;
  uint32_t num_tus;
};

class WorkloadDiff : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadDiff, ChecksumMatchesInterpreter) {
  const Case& c = GetParam();
  WorkloadParams params;
  params.scale = 1;  // small & quick for tests
  Workload w = make_workload(c.workload, params);

  FlatMemory ref_mem;
  ref_mem.load_program(w.program);
  w.init(ref_mem);
  Interpreter interp(w.program, ref_mem);
  FuncResult func = interp.run(50'000'000);
  ASSERT_TRUE(func.halted) << "interpreter did not finish";
  ASSERT_GT(func.forks, 0u) << "workload never forked";
  ASSERT_GT(func.instrs_parallel, 0u);

  Simulator sim(w.program, make_paper_config(c.config, c.num_tus));
  w.init(sim.memory());
  SimResult result = sim.run();
  ASSERT_TRUE(result.halted) << "timing simulation did not finish";
  EXPECT_EQ(sim.memory().read_u64(w.checksum_addr),
            ref_mem.read_u64(w.checksum_addr))
      << c.workload << " / " << paper_config_name(c.config) << " / "
      << c.num_tus << " TUs";
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const std::string& name : workload_names()) {
    for (uint32_t tus : {1u, 4u, 8u}) {
      cases.push_back({name.c_str(), PaperConfig::kOrig, tus});
      cases.push_back({name.c_str(), PaperConfig::kWthWpWec, tus});
    }
    cases.push_back({name.c_str(), PaperConfig::kNlp, 8});
    cases.push_back({name.c_str(), PaperConfig::kWthWpVc, 8});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadDiff, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.workload;
      name = name.substr(name.find('.') + 1);
      std::string config = paper_config_name(info.param.config);
      for (char& ch : config) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + config + "_tu" + std::to_string(info.param.num_tus);
    });

}  // namespace
}  // namespace wecsim
