// Tests for the parallel sweep engine (harness/parallel.h), the on-disk
// result cache (harness/result_cache.h), and the hardened aggregation
// helpers: parallel execution must be byte-identical to serial execution,
// warm disk caches must serve results with zero fresh simulations, and the
// (workload, key) memo must be collision-free.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/parallel.h"
#include "harness/report.h"
#include "harness/result_cache.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

// Tiny grid: two workloads, two configurations, two thread counts. Scale 1
// keeps each simulation in the low milliseconds.
const WorkloadParams kParams{1, 42};

std::vector<std::pair<std::string, StaConfig>> small_grid() {
  std::vector<std::pair<std::string, StaConfig>> grid;
  for (const char* name : {"181.mcf", "164.gzip"}) {
    for (PaperConfig config : {PaperConfig::kOrig, PaperConfig::kWthWpWec}) {
      for (uint32_t tus : {1u, 2u}) {
        grid.emplace_back(std::string(name) + "|" +
                              paper_config_name(config) + "-" +
                              std::to_string(tus),
                          make_paper_config(config, tus));
      }
    }
  }
  return grid;
}

std::string workload_of(const std::string& point) {
  return point.substr(0, point.find('|'));
}

std::string key_of(const std::string& point) {
  return point.substr(point.find('|') + 1);
}

// A unique per-test temp directory (std::filesystem; removed on scope exit).
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("wecsim_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(ParallelHarness, ByteIdenticalToSerialExecution) {
  const auto grid = small_grid();

  // "" disables the disk cache so both runners really simulate.
  ExperimentRunner serial(kParams, std::string());
  for (const auto& [point, config] : grid) {
    serial.run(workload_of(point), key_of(point), config);
  }

  ParallelExperimentRunner parallel(kParams, /*jobs=*/4, std::string());
  for (const auto& [point, config] : grid) {
    parallel.submit(workload_of(point), key_of(point), config);
  }
  EXPECT_EQ(parallel.pending(), grid.size());
  parallel.drain();
  EXPECT_EQ(parallel.pending(), 0u);

  ASSERT_EQ(serial.records().size(), parallel.records().size());
  for (const auto& [point, config] : grid) {
    const auto& s = serial.run(workload_of(point), key_of(point), config);
    const auto& p = parallel.run(workload_of(point), key_of(point), config);
    EXPECT_EQ(s.sim.cycles, p.sim.cycles) << point;
    EXPECT_EQ(s.sim.committed, p.sim.committed) << point;
    EXPECT_EQ(s.parallel_cycles, p.parallel_cycles) << point;
  }

  // The strongest form of the guarantee: the rendered reports agree byte
  // for byte, which pins record order, counters, histograms, and gauges.
  EXPECT_EQ(render_run_report("t", serial.records()),
            render_run_report("t", parallel.records()));
}

TEST(ParallelHarness, MoreJobsThanWorkStillWorks) {
  ParallelExperimentRunner runner(kParams, /*jobs=*/8, std::string());
  runner.submit("181.mcf", "orig", make_paper_config(PaperConfig::kOrig, 1));
  runner.drain();
  EXPECT_EQ(runner.records().size(), 1u);
}

TEST(ParallelHarness, SubmitDeduplicatesAndRunFillsMemo) {
  ParallelExperimentRunner runner(kParams, /*jobs=*/2, std::string());
  const StaConfig config = make_paper_config(PaperConfig::kOrig, 1);
  runner.submit("181.mcf", "orig", config);
  runner.submit("181.mcf", "orig", config);  // duplicate: one job
  EXPECT_EQ(runner.pending(), 1u);
  runner.drain();
  EXPECT_EQ(runner.records().size(), 1u);
  // run() after drain is a memo hit — record count stays put.
  runner.run("181.mcf", "orig", config);
  EXPECT_EQ(runner.records().size(), 1u);
  // Submitting an already-memoized point queues nothing.
  runner.submit("181.mcf", "orig", config);
  EXPECT_EQ(runner.pending(), 0u);
}

TEST(ParallelHarness, WorkerFailureQuarantinesThePointNotTheSweep) {
  // An unknown workload throws inside the worker; the fail-soft drain
  // quarantines that point and keeps the rest of the sweep alive.
  const StaConfig config = make_paper_config(PaperConfig::kOrig, 1);
  ParallelExperimentRunner runner(kParams, /*jobs=*/4, std::string());
  runner.set_failsoft_limits(/*max_attempts=*/2, /*backoff_ms=*/0);
  runner.submit("181.mcf", "orig", config);
  runner.submit("no.such.workload", "orig", config);
  EXPECT_NO_THROW(runner.drain());
  EXPECT_NE(runner.try_run("181.mcf", "orig", config), nullptr);
  EXPECT_EQ(runner.try_run("no.such.workload", "orig", config), nullptr);
  EXPECT_EQ(runner.quarantined_count(), 1u);
  EXPECT_THROW(runner.run("no.such.workload", "orig", config),
               PointQuarantined);
  // Submitting a quarantined point again queues nothing.
  runner.submit("no.such.workload", "orig", config);
  EXPECT_EQ(runner.pending(), 0u);
}

TEST(ParallelFor, CoversAllIndicesConcurrently) {
  constexpr size_t kN = 100;
  std::vector<std::atomic<int>> touched(kN);
  parallel_for(kN, 4, [&](size_t i) { touched[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelFor, SingleFailureIsRethrownAsIs) {
  try {
    parallel_for(8, 4, [](size_t i) {
      if (i == 3) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const ParallelError&) {
    FAIL() << "a lone failure must keep its original type";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(ParallelFor, CollectsEveryWorkerFailureIntoOneError) {
  try {
    parallel_for(8, 4, [](size_t i) {
      if (i == 3 || i == 6) throw std::runtime_error("worker " +
                                                     std::to_string(i));
    });
    FAIL() << "expected a ParallelError";
  } catch (const ParallelError& e) {
    ASSERT_EQ(e.messages().size(), 2u);
    EXPECT_EQ(e.messages()[0], "worker 3");  // index order, not finish order
    EXPECT_EQ(e.messages()[1], "worker 6");
    const std::string message = e.what();
    EXPECT_NE(message.find("2 parallel worker failure(s)"), std::string::npos)
        << message;
    EXPECT_NE(message.find("worker 3"), std::string::npos) << message;
    EXPECT_NE(message.find("worker 6"), std::string::npos) << message;
  }
}

TEST(ParallelFor, SerialPathSharesTheFailureContract) {
  // jobs=1 degenerates to an in-order loop but must still attempt every
  // index and aggregate, exactly like the pooled path.
  std::vector<int> attempted;
  try {
    parallel_for(4, 1, [&](size_t i) {
      attempted.push_back(static_cast<int>(i));
      if (i == 0 || i == 2) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a ParallelError";
  } catch (const ParallelError& e) {
    EXPECT_EQ(e.messages(), (std::vector<std::string>{"0", "2"}));
  }
  EXPECT_EQ(attempted, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ResultCacheTest, WarmCacheServesWithZeroFreshSimulations) {
  TempDir dir("cache");
  const StaConfig orig = make_paper_config(PaperConfig::kOrig, 1);
  const StaConfig wec = make_paper_config(PaperConfig::kWthWpWec, 1);

  ExperimentRunner cold(kParams, dir.str());
  const auto a1 = cold.run("181.mcf", "orig", orig);
  const auto b1 = cold.run("181.mcf", "wec", wec);
  EXPECT_EQ(cold.records().size(), 2u);

  // Fresh runner, same directory: every point is a disk hit, no RunRecords.
  ExperimentRunner warm(kParams, dir.str());
  const auto& a2 = warm.run("181.mcf", "orig", orig);
  const auto& b2 = warm.run("181.mcf", "wec", wec);
  EXPECT_EQ(warm.records().size(), 0u);
  EXPECT_EQ(a1.sim.cycles, a2.sim.cycles);
  EXPECT_EQ(a1.sim.committed, a2.sim.committed);
  EXPECT_EQ(a1.parallel_cycles, a2.parallel_cycles);
  EXPECT_EQ(b1.sim.cycles, b2.sim.cycles);
  EXPECT_EQ(b1.sim.l1d_misses, b2.sim.l1d_misses);

  // The parallel runner honours the same cache.
  ParallelExperimentRunner warm_parallel(kParams, /*jobs=*/2, dir.str());
  warm_parallel.submit("181.mcf", "orig", orig);
  warm_parallel.submit("181.mcf", "wec", wec);
  warm_parallel.drain();
  EXPECT_EQ(warm_parallel.records().size(), 0u);
  EXPECT_EQ(warm_parallel.run("181.mcf", "orig", orig).sim.cycles,
            a1.sim.cycles);
}

TEST(ResultCacheTest, DistinctConfigsGetDistinctEntries) {
  const StaConfig a = make_paper_config(PaperConfig::kOrig, 1);
  StaConfig b = a;
  b.mem.l1d.size_bytes *= 2;
  EXPECT_NE(ResultCache::describe("181.mcf", kParams, a),
            ResultCache::describe("181.mcf", kParams, b));
  EXPECT_NE(ResultCache::describe("181.mcf", kParams, a),
            ResultCache::describe("164.gzip", kParams, a));
  EXPECT_NE(ResultCache::describe("181.mcf", WorkloadParams{2, 42}, a),
            ResultCache::describe("181.mcf", kParams, a));
}

TEST(ResultCacheTest, CorruptEntryIsAMiss) {
  TempDir dir("corrupt");
  ResultCache cache(dir.str());
  const std::string desc =
      ResultCache::describe("181.mcf", kParams,
                            make_paper_config(PaperConfig::kOrig, 1));
  {
    std::FILE* f = std::fopen(cache.entry_path(desc).c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  EXPECT_FALSE(cache.load(desc).has_value());
}

TEST(ResultCacheTest, DisabledCacheNeverStores) {
  ResultCache cache{std::string()};
  EXPECT_FALSE(cache.enabled());
  const std::string desc = "anything";
  RunMeasurement m;
  cache.store(desc, m);  // must be a no-op, not a crash
  EXPECT_FALSE(cache.load(desc).has_value());
}

TEST(MemoKeyTest, CompositeKeyCannotCollide) {
  // With the old concatenated "workload|key" scheme these two points
  // collided: ("a|b", "c") and ("a", "b|c"). The composite pair keeps them
  // distinct; exercise via ExperimentRunner with keys containing the old
  // separator character.
  ExperimentRunner runner(kParams, std::string());
  const auto& a = runner.run("181.mcf", "x|orig-1",
                             make_paper_config(PaperConfig::kOrig, 1));
  const auto& b = runner.run("181.mcf", "x|orig-2",
                             make_paper_config(PaperConfig::kOrig, 2));
  EXPECT_EQ(runner.records().size(), 2u);
  EXPECT_NE(a.sim.cycles, b.sim.cycles);
  // Same key again: memo hit, no new record, same measurement object.
  const auto& a2 = runner.run("181.mcf", "x|orig-1",
                              make_paper_config(PaperConfig::kOrig, 1));
  EXPECT_EQ(runner.records().size(), 2u);
  EXPECT_EQ(&a, &a2);
}

TEST(MeanSpeedupTest, GeometricMeanOfValidInput) {
  EXPECT_DOUBLE_EQ(mean_speedup({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_speedup({1.5}), 1.5);
}

TEST(MeanSpeedupTest, EmptyInputThrows) {
  EXPECT_THROW(mean_speedup({}), std::logic_error);
}

TEST(MeanSpeedupTest, NonPositiveSpeedupThrows) {
  EXPECT_THROW(mean_speedup({1.2, 0.0}), std::logic_error);
  EXPECT_THROW(mean_speedup({-1.0}), std::logic_error);
}

TEST(ResolveJobsTest, ExplicitValueWins) {
  EXPECT_EQ(resolve_jobs(3), 3u);
  EXPECT_GE(resolve_jobs(0), 1u);  // env or hardware fallback, never 0
}

TEST(TimingReportTest, CarriesWallClockOutsideTheRunReport) {
  ExperimentRunner runner(kParams, std::string());
  runner.run("181.mcf", "orig", make_paper_config(PaperConfig::kOrig, 1));
  ASSERT_EQ(runner.records().size(), 1u);
  EXPECT_GT(runner.records()[0].run_seconds, 0.0);
  EXPECT_GT(runner.records()[0].sim_cycles_per_second(), 0.0);

  const std::string timing =
      render_timing_report("t", 1, runner.elapsed_seconds(), runner.records());
  EXPECT_NE(timing.find("\"schema\":\"wecsim.bench_timing\""),
            std::string::npos);
  EXPECT_NE(timing.find("\"cycles_per_second\""), std::string::npos);
  // The canonical run report must NOT mention wall-clock.
  const std::string report = render_run_report("t", runner.records());
  EXPECT_EQ(report.find("run_seconds"), std::string::npos);
}

}  // namespace
}  // namespace wecsim
