// Branch predictor: bimodal learning, gshare indexing, BTB replacement, RAS
// behaviour, and speculative-state checkpointing.
#include <gtest/gtest.h>

#include "cpu/bpred.h"
#include "isa/isa.h"

namespace wecsim {
namespace {

BranchPredictor make(BpredKind kind, StatsRegistry& stats) {
  BpredConfig config;
  config.kind = kind;
  return BranchPredictor(config, stats, "bp.");
}

TEST(Bimodal, LearnsAStableDirection) {
  StatsRegistry stats;
  auto bp = make(BpredKind::kBimodal, stats);
  const Addr pc = 0x1000;
  for (int i = 0; i < 4; ++i) bp.update_branch(pc, true);
  EXPECT_TRUE(bp.predict_taken(pc));
  for (int i = 0; i < 4; ++i) bp.update_branch(pc, false);
  EXPECT_FALSE(bp.predict_taken(pc));
}

TEST(Bimodal, HysteresisAbsorbsOneAnomaly) {
  StatsRegistry stats;
  auto bp = make(BpredKind::kBimodal, stats);
  const Addr pc = 0x2000;
  for (int i = 0; i < 4; ++i) bp.update_branch(pc, true);
  bp.update_branch(pc, false);  // single not-taken
  EXPECT_TRUE(bp.predict_taken(pc)) << "2-bit counter must not flip at once";
}

TEST(StaticPredictors, AlwaysAndNever) {
  StatsRegistry stats;
  auto taken = make(BpredKind::kTaken, stats);
  auto not_taken = make(BpredKind::kNotTaken, stats);
  EXPECT_TRUE(taken.predict_taken(0x1000));
  EXPECT_FALSE(not_taken.predict_taken(0x1000));
  // Updates are no-ops for static predictors.
  not_taken.update_branch(0x1000, true);
  EXPECT_FALSE(not_taken.predict_taken(0x1000));
}

TEST(Gshare, HistoryDisambiguatesPatterns) {
  StatsRegistry stats;
  BpredConfig config;
  config.kind = BpredKind::kGshare;
  config.hist_bits = 4;
  BranchPredictor bp(config, stats, "bp.");
  // Alternating branch: taken, not-taken, taken, ... driven through the
  // same predict / (restore+record on mispredict) / update protocol the
  // core uses. The history-indexed counters learn both phases.
  const Addr pc = 0x3000;
  auto run_phase = [&](int n) {
    int correct = 0;
    for (int i = 0; i < n; ++i) {
      const bool actual = (i % 2) == 0;
      BpredCheckpoint ckpt = bp.checkpoint();
      const bool predicted = bp.predict_taken(pc);
      bp.update_branch(pc, actual, ckpt);
      if (predicted == actual) {
        ++correct;
      } else {
        bp.restore(ckpt);
        bp.record_outcome(actual);
      }
    }
    return correct;
  };
  run_phase(64);  // training
  EXPECT_GT(run_phase(32), 24) << "gshare should track a period-2 pattern";
}

TEST(Btb, StoresAndReplacesTargets) {
  StatsRegistry stats;
  BpredConfig config;
  config.btb_entries = 8;
  config.btb_assoc = 2;  // 4 sets
  BranchPredictor bp(config, stats, "bp.");
  EXPECT_EQ(bp.btb_lookup(0x1000), 0u);
  bp.update_btb(0x1000, 0x2000);
  EXPECT_EQ(bp.btb_lookup(0x1000), 0x2000u);
  bp.update_btb(0x1000, 0x3000);  // retarget
  EXPECT_EQ(bp.btb_lookup(0x1000), 0x3000u);
  // Fill the set (pcs 0x1000 and 0x1000+4*8*k map to the same set of the
  // 4-set BTB when (pc/8)%4 matches).
  const Addr same_set1 = 0x1000 + 4 * kInstrBytes;
  const Addr same_set2 = 0x1000 + 8 * kInstrBytes;
  bp.update_btb(same_set1, 0x4000);
  bp.btb_lookup(0x1000);  // make 0x1000 MRU
  bp.update_btb(same_set2, 0x5000);  // evicts same_set1 (LRU)
  EXPECT_EQ(bp.btb_lookup(same_set1), 0u);
  EXPECT_EQ(bp.btb_lookup(0x1000), 0x3000u);
  EXPECT_EQ(bp.btb_lookup(same_set2), 0x5000u);
}

TEST(Ras, PushPopNesting) {
  StatsRegistry stats;
  auto bp = make(BpredKind::kBimodal, stats);
  bp.ras_push(0x100);
  bp.ras_push(0x200);
  bp.ras_push(0x300);
  EXPECT_EQ(bp.ras_pop(), 0x300u);
  EXPECT_EQ(bp.ras_pop(), 0x200u);
  bp.ras_push(0x400);
  EXPECT_EQ(bp.ras_pop(), 0x400u);
  EXPECT_EQ(bp.ras_pop(), 0x100u);
}

TEST(Ras, CheckpointRestoreRewindsSpeculativePops) {
  StatsRegistry stats;
  auto bp = make(BpredKind::kBimodal, stats);
  bp.ras_push(0x100);
  bp.ras_push(0x200);
  BpredCheckpoint ckpt = bp.checkpoint();
  EXPECT_EQ(bp.ras_pop(), 0x200u);  // speculative pop on a wrong path
  EXPECT_EQ(bp.ras_pop(), 0x100u);
  bp.restore(ckpt);
  EXPECT_EQ(bp.ras_pop(), 0x200u);  // state rewound
}

TEST(Checkpoint, RestoresGlobalHistory) {
  StatsRegistry stats;
  BpredConfig config;
  config.kind = BpredKind::kGshare;
  BranchPredictor bp(config, stats, "bp.");
  BpredCheckpoint before = bp.checkpoint();
  bp.predict_taken(0x1000);
  bp.predict_taken(0x2000);
  bp.restore(before);
  EXPECT_EQ(bp.checkpoint().history, before.history);
}

TEST(Stats, CountsLookups) {
  StatsRegistry stats;
  auto bp = make(BpredKind::kBimodal, stats);
  bp.predict_taken(0x1000);
  bp.predict_taken(0x1008);
  EXPECT_EQ(stats.value("bp.bpred.lookups"), 2u);
}

}  // namespace
}  // namespace wecsim
