// Deterministic fault injection: the WECSIM_FAULTS grammar, the seeded
// per-kind firing streams, the stateless point-level decisions, and the
// all-violations-at-once config validation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sim_config.h"
#include "fault/fault.h"
#include "sta/sta_config.h"

namespace wecsim {
namespace {

TEST(FaultPlan, EmptyAndUnsetPlansAreInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_EQ(plan.describe(), "");
  EXPECT_EQ(FaultPlan::parse("").describe(), "");
}

TEST(FaultPlan, ParsesKindsWithParameters) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=42;mem_delay:every=100,cycles=50;worker_crash:p=0.5,match=mcf");
  EXPECT_TRUE(plan.any());
  EXPECT_EQ(plan.seed(), 42u);
  ASSERT_TRUE(plan.has(FaultKind::kMemDelay));
  EXPECT_EQ(plan.spec(FaultKind::kMemDelay).every, 100u);
  EXPECT_EQ(plan.spec(FaultKind::kMemDelay).arg, 50u);  // cycles == arg
  ASSERT_TRUE(plan.has(FaultKind::kWorkerCrash));
  EXPECT_DOUBLE_EQ(plan.spec(FaultKind::kWorkerCrash).p, 0.5);
  EXPECT_EQ(plan.spec(FaultKind::kWorkerCrash).match, "mcf");
  EXPECT_FALSE(plan.has(FaultKind::kMemDrop));
}

TEST(FaultPlan, DescribeRoundTrips) {
  const std::string spec =
      "seed=9;mem_drop:every=7;mispredict:p=0.25;commit_corrupt:after=3,"
      "count=1,arg=255";
  const FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(FaultPlan::parse(plan.describe()).describe(), plan.describe());
}

TEST(FaultPlan, ParseCollectsAllErrorsIntoOneMessage) {
  try {
    FaultPlan::parse("bogus_kind;mem_delay:nope=1;mispredict:p=2.5");
    FAIL() << "expected a parse failure";
  } catch (const SimError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("3 error(s)"), std::string::npos) << message;
    EXPECT_NE(message.find("bogus_kind"), std::string::npos) << message;
    EXPECT_NE(message.find("nope"), std::string::npos) << message;
    EXPECT_NE(message.find("p"), std::string::npos) << message;
  }
}

TEST(FaultSession, FiringStreamIsDeterministic) {
  const FaultPlan plan = FaultPlan::parse("seed=5;mem_delay:p=0.3");
  std::vector<bool> first, second;
  FaultSession a(plan), b(plan);
  for (int i = 0; i < 200; ++i) first.push_back(a.fire(FaultKind::kMemDelay));
  for (int i = 0; i < 200; ++i) second.push_back(b.fire(FaultKind::kMemDelay));
  EXPECT_EQ(first, second);
  EXPECT_GT(a.injected(FaultKind::kMemDelay), 0u);
  EXPECT_LT(a.injected(FaultKind::kMemDelay), 200u);
}

TEST(FaultSession, EveryAfterCountWindow) {
  const FaultPlan plan =
      FaultPlan::parse("mem_drop:every=10,after=25,count=3");
  FaultSession session(plan);
  std::vector<int> fired_at;
  for (int i = 0; i < 200; ++i) {
    if (session.fire(FaultKind::kMemDrop)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{25, 35, 45}));
}

TEST(FaultSession, UnarmedKindsNeverFire) {
  FaultSession session{FaultPlan{}};
  EXPECT_FALSE(session.armed(FaultKind::kMemDelay));
  EXPECT_FALSE(session.fire(FaultKind::kMemDelay));
}

TEST(FaultPlan, PointDecisionsAreStatelessAndDeterministic) {
  const FaultPlan plan =
      FaultPlan::parse("seed=11;worker_crash:p=0.5,count=1");
  int failures = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "w" + std::to_string(i) + "|cfg";
    const bool fails = plan.should_fail_point(FaultKind::kWorkerCrash, key, 0);
    EXPECT_EQ(fails,
              plan.should_fail_point(FaultKind::kWorkerCrash, key, 0));
    failures += fails ? 1 : 0;
    // count=1 models a transient blip: attempt 1 always succeeds.
    EXPECT_FALSE(plan.should_fail_point(FaultKind::kWorkerCrash, key, 1));
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 64);
}

TEST(FaultPlan, PointMatchFilterSelectsPoints) {
  const FaultPlan plan =
      FaultPlan::parse("worker_crash:every=1,match=vpr");
  EXPECT_TRUE(
      plan.should_fail_point(FaultKind::kWorkerCrash, "vpr|orig", 0));
  EXPECT_FALSE(
      plan.should_fail_point(FaultKind::kWorkerCrash, "mcf|orig", 0));
}

TEST(StaConfigValidation, DefaultAndPaperConfigsAreValid) {
  EXPECT_NO_THROW(validate_sta_config(StaConfig{}));
  for (PaperConfig config : kAllPaperConfigs) {
    EXPECT_NO_THROW(validate_sta_config(make_paper_config(config)));
  }
}

TEST(StaConfigValidation, ReportsEveryViolationAtOnce) {
  StaConfig config;
  config.num_tus = 0;
  config.watchdog_cycles = 0;
  config.wb_ports = 0;
  config.core.rob_size = 0;
  config.mem.l1d.block_bytes = 48;  // not a power of two
  config.mem.mem_lat = 0;
  try {
    validate_sta_config(config);
    FAIL() << "expected validation to fail";
  } catch (const SimError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("6 violation(s)"), std::string::npos) << message;
    EXPECT_NE(message.find("num_tus"), std::string::npos) << message;
    EXPECT_NE(message.find("watchdog_cycles"), std::string::npos) << message;
    EXPECT_NE(message.find("wb_ports"), std::string::npos) << message;
    EXPECT_NE(message.find("rob_size"), std::string::npos) << message;
    EXPECT_NE(message.find("block_bytes"), std::string::npos) << message;
    EXPECT_NE(message.find("mem_lat"), std::string::npos) << message;
  }
}

TEST(StaConfigValidation, CacheGeometryMustDivideIntoSets) {
  StaConfig config;
  config.mem.l2.size_bytes = 100;  // not a multiple of 128B blocks
  EXPECT_THROW(validate_sta_config(config), SimError);
}

}  // namespace
}  // namespace wecsim
