// End-to-end differential tests: the timing simulator must produce exactly
// the architectural memory state the functional interpreter produces, for
// sequential programs, parallel (superthreaded) programs, and every paper
// configuration (wrong execution must never change architectural state).
#include <gtest/gtest.h>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "func/interpreter.h"
#include "isa/assembler.h"

namespace wecsim {
namespace {

// Sum the 64 words at `data`, leaving the result at `out`, sequentially.
constexpr const char* kSumProgram = R"(
  .data
data:
  .space 512            # 64 dwords, initialized by the host
out:
  .dword 0
  .text
entry:
  la   r1, data
  li   r2, 0            # i
  li   r3, 64           # n
  li   r4, 0            # acc
loop:
  slli r5, r2, 3
  add  r5, r5, r1
  ld   r6, 0(r5)
  add  r4, r4, r6
  addi r2, r2, 1
  blt  r2, r3, loop
  la   r7, out
  sd   r4, 0(r7)
  halt
)";

// A chunked parallel loop: each iteration (thread) computes
// b[i] = a[i] * 2 + carry, where carry is a cross-iteration dependence
// communicated through a target store. The exit iteration aborts its
// speculative successors and continues sequentially, accumulating b into a
// checksum. Two parallel regions run back to back over two halves.
constexpr const char* kParallelProgram = R"(
  .equ N, 24
  .data
a:
  .space 384            # N dwords (host-initialized)
b:
  .space 384
carry:
  .dword 0
sum:
  .dword 0
  .text
entry:
  li   r2, 0            # i = 0 (first region handles [0, N/2))
  li   r3, 12           # limit of region 1
  begin
  jal  r0, body
region2:
  li   r3, 24           # limit of region 2
  begin
body:
  # --- continuation stage: next index, fork successor ---
  addi r10, r2, 1       # next i
  mv   r11, r2          # my i
  mv   r2, r10          # child sees i+1
  forksp body
  # --- TSAG stage: this thread will write carry ---
  la   r12, carry
  tsaddr r12, 0
  tsagd
  # --- computation: b[i] = a[i]*2 + carry; carry = a[i] ---
  la   r13, a
  slli r14, r11, 3
  add  r13, r13, r14
  ld   r15, 0(r13)      # a[i]
  ld   r16, 0(r12)      # carry (dependence on upstream target store)
  slli r17, r15, 1
  add  r17, r17, r16
  la   r18, b
  add  r18, r18, r14
  sd   r17, 0(r18)      # b[i]
  sd   r15, 0(r12)      # carry = a[i]  (target store -> forwarded)
  # --- exit check ---
  addi r19, r11, 1
  bge  r19, r3, exit
  thend
exit:
  abort
  endpar
  # sequential glue: accumulate b over the finished range
  la   r20, b
  la   r21, sum
  ld   r22, 0(r21)
  li   r23, 0
seqloop:
  ld   r24, 0(r20)
  add  r22, r22, r24
  addi r20, r20, 8
  addi r23, r23, 1
  blt  r23, r3, seqloop
  sd   r22, 0(r21)
  li   r25, 12
  blt  r11, r25, region2   # after region 1, run region 2
  halt
)";

void init_array(FlatMemory& memory, Addr base, size_t n, uint64_t mul,
                uint64_t add) {
  for (size_t i = 0; i < n; ++i) {
    memory.write_u64(base + 8 * i, i * mul + add);
  }
}

TEST(E2eSequential, SumMatchesInterpreter) {
  Program program = assemble(kSumProgram);
  const Addr data = program.symbol("data");
  const Addr out = program.symbol("out");

  FlatMemory ref_mem;
  ref_mem.load_program(program);
  init_array(ref_mem, data, 64, 3, 7);
  Interpreter interp(program, ref_mem);
  FuncResult func = interp.run();
  ASSERT_TRUE(func.halted);

  Simulator sim(program, make_paper_config(PaperConfig::kOrig, 1));
  init_array(sim.memory(), data, 64, 3, 7);
  SimResult result = sim.run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(sim.memory().read_u64(out), ref_mem.read_u64(out));
  EXPECT_GT(result.cycles, 0u);
}

class E2eParallel : public ::testing::TestWithParam<
                        std::tuple<PaperConfig, uint32_t /*num_tus*/>> {};

TEST_P(E2eParallel, MatchesInterpreterInAllConfigs) {
  const auto [config, num_tus] = GetParam();
  Program program = assemble(kParallelProgram);
  const Addr a = program.symbol("a");
  const Addr sum = program.symbol("sum");
  const Addr b = program.symbol("b");

  FlatMemory ref_mem;
  ref_mem.load_program(program);
  init_array(ref_mem, a, 24, 5, 11);
  Interpreter interp(program, ref_mem);
  FuncResult func = interp.run();
  ASSERT_TRUE(func.halted);
  ASSERT_GT(func.forks, 0u);

  Simulator sim(program, make_paper_config(config, num_tus));
  init_array(sim.memory(), a, 24, 5, 11);
  SimResult result = sim.run();
  ASSERT_TRUE(result.halted) << "timing simulation did not finish";
  EXPECT_EQ(sim.memory().read_u64(sum), ref_mem.read_u64(sum))
      << paper_config_name(config) << " with " << num_tus << " TUs";
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(sim.memory().read_u64(b + 8 * i), ref_mem.read_u64(b + 8 * i))
        << "b[" << i << "] diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, E2eParallel,
    ::testing::Combine(::testing::ValuesIn(kAllPaperConfigs),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const ::testing::TestParamInfo<E2eParallel::ParamType>& info) {
      std::string name = paper_config_name(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_tu" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace wecsim
