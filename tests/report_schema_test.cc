// Validates an actually-emitted run report against the documented schema
// (docs/OBSERVABILITY.md, wecsim.run_report version 1): required keys, value
// types, and the WEC accounting invariants the report promises.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/sim_config.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/json.h"

namespace wecsim {
namespace {

class ReportSchemaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadParams params;
    params.scale = 1;
    ExperimentRunner runner(params);
    runner.run("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
    runner.run("mcf", "wth_wp_wec",
               make_paper_config(PaperConfig::kWthWpWec, 4));
    doc_ = new JsonValue(
        parse_json(render_run_report("schema_test", runner.records())));
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }

  static const JsonValue& doc() { return *doc_; }

 private:
  static const JsonValue* doc_;
};

const JsonValue* ReportSchemaTest::doc_ = nullptr;

TEST_F(ReportSchemaTest, TopLevelEnvelope) {
  ASSERT_TRUE(doc().is_object());
  EXPECT_EQ(doc().at("schema").as_string(), "wecsim.run_report");
  EXPECT_EQ(doc().at("schema_version").as_i64(), kRunReportSchemaVersion);
  EXPECT_EQ(doc().at("bench").as_string(), "schema_test");
  ASSERT_TRUE(doc().at("runs").is_array());
  EXPECT_EQ(doc().at("runs").items().size(), 2u);
}

TEST_F(ReportSchemaTest, RunObjectsCarryRequiredFields) {
  for (const JsonValue& run : doc().at("runs").items()) {
    ASSERT_TRUE(run.is_object());
    EXPECT_TRUE(run.at("workload").is_string());
    EXPECT_TRUE(run.at("config").is_string());
    EXPECT_TRUE(run.at("scale").is_number());
    const JsonValue& result = run.at("result");
    for (const char* key :
         {"cycles", "committed", "l1d_accesses", "l1d_misses", "side_hits",
          "l2_accesses", "l2_misses", "mispredicts", "branches", "forks"}) {
      EXPECT_TRUE(result.at(key).is_number()) << key;
    }
    EXPECT_TRUE(result.at("halted").as_bool());
    EXPECT_TRUE(run.at("counters").is_object());
    EXPECT_TRUE(run.at("gauges").is_object());
    EXPECT_TRUE(run.at("histograms").is_object());
  }
}

TEST_F(ReportSchemaTest, WecSectionBreaksFillsDownByOrigin) {
  for (const JsonValue& run : doc().at("runs").items()) {
    const JsonValue& wec = run.at("wec");
    const JsonValue& by_origin = wec.at("by_origin");
    uint64_t fills_sum = 0;
    for (const char* origin :
         {"wrong_path", "wrong_thread", "victim", "next_line"}) {
      const JsonValue& o = by_origin.at(origin);
      const uint64_t fills = o.at("fills").as_u64();
      // The report's central invariant: every fill scored exactly once.
      EXPECT_EQ(fills, o.at("used").as_u64() + o.at("unused").as_u64())
          << run.at("config").as_string() << " origin " << origin;
      fills_sum += fills;
    }
    // The four origin totals sum to the report's total fill count.
    EXPECT_EQ(fills_sum, wec.at("total_fills").as_u64());
  }
}

TEST_F(ReportSchemaTest, WecConfigRecordsWrongExecutionFills) {
  // The orig config has no side cache: zero fills everywhere. The WEC config
  // must record wrong-execution fills.
  const JsonValue& orig = doc().at("runs").at(0);
  EXPECT_EQ(orig.at("wec").at("total_fills").as_u64(), 0u);
  const JsonValue& wec_run = doc().at("runs").at(1);
  const JsonValue& by_origin = wec_run.at("wec").at("by_origin");
  EXPECT_GT(by_origin.at("wrong_path").at("fills").as_u64() +
                by_origin.at("wrong_thread").at("fills").as_u64(),
            0u);
}

TEST_F(ReportSchemaTest, HistogramEntriesAreWellFormed) {
  bool saw_histogram = false;
  for (const JsonValue& run : doc().at("runs").items()) {
    for (const auto& [name, h] : run.at("histograms").fields()) {
      saw_histogram = true;
      const uint64_t count = h.at("count").as_u64();
      EXPECT_TRUE(h.at("sum").is_number()) << name;
      EXPECT_TRUE(h.at("mean").is_number()) << name;
      uint64_t bucket_total = 0;
      for (const JsonValue& pair : h.at("buckets").items()) {
        ASSERT_EQ(pair.items().size(), 2u) << name;
        EXPECT_LT(pair.at(size_t{0}).as_u64(),
                  uint64_t{HistogramData::kNumBuckets})
            << name;
        bucket_total += pair.at(size_t{1}).as_u64();
      }
      EXPECT_EQ(bucket_total, count) << name;
    }
  }
  EXPECT_TRUE(saw_histogram);  // ROB occupancy exists on every config
}

TEST_F(ReportSchemaTest, WriteReportRoundTripsThroughDisk) {
  WorkloadParams params;
  params.scale = 1;
  ExperimentRunner runner(params);
  runner.run("gzip", "orig", make_paper_config(PaperConfig::kOrig, 2));
  const std::string path =
      ::testing::TempDir() + "/wecsim_report_schema_test.json";
  runner.write_report(path, "roundtrip");
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), render_run_report("roundtrip", runner.records()));
  const JsonValue v = parse_json(buf.str());
  EXPECT_EQ(v.at("bench").as_string(), "roundtrip");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wecsim
