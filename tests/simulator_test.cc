// The Simulator façade: result aggregation, stats plumbing, run-once
// semantics, Table-3 machines end to end, and the ExperimentRunner cache.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "harness/experiment.h"
#include "isa/assembler.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

constexpr const char* kTinyLoop = R"(
  .data
a:   .space 4096
out: .dword 0
  .text
  la r1, a
  li r2, 0
  li r3, 512
  li r4, 0
loop:
  ld r5, 0(r1)
  add r4, r4, r5
  addi r1, r1, 8
  addi r2, r2, 1
  blt r2, r3, loop
  la r6, out
  sd r4, 0(r6)
  halt
)";

TEST(Simulator, RunOnceEnforced) {
  Program p = assemble(kTinyLoop);
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 1));
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, ResultAggregationMatchesRawCounters) {
  Program p = assemble(kTinyLoop);
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 2));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.l1d_accesses, sim.stats().sum_matching("tu", ".l1d.accesses"));
  EXPECT_EQ(r.l1d_misses, sim.stats().sum_matching("tu", ".l1d.misses"));
  EXPECT_EQ(r.l2_accesses, sim.stats().value("l2.accesses"));
  EXPECT_EQ(r.cycles, sim.stats().value("sta.cycles"));
  EXPECT_GT(r.committed, 0u);
}

TEST(Simulator, MissRateIsSane) {
  Program p = assemble(kTinyLoop);
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 1));
  SimResult r = sim.run();
  EXPECT_GT(r.l1d_miss_rate(), 0.0);  // the 4KB streaming array cold-misses
  EXPECT_LT(r.l1d_miss_rate(), 0.5);  // 8 doubles per block: ~1/8 miss rate
}

TEST(Simulator, ProgramDataSegmentIsLoaded) {
  Program p = assemble(".data\nv:\n  .dword 123\n  .text\n  halt\n");
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 1));
  EXPECT_EQ(sim.memory().read_u64(p.symbol("v")), 123u);
}

TEST(Simulator, Table3MachinesRunWholeWorkloads) {
  // Smoke the Figure-8 machines end to end on a real workload at tiny scale.
  Workload w = make_workload("164.gzip", {1, 42});
  FlatMemory ref;
  ref.load_program(w.program);
  w.init(ref);
  for (uint32_t tus : {1u, 2u, 16u}) {
    Simulator sim(w.program, make_table3_config(tus));
    w.init(sim.memory());
    SimResult r = sim.run();
    ASSERT_TRUE(r.halted) << tus << " TUs";
    EXPECT_GT(sim.stats().value("sta.parallel_cycles"), 0u);
  }
  Simulator base(w.program, make_table3_baseline());
  w.init(base.memory());
  EXPECT_TRUE(base.run().halted);
}

TEST(Simulator, WecReducesCyclesOnConflictWorkload) {
  // The repository's headline effect, as a regression test: on the
  // conflict-heavy mesa analog, wth-wp-wec must beat orig.
  Workload w = make_workload("177.mesa", {2, 42});
  Simulator orig(w.program, make_paper_config(PaperConfig::kOrig, 8));
  w.init(orig.memory());
  const Cycle orig_cycles = orig.run().cycles;

  Simulator wec(w.program, make_paper_config(PaperConfig::kWthWpWec, 8));
  w.init(wec.memory());
  const Cycle wec_cycles = wec.run().cycles;
  EXPECT_LT(wec_cycles, orig_cycles);
}

TEST(Simulator, WrongExecutionOnlyAddsTraffic) {
  Workload w = make_workload("183.equake", {1, 42});
  Simulator orig(w.program, make_paper_config(PaperConfig::kOrig, 8));
  w.init(orig.memory());
  SimResult r_orig = orig.run();

  Simulator wec(w.program, make_paper_config(PaperConfig::kWthWpWec, 8));
  w.init(wec.memory());
  SimResult r_wec = wec.run();
  EXPECT_GT(r_wec.l1d_wrong_accesses, 0u);
  EXPECT_EQ(r_orig.l1d_wrong_accesses, 0u);
}

TEST(ExperimentRunner, CachesByKey) {
  ExperimentRunner runner({1, 42});
  const auto& a = runner.run("164.gzip", "orig",
                             make_paper_config(PaperConfig::kOrig, 2));
  const auto& b = runner.run("164.gzip", "orig",
                             make_paper_config(PaperConfig::kOrig, 2));
  EXPECT_EQ(&a, &b) << "same key must return the memoized measurement";
  const auto& c = runner.run("164.gzip", "other",
                             make_paper_config(PaperConfig::kOrig, 4));
  EXPECT_NE(&a, &c);
}

TEST(ExperimentRunner, UnfinishedSimulationThrows) {
  // A cycle cap too small to finish must be reported, not silently returned.
  StaConfig config = make_paper_config(PaperConfig::kOrig, 1);
  config.max_cycles = 50;
  ExperimentRunner runner({1, 42});
  EXPECT_THROW(runner.run("164.gzip", "capped", config), SimError);
}

}  // namespace
}  // namespace wecsim
