// Tag-array behaviour of SetAssocCache and SideCache: placement, LRU,
// dirtiness, readiness, plus property sweeps against a reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "mem/cache.h"
#include "mem/side_cache.h"

namespace wecsim {
namespace {

TEST(CacheGeom, DerivedQuantities) {
  CacheGeom g{8 * 1024, 2, 64};
  EXPECT_EQ(g.num_blocks(), 128u);
  EXPECT_EQ(g.num_sets(), 64u);
}

TEST(SetAssocCache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache({8 * 1024, 3, 64}), std::logic_error);   // 3-way
  EXPECT_THROW(SetAssocCache({8 * 1024, 1, 48}), std::logic_error);   // block
}

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache cache({1024, 1, 64});
  EXPECT_FALSE(cache.access(0x100, false, 1).has_value());
  cache.insert(0x100, false, 1);
  EXPECT_TRUE(cache.contains(0x100));
  EXPECT_EQ(cache.access(0x100, false, 2), 2u);
  // Same block, different byte.
  EXPECT_EQ(cache.access(0x13f, false, 3), 3u);
  // Next block misses.
  EXPECT_FALSE(cache.access(0x140, false, 4).has_value());
}

TEST(SetAssocCache, DirectMappedConflictEvicts) {
  SetAssocCache cache({1024, 1, 64});  // 16 sets
  cache.insert(0x0, false, 0);
  auto evicted = cache.insert(0x400, true, 0);  // same set (1024 apart)
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->block_addr, 0x0u);
  EXPECT_FALSE(evicted->dirty);
  EXPECT_FALSE(cache.contains(0x0));
  EXPECT_TRUE(cache.contains(0x400));
}

TEST(SetAssocCache, LruVictimSelection) {
  SetAssocCache cache({256, 4, 64});  // one set, 4 ways
  for (Addr a : {0x000, 0x100, 0x200, 0x300}) cache.insert(a, false, 0);
  // Touch everything but 0x100 — it becomes LRU.
  cache.access(0x000, false, 10);
  cache.access(0x200, false, 11);
  cache.access(0x300, false, 12);
  auto evicted = cache.insert(0x400, false, 13);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->block_addr, 0x100u);
}

TEST(SetAssocCache, DirtyBitTracksWrites) {
  SetAssocCache cache({256, 1, 64});
  cache.insert(0x0, false, 0);
  cache.access(0x0, /*mark_dirty=*/true, 1);
  auto evicted = cache.insert(0x100, false, 2);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->dirty);
}

TEST(SetAssocCache, ReinsertionOfResidentBlockKeepsDirty) {
  SetAssocCache cache({256, 1, 64});
  cache.insert(0x0, true, 0);
  auto evicted = cache.insert(0x0, false, 1);  // refresh, no eviction
  EXPECT_FALSE(evicted.has_value());
  auto later = cache.insert(0x100, false, 2);
  ASSERT_TRUE(later.has_value());
  EXPECT_TRUE(later->dirty);  // dirtiness survived the refresh
}

TEST(SetAssocCache, ReadyCycleGatesHitTime) {
  SetAssocCache cache({256, 1, 64});
  cache.insert(0x0, false, /*ready_cycle=*/100);
  // A hit before the fill completes waits for it.
  EXPECT_EQ(cache.access(0x0, false, 50), 100u);
  // A hit after the fill is instantaneous.
  EXPECT_EQ(cache.access(0x0, false, 150), 150u);
}

TEST(SetAssocCache, InvalidateReturnsDirtiness) {
  SetAssocCache cache({256, 1, 64});
  cache.insert(0x0, true, 0);
  auto dirty = cache.invalidate(0x0);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(*dirty);
  EXPECT_FALSE(cache.contains(0x0));
  EXPECT_FALSE(cache.invalidate(0x0).has_value());
}

TEST(SetAssocCache, PrefetchTagLifecycle) {
  SetAssocCache cache({256, 1, 64});
  cache.insert(0x0, false, 0);
  EXPECT_FALSE(cache.prefetch_tag(0x0));
  cache.set_prefetch_tag(0x0, true);
  EXPECT_TRUE(cache.prefetch_tag(0x0));
  cache.insert(0x100, false, 1);  // evicts; tag gone with the block
  cache.insert(0x0, false, 2);
  EXPECT_FALSE(cache.prefetch_tag(0x0));
}

// Property: the cache agrees with a brute-force reference model on resident
// sets under random access/insert/invalidate sequences.
class CacheProperty : public ::testing::TestWithParam<uint32_t /*assoc*/> {};

TEST_P(CacheProperty, MatchesReferenceModel) {
  const uint32_t assoc = GetParam();
  SetAssocCache cache({2048, assoc, 64});
  const uint64_t sets = cache.num_sets();

  // Reference: per set, list of blocks in LRU order (front = LRU).
  std::map<uint64_t, std::vector<Addr>> ref;
  auto ref_set = [&](Addr a) { return (a / 64) % sets; };

  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const Addr addr = rng.below(64) * 64;  // 64 distinct blocks
    const uint64_t s = ref_set(addr);
    auto& lru = ref[s];
    auto it = std::find(lru.begin(), lru.end(), addr);
    const int action = static_cast<int>(rng.below(10));
    if (action < 6) {
      // access
      const bool hit = cache.access(addr, false, step).has_value();
      EXPECT_EQ(hit, it != lru.end()) << "step " << step;
      if (it != lru.end()) {
        lru.erase(it);
        lru.push_back(addr);
      }
    } else if (action < 9) {
      // insert
      auto evicted = cache.insert(addr, false, step);
      if (it != lru.end()) {
        EXPECT_FALSE(evicted.has_value());
        lru.erase(std::find(lru.begin(), lru.end(), addr));
      } else if (lru.size() == assoc) {
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(evicted->block_addr, lru.front());
        lru.erase(lru.begin());
      } else {
        EXPECT_FALSE(evicted.has_value());
      }
      lru.push_back(addr);
    } else {
      cache.invalidate(addr);
      if (it != lru.end()) lru.erase(it);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheProperty,
                         ::testing::Values(1u, 2u, 4u, 8u));

// --- SideCache -------------------------------------------------------------

TEST(SideCache, InsertProbeExtract) {
  SideCache side(4, 64);
  side.insert(0x100, SideOrigin::kWrongPath, false, 5, /*now=*/3);
  auto hit = side.probe(0x100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->origin, SideOrigin::kWrongPath);
  EXPECT_FALSE(hit->dirty);
  EXPECT_EQ(hit->ready, 5u);
  EXPECT_EQ(hit->filled, 3u);
  auto extracted = side.extract(0x100);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_FALSE(side.contains(0x100));
}

TEST(SideCache, LruEvictionOrder) {
  SideCache side(2, 64);
  side.insert(0x000, SideOrigin::kVictim, false, 0);
  side.insert(0x040, SideOrigin::kVictim, false, 0);
  side.access(0x000, 1);  // 0x040 becomes LRU
  side.insert(0x080, SideOrigin::kVictim, false, 2);
  EXPECT_TRUE(side.contains(0x000));
  EXPECT_FALSE(side.contains(0x040));
  EXPECT_TRUE(side.contains(0x080));
}

TEST(SideCache, DirtyDisplacementReported) {
  SideCache side(1, 64);
  side.insert(0x000, SideOrigin::kVictim, /*dirty=*/true, 0);
  auto displaced = side.insert(0x040, SideOrigin::kPrefetch, false, 0);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->block, 0x000u);
  EXPECT_TRUE(displaced->dirty);
  EXPECT_TRUE(displaced->displaced);
  EXPECT_EQ(displaced->origin, SideOrigin::kVictim);
}

TEST(SideCache, CleanDisplacementReportedForAccounting) {
  SideCache side(1, 64);
  side.insert(0x000, SideOrigin::kVictim, false, 0);
  // Even a clean displacement is reported: the ended fill must be accounted
  // as an unused block (no write-back — dirty is false).
  auto displaced = side.insert(0x040, SideOrigin::kVictim, false, 0);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->block, 0x000u);
  EXPECT_FALSE(displaced->dirty);
  EXPECT_TRUE(displaced->displaced);
}

TEST(SideCache, ReinsertMergesDirtyAndUpdatesOrigin) {
  SideCache side(2, 64);
  side.insert(0x000, SideOrigin::kVictim, true, 0, /*now=*/7);
  // Re-filling a resident block ends the previous fill's residency
  // (displaced == false: the line survives, nothing to write back).
  auto merged = side.insert(0x000, SideOrigin::kWrongPath, false, 1);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->block, 0x000u);
  EXPECT_EQ(merged->origin, SideOrigin::kVictim);
  EXPECT_EQ(merged->filled, 7u);
  EXPECT_FALSE(merged->displaced);
  auto hit = side.probe(0x000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->dirty);  // dirtiness is never lost
  EXPECT_EQ(hit->origin, SideOrigin::kWrongPath);
}

TEST(SideCache, DrainReturnsAllResidentLines) {
  SideCache side(4, 64);
  side.insert(0x000, SideOrigin::kVictim, false, 0);
  side.insert(0x040, SideOrigin::kWrongThread, true, 0);
  side.insert(0x080, SideOrigin::kPrefetch, false, 0);
  auto drained = side.drain();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_FALSE(side.contains(0x000));
  EXPECT_FALSE(side.contains(0x040));
  EXPECT_FALSE(side.contains(0x080));
  EXPECT_TRUE(side.drain().empty());
}

TEST(SideCache, AccessWaitsForReady) {
  SideCache side(2, 64);
  side.insert(0x000, SideOrigin::kPrefetch, false, /*ready=*/50);
  EXPECT_EQ(side.access(0x000, 10), 50u);
  EXPECT_EQ(side.access(0x000, 60), 60u);
}

TEST(SideCache, TouchUpdateReportsPresence) {
  SideCache side(2, 64);
  EXPECT_FALSE(side.touch_update(0x000));
  side.insert(0x000, SideOrigin::kVictim, false, 0);
  EXPECT_TRUE(side.touch_update(0x000));
  EXPECT_TRUE(side.probe(0x000)->dirty);
}

}  // namespace
}  // namespace wecsim
