// Crash safety & resume (docs/ROBUSTNESS.md): the write-ahead sweep journal,
// integrity-sealed artifacts, corruption quarantine, graceful interrupt, and
// the end-to-end guarantee that a killed-and-resumed sweep produces a run
// report byte-identical to an uninterrupted one.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sim_config.h"
#include "fault/fault.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "harness/journal.h"
#include "harness/parallel.h"
#include "harness/report.h"
#include "harness/result_cache.h"
#include "harness/state_dir.h"
#include "obs/integrity.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

const WorkloadParams kParams{1, 42};

StaConfig orig1() { return make_paper_config(PaperConfig::kOrig, 1); }

// A unique per-test temp directory (std::filesystem; removed on scope exit).
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("wecsim_recovery_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file_raw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// One real simulation, so journal round-trips exercise the full RunRecord
// shape (counters, gauges, histograms, WEC provenance).
struct MeasuredPoint {
  RunMeasurement m;
  RunRecord record;
};

MeasuredPoint measure(const std::string& workload, const std::string& key) {
  ExperimentRunner runner(kParams, std::string());
  MeasuredPoint p;
  p.m = runner.run(workload, key, orig1());
  p.record = runner.records().at(0);
  return p;
}

TEST(Journal, RoundTripsEveryTransition) {
  TempDir dir("roundtrip");
  const std::string path = journal_path(dir.str());
  const MeasuredPoint point = measure("181.mcf", "orig");

  PointFailure fail;
  fail.workload = "164.gzip";
  fail.config_key = "orig";
  fail.status = "quarantined";
  fail.error = "injected worker crash: 164.gzip|orig";
  fail.attempts = 3;

  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}, {"164.gzip", "orig"},
                    {"175.vpr", "orig"}});
    journal.running({"181.mcf", "orig"});
    journal.done({"181.mcf", "orig"}, point.m, /*fresh=*/true, &point.record,
                 nullptr);
    journal.running({"164.gzip", "orig"});
    journal.failed({"164.gzip", "orig"}, fail);
  }

  const JournalReplay replay = JournalReplay::load(path);
  EXPECT_TRUE(replay.warnings.empty());
  ASSERT_EQ(replay.points.size(), 3u);

  const auto& done = replay.points.at({"181.mcf", "orig"});
  EXPECT_EQ(done.state, JournalReplay::State::kDone);
  EXPECT_TRUE(done.fresh);
  EXPECT_EQ(done.measurement.sim.cycles, point.m.sim.cycles);
  EXPECT_EQ(done.measurement.parallel_cycles, point.m.parallel_cycles);
  // The replayed record must render byte-identically — that is what makes a
  // resumed report equal an uninterrupted one.
  EXPECT_EQ(render_run_report("t", {done.record}),
            render_run_report("t", {point.record}));

  const auto& failed = replay.points.at({"164.gzip", "orig"});
  EXPECT_EQ(failed.state, JournalReplay::State::kFailed);
  ASSERT_TRUE(failed.has_failure);
  EXPECT_EQ(failed.failure.status, "quarantined");
  EXPECT_EQ(failed.failure.error, fail.error);
  EXPECT_EQ(failed.failure.attempts, 3u);

  // Queued, never claimed: runs again on resume.
  EXPECT_EQ(replay.points.at({"175.vpr", "orig"}).state,
            JournalReplay::State::kQueued);
}

TEST(Journal, TornTrailingLineIsDroppedAndCutOnReopen) {
  TempDir dir("torn");
  const std::string path = journal_path(dir.str());
  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}});
    journal.running({"181.mcf", "orig"});
  }
  const std::string intact = read_file(path);
  // Simulate a crash mid-append: half a line, no trailing newline.
  write_file_raw(path, intact + "{\"ev\":\"done\",\"workload\":\"181");

  const JournalReplay replay = JournalReplay::load(path);
  EXPECT_EQ(replay.valid_bytes, intact.size());
  ASSERT_EQ(replay.warnings.size(), 1u);
  EXPECT_NE(replay.warnings[0].find("torn"), std::string::npos);
  // The torn "done" never happened: the point is back to queued (its
  // "running" owner — this pid — does not survive a replay either).
  EXPECT_EQ(replay.points.at({"181.mcf", "orig"}).state,
            JournalReplay::State::kQueued);

  // The resume path reopens truncated to the intact prefix.
  { SweepJournal journal(path, replay.valid_bytes); }
  EXPECT_EQ(read_file(path), intact);
  EXPECT_TRUE(JournalReplay::load(path).warnings.empty());
}

TEST(Journal, CorruptMidFileLineCostsOnePointNotTheJournal) {
  TempDir dir("midcorrupt");
  const std::string path = journal_path(dir.str());
  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}, {"164.gzip", "orig"}});
  }
  std::string content = read_file(path);
  content[10] ^= 0x40;  // bit-flip inside the first line
  write_file_raw(path, content);

  const JournalReplay replay = JournalReplay::load(path);
  ASSERT_EQ(replay.warnings.size(), 1u);
  EXPECT_NE(replay.warnings[0].find("integrity"), std::string::npos);
  // Entries after the corrupt line still replay, and the corrupt line is
  // NOT truncated away — every complete line stays durable.
  EXPECT_EQ(replay.points.size(), 1u);
  EXPECT_EQ(replay.points.count({"164.gzip", "orig"}), 1u);
  EXPECT_EQ(replay.valid_bytes, content.size());
}

TEST(Journal, DeadOwnerIsReclaimedSilently) {
  TempDir dir("stale");
  const std::string path = journal_path(dir.str());
  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}});
    journal.running({"181.mcf", "orig"});
  }
  // Rewrite the running entry's pid to one that cannot exist (beyond
  // pid_max), preserving the line's integrity seal.
  std::string content = read_file(path);
  const std::string self = "\"pid\":" + std::to_string(::getpid());
  const size_t at = content.find(self);
  ASSERT_NE(at, std::string::npos);
  content.replace(at, self.size(), "\"pid\":999999999");
  // Re-seal the edited line.
  const size_t line_start = content.rfind('\n', at) + 1;
  std::string line = content.substr(line_start);
  const size_t digest_at = line.find("fnv1a64:");
  ASSERT_NE(digest_at, std::string::npos);
  line.replace(digest_at + 8, 16, std::string(16, '0'));
  line = seal_integrity(std::move(line));
  content = content.substr(0, line_start) + line;
  write_file_raw(path, content);

  const JournalReplay replay = JournalReplay::load(path);
  EXPECT_TRUE(replay.warnings.empty());  // dead owner: silent reclaim
  EXPECT_EQ(replay.points.at({"181.mcf", "orig"}).state,
            JournalReplay::State::kQueued);

  // A live foreign owner (pid 1 always exists) is reclaimed with a warning.
  const size_t fake = content.find("\"pid\":999999999");
  content.replace(fake, std::string("\"pid\":999999999").size(), "\"pid\":1");
  const size_t ls = content.rfind('\n', fake) + 1;
  std::string line2 = content.substr(ls);
  const size_t d2 = line2.find("fnv1a64:");
  line2.replace(d2 + 8, 16, std::string(16, '0'));
  write_file_raw(path, content.substr(0, ls) + seal_integrity(std::move(line2)));

  const JournalReplay foreign = JournalReplay::load(path);
  ASSERT_EQ(foreign.warnings.size(), 1u);
  EXPECT_NE(foreign.warnings[0].find("stale lock"), std::string::npos);
  EXPECT_EQ(foreign.points.at({"181.mcf", "orig"}).state,
            JournalReplay::State::kQueued);
}

// A pid that is alive but belongs to an unrelated process (the original
// holder's pid was recycled) must not look like a live holder. The
// incarnation token — pid + /proc start ticks — disambiguates.
TEST(Journal, RecycledPidIsRecognizedByIncarnationToken) {
  const uint64_t live = worker_token(1);  // pid 1 always exists
  if (live == 0) GTEST_SKIP() << "/proc/1/stat unreadable here";
  TempDir dir("recycled");
  const std::string path = journal_path(dir.str());
  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}});
    // The recorded token belongs to a process that no longer exists; pid 1
    // merely recycled its pid.
    journal.running({"181.mcf", "orig"}, 1, live ^ 0x5eedu);
  }
  const JournalReplay replay = JournalReplay::load(path);
  ASSERT_EQ(replay.warnings.size(), 1u);
  EXPECT_NE(replay.warnings[0].find("recycled"), std::string::npos)
      << replay.warnings[0];
  EXPECT_EQ(replay.points.at({"181.mcf", "orig"}).state,
            JournalReplay::State::kQueued);

  // The same pid with its real token is a genuinely live holder: still
  // reclaimed, but reported as such.
  {
    SweepJournal journal(path);
    journal.running({"181.mcf", "orig"}, 1, live);
  }
  const JournalReplay holder = JournalReplay::load(path);
  ASSERT_EQ(holder.warnings.size(), 1u);
  EXPECT_NE(holder.warnings[0].find("running under live pid"),
            std::string::npos)
      << holder.warnings[0];
  EXPECT_EQ(holder.points.at({"181.mcf", "orig"}).state,
            JournalReplay::State::kQueued);
}

// Duplicate "done" entries happen when an orphaned worker of a SIGKILLed
// daemon races its replacement. The simulator is deterministic, so the
// measurements agree — the replay keeps the record-bearing copy (wall-clock
// run_seconds differs and must not flag a conflict).
TEST(Journal, DuplicateDoneWithAgreeingMeasurementKeepsRecordBearingCopy) {
  TempDir dir("dupdone");
  const std::string path = journal_path(dir.str());
  const MeasuredPoint point = measure("181.mcf", "orig");
  RunMeasurement cached = point.m;
  cached.run_seconds = point.m.run_seconds + 10.0;

  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}});
    // Cache-served copy (no record) lands first, fresh copy second.
    journal.done({"181.mcf", "orig"}, cached, /*fresh=*/false, nullptr,
                 nullptr);
    journal.done({"181.mcf", "orig"}, point.m, /*fresh=*/true, &point.record,
                 nullptr);
  }
  const JournalReplay replay = JournalReplay::load(path);
  EXPECT_TRUE(replay.warnings.empty());
  const auto& entry = replay.points.at({"181.mcf", "orig"});
  EXPECT_EQ(entry.state, JournalReplay::State::kDone);
  EXPECT_TRUE(entry.fresh);
  EXPECT_EQ(render_run_report("t", {entry.record}),
            render_run_report("t", {point.record}));

  // Reverse arrival order: the record-bearing copy still wins.
  const std::string path2 = dir.str() + "/reverse.journal.jsonl";
  {
    SweepJournal journal(path2);
    journal.queued({{"181.mcf", "orig"}});
    journal.done({"181.mcf", "orig"}, point.m, /*fresh=*/true, &point.record,
                 nullptr);
    journal.done({"181.mcf", "orig"}, cached, /*fresh=*/false, nullptr,
                 nullptr);
  }
  const JournalReplay reverse = JournalReplay::load(path2);
  EXPECT_TRUE(reverse.warnings.empty());
  const auto& kept = reverse.points.at({"181.mcf", "orig"});
  EXPECT_TRUE(kept.fresh);
  EXPECT_EQ(render_run_report("t", {kept.record}),
            render_run_report("t", {point.record}));
}

// Duplicate "done" entries whose measurement payloads differ mean the
// journal cannot be trusted for that point: quarantine, never silently pick.
TEST(Journal, ConflictingDuplicateDoneQuarantinesThePoint) {
  TempDir dir("dupconflict");
  const std::string path = journal_path(dir.str());
  const MeasuredPoint point = measure("181.mcf", "orig");
  RunMeasurement other = point.m;
  other.sim.cycles += 1;

  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}});
    journal.done({"181.mcf", "orig"}, point.m, /*fresh=*/true, &point.record,
                 nullptr);
    journal.done({"181.mcf", "orig"}, other, /*fresh=*/true, &point.record,
                 nullptr);
  }
  const JournalReplay replay = JournalReplay::load(path);
  ASSERT_EQ(replay.warnings.size(), 1u);
  EXPECT_NE(replay.warnings[0].find("quarantined"), std::string::npos);
  const auto& entry = replay.points.at({"181.mcf", "orig"});
  EXPECT_EQ(entry.state, JournalReplay::State::kFailed);
  ASSERT_TRUE(entry.has_failure);
  EXPECT_EQ(entry.failure.status, "quarantined");
  EXPECT_NE(entry.failure.error.find("differing measurements"),
            std::string::npos);
}

// Mixed terminal kinds with no re-queue between them conflict too.
TEST(Journal, ConflictingTerminalKindsQuarantineThePoint) {
  TempDir dir("mixedterminal");
  const MeasuredPoint point = measure("181.mcf", "orig");
  PointFailure fail;
  fail.workload = "181.mcf";
  fail.config_key = "orig";
  fail.status = "quarantined";
  fail.error = "injected";
  fail.attempts = 1;

  const std::string done_then_failed = dir.str() + "/df.journal.jsonl";
  {
    SweepJournal journal(done_then_failed);
    journal.queued({{"181.mcf", "orig"}});
    journal.done({"181.mcf", "orig"}, point.m, /*fresh=*/true, &point.record,
                 nullptr);
    journal.failed({"181.mcf", "orig"}, fail);
  }
  const JournalReplay df = JournalReplay::load(done_then_failed);
  ASSERT_EQ(df.warnings.size(), 1u);
  const auto& df_entry = df.points.at({"181.mcf", "orig"});
  EXPECT_EQ(df_entry.state, JournalReplay::State::kFailed);
  EXPECT_NE(df_entry.failure.error.find("\"failed\" after \"done\""),
            std::string::npos);

  const std::string failed_then_done = dir.str() + "/fd.journal.jsonl";
  {
    SweepJournal journal(failed_then_done);
    journal.queued({{"181.mcf", "orig"}});
    journal.failed({"181.mcf", "orig"}, fail);
    journal.done({"181.mcf", "orig"}, point.m, /*fresh=*/true, &point.record,
                 nullptr);
  }
  const JournalReplay fd = JournalReplay::load(failed_then_done);
  ASSERT_EQ(fd.warnings.size(), 1u);
  const auto& fd_entry = fd.points.at({"181.mcf", "orig"});
  EXPECT_EQ(fd_entry.state, JournalReplay::State::kFailed);
  EXPECT_NE(fd_entry.failure.error.find("\"done\" after \"failed\""),
            std::string::npos);
}

// An explicit re-queue between terminal events is the legitimate retry path
// (the service re-queues after a worker crash): the later terminal simply
// wins, whatever the earlier one said.
TEST(Journal, RequeueLegitimizesTheNextTerminalEvent) {
  TempDir dir("requeue");
  const std::string path = journal_path(dir.str());
  const MeasuredPoint point = measure("181.mcf", "orig");
  PointFailure fail;
  fail.workload = "181.mcf";
  fail.config_key = "orig";
  fail.status = "quarantined";
  fail.error = "worker crashed";
  fail.attempts = 1;

  {
    SweepJournal journal(path);
    journal.queued({{"181.mcf", "orig"}});
    journal.failed({"181.mcf", "orig"}, fail);
    journal.queued({{"181.mcf", "orig"}});  // supervisor re-queued the point
    journal.done({"181.mcf", "orig"}, point.m, /*fresh=*/true, &point.record,
                 nullptr);
  }
  const JournalReplay replay = JournalReplay::load(path);
  EXPECT_TRUE(replay.warnings.empty());
  const auto& entry = replay.points.at({"181.mcf", "orig"});
  EXPECT_EQ(entry.state, JournalReplay::State::kDone);
  EXPECT_EQ(render_run_report("t", {entry.record}),
            render_run_report("t", {point.record}));
}

TEST(Artifacts, RunReportIsSealedAndTamperEvident) {
  TempDir dir("sealed");
  ExperimentRunner runner(kParams, std::string());
  runner.run("181.mcf", "orig", orig1());
  const std::string path = dir.str() + "/report.json";
  runner.write_report(path, "t");

  std::string content = read_file(path);
  EXPECT_EQ(check_integrity(content), IntegrityStatus::kSealed);
  content[content.size() / 2] ^= 0x01;
  EXPECT_EQ(check_integrity(content), IntegrityStatus::kMismatch);
  EXPECT_EQ(check_integrity("{\"no\":\"seal\"}"), IntegrityStatus::kUnsealed);
}

TEST(Artifacts, BitFlippedCacheEntryIsQuarantinedAndHealed) {
  TempDir dir("bitflip");
  ExperimentRunner first(kParams, dir.str());
  const Cycle cycles = first.run("181.mcf", "orig", orig1()).sim.cycles;

  ResultCache cache(dir.str());
  const std::string path =
      cache.entry_path(ResultCache::describe("181.mcf", kParams, orig1()));
  std::string content = read_file(path);
  ASSERT_EQ(check_integrity(content), IntegrityStatus::kSealed);
  content[content.size() / 3] ^= 0x04;  // single bit flip mid-document
  write_file_raw(path, content);

  // The poisoned entry must never be served: quarantined + recomputed.
  ExperimentRunner second(kParams, dir.str());
  EXPECT_EQ(second.run("181.mcf", "orig", orig1()).sim.cycles, cycles);
  EXPECT_EQ(second.records().size(), 1u);  // fresh simulation, not a hit
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));

  // The recompute healed the slot: a third runner is a disk hit again.
  ExperimentRunner third(kParams, dir.str());
  EXPECT_EQ(third.run("181.mcf", "orig", orig1()).sim.cycles, cycles);
  EXPECT_EQ(third.records().size(), 0u);
}

TEST(Artifacts, TruncatedCacheEntryIsQuarantined) {
  TempDir dir("cachetrunc");
  ExperimentRunner first(kParams, dir.str());
  first.run("181.mcf", "orig", orig1());

  ResultCache cache(dir.str());
  const std::string path =
      cache.entry_path(ResultCache::describe("181.mcf", kParams, orig1()));
  ASSERT_EQ(::truncate(path.c_str(), 40), 0);

  EXPECT_EQ(cache.load(ResultCache::describe("181.mcf", kParams, orig1())),
            std::nullopt);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
}

TEST(Env, MalformedSettingsAggregateIntoOneError) {
  ::setenv("WECSIM_RETRIES", "abc", 1);
  ::setenv("WECSIM_RETRY_BACKOFF_MS", "50ms", 1);
  ::setenv("WECSIM_POINT_TIMEOUT", "-3", 1);
  ::setenv("WECSIM_JOBS", "0", 1);
  ::setenv("WECSIM_RESUME", "maybe", 1);
  std::string message;
  try {
    ExperimentRunner runner(kParams, std::string());
  } catch (const SimError& e) {
    message = e.what();
  }
  ::unsetenv("WECSIM_RETRIES");
  ::unsetenv("WECSIM_RETRY_BACKOFF_MS");
  ::unsetenv("WECSIM_POINT_TIMEOUT");
  ::unsetenv("WECSIM_JOBS");
  ::unsetenv("WECSIM_RESUME");
  ASSERT_FALSE(message.empty()) << "malformed env must throw";
  EXPECT_NE(message.find("5 invalid WECSIM_*"), std::string::npos) << message;
  EXPECT_NE(message.find("WECSIM_RETRIES"), std::string::npos) << message;
  EXPECT_NE(message.find("WECSIM_RETRY_BACKOFF_MS"), std::string::npos)
      << message;
  EXPECT_NE(message.find("WECSIM_POINT_TIMEOUT"), std::string::npos)
      << message;
  EXPECT_NE(message.find("WECSIM_JOBS"), std::string::npos) << message;
  EXPECT_NE(message.find("WECSIM_RESUME"), std::string::npos) << message;
}

TEST(Env, TrailingGarbageAndRangeViolationsAreRejected) {
  std::vector<std::string> errors;
  ::setenv("WECSIM_RETRIES", "3x", 1);
  EXPECT_EQ(parse_env_u32("WECSIM_RETRIES", 7, 0, 100, &errors), 7u);
  ::setenv("WECSIM_RETRIES", "101", 1);
  EXPECT_EQ(parse_env_u32("WECSIM_RETRIES", 7, 0, 100, &errors), 7u);
  ::setenv("WECSIM_RETRIES", "-1", 1);
  EXPECT_EQ(parse_env_u32("WECSIM_RETRIES", 7, 0, 100, &errors), 7u);
  ::setenv("WECSIM_RETRIES", "100", 1);
  EXPECT_EQ(parse_env_u32("WECSIM_RETRIES", 7, 0, 100, &errors), 100u);
  ::unsetenv("WECSIM_RETRIES");
  EXPECT_EQ(parse_env_u32("WECSIM_RETRIES", 7, 0, 100, &errors), 7u);
  EXPECT_EQ(errors.size(), 3u);
}

// In-process interrupt: a drain stopped by request_sweep_interrupt() leaves
// unfinished points queued in the journal and marks the runner interrupted;
// a resumed runner finishes the sweep with a byte-identical report.
TEST(Recovery, InterruptedSweepResumesByteIdentical) {
  TempDir dir("interrupt");
  const std::vector<std::string> names = {"181.mcf", "164.gzip", "175.vpr"};

  {
    ParallelExperimentRunner first(kParams, /*jobs=*/2, std::string());
    first.set_state_dir(dir.str());
    // Phase 1: two points finish and land in the journal.
    first.submit(names[0], "orig", orig1());
    first.submit(names[1], "orig", orig1());
    first.drain();
    EXPECT_FALSE(first.interrupted());

    // Phase 2: the interrupt arrives before any worker claims the rest.
    request_sweep_interrupt();
    first.submit(names[2], "orig", orig1());
    first.drain();
    EXPECT_TRUE(first.interrupted());
    EXPECT_EQ(first.pending(), 1u);  // left queued for a resume
    EXPECT_EQ(first.records().size(), 2u);

    // The partial report is sealed and marked interrupted.
    const std::string partial = dir.str() + "/partial.json";
    first.write_report(partial, "t");
    const std::string content = read_file(partial);
    EXPECT_EQ(check_integrity(content), IntegrityStatus::kSealed);
    EXPECT_NE(content.find("\"interrupted\":true"), std::string::npos);
    clear_sweep_interrupt();
  }

  // Resume in a fresh runner: replays the two finished points, simulates
  // the third.
  ParallelExperimentRunner resumed(kParams, /*jobs=*/2, std::string());
  resumed.set_state_dir(dir.str());
  resumed.set_resume(true);
  for (const auto& name : names) resumed.submit(name, "orig", orig1());
  resumed.drain();
  EXPECT_FALSE(resumed.interrupted());
  EXPECT_EQ(resumed.records().size(), 3u);

  // Reference: the same sweep, never interrupted, no journal.
  ParallelExperimentRunner clean(kParams, /*jobs=*/2, std::string());
  clean.set_state_dir(std::string());
  for (const auto& name : names) clean.submit(name, "orig", orig1());
  clean.drain();
  EXPECT_EQ(render_run_report("t", resumed.records()),
            render_run_report("t", clean.records()));
}

// The acceptance scenario: fork a sweep child, SIGKILL it at a seeded
// mid-sweep fault point (PR 3's worker_crash fault escalated via arg=9),
// resume in the parent, and diff the merged report against a clean run.
TEST(Recovery, KilledSweepResumesByteIdentical) {
  TempDir dir("kill");
  const std::vector<std::string> names = {"181.mcf", "164.gzip", "175.vpr"};

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Serial drain for a deterministic kill point: 181.mcf completes, then
    // the injected crash raises SIGKILL while 164.gzip is "running".
    ParallelExperimentRunner sweep(kParams, /*jobs=*/1, std::string());
    sweep.set_state_dir(dir.str());
    sweep.set_fault_plan(FaultPlan::parse(
        "worker_crash:every=1,count=1,match=164.gzip,arg=9"));
    for (const auto& name : names) sweep.submit(name, "orig", orig1());
    sweep.drain();
    ::_exit(42);  // unreachable if the kill fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The journal survived the kill: one point done, one mid-flight.
  const JournalReplay replay = JournalReplay::load(journal_path(dir.str()));
  EXPECT_EQ(replay.points.at({"181.mcf", "orig"}).state,
            JournalReplay::State::kDone);
  EXPECT_EQ(replay.points.at({"164.gzip", "orig"}).state,
            JournalReplay::State::kQueued);  // dead owner reclaimed

  // Resume (no fault plan — the "machine" came back healthy).
  ParallelExperimentRunner resumed(kParams, /*jobs=*/2, std::string());
  resumed.set_state_dir(dir.str());
  resumed.set_resume(true);
  for (const auto& name : names) resumed.submit(name, "orig", orig1());
  resumed.drain();
  EXPECT_FALSE(resumed.interrupted());
  EXPECT_EQ(resumed.records().size(), 3u);
  EXPECT_TRUE(resumed.failures().empty());

  ParallelExperimentRunner clean(kParams, /*jobs=*/2, std::string());
  clean.set_state_dir(std::string());
  for (const auto& name : names) clean.submit(name, "orig", orig1());
  clean.drain();
  EXPECT_EQ(render_run_report("t", resumed.records()),
            render_run_report("t", clean.records()));
}

// Quarantined points replay too: a resume does not retry a point the journal
// says failed persistently.
TEST(Recovery, FailedPointsReplayWithoutRerunning) {
  TempDir dir("failedreplay");
  {
    ParallelExperimentRunner first(kParams, /*jobs=*/2, std::string());
    first.set_state_dir(dir.str());
    first.set_fault_plan(
        FaultPlan::parse("worker_crash:every=1,match=164.gzip"));
    first.set_failsoft_limits(/*max_attempts=*/2, /*backoff_ms=*/0);
    first.submit("181.mcf", "orig", orig1());
    first.submit("164.gzip", "orig", orig1());
    first.drain();
    EXPECT_EQ(first.quarantined_count(), 1u);
  }

  ParallelExperimentRunner resumed(kParams, /*jobs=*/2, std::string());
  resumed.set_state_dir(dir.str());
  resumed.set_resume(true);
  // No fault plan: if the point were re-run it would now succeed — the
  // journal replay must win instead.
  resumed.submit("181.mcf", "orig", orig1());
  resumed.submit("164.gzip", "orig", orig1());
  resumed.drain();
  // 181.mcf replays (its record rejoins the report); 164.gzip replays as
  // quarantined without being retried.
  EXPECT_EQ(resumed.records().size(), 1u);
  EXPECT_EQ(resumed.quarantined_count(), 1u);
  ASSERT_EQ(resumed.failures().size(), 1u);
  EXPECT_EQ(resumed.failures()[0].workload, "164.gzip");
  EXPECT_EQ(resumed.failures()[0].status, "quarantined");
}

}  // namespace
}  // namespace wecsim
