// Validates the wecsim.progress JSONL telemetry stream (harness/progress.h,
// docs/OBSERVABILITY.md) against its documented schema — serial and parallel
// runners — and proves the flight-recorder A/B property: canonical run
// reports are byte-identical with telemetry and profiling on or off.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sim_config.h"
#include "harness/experiment.h"
#include "harness/parallel.h"
#include "harness/progress.h"
#include "harness/report.h"
#include "obs/json.h"
#include "obs/jsonl.h"
#include "obs/profile.h"

namespace wecsim {
namespace {

namespace fs = std::filesystem;

/// Scoped env var: set in the constructor, restored in the destructor.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/wecsim_progress_" + tag +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> stream_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().string().ends_with(".progress.jsonl")) {
      out.push_back(entry.path().string());
    }
  }
  return out;
}

std::vector<JsonValue> read_events(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<JsonValue> events;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) events.push_back(parse_json(line));
  }
  return events;
}

/// Every event line is independently self-describing.
void check_envelope(const JsonValue& v) {
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("schema").as_string(), "wecsim.progress");
  EXPECT_EQ(v.at("schema_version").as_i64(), kProgressSchemaVersion);
  EXPECT_TRUE(v.at("event").is_string());
}

void check_heartbeat(const JsonValue& v) {
  for (const char* key : {"seq", "total", "done", "running", "pending",
                          "quarantined", "fresh", "cache_hits", "replayed",
                          "retries", "sim_cycles_total"}) {
    EXPECT_TRUE(v.at(key).is_number()) << key;
  }
  EXPECT_GE(v.at("elapsed_seconds").as_double(), 0.0);
  EXPECT_GE(v.at("eta_seconds").as_double(), 0.0);
  EXPECT_GE(v.at("sim_cycles_per_second").as_double(), 0.0);
  // v2 additions: cycle-skip and sampled-window telemetry on every beat.
  EXPECT_TRUE(v.at("skipped_cycles_total").is_number());
  EXPECT_GE(v.at("skipped_pct").as_double(), 0.0);
  EXPECT_LE(v.at("skipped_pct").as_double(), 100.0);
  EXPECT_TRUE(v.at("sample_windows").is_number());
  // The counter invariant every consumer relies on for progress bars.
  EXPECT_EQ(v.at("total").as_u64(),
            v.at("done").as_u64() + v.at("running").as_u64() +
                v.at("pending").as_u64());
  for (const JsonValue& w : v.at("workers").items()) {
    EXPECT_TRUE(w.at("worker").is_number());
    const std::string state = w.at("state").as_string();
    EXPECT_TRUE(state == "idle" || state == "running") << state;
    if (state == "running") {
      EXPECT_TRUE(w.at("point").is_string());
    }
  }
}

struct StreamSummary {
  size_t heartbeats = 0;
  size_t points = 0;
  size_t fresh_points = 0;
  bool started = false;
  bool finished = false;
  uint64_t finish_done = 0;
  uint64_t finish_fresh = 0;
  uint64_t finish_cache_hits = 0;
  uint64_t finish_sample_windows = 0;
};

StreamSummary validate_stream(const std::string& path) {
  StreamSummary s;
  const std::vector<JsonValue> events = read_events(path);
  EXPECT_FALSE(events.empty()) << path;
  for (const JsonValue& v : events) {
    check_envelope(v);
    const std::string event = v.at("event").as_string();
    if (event == "start") {
      EXPECT_FALSE(s.started) << "duplicate start event";
      s.started = true;
      EXPECT_GT(v.at("pid").as_i64(), 0);
      EXPECT_GE(v.at("interval_ms").as_u64(), 10u);
    } else if (event == "heartbeat") {
      ++s.heartbeats;
      check_heartbeat(v);
    } else if (event == "point") {
      ++s.points;
      EXPECT_TRUE(v.at("point").is_string());
      const std::string outcome = v.at("outcome").as_string();
      EXPECT_TRUE(outcome == "fresh" || outcome == "cached" ||
                  outcome == "replayed" || outcome == "quarantined")
          << outcome;
      if (outcome == "fresh") {
        ++s.fresh_points;
        EXPECT_GT(v.at("cycles").as_u64(), 0u);
      }
    } else if (event == "finish") {
      EXPECT_FALSE(s.finished) << "duplicate finish event";
      s.finished = true;
      s.finish_done = v.at("done").as_u64();
      s.finish_fresh = v.at("fresh").as_u64();
      s.finish_cache_hits = v.at("cache_hits").as_u64();
      s.finish_sample_windows = v.at("sample_windows").as_u64();
      EXPECT_TRUE(v.at("skipped_cycles_total").is_number());
      EXPECT_GE(v.at("wall_seconds").as_double(), 0.0);
    } else {
      ADD_FAILURE() << "unknown event: " << event;
    }
  }
  EXPECT_TRUE(events.front().at("event").as_string() == "start") << path;
  EXPECT_TRUE(s.finished) << path;
  EXPECT_GE(s.heartbeats, 1u) << path;
  return s;
}

TEST(ProgressSchemaTest, SerialSweepEmitsWellFormedStream) {
  const std::string dir = fresh_dir("serial");
  WorkloadParams params;
  params.scale = 1;
  {
    ScopedEnv progress("WECSIM_PROGRESS_DIR", dir.c_str());
    ExperimentRunner runner(params, std::string());
    runner.run("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
    runner.run("mcf", "wth_wp_wec",
               make_paper_config(PaperConfig::kWthWpWec, 4));
  }  // reporter destructor flushes the final heartbeat + finish
  const std::vector<std::string> streams = stream_files(dir);
  ASSERT_EQ(streams.size(), 1u);
  const StreamSummary s = validate_stream(streams[0]);
  EXPECT_EQ(s.points, 2u);
  EXPECT_EQ(s.fresh_points, 2u);
  EXPECT_EQ(s.finish_done, 2u);
  EXPECT_EQ(s.finish_fresh, 2u);
  fs::remove_all(dir);
}

TEST(ProgressSchemaTest, ParallelSweepEmitsWellFormedStream) {
  const std::string dir = fresh_dir("parallel");
  WorkloadParams params;
  params.scale = 1;
  {
    ScopedEnv progress("WECSIM_PROGRESS_DIR", dir.c_str());
    ParallelExperimentRunner runner(params, /*jobs=*/2, std::string());
    runner.submit("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
    runner.submit("mcf", "wth_wp_wec",
                  make_paper_config(PaperConfig::kWthWpWec, 4));
    runner.drain();
  }
  const std::vector<std::string> streams = stream_files(dir);
  ASSERT_EQ(streams.size(), 1u);
  const StreamSummary s = validate_stream(streams[0]);
  EXPECT_EQ(s.points, 2u);
  EXPECT_EQ(s.fresh_points, 2u);
  EXPECT_EQ(s.finish_done, 2u);
  fs::remove_all(dir);
}

TEST(ProgressSchemaTest, SampledSweepCountsWindows) {
  const std::string dir = fresh_dir("sampled");
  WorkloadParams params;
  params.scale = 1;
  {
    ScopedEnv progress("WECSIM_PROGRESS_DIR", dir.c_str());
    ScopedEnv sample("WECSIM_SAMPLE", "1");
    ExperimentRunner runner(params, std::string());
    runner.run("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
  }
  const std::vector<std::string> streams = stream_files(dir);
  ASSERT_EQ(streams.size(), 1u);
  const StreamSummary s = validate_stream(streams[0]);
  EXPECT_EQ(s.fresh_points, 1u);
  EXPECT_GE(s.finish_sample_windows, 1u);
  fs::remove_all(dir);
}

TEST(ProgressSchemaTest, DiskCacheHitsAreReportedAsCached) {
  const std::string dir = fresh_dir("cached");
  const std::string cache = fresh_dir("cached_cache");
  WorkloadParams params;
  params.scale = 1;
  const auto sweep = [&] {
    ScopedEnv progress("WECSIM_PROGRESS_DIR", dir.c_str());
    ExperimentRunner runner(params, cache);
    runner.run("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
  };
  sweep();  // cold: fresh simulation
  sweep();  // warm: disk hit
  const std::vector<std::string> streams = stream_files(dir);
  ASSERT_EQ(streams.size(), 2u);
  size_t cached_total = 0;
  for (const std::string& path : streams) {
    cached_total += validate_stream(path).finish_cache_hits;
  }
  EXPECT_EQ(cached_total, 1u);
  fs::remove_all(dir);
  fs::remove_all(cache);
}

TEST(ProgressSchemaTest, RunReportsByteIdenticalWithFlightRecorderOnVsOff) {
  WorkloadParams params;
  params.scale = 1;
  const auto sweep_report = [&params](bool features_on) {
    const std::string dir = fresh_dir(features_on ? "ab_on" : "ab_off");
    std::string report;
    {
      std::optional<ScopedEnv> progress, profile;
      if (features_on) {
        progress.emplace("WECSIM_PROGRESS_DIR", dir.c_str());
        profile.emplace("WECSIM_PROFILE", "1");
      }
      ExperimentRunner runner(params, std::string());
      runner.run("mcf", "orig", make_paper_config(PaperConfig::kOrig, 4));
      runner.run("mcf", "wth_wp_wec",
                 make_paper_config(PaperConfig::kWthWpWec, 4));
      report = render_run_report("ab", runner.records(), runner.failures(),
                                 runner.interrupted());
    }
    set_profile_enabled(false);  // do not leak into later tests
    if (features_on) {
      // The telemetry must actually have been on for the A/B to mean much.
      EXPECT_FALSE(stream_files(dir).empty());
    }
    fs::remove_all(dir);
    return report;
  };
  const std::string off = sweep_report(false);
  const std::string on = sweep_report(true);
  EXPECT_EQ(off, on);
}

TEST(ProgressSchemaTest, ObsEnvViolationsAggregateIntoOneError) {
  ScopedEnv interval("WECSIM_PROGRESS_INTERVAL_MS", "soon");
  ScopedEnv profile("WECSIM_PROFILE", "maybe");
  ScopedEnv retries("WECSIM_RETRIES", "many");
  try {
    ExperimentRunner runner;
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    // One aggregated error names every offender, old knobs and new alike.
    EXPECT_NE(what.find("WECSIM_PROGRESS_INTERVAL_MS"), std::string::npos)
        << what;
    EXPECT_NE(what.find("WECSIM_PROFILE"), std::string::npos) << what;
    EXPECT_NE(what.find("WECSIM_RETRIES"), std::string::npos) << what;
  }
}

TEST(ProgressSchemaTest, IntervalOutOfRangeIsRejected) {
  ScopedEnv interval("WECSIM_PROGRESS_INTERVAL_MS", "5");  // below 10 ms floor
  EXPECT_THROW(ExperimentRunner runner, SimError);
}

// wecsim-top follows live progress files through obs/jsonl.h: a torn tail
// (crash mid-append, or the writer is inside write() right now) must read as
// "not yet", never as a schema error or a garbage half-line.
TEST(JsonlTailReader, TornTailIsHeldBackThenCompletedTransparently) {
  const std::string dir = fresh_dir("jsonltorn");
  const std::string path = dir + "/stream.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"n\":1}\n{\"n\":2}\n{\"n\":3";  // torn mid-append
  }

  JsonlTailReader reader(path);
  ASSERT_TRUE(reader.ok());
  std::string line;
  ASSERT_EQ(reader.next(line), JsonlTailReader::Status::kLine);
  EXPECT_EQ(line, "{\"n\":1}");
  ASSERT_EQ(reader.next(line), JsonlTailReader::Status::kLine);
  EXPECT_EQ(line, "{\"n\":2}");
  // The partial third line is pending, not surfaced.
  EXPECT_EQ(reader.next(line), JsonlTailReader::Status::kTorn);
  EXPECT_EQ(reader.torn_bytes(), std::string("{\"n\":3").size());
  // Polling again without new bytes stays kTorn (never a duplicate).
  EXPECT_EQ(reader.next(line), JsonlTailReader::Status::kTorn);

  // The writer finishes the line: the follower sees exactly one whole line.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "3}\n";
  }
  ASSERT_EQ(reader.next(line), JsonlTailReader::Status::kLine);
  EXPECT_EQ(line, "{\"n\":33}");
  EXPECT_EQ(reader.next(line), JsonlTailReader::Status::kEof);
  fs::remove_all(dir);
}

TEST(JsonlTailReader, CleanEofHasNoPendingTail) {
  const std::string dir = fresh_dir("jsonleof");
  const std::string path = dir + "/stream.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"n\":1}\n";
  }
  JsonlTailReader reader(path);
  ASSERT_TRUE(reader.ok());
  std::string line;
  ASSERT_EQ(reader.next(line), JsonlTailReader::Status::kLine);
  EXPECT_EQ(reader.next(line), JsonlTailReader::Status::kEof);
  EXPECT_EQ(reader.torn_bytes(), 0u);

  // A growing file resumes from where the reader stopped.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"n\":2}\n";
  }
  ASSERT_EQ(reader.next(line), JsonlTailReader::Status::kLine);
  EXPECT_EQ(line, "{\"n\":2}");
  fs::remove_all(dir);
}

TEST(JsonlTailReader, MissingFileReportsNotOk) {
  JsonlTailReader reader("/nonexistent/wecsim/stream.jsonl");
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace wecsim
