// ISA metadata, encode/decode, and rendering tests.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "isa/isa.h"

namespace wecsim {
namespace {

class OpcodeInfoTest : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeInfoTest, MetadataIsSelfConsistent) {
  const auto op = static_cast<Opcode>(GetParam());
  const OpcodeInfo& info = opcode_info(op);
  ASSERT_NE(info.name, nullptr);
  EXPECT_GT(std::string(info.name).size(), 0u);

  // Loads and stores use the LSU and carry an immediate (displacement).
  Instruction instr{op, 0, 0, 0, 0};
  if (instr.is_mem()) {
    EXPECT_EQ(info.fu, FuClass::kLsu);
    EXPECT_TRUE(info.has_imm);
    EXPECT_GT(instr.mem_bytes(), 0u);
    EXPECT_LE(instr.mem_bytes(), 8u);
  } else {
    EXPECT_EQ(instr.mem_bytes(), 0u);
  }
  // Branches read two integer registers and write none.
  if (instr.is_branch()) {
    EXPECT_EQ(info.dst, RegFile::kNone);
    EXPECT_EQ(info.src1, RegFile::kInt);
    EXPECT_EQ(info.src2, RegFile::kInt);
  }
  // Stores never write a register.
  if (instr.is_store()) EXPECT_EQ(info.dst, RegFile::kNone);
  // Latency is sane.
  EXPECT_GE(info.latency, 1u);
  EXPECT_LE(info.latency, 32u);
  // writes_reg agrees with the metadata.
  EXPECT_EQ(instr.writes_reg(), info.dst != RegFile::kNone);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeInfoTest,
                         ::testing::Range(0, kNumOpcodes));

TEST(OpcodeNames, AreUnique) {
  std::set<std::string> names;
  for (int i = 0; i < kNumOpcodes; ++i) {
    EXPECT_TRUE(names.insert(opcode_name(static_cast<Opcode>(i))).second)
        << "duplicate mnemonic " << opcode_name(static_cast<Opcode>(i));
  }
}

TEST(EncodeDecode, RoundTripsRandomInstructions) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    Instruction instr;
    instr.op = static_cast<Opcode>(rng.below(kNumOpcodes));
    const OpcodeInfo& info = opcode_info(instr.op);
    if (info.dst != RegFile::kNone) {
      instr.rd = static_cast<RegId>(rng.below(kNumIntRegs));
    }
    if (info.src1 != RegFile::kNone) {
      instr.rs1 = static_cast<RegId>(rng.below(kNumIntRegs));
    }
    if (info.src2 != RegFile::kNone) {
      instr.rs2 = static_cast<RegId>(rng.below(kNumIntRegs));
    }
    instr.imm = static_cast<int64_t>(rng.next());
    const Instruction back = decode(encode(instr));
    EXPECT_EQ(instr, back) << to_string(instr);
  }
}

TEST(EncodeDecode, RejectsInvalidOpcodeByte) {
  EncodedInstr bits;
  bits.word0 = 0xfe;  // out of range opcode
  EXPECT_THROW(decode(bits), SimError);
}

TEST(EncodeDecode, RejectsOutOfRangeRegister) {
  Instruction instr{Opcode::kAdd, 40, 1, 2, 0};  // rd = 40 > 31
  EncodedInstr bits = encode(instr);
  EXPECT_THROW(decode(bits), SimError);
}

TEST(ToString, RendersRepresentativeForms) {
  EXPECT_EQ(to_string({Opcode::kAdd, 3, 1, 2, 0}), "add r3, r1, r2");
  EXPECT_EQ(to_string({Opcode::kAddi, 3, 1, 0, -5}), "addi r3, r1, -5");
  EXPECT_EQ(to_string({Opcode::kLd, 4, 2, 0, 16}), "ld r4, 16(r2)");
  EXPECT_EQ(to_string({Opcode::kSd, 0, 2, 4, 16}), "sd r4, 16(r2)");
  EXPECT_EQ(to_string({Opcode::kFadd, 1, 2, 3, 0}), "fadd f1, f2, f3");
  EXPECT_EQ(to_string({Opcode::kFsd, 0, 2, 4, 8}), "fsd f4, 8(r2)");
  EXPECT_EQ(to_string({Opcode::kNop, 0, 0, 0, 0}), "nop");
  EXPECT_EQ(to_string({Opcode::kTsaddr, 0, 6, 0, 8}), "tsaddr r6, 8");
}

TEST(Instruction, ControlClassification) {
  EXPECT_TRUE(Instruction{Opcode::kBeq}.is_control());
  EXPECT_TRUE(Instruction{Opcode::kJal}.is_control());
  EXPECT_TRUE(Instruction{Opcode::kJalr}.is_jump());
  EXPECT_FALSE(Instruction{Opcode::kFork}.is_control());
  EXPECT_TRUE(Instruction{Opcode::kFork}.is_thread_op());
  EXPECT_TRUE(Instruction{Opcode::kEndpar}.is_thread_op());
}

}  // namespace
}  // namespace wecsim
