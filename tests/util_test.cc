// Common utilities: bit helpers, RNG determinism, the stats registry, flat
// memory, template expansion, table rendering, and harness math.
#include <gtest/gtest.h>

#include <sstream>

#include "common/bits.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "mem/flat_memory.h"
#include "workloads/expand.h"

namespace wecsim {
namespace {

TEST(Bits, PowersOfTwo) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(4096), 12u);
  EXPECT_EQ(floor_log2(4097), 12u);
  EXPECT_EQ(exact_log2(64), 6u);
  EXPECT_THROW(exact_log2(48), std::logic_error);
}

TEST(Bits, MasksAndAlignment) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(8), 0xffu);
  EXPECT_EQ(low_mask(64), ~uint64_t{0});
  EXPECT_EQ(align_down(0x12345, 0x100), 0x12300u);
  EXPECT_EQ(align_up(0x12345, 0x100), 0x12400u);
  EXPECT_EQ(align_up(0x12300, 0x100), 0x12300u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const uint64_t v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.uniform();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Stats, CountersAccumulateAndSnapshot) {
  StatsRegistry stats;
  auto c1 = stats.counter("a.x");
  auto c2 = stats.counter("a.y");
  c1.inc();
  c1.inc(4);
  c2.inc();
  EXPECT_EQ(stats.value("a.x"), 5u);
  EXPECT_EQ(stats.value("missing"), 0u);
  auto snap = stats.snapshot();
  EXPECT_EQ(snap.at("a.y"), 1u);
  stats.reset();
  EXPECT_EQ(stats.value("a.x"), 0u);
  c1.inc();  // handles survive reset
  EXPECT_EQ(stats.value("a.x"), 1u);
}

TEST(Stats, SumMatchingPrefixSuffix) {
  StatsRegistry stats;
  stats.counter("tu0.l1d.misses").inc(3);
  stats.counter("tu1.l1d.misses").inc(4);
  stats.counter("tu1.l1d.accesses").inc(9);
  stats.counter("l2.misses").inc(100);
  EXPECT_EQ(stats.sum_matching("tu", ".l1d.misses"), 7u);
  EXPECT_EQ(stats.sum_matching("tu", ".l1d.accesses"), 9u);
}

TEST(Stats, SumMatchingEdgeCases) {
  StatsRegistry stats;
  stats.counter("tu0.l1d.misses").inc(3);
  stats.counter("tu1.l1d.misses").inc(4);
  stats.counter("tu").inc(50);
  stats.counter("l2.misses").inc(100);
  // Empty suffix: every counter starting with the prefix matches, including
  // the counter whose full name equals the prefix.
  EXPECT_EQ(stats.sum_matching("tu", ""), 57u);
  // Prefix that is a full counter name, with a suffix nothing carries.
  EXPECT_EQ(stats.sum_matching("tu", ".does.not.exist"), 0u);
  // No counter matches the prefix at all.
  EXPECT_EQ(stats.sum_matching("zz", ".l1d.misses"), 0u);
  // Name shorter than prefix+suffix must not match even if both overlap.
  stats.counter("ab").inc(1);
  EXPECT_EQ(stats.sum_matching("ab", "b"), 0u);
}

TEST(Stats, GaugesSetAndSnapshot) {
  StatsRegistry stats;
  auto g = stats.gauge("sta.active_tus");
  g.set(5);
  g.add(-2);
  EXPECT_EQ(stats.gauge_value("sta.active_tus"), 3);
  EXPECT_EQ(stats.gauge_value("missing"), 0);
  EXPECT_EQ(stats.gauge_snapshot().at("sta.active_tus"), 3);
  stats.reset();
  EXPECT_EQ(stats.gauge_value("sta.active_tus"), 0);
}

TEST(Stats, NullHandlesAreSafe) {
  StatsRegistry::Counter c;
  StatsRegistry::Histogram h;
  StatsRegistry::Gauge g;
  c.inc();
  h.record(7);
  g.set(1);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.data(), nullptr);
  EXPECT_EQ(g.value(), 0);
}

TEST(Stats, DumpListsValuesAndCallsHook) {
  StatsRegistry stats;
  stats.counter("a.count").inc(3);
  stats.gauge("a.level").set(-2);
  stats.histogram("a.lat").record(5);
  bool hook_ran = false;
  const std::string out =
      stats.dump([&](const StatsRegistry& s, std::ostream& os) {
        hook_ran = true;
        os << "derived.custom = " << s.value("a.count") * 2 << "\n";
      });
  EXPECT_TRUE(hook_ran);
  EXPECT_NE(out.find("a.count = 3"), std::string::npos);
  EXPECT_NE(out.find("a.level = -2"), std::string::npos);
  EXPECT_NE(out.find("a.lat"), std::string::npos);
  EXPECT_NE(out.find("derived.custom = 6"), std::string::npos);
}

TEST(Stats, AppendDerivedRatiosSkipsZeroDenominators) {
  StatsRegistry stats;
  std::ostringstream os0;
  append_derived_ratios(stats, os0);
  EXPECT_EQ(os0.str(), "");  // nothing to derive from an empty registry
  stats.counter("tu0.l1d.accesses").inc(100);
  stats.counter("tu0.l1d.misses").inc(25);
  const std::string out = stats.dump(append_derived_ratios);
  EXPECT_NE(out.find("derived.l1d.miss_rate"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
}

TEST(Stats, SameNameSharesSlot) {
  StatsRegistry stats;
  auto a = stats.counter("x");
  auto b = stats.counter("x");
  a.inc();
  b.inc();
  EXPECT_EQ(stats.value("x"), 2u);
}

TEST(FlatMemory, ReadWriteWidths) {
  FlatMemory memory;
  memory.write_u64(0x1000, 0x1122334455667788ull);
  EXPECT_EQ(memory.read_u64(0x1000), 0x1122334455667788ull);
  EXPECT_EQ(memory.read_u32(0x1000), 0x55667788u);
  EXPECT_EQ(memory.read_u8(0x1007), 0x11u);
  EXPECT_EQ(memory.read(0x1002, 2), 0x5566u);
  memory.write_u8(0x1003, 0xAB);
  EXPECT_EQ(memory.read_u64(0x1000), 0x11223344AB667788ull);
}

TEST(FlatMemory, UnwrittenReadsZeroAndAllocatesNothing) {
  FlatMemory memory;
  EXPECT_EQ(memory.read_u64(0xdeadbeef), 0u);
  EXPECT_EQ(memory.resident_pages(), 0u);
  memory.write_u8(0x1, 1);
  EXPECT_EQ(memory.resident_pages(), 1u);
}

TEST(FlatMemory, CrossPageAccess) {
  FlatMemory memory;
  const Addr boundary = 4096;
  memory.write(boundary - 4, 0x1122334455667788ull, 8);
  EXPECT_EQ(memory.read(boundary - 4, 8), 0x1122334455667788ull);
  EXPECT_EQ(memory.read_u32(boundary), 0x11223344u);
  EXPECT_EQ(memory.resident_pages(), 2u);
}

TEST(FlatMemory, Doubles) {
  FlatMemory memory;
  memory.write_f64(0x2000, 3.14159);
  EXPECT_DOUBLE_EQ(memory.read_f64(0x2000), 3.14159);
}

TEST(ExpandAsm, SubstitutesAndValidates) {
  EXPECT_EQ(expand_asm(".space {N}\nli r1, {M}", {{"N", 64}, {"M", 7}}),
            ".space 64\nli r1, 7");
  EXPECT_EQ(expand_asm("no params", {}), "no params");
  EXPECT_THROW(expand_asm("{MISSING}", {}), SimError);
  EXPECT_THROW(expand_asm("{unclosed", {}), SimError);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "123"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "many", "cells"}), std::logic_error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(12.345), "12.3%");
}

TEST(HarnessMath, Speedups) {
  EXPECT_DOUBLE_EQ(speedup(200, 100), 2.0);
  EXPECT_DOUBLE_EQ(relative_speedup_pct(110, 100), 10.000000000000009);
  EXPECT_NEAR(relative_speedup_pct(100, 110), -9.09, 0.01);
}

TEST(HarnessMath, GeometricMeanSpeedup) {
  EXPECT_DOUBLE_EQ(mean_speedup({2.0, 2.0}), 2.0);
  EXPECT_NEAR(mean_speedup({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(mean_speedup({0.5, 2.0}), 1.0, 1e-12);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    WEC_CHECK_MSG(1 == 2, "the message");
    FAIL();
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace wecsim
