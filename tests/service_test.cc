// wecsimd, the fault-tolerant multi-tenant sweep service (docs/SERVICE.md):
// protocol validation, the fsync'd admission WAL, worker supervision with
// crash quarantine, per-client quotas and queue-depth backpressure, graceful
// SIGTERM drain, and the chaos contract — SIGKILL the workers or the daemon
// itself mid-sweep and a restart with the same state dir completes every
// accepted job with a report byte-identical to an uninterrupted run.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "harness/journal.h"
#include "harness/report.h"
#include "harness/state_dir.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "service/queue.h"

namespace wecsim {
namespace {

// A unique per-test temp directory (std::filesystem; removed on scope exit).
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("wecsim_service_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

JobSpec small_job(const std::string& client, const std::string& name) {
  JobSpec spec;
  spec.client = client;
  spec.name = name;
  spec.workload = "181.mcf";
  spec.scale = 1;
  spec.seed = 42;
  spec.points.push_back(PointSpec{"orig", "orig", 1, 0});
  spec.points.push_back(PointSpec{"wec", "wth-wp-wec", 1, 0});
  return spec;
}

// What an uninterrupted run of `spec` reports: the points simulated in spec
// order by a plain serial runner (cache disabled, like the daemon workers in
// these tests), rendered through the same write_run_report path the daemon's
// finalize uses. Byte-comparing against this is the acceptance criterion.
std::string expected_report(const JobSpec& spec, const std::string& dir) {
  ExperimentRunner direct(WorkloadParams{spec.scale, spec.seed},
                          std::string());
  for (const PointSpec& p : spec.points) {
    direct.try_run(spec.workload, p.key, point_config(p));
  }
  const std::string path = dir + "/expected_" + spec.name + ".json";
  write_run_report(path, spec.name, direct.records(), direct.failures());
  return read_file(path);
}

ServiceConfig test_config(const std::string& state_dir) {
  ServiceConfig config;
  config.state_dir = state_dir;
  config.socket = state_dir + "/wecsimd.sock";
  config.workers = 2;
  config.backoff_ms = 1;  // retry fast; tests should not sleep
  return config;
}

// Runs a ServiceDaemon in a forked child (the tests play the role of
// wecsimd's main()). The child's exit status is the daemon's run() result.
pid_t spawn_daemon(const ServiceConfig& config) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // The daemon logs to a file, not the inherited stdio: ctest reads the
    // test's output pipe until EOF, so a daemon that outlived a failed
    // test would hang the whole run if it kept the pipe open.
    const std::string log = config.state_dir + "/daemon.log";
    const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    // Workers must simulate, not serve cache hits, for the byte-identity
    // comparisons here (a disk hit journals no RunRecord).
    ::unsetenv("WECSIM_CACHE_DIR");
    try {
      ServiceDaemon daemon(config);
      ::_exit(daemon.run());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "daemon child: %s\n", e.what());
      ::_exit(100);
    }
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

void stop_daemon(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGTERM);
  for (int i = 0; i < 200; ++i) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return;
    ::usleep(50 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

// SIGKILLs the daemon on scope exit so an early ASSERT failure can never
// leak a live daemon. Tests that shut down deliberately call release()
// (or reap via wait_exit) first.
struct DaemonGuard {
  pid_t pid = -1;
  explicit DaemonGuard(pid_t p) : pid(p) {}
  DaemonGuard(const DaemonGuard&) = delete;
  DaemonGuard& operator=(const DaemonGuard&) = delete;
  ~DaemonGuard() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
  pid_t release() {
    const pid_t p = pid;
    pid = -1;
    return p;
  }
};

TEST(ServiceProtocol, JobSpecRoundTripsThroughJson) {
  JobSpec spec = small_job("alice", "roundtrip");
  spec.priority = 7;
  spec.seed = 1234;
  spec.points[1].mem_latency = 777;

  JsonWriter w;
  write_job_spec(w, spec);
  const JobSpec back = parse_job_spec(parse_json(w.take()));
  EXPECT_EQ(back.client, "alice");
  EXPECT_EQ(back.name, "roundtrip");
  EXPECT_EQ(back.priority, 7u);
  EXPECT_EQ(back.workload, "181.mcf");
  EXPECT_EQ(back.seed, 1234u);
  ASSERT_EQ(back.points.size(), 2u);
  EXPECT_EQ(back.points[0].key, "orig");
  EXPECT_EQ(back.points[0].mem_latency, 0u);
  EXPECT_EQ(back.points[1].config, "wth-wp-wec");
  EXPECT_EQ(back.points[1].mem_latency, 777u);
}

TEST(ServiceProtocol, ValidateJobAggregatesAllProblems) {
  JobSpec spec;  // empty client/name/workload, no points
  EXPECT_EQ(validate_job(small_job("c", "n")).size(), 0u);
  std::vector<std::string> errors = validate_job(spec);
  EXPECT_GE(errors.size(), 4u);

  spec = small_job("c", "n");
  spec.workload = "999.nope";
  spec.points.push_back(PointSpec{"orig", "orig", 1, 0});      // dup key
  spec.points.push_back(PointSpec{"bad", "no_such", 1, 0});    // bad config
  spec.points.push_back(PointSpec{"deep", "orig", 99, 0});     // tus range
  errors = validate_job(spec);
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_NE(errors[0].find("unknown workload"), std::string::npos);
}

TEST(ServiceProtocol, PointConfigAppliesMemoryLatencyOverride) {
  const StaConfig paper = point_config(PointSpec{"a", "orig", 1, 0});
  EXPECT_GT(paper.mem.mem_lat, 0u);  // 0 keeps the paper default
  const StaConfig overridden = point_config(PointSpec{"a", "orig", 1, 777});
  EXPECT_EQ(overridden.mem.mem_lat, 777u);
  EXPECT_THROW(point_config(PointSpec{"a", "no_such", 1, 0}), SimError);
}

TEST(ServiceQueueTest, AdmitsReplaysAndMarksDoneDurably) {
  TempDir dir("queue");
  std::string first, second;
  {
    ServiceQueue queue(dir.str());
    EXPECT_TRUE(queue.pending().empty());
    first = queue.admit(small_job("alice", "one"));
    second = queue.admit(small_job("bob", "two"));
    EXPECT_NE(first, second);
    EXPECT_TRUE(std::filesystem::is_directory(job_dir(dir.str(), first)));
  }
  {
    // Replay: both jobs pending, admission order preserved.
    ServiceQueue queue(dir.str());
    EXPECT_TRUE(queue.warnings().empty());
    ASSERT_EQ(queue.pending().size(), 2u);
    EXPECT_EQ(queue.pending()[0].id, first);
    EXPECT_EQ(queue.pending()[0].spec.client, "alice");
    EXPECT_EQ(queue.pending()[1].id, second);
    queue.mark_done(first);
  }
  {
    // job_done survives; new ids never collide with replayed ones.
    ServiceQueue queue(dir.str());
    ASSERT_EQ(queue.pending().size(), 1u);
    EXPECT_EQ(queue.pending()[0].id, second);
    const std::string third = queue.admit(small_job("carol", "three"));
    EXPECT_NE(third, first);
    EXPECT_NE(third, second);
  }
}

TEST(ServiceEnvTest, InvalidSettingsAggregateIntoOneError) {
  ::setenv("WECSIM_SERVICE_WORKERS", "lots", 1);
  ::setenv("WECSIM_SERVICE_MAX_QUEUE", "0", 1);
  ::setenv("WECSIM_SERVICE_RETRY_AFTER_MS", "-5", 1);
  std::string message;
  try {
    service_config_from_env("/tmp/unused");
  } catch (const SimError& e) {
    message = e.what();
  }
  ::unsetenv("WECSIM_SERVICE_WORKERS");
  ::unsetenv("WECSIM_SERVICE_MAX_QUEUE");
  ::unsetenv("WECSIM_SERVICE_RETRY_AFTER_MS");
  ASSERT_FALSE(message.empty()) << "invalid WECSIM_SERVICE_* must throw";
  EXPECT_NE(message.find("WECSIM_SERVICE_WORKERS"), std::string::npos)
      << message;
  EXPECT_NE(message.find("WECSIM_SERVICE_MAX_QUEUE"), std::string::npos)
      << message;
  EXPECT_NE(message.find("WECSIM_SERVICE_RETRY_AFTER_MS"), std::string::npos)
      << message;
}

// The baseline service contract: submit over the socket, the daemon shards
// the points across workers, the finalized report is byte-identical to a
// direct serial run, and SIGTERM on an idle daemon exits 0.
TEST(ServiceDaemonTest, CompletesJobByteIdenticalToDirectRun) {
  TempDir dir("basic");
  const ServiceConfig config = test_config(dir.str());
  DaemonGuard daemon(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));

  const JobSpec spec = small_job("alice", "basic");
  ServiceClient client(config.socket);
  const JsonValue accepted = client.submit(spec);
  ASSERT_TRUE(accepted.at("ok").as_bool());
  const std::string job = accepted.at("job").as_string();
  EXPECT_EQ(accepted.at("points").as_u64(), 2u);

  const JsonValue done = client.wait(job, 300.0);
  EXPECT_EQ(done.at("done").as_u64(), 2u);
  EXPECT_EQ(done.at("failed").as_u64(), 0u);
  const std::string report = done.at("report").as_string();
  EXPECT_EQ(read_file(report), expected_report(spec, dir.str()));

  // Idle drain: exit 0, nothing left behind.
  ::kill(daemon.pid, SIGTERM);
  EXPECT_EQ(wait_exit(daemon.release()), 0);
}

// Admission control: per-client quotas and the global queue-depth cap reject
// with an explicit retry_after_ms — and the daemon keeps serving.
TEST(ServiceDaemonTest, BackpressureRejectsWithRetryAfter) {
  TempDir dir("quota");
  ServiceConfig config = test_config(dir.str());
  config.quota = 2;
  config.max_queue = 3;
  DaemonGuard daemon(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));
  ServiceClient client(config.socket);

  // Three points from one client exceed its quota of 2.
  JobSpec big = small_job("alice", "big");
  big.points.push_back(PointSpec{"wp", "wth-wp", 1, 0});
  const JsonValue quota = client.submit(big);
  EXPECT_FALSE(quota.at("ok").as_bool());
  EXPECT_EQ(quota.at("error").as_string(), "quota_exceeded");
  EXPECT_EQ(quota.at("retry_after_ms").as_u64(), config.retry_after_ms);

  // Four points exceed the global depth cap of 3 (checked before quota).
  big.points.push_back(PointSpec{"base", "wth", 1, 0});
  const JsonValue full = client.submit(big);
  EXPECT_FALSE(full.at("ok").as_bool());
  EXPECT_EQ(full.at("error").as_string(), "queue_full");
  EXPECT_EQ(full.at("retry_after_ms").as_u64(), config.retry_after_ms);

  // Malformed specs are named problems, not crashes.
  JobSpec bad = small_job("alice", "bad");
  bad.workload = "999.nope";
  const JsonValue invalid = client.submit(bad);
  EXPECT_FALSE(invalid.at("ok").as_bool());
  EXPECT_EQ(invalid.at("error").as_string(), "invalid_request");
  EXPECT_GE(invalid.at("detail").items().size(), 1u);

  const JsonValue unknown = client.status("j-999999");
  EXPECT_FALSE(unknown.at("ok").as_bool());
  EXPECT_EQ(unknown.at("error").as_string(), "unknown_job");

  // None of the rejections hurt the daemon: a conforming job still runs.
  const JsonValue health = client.health();
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_EQ(health.at("state").as_string(), "serving");
  const JsonValue accepted = client.submit(small_job("alice", "ok"));
  ASSERT_TRUE(accepted.at("ok").as_bool());
  client.wait(accepted.at("job").as_string(), 300.0);
  stop_daemon(daemon.release());
}

// Worker supervision: a point whose worker is SIGKILLed on every attempt
// (via the PR 3 fault plan, inherited through the environment) is retried
// with backoff, then quarantined — while the healthy point completes and
// the job still finalizes with a report.
TEST(ServiceDaemonTest, CrashLoopingPointIsQuarantinedJobStillFinishes) {
  TempDir dir("crashloop");
  ServiceConfig config = test_config(dir.str());
  config.retries = 1;
  ::setenv("WECSIM_FAULTS", "worker_crash:every=1,match=crashme,arg=9", 1);
  DaemonGuard daemon(spawn_daemon(config));
  ::unsetenv("WECSIM_FAULTS");
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));

  JobSpec spec = small_job("alice", "crashloop");
  spec.points[1] = PointSpec{"crashme", "wth-wp-wec", 1, 0};
  ServiceClient client(config.socket);
  const JsonValue accepted = client.submit(spec);
  ASSERT_TRUE(accepted.at("ok").as_bool());
  const JsonValue done = client.wait(accepted.at("job").as_string(), 300.0);
  EXPECT_EQ(done.at("done").as_u64(), 1u);
  EXPECT_EQ(done.at("failed").as_u64(), 1u);

  const std::string report = read_file(done.at("report").as_string());
  EXPECT_NE(report.find("\"quarantined\""), std::string::npos);
  EXPECT_NE(report.find("signal 9"), std::string::npos);
  // The journal records the escalation: the last entry for the crashing
  // point is a terminal "failed" after two attempts.
  const JournalReplay replay = JournalReplay::load(job_journal_path(
      dir.str(), accepted.at("job").as_string()));
  const auto& entry = replay.points.at({"181.mcf", "crashme"});
  EXPECT_EQ(entry.state, JournalReplay::State::kFailed);
  EXPECT_EQ(entry.failure.attempts, 2u);
  stop_daemon(daemon.release());
}

// The acceptance chaos scenario: kill -9 the daemon AND its workers with a
// submitted job in flight, restart on the same state dir, and the job
// completes with a report byte-identical to an uninterrupted run.
TEST(ServiceDaemonTest, Kill9DaemonMidSweepResumesByteIdentical) {
  TempDir dir("kill9");
  const ServiceConfig config = test_config(dir.str());
  DaemonGuard first(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));

  JobSpec spec = small_job("alice", "chaos");
  spec.points.push_back(PointSpec{"wp", "wth-wp", 1, 0});
  std::string job;
  std::vector<int64_t> worker_pids;
  {
    ServiceClient client(config.socket);
    const JsonValue accepted = client.submit(spec);
    ASSERT_TRUE(accepted.at("ok").as_bool());  // reply implies WAL fsync'd
    job = accepted.at("job").as_string();
    // Bind the reply first: iterating `client.health().at(...).items()`
    // directly would walk references into a destroyed temporary.
    const JsonValue health = client.health();
    for (const JsonValue& pid : health.at("worker_pids").items()) {
      worker_pids.push_back(pid.as_i64());
    }
  }

  // No drain, no warning: SIGKILL the daemon, then any workers it left
  // orphaned mid-simulation.
  ::kill(first.pid, SIGKILL);
  ASSERT_EQ(wait_exit(first.release()), -SIGKILL);
  for (const int64_t pid : worker_pids) {
    ::kill(static_cast<pid_t>(pid), SIGKILL);
  }

  DaemonGuard second(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));
  ServiceClient client(config.socket);
  const JsonValue done = client.wait(job, 300.0);
  EXPECT_EQ(done.at("done").as_u64(), 3u);
  EXPECT_EQ(done.at("failed").as_u64(), 0u);
  EXPECT_EQ(read_file(done.at("report").as_string()),
            expected_report(spec, dir.str()));
  stop_daemon(second.release());
}

// Graceful drain: SIGTERM with work in flight stops admission, finishes the
// running points, exits kExitInterrupted with the rest journaled as queued —
// and a restart completes the job byte-identically.
TEST(ServiceDaemonTest, SigtermDrainIsResumableAndExitsInterrupted) {
  TempDir dir("drain");
  ServiceConfig config = test_config(dir.str());
  config.workers = 1;  // guarantees work remains when the drain lands
  DaemonGuard first(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));

  JobSpec spec = small_job("alice", "drain");
  spec.points.push_back(PointSpec{"wp", "wth-wp", 1, 0});
  std::string job;
  {
    ServiceClient client(config.socket);
    const JsonValue accepted = client.submit(spec);
    ASSERT_TRUE(accepted.at("ok").as_bool());
    job = accepted.at("job").as_string();
    // The daemon reports itself draining while it finishes the in-flight
    // point, and refuses new admissions. It may finish the drain and exit
    // under us at any moment — a dropped connection refuses admission just
    // as hard.
    ::kill(first.pid, SIGTERM);
    try {
      for (int i = 0; i < 200; ++i) {
        if (client.health().at("state").as_string() == "draining") break;
        ::usleep(10 * 1000);
      }
      const JsonValue rejected = client.submit(small_job("bob", "late"));
      EXPECT_FALSE(rejected.at("ok").as_bool());
      EXPECT_EQ(rejected.at("error").as_string(), "draining");
    } catch (const SimError&) {
    }
  }
  EXPECT_EQ(wait_exit(first.release()), kExitInterrupted);

  // Drain contract: no point is left "running" — the journal holds only
  // queued / terminal states.
  const JournalReplay replay =
      JournalReplay::load(job_journal_path(dir.str(), job));
  EXPECT_TRUE(replay.warnings.empty()) << replay.warnings[0];
  size_t queued = 0;
  for (const auto& [key, entry] : replay.points) {
    EXPECT_NE(entry.state, JournalReplay::State::kRunning);
    if (entry.state == JournalReplay::State::kQueued) ++queued;
  }
  EXPECT_GE(queued, 1u);  // workers=1, 3 points: something was left over

  DaemonGuard second(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));
  ServiceClient client(config.socket);
  const JsonValue done = client.wait(job, 300.0);
  EXPECT_EQ(done.at("done").as_u64(), 3u);
  EXPECT_EQ(read_file(done.at("report").as_string()),
            expected_report(spec, dir.str()));
  stop_daemon(second.release());
}

}  // namespace
}  // namespace wecsim
