// Disassembler rendering details and program-image edge cases.
#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/assembler.h"
#include "isa/disasm.h"

namespace wecsim {
namespace {

TEST(Disassembler, AnnotatesForkTargets) {
  Program p = assemble(R"(
  begin
  j body
body:
  forksp body
  tsagd
  abort
  endpar
  halt
)");
  const std::string dis = disassemble(p);
  EXPECT_NE(dis.find("body:"), std::string::npos);
  EXPECT_NE(dis.find("forksp"), std::string::npos);
  EXPECT_NE(dis.find("# -> body"), std::string::npos);
}

TEST(Disassembler, SingleLineHasAddress) {
  Program p = assemble("nop\naddi r1, r1, 5\n");
  const std::string line = disassemble_at(p, p.text_base() + kInstrBytes);
  EXPECT_NE(line.find("0x001008"), std::string::npos);
  EXPECT_NE(line.find("addi r1, r1, 5"), std::string::npos);
}

TEST(Disassembler, InvalidPcThrows) {
  Program p = assemble("nop\n");
  EXPECT_THROW(disassemble_at(p, 0x50), SimError);
}

TEST(ProgramImage, SymbolTableIsComplete) {
  Program p = assemble(R"(
  .equ K, 7
start:
  nop
  .data
value:
  .dword 1
)");
  EXPECT_EQ(p.symbols().size(), 3u);
  EXPECT_EQ(p.symbol("K"), 7u);
  EXPECT_EQ(p.symbol("start"), p.text_base());
  EXPECT_EQ(p.symbol("value"), p.data_base());
  EXPECT_THROW(p.symbol("nope"), SimError);
}

TEST(ProgramImage, TextAndDataBoundaries) {
  Program p = assemble("nop\nnop\n.data\n.space 24\n");
  EXPECT_EQ(p.text_end(), p.text_base() + 2 * kInstrBytes);
  EXPECT_EQ(p.data_end(), p.data_base() + 24);
  EXPECT_EQ(p.num_instructions(), 2u);
}

}  // namespace
}  // namespace wecsim
