// Speculative memory buffer: target declarations, run-time dependence
// stalls, sub-word merging, drain order, fork snapshots, and capacity.
#include <gtest/gtest.h>

#include "common/error.h"
#include "mem/flat_memory.h"
#include "sta/memory_buffer.h"

namespace wecsim {
namespace {

TEST(MemoryBuffer, GranuleAlignment) {
  EXPECT_EQ(MemoryBuffer::granule_of(0x1007), 0x1000u);
  EXPECT_EQ(MemoryBuffer::granule_of(0x1008), 0x1008u);
}

TEST(MemoryBuffer, UpstreamTargetWithoutDataStallsLoads) {
  MemoryBuffer buf(16);
  buf.declare_upstream_target(0x1000);
  EXPECT_TRUE(buf.must_stall(0x1000, 8));
  EXPECT_TRUE(buf.must_stall(0x1004, 4));   // partial overlap
  EXPECT_FALSE(buf.must_stall(0x1008, 8));  // different granule
  buf.receive_upstream_data(0x1000, 42);
  EXPECT_FALSE(buf.must_stall(0x1000, 8));
}

TEST(MemoryBuffer, LocalTargetDoesNotStallOwnLoads) {
  MemoryBuffer buf(16);
  buf.declare_local_target(0x1000);
  EXPECT_FALSE(buf.must_stall(0x1000, 8));
}

TEST(MemoryBuffer, OwnStoreBeatsLateUpstreamData) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  buf.declare_upstream_target(0x1000);
  buf.store(0x1000, 7, 8, memory);
  buf.receive_upstream_data(0x1000, 99);  // arrives late; must not clobber
  EXPECT_EQ(buf.read(0x1000, 8, memory), 7u);
}

TEST(MemoryBuffer, ReadFallsThroughToMemory) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  memory.write_u64(0x1000, 0x1122334455667788ull);
  EXPECT_EQ(buf.read(0x1000, 8, memory), 0x1122334455667788ull);
  buf.store(0x1000, 0xdead, 8, memory);
  EXPECT_EQ(buf.read(0x1000, 8, memory), 0xdeadu);
  // Memory itself is untouched until drain.
  EXPECT_EQ(memory.read_u64(0x1000), 0x1122334455667788ull);
}

TEST(MemoryBuffer, SubWordStoreMergesWithMemory) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  memory.write_u64(0x1000, 0x8877665544332211ull);
  buf.store(0x1002, 0xAB, 1, memory);  // one byte into the middle
  EXPECT_EQ(buf.read(0x1000, 8, memory), 0x8877665544AB2211ull);
  EXPECT_EQ(buf.read(0x1002, 1, memory), 0xABu);
}

TEST(MemoryBuffer, StraddlingStoreTouchesTwoGranules) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  buf.store(0x1004, 0x1122334455667788ull, 8, memory);  // crosses 0x1008
  EXPECT_EQ(buf.read(0x1004, 8, memory), 0x1122334455667788ull);
  EXPECT_EQ(buf.data_entries(), 2u);
}

TEST(MemoryBuffer, StoreReturnsTargetGranules) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  buf.declare_local_target(0x1000);
  auto targets = buf.store(0x1000, 5, 8, memory);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 0x1000u);
  // Plain stores are not forwarded.
  EXPECT_TRUE(buf.store(0x2000, 5, 8, memory).empty());
}

TEST(MemoryBuffer, DrainContainsOnlyOwnWrites) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  buf.declare_upstream_target(0x1000);
  buf.receive_upstream_data(0x1000, 11);  // upstream value: not ours to drain
  buf.store(0x2000, 22, 8, memory);
  buf.store(0x3000, 33, 8, memory);
  auto drain = buf.drain_order();
  ASSERT_EQ(drain.size(), 2u);
  EXPECT_EQ(drain[0].first, 0x2000u);  // first-write order
  EXPECT_EQ(drain[1].first, 0x3000u);
  EXPECT_EQ(drain[0].second, 22u);
}

TEST(MemoryBuffer, CopyTargetsToChildDropsData) {
  MemoryBuffer parent(16);
  FlatMemory memory;
  parent.declare_local_target(0x1000);
  parent.store(0x1000, 42, 8, memory);
  parent.store(0x2000, 7, 8, memory);  // non-target: thread private

  MemoryBuffer child(16);
  parent.copy_targets_to(child);
  // The child knows the address (stalls on it) but has no value yet: it
  // must wait for the parent's forwarded store.
  EXPECT_TRUE(child.must_stall(0x1000, 8));
  EXPECT_FALSE(child.covers(0x1000, 8));
  EXPECT_FALSE(child.must_stall(0x2000, 8));
}

TEST(MemoryBuffer, OverflowThrows) {
  MemoryBuffer buf(2);
  FlatMemory memory;
  buf.store(0x1000, 1, 8, memory);
  buf.store(0x2000, 2, 8, memory);
  EXPECT_THROW(buf.store(0x3000, 3, 8, memory), SimError);
}

TEST(MemoryBuffer, ClearEmptiesEverything) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  buf.declare_upstream_target(0x1000);
  buf.store(0x2000, 1, 8, memory);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.must_stall(0x1000, 8));
  EXPECT_TRUE(buf.drain_order().empty());
}

TEST(MemoryBuffer, CoversReportsDataPresence) {
  MemoryBuffer buf(16);
  FlatMemory memory;
  EXPECT_FALSE(buf.covers(0x1000, 8));
  buf.declare_upstream_target(0x1000);
  EXPECT_FALSE(buf.covers(0x1000, 8));  // address known, no data
  buf.receive_upstream_data(0x1000, 9);
  EXPECT_TRUE(buf.covers(0x1000, 8));
  EXPECT_TRUE(buf.covers(0x1004, 1));
}

}  // namespace
}  // namespace wecsim
