// Observability layer: histogram bucketing, trace sink serialization, and
// the dependency-free JSON writer/parser.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace wecsim {
namespace {

// --- HistogramData ---------------------------------------------------------

TEST(Histogram, BucketIndexBoundaries) {
  // Bucket 0 holds only the value 0; bucket k holds [2^(k-1), 2^k).
  EXPECT_EQ(HistogramData::bucket_index(0), 0u);
  EXPECT_EQ(HistogramData::bucket_index(1), 1u);
  EXPECT_EQ(HistogramData::bucket_index(2), 2u);
  EXPECT_EQ(HistogramData::bucket_index(3), 2u);
  EXPECT_EQ(HistogramData::bucket_index(4), 3u);
  EXPECT_EQ(HistogramData::bucket_index(7), 3u);
  EXPECT_EQ(HistogramData::bucket_index(8), 4u);
  for (uint32_t k = 1; k < 64; ++k) {
    const uint64_t lo = uint64_t{1} << (k - 1);
    EXPECT_EQ(HistogramData::bucket_index(lo), k) << "lo of bucket " << k;
    const uint64_t hi = (uint64_t{1} << k) - 1;
    EXPECT_EQ(HistogramData::bucket_index(hi), k) << "hi of bucket " << k;
  }
  EXPECT_EQ(HistogramData::bucket_index(~uint64_t{0}), 64u);
  EXPECT_EQ(HistogramData::bucket_index(uint64_t{1} << 63), 64u);
}

TEST(Histogram, BucketRangeMatchesIndex) {
  for (uint32_t i = 0; i < HistogramData::kNumBuckets; ++i) {
    const auto [lo, hi] = HistogramData::bucket_range(i);
    EXPECT_EQ(HistogramData::bucket_index(lo), i);
    EXPECT_EQ(HistogramData::bucket_index(hi), i);
    EXPECT_LE(lo, hi);
  }
  EXPECT_EQ(HistogramData::bucket_range(0).first, 0u);
  EXPECT_EQ(HistogramData::bucket_range(0).second, 0u);
  EXPECT_EQ(HistogramData::bucket_range(64).second, ~uint64_t{0});
}

TEST(Histogram, RecordAccumulates) {
  HistogramData h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 11u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.75);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 2u);  // 5 is in [4, 8)
}

TEST(Histogram, RegistryHandleRecords) {
  StatsRegistry stats;
  auto h = stats.histogram("x.lat");
  h.record(3);
  h.record(100);
  const HistogramData* data = stats.histogram_data("x.lat");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, 2u);
  EXPECT_EQ(stats.histogram_snapshot().at("x.lat").sum, 103u);
  EXPECT_EQ(stats.histogram_data("missing"), nullptr);
}

// --- TraceSink -------------------------------------------------------------

TEST(Trace, DisabledSinkDropsEvents) {
  TraceSink sink;
  sink.emit(1, 0, TraceEventType::kFetch, 0x100);
  EXPECT_EQ(sink.size(), 0u);
  sink.enable();
  sink.emit(2, 0, TraceEventType::kFetch, 0x140);
  EXPECT_EQ(sink.size(), 1u);
  sink.disable();
  sink.emit(3, 0, TraceEventType::kFetch, 0x180);
  EXPECT_EQ(sink.size(), 1u);
}

TEST(Trace, MacroGuardsNullSink) {
  WEC_TRACE(static_cast<TraceSink*>(nullptr), 1, 0, TraceEventType::kFetch,
            0x100);  // must not crash
  TraceSink sink;
  sink.enable();
  WEC_TRACE(&sink, 4, 2, TraceEventType::kSquash, 0x200, 7);
#ifndef WECSIM_DISABLE_TRACING
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].cycle, 4u);
  EXPECT_EQ(sink.events()[0].tu, 2u);
  EXPECT_EQ(sink.events()[0].arg, 7u);
#else
  EXPECT_EQ(sink.size(), 0u);
#endif
}

TEST(Trace, JsonlFormat) {
  TraceSink sink;
  sink.enable();
  sink.emit(12, 0, TraceEventType::kWecFill, 0x1a40, 0, 1);
  sink.emit(15, 3, TraceEventType::kSquash, 0x400, 9);
  const std::string jsonl = sink.to_jsonl();
  EXPECT_EQ(jsonl,
            "{\"cycle\":12,\"tu\":0,\"type\":\"wec_fill\",\"addr\":\"0x1a40\","
            "\"origin\":\"wrong_path\"}\n"
            "{\"cycle\":15,\"tu\":3,\"type\":\"squash\",\"addr\":\"0x400\","
            "\"arg\":9}\n");
  // Every line must itself be valid JSON.
  size_t start = 0;
  while (start < jsonl.size()) {
    const size_t end = jsonl.find('\n', start);
    const JsonValue v = parse_json(jsonl.substr(start, end - start));
    EXPECT_TRUE(v.is_object());
    EXPECT_TRUE(v.has("cycle"));
    EXPECT_TRUE(v.has("type"));
    start = end + 1;
  }
}

TEST(Trace, ChromeTraceParsesAndCarriesEvents) {
  TraceSink sink;
  sink.enable();
  sink.emit(10, 1, TraceEventType::kWecHit, 0x80, 1, 2);
  sink.emit(11, 0, TraceEventType::kNextLinePrefetch, 0xc0, 0, 3);
  const JsonValue doc = parse_json(sink.to_chrome_trace());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.items().size(), 2u);
  EXPECT_EQ(events.at(0).at("name").as_string(), "wec_hit");
  EXPECT_EQ(events.at(0).at("ph").as_string(), "i");
  EXPECT_EQ(events.at(0).at("ts").as_u64(), 10u);
  EXPECT_EQ(events.at(0).at("tid").as_u64(), 1u);
  EXPECT_EQ(events.at(0).at("args").at("origin").as_string(), "wrong_thread");
  EXPECT_EQ(events.at(1).at("args").at("origin").as_string(), "next_line");
}

// --- JSON writer / parser --------------------------------------------------

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterProducesCompactDocuments) {
  JsonWriter w;
  w.begin_object()
      .kv("s", "hi")
      .kv("n", uint64_t{18446744073709551615ull})
      .kv("neg", int64_t{-5})
      .kv("b", true)
      .key("a")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .key("o")
      .begin_object()
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"hi\",\"n\":18446744073709551615,\"neg\":-5,\"b\":true,"
            "\"a\":[1,2],\"o\":{}}");
}

TEST(Json, RoundTripPreservesExactU64) {
  JsonWriter w;
  w.begin_object().kv("big", ~uint64_t{0}).end_object();
  const JsonValue v = parse_json(w.str());
  EXPECT_EQ(v.at("big").as_u64(), ~uint64_t{0});
}

TEST(Json, ParserHandlesNesting) {
  const JsonValue v = parse_json(
      R"({"a":[1,{"b":"x"},null,true,-2.5],"c":{"d":[]}})");
  EXPECT_EQ(v.at("a").items().size(), 5u);
  EXPECT_EQ(v.at("a").at(0).as_u64(), 1u);
  EXPECT_EQ(v.at("a").at(1).at("b").as_string(), "x");
  EXPECT_EQ(v.at("a").at(2).type(), JsonValue::Type::kNull);
  EXPECT_TRUE(v.at("a").at(3).as_bool());
  EXPECT_DOUBLE_EQ(v.at("a").at(4).as_double(), -2.5);
  EXPECT_TRUE(v.at("c").at("d").is_array());
  EXPECT_FALSE(v.has("zzz"));
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), SimError);
  EXPECT_THROW(parse_json("{"), SimError);
  EXPECT_THROW(parse_json("{} trailing"), SimError);
  EXPECT_THROW(parse_json("{\"a\":}"), SimError);
  EXPECT_THROW(parse_json("[1,]"), SimError);
  EXPECT_THROW(parse_json("\"unterminated"), SimError);
}

TEST(Json, AtThrowsOnMissingMembers) {
  const JsonValue v = parse_json(R"({"a":1})");
  EXPECT_THROW(v.at("b"), SimError);
  EXPECT_THROW(v.at(size_t{0}), SimError);  // not an array
}

}  // namespace
}  // namespace wecsim
