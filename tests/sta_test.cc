// Superthreaded protocol specifics: fork timing, ordering chains, wrong
// threads, coherence, and failure detection.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "isa/assembler.h"

namespace wecsim {
namespace {

// Minimal two-region parallel skeleton used by several tests.
constexpr const char* kTwoIterations = R"(
  .data
out: .space 64
  .text
  li r1, 0
  begin
  j body
body:
  addi r5, r1, 1
  mv r4, r1
  mv r1, r5
  forksp body
  tsagd
  la r6, out
  slli r7, r4, 3
  add r6, r6, r7
  addi r8, r4, 100
  sd r8, 0(r6)
  addi r9, r4, 1
  li r10, 4
  bge r9, r10, exit
  thend
exit:
  abort
  endpar
  halt
)";

TEST(StaProtocol, IterationsLandOnSuccessiveRingTus) {
  Program p = assemble(kTwoIterations);
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 4));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sim.memory().read_u64(p.symbol("out") + 8 * i),
              static_cast<uint64_t>(100 + i));
  }
  EXPECT_EQ(r.forks, 4u);  // iterations 1..3 plus the aborted fork of 4
}

TEST(StaProtocol, SingleTuExecutesForkChainSerially) {
  Program p = assemble(kTwoIterations);
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 1));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sim.memory().read_u64(p.symbol("out") + 8 * i),
              static_cast<uint64_t>(100 + i));
  }
}

constexpr const char* kSlowAbort = R"(
  .data
out: .space 64
  .text
  li r1, 0
  begin
  j body
body:
  addi r5, r1, 1
  mv r4, r1
  mv r1, r5
  forksp body
  tsagd
  la r6, out
  slli r7, r4, 3
  add r6, r6, r7
  addi r8, r4, 100
  sd r8, 0(r6)
  addi r9, r4, 1
  li r10, 4
  bge r9, r10, exit
  thend
exit:
  li r20, 300         # linger before aborting: the speculative successor
dly:                  # has time to start executing (and go wrong)
  subi r20, r20, 1
  bnez r20, dly
  abort
  endpar
  halt
)";

TEST(StaProtocol, WrongThreadsAreCreatedUnderWth) {
  Program p = assemble(kSlowAbort);
  Simulator sim(p, make_paper_config(PaperConfig::kWth, 4));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  // The abort marks at least the already-forked successor wrong instead of
  // killing it.
  EXPECT_GE(r.wrong_threads, 1u);
  // Architectural result unchanged.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sim.memory().read_u64(p.symbol("out") + 8 * i),
              static_cast<uint64_t>(100 + i));
  }
}

TEST(StaProtocol, OrigKillsSuccessorsImmediately) {
  Program p = assemble(kTwoIterations);
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 4));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(r.wrong_threads, 0u);
}

TEST(StaProtocol, ForkDelayIsCharged) {
  // One fork on a 2-TU machine: the child cannot start before
  // fork commit + fork_delay.
  Program p = assemble(kTwoIterations);
  StaConfig config = make_paper_config(PaperConfig::kOrig, 2);
  config.fork_delay = 40;  // exaggerate to make it visible
  Simulator slow(p, config);
  SimResult r_slow = slow.run();

  Simulator fast(p, make_paper_config(PaperConfig::kOrig, 2));
  SimResult r_fast = fast.run();
  EXPECT_GT(r_slow.cycles, r_fast.cycles);
}

TEST(StaProtocol, RingMessagesAreCounted) {
  // The carry example forwards a target-store address and value per
  // iteration.
  Program p = assemble(R"(
  .data
cell: .dword 0
out:  .dword 0
  .text
  li r1, 0
  begin
  j body
body:
  addi r5, r1, 1
  mv r4, r1
  mv r1, r5
  forksp body
  la r6, cell
  tsaddr r6, 0
  tsagd
  ld r7, 0(r6)
  addi r7, r7, 1
  sd r7, 0(r6)
  addi r9, r4, 1
  li r10, 3
  bge r9, r10, exit
  thend
exit:
  abort
  endpar
  la r11, out
  ld r12, 0(r6)
  sd r12, 0(r11)
  halt
)");
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 4));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(sim.memory().read_u64(p.symbol("out")), 3u);
  EXPECT_GT(sim.stats().value("sta.ring_msgs"), 0u);
}

TEST(StaProtocol, CoherenceUpdatesFlowToOtherTus) {
  Program p = assemble(kTwoIterations);
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 4));
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  // Write-back drains broadcast to the other TUs; whether any cached copy
  // was refreshed depends on sharing, but the counters must exist.
  EXPECT_GE(r.coherence_updates, 0u);
}

TEST(StaProtocol, DeadlockTripsWatchdog) {
  // A thread waits forever on an upstream target store that never arrives
  // (the predecessor never writes it and never ends).
  Program p = assemble(R"(
  .data
cell: .dword 0
  .text
  begin
  j body
body:
  forksp waiter
  la r6, cell
  tsaddr r6, 0
  tsagd
  thend               # head ends WITHOUT storing the target
waiter:
  la r6, cell
  tsagd
  ld r7, 0(r6)        # stalls forever on the dependence
  thend
)");
  StaConfig config = make_paper_config(PaperConfig::kOrig, 2);
  config.watchdog_cycles = 5000;
  Simulator sim(p, config);
  // The watchdog message must carry enough machine state to debug the hang
  // from the error alone: the deadlock diagnosis, the region bookkeeping, and
  // one line per thread unit.
  try {
    sim.run();
    FAIL() << "expected the watchdog to trip";
  } catch (const SimError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("deadlock: no instruction committed"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("machine state at cycle"), std::string::npos)
        << message;
    EXPECT_NE(message.find("region:"), std::string::npos) << message;
    EXPECT_NE(message.find("tu0:"), std::string::npos) << message;
    EXPECT_NE(message.find("tu1:"), std::string::npos) << message;
  }
}

TEST(StaProtocol, NestedBeginThrows) {
  Program p = assemble(R"(
  begin
  begin
  halt
)");
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 2));
  EXPECT_THROW(sim.run(), SimError);
}

TEST(StaProtocol, ForkOutsideRegionThrows) {
  Program p = assemble("forksp t\nt:\nhalt\n");
  Simulator sim(p, make_paper_config(PaperConfig::kOrig, 2));
  EXPECT_THROW(sim.run(), SimError);
}

TEST(StaProtocol, CycleCapStopsRunawayPrograms) {
  Program p = assemble("spin:\n  j spin\n");
  StaConfig config = make_paper_config(PaperConfig::kOrig, 1);
  config.max_cycles = 2000;
  config.watchdog_cycles = 100000;  // watchdog must not fire first
  Simulator sim(p, config);
  SimResult r = sim.run();
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.cycles, 2000u);
}

TEST(StaProtocol, SequentialThreadMigratesToExitTu) {
  // With 2 TUs and 4 iterations, the exit iteration (3) runs on TU 1;
  // sequential execution continues there.
  Program p = assemble(kTwoIterations);
  StaConfig config = make_paper_config(PaperConfig::kOrig, 2);
  Simulator sim(p, config);
  SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(sim.processor().sequential_tu(), 1u);
}

TEST(SimConfig, PresetsMatchThePaper) {
  const StaConfig wec = make_paper_config(PaperConfig::kWthWpWec, 8);
  EXPECT_TRUE(wec.wrong_thread_exec);
  EXPECT_TRUE(wec.core.wrong_path_exec);
  EXPECT_EQ(wec.mem.side, SideKind::kWec);
  EXPECT_EQ(wec.mem.side_entries, 8u);
  EXPECT_EQ(wec.mem.l1d.size_bytes, 8u * 1024);
  EXPECT_EQ(wec.mem.l1d.assoc, 1u);
  EXPECT_EQ(wec.mem.mem_lat, 200u);
  EXPECT_EQ(wec.core.bpred.btb_entries, 1024u);

  const StaConfig orig = make_paper_config(PaperConfig::kOrig, 8);
  EXPECT_FALSE(orig.wrong_thread_exec);
  EXPECT_FALSE(orig.core.wrong_path_exec);
  EXPECT_EQ(orig.mem.side, SideKind::kNone);

  const StaConfig nlp = make_paper_config(PaperConfig::kNlp, 8);
  EXPECT_EQ(nlp.mem.side, SideKind::kPrefetchBuffer);
  EXPECT_FALSE(nlp.core.wrong_path_exec);
}

TEST(SimConfig, Table3ScalesResources) {
  for (uint32_t tus : {1u, 2u, 4u, 8u, 16u}) {
    const StaConfig c = make_table3_config(tus);
    EXPECT_EQ(c.core.issue_width * tus, 16u) << tus;
    EXPECT_EQ(c.mem.l1d.size_bytes * tus, 32u * 1024) << tus;
  }
  EXPECT_THROW(make_table3_config(3), SimError);
  const StaConfig base = make_table3_baseline();
  EXPECT_EQ(base.num_tus, 1u);
  EXPECT_EQ(base.core.issue_width, 1u);
}

TEST(SimConfig, NamesRoundTrip) {
  for (PaperConfig config : kAllPaperConfigs) {
    EXPECT_EQ(paper_config_from_name(paper_config_name(config)), config);
  }
  EXPECT_THROW(paper_config_from_name("bogus"), SimError);
}

}  // namespace
}  // namespace wecsim
