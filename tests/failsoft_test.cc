// Fail-soft sweeps (docs/ROBUSTNESS.md): transient worker failures are
// retried, persistent ones quarantine the point instead of killing the
// sweep, quarantined points are recorded in the run report, and the
// surviving points stay byte-identical to a fault-free run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sim_config.h"
#include "fault/fault.h"
#include "harness/experiment.h"
#include "harness/parallel.h"
#include "harness/report.h"
#include "harness/result_cache.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

const WorkloadParams kParams{1, 42};

StaConfig orig1() { return make_paper_config(PaperConfig::kOrig, 1); }

// A unique per-test temp directory (std::filesystem; removed on scope exit).
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("wecsim_failsoft_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(FailSoft, TransientCrashIsRetriedAndRecovered) {
  ExperimentRunner runner(kParams, std::string());
  runner.set_fault_plan(
      FaultPlan::parse("worker_crash:every=1,count=1,match=181.mcf"));
  runner.set_failsoft_limits(/*max_attempts=*/3, /*backoff_ms=*/0);

  const RunMeasurement* m = runner.try_run("181.mcf", "orig", orig1());
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->sim.halted);
  EXPECT_EQ(runner.quarantined_count(), 0u);
  ASSERT_EQ(runner.failures().size(), 1u);
  const PointFailure& f = runner.failures()[0];
  EXPECT_EQ(f.status, "recovered");
  EXPECT_EQ(f.workload, "181.mcf");
  EXPECT_EQ(f.config_key, "orig");
  EXPECT_EQ(f.attempts, 2u);  // attempt 1 crashed, attempt 2 succeeded
  EXPECT_NE(f.error.find("injected worker crash"), std::string::npos);
}

TEST(FailSoft, PersistentCrashExhaustsRetriesAndQuarantines) {
  ExperimentRunner runner(kParams, std::string());
  runner.set_fault_plan(
      FaultPlan::parse("worker_crash:every=1,match=181.mcf"));
  runner.set_failsoft_limits(/*max_attempts=*/3, /*backoff_ms=*/0);

  EXPECT_EQ(runner.try_run("181.mcf", "orig", orig1()), nullptr);
  EXPECT_EQ(runner.quarantined_count(), 1u);
  ASSERT_EQ(runner.failures().size(), 1u);
  EXPECT_EQ(runner.failures()[0].status, "quarantined");
  EXPECT_EQ(runner.failures()[0].attempts, 3u);  // full retry budget spent

  // A second ask is answered from the quarantine set, not re-simulated.
  EXPECT_EQ(runner.try_run("181.mcf", "orig", orig1()), nullptr);
  EXPECT_EQ(runner.failures().size(), 1u);

  // run() surfaces the diagnosis for callers that cannot continue.
  try {
    runner.run("181.mcf", "orig", orig1());
    FAIL() << "expected PointQuarantined";
  } catch (const PointQuarantined& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("181.mcf|orig"), std::string::npos) << message;
    EXPECT_NE(message.find("injected worker crash"), std::string::npos)
        << message;
  }
}

TEST(FailSoft, InjectedTimeoutIsNeverRetried) {
  ExperimentRunner runner(kParams, std::string());
  runner.set_fault_plan(
      FaultPlan::parse("worker_timeout:every=1,match=181.mcf"));
  runner.set_failsoft_limits(/*max_attempts=*/3, /*backoff_ms=*/0);

  EXPECT_EQ(runner.try_run("181.mcf", "orig", orig1()), nullptr);
  ASSERT_EQ(runner.failures().size(), 1u);
  EXPECT_EQ(runner.failures()[0].status, "quarantined");
  EXPECT_EQ(runner.failures()[0].attempts, 1u);  // deterministic: no retry
  EXPECT_NE(runner.failures()[0].error.find("timeout"), std::string::npos);
}

TEST(FailSoft, WallClockBudgetQuarantinesTheRealSimulation) {
  ExperimentRunner runner(kParams, std::string());
  runner.set_failsoft_limits(/*max_attempts=*/3, /*backoff_ms=*/0);
  StaConfig config = orig1();
  config.wall_timeout_seconds = 1e-9;  // trips at the first 64-cycle check

  EXPECT_EQ(runner.try_run("181.mcf", "orig", config), nullptr);
  ASSERT_EQ(runner.failures().size(), 1u);
  EXPECT_EQ(runner.failures()[0].attempts, 1u);
  EXPECT_NE(runner.failures()[0].error.find("wall-clock"), std::string::npos);
}

// The acceptance scenario: a parallel sweep with one persistently crashing
// workload completes, quarantines exactly that workload's points, records
// them in the report, and leaves the surviving points byte-identical to a
// fault-free sweep over the survivors.
TEST(FailSoft, QuarantinedSweepMatchesFaultFreeRunOnSurvivors) {
  const std::vector<std::string> names = {"181.mcf", "164.gzip"};
  const PaperConfig kConfigs[] = {PaperConfig::kOrig, PaperConfig::kWthWpWec};

  ParallelExperimentRunner faulty(kParams, /*jobs=*/4, std::string());
  faulty.set_fault_plan(
      FaultPlan::parse("worker_crash:every=1,match=181.mcf"));
  faulty.set_failsoft_limits(/*max_attempts=*/2, /*backoff_ms=*/0);
  for (const auto& name : names) {
    for (PaperConfig config : kConfigs) {
      faulty.submit(name, paper_config_name(config),
                    make_paper_config(config, 2));
    }
  }
  EXPECT_NO_THROW(faulty.drain());
  EXPECT_EQ(faulty.quarantined_count(), 2u);
  EXPECT_EQ(faulty.records().size(), 2u);  // both gzip points survived
  for (PaperConfig config : kConfigs) {
    EXPECT_EQ(faulty.try_run("181.mcf", paper_config_name(config),
                             make_paper_config(config, 2)),
              nullptr);
    EXPECT_NE(faulty.try_run("164.gzip", paper_config_name(config),
                             make_paper_config(config, 2)),
              nullptr);
  }

  // Fault-free reference sweep over the surviving points only.
  ExperimentRunner clean(kParams, std::string());
  for (PaperConfig config : kConfigs) {
    clean.run("164.gzip", paper_config_name(config),
              make_paper_config(config, 2));
  }
  EXPECT_EQ(render_run_report("t", faulty.records()),
            render_run_report("t", clean.records()));

  // The report's failures array names the quarantined points.
  const std::string report =
      render_run_report("t", faulty.records(), faulty.failures());
  EXPECT_NE(report.find("\"failures\":["), std::string::npos);
  EXPECT_NE(report.find("\"workload\":\"181.mcf\""), std::string::npos);
  EXPECT_NE(report.find("\"status\":\"quarantined\""), std::string::npos);
  EXPECT_NE(report.find("injected worker crash"), std::string::npos);
}

TEST(FailSoft, CleanReportHasNoFailuresKey) {
  ExperimentRunner runner(kParams, std::string());
  runner.run("164.gzip", "orig", orig1());
  EXPECT_TRUE(runner.failures().empty());
  const std::string with_failures_arg =
      render_run_report("t", runner.records(), runner.failures());
  EXPECT_EQ(with_failures_arg.find("failures"), std::string::npos);
  // Byte-identical to the pre-fail-soft rendering.
  EXPECT_EQ(with_failures_arg, render_run_report("t", runner.records()));
}

TEST(FailSoft, RunnerFaultPlanReachesTheSimulator) {
  ExperimentRunner clean(kParams, std::string());
  const RunMeasurement& base = clean.run("181.mcf", "orig", orig1());

  ExperimentRunner delayed(kParams, std::string());
  delayed.set_fault_plan(FaultPlan::parse("mem_delay:every=3,cycles=300"));
  const RunMeasurement& slow = delayed.run("181.mcf", "orig", orig1());
  EXPECT_GT(slow.sim.cycles, base.sim.cycles);
  EXPECT_TRUE(delayed.failures().empty());  // timing fault, not a failure
}

TEST(FailSoft, FaultSaltKeepsCacheEntriesApart) {
  TempDir dir("salt");
  ExperimentRunner clean(kParams, dir.str());
  const Cycle clean_cycles = clean.run("181.mcf", "orig", orig1()).sim.cycles;
  EXPECT_EQ(clean.records().size(), 1u);

  // Same directory, faulty plan: must NOT be served the clean entry.
  ExperimentRunner faulty(kParams, dir.str());
  faulty.set_fault_plan(FaultPlan::parse("mem_delay:every=3,cycles=300"));
  const Cycle faulty_cycles =
      faulty.run("181.mcf", "orig", orig1()).sim.cycles;
  EXPECT_EQ(faulty.records().size(), 1u);  // fresh simulation, not a hit
  EXPECT_GT(faulty_cycles, clean_cycles);

  // And a second clean runner still hits the clean entry.
  ExperimentRunner warm(kParams, dir.str());
  EXPECT_EQ(warm.run("181.mcf", "orig", orig1()).sim.cycles, clean_cycles);
  EXPECT_EQ(warm.records().size(), 0u);
}

TEST(FailSoft, TruncatedCacheEntryFallsBackToFreshSimulation) {
  TempDir dir("truncated");
  ExperimentRunner first(kParams, dir.str());
  const Cycle cycles = first.run("181.mcf", "orig", orig1()).sim.cycles;
  EXPECT_EQ(first.records().size(), 1u);

  // Truncate the stored entry mid-document (simulates a torn write from a
  // crashed process).
  ResultCache cache(dir.str());
  const std::string path = cache.entry_path(
      ResultCache::describe("181.mcf", kParams, orig1()));
  {
    std::FILE* f = std::fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(fileno(f), 40), 0);
    std::fclose(f);
  }

  // A fresh runner must fall back to simulating — and heal the entry.
  ExperimentRunner second(kParams, dir.str());
  EXPECT_EQ(second.run("181.mcf", "orig", orig1()).sim.cycles, cycles);
  EXPECT_EQ(second.records().size(), 1u);
  EXPECT_TRUE(second.failures().empty());

  ExperimentRunner third(kParams, dir.str());
  EXPECT_EQ(third.run("181.mcf", "orig", orig1()).sim.cycles, cycles);
  EXPECT_EQ(third.records().size(), 0u);  // healed: disk hit again
}

TEST(FailSoft, ReportFailureOrderIsDeterministicAcrossModes) {
  const std::vector<std::string> names = {"181.mcf", "164.gzip"};
  const FaultPlan plan =
      FaultPlan::parse("worker_crash:every=1");  // every point crashes

  ExperimentRunner serial(kParams, std::string());
  serial.set_fault_plan(plan);
  serial.set_failsoft_limits(2, 0);
  for (const auto& name : names) serial.try_run(name, "orig", orig1());

  ParallelExperimentRunner parallel(kParams, /*jobs=*/4, std::string());
  parallel.set_fault_plan(plan);
  parallel.set_failsoft_limits(2, 0);
  for (const auto& name : names) parallel.submit(name, "orig", orig1());
  parallel.drain();

  EXPECT_EQ(render_run_report("t", serial.records(), serial.failures()),
            render_run_report("t", parallel.records(), parallel.failures()));
  EXPECT_EQ(serial.quarantined_count(), 2u);
  EXPECT_EQ(parallel.quarantined_count(), 2u);
}

// Retry backoff is deterministic: derived from the fault-plan seed, the
// point, and the attempt number — never wall clock or a global RNG — so a
// replayed sweep waits the same way and reports stay byte-identical.
TEST(FailsoftBackoff, IsDeterministicAndBounded) {
  const uint64_t a = failsoft_backoff_ms(100, 2, 42, "164.gzip|orig");
  EXPECT_EQ(a, failsoft_backoff_ms(100, 2, 42, "164.gzip|orig"));
  // Jittered within [exp/2, exp] of the exponential schedule.
  for (uint32_t attempt = 0; attempt < 6; ++attempt) {
    const uint64_t exp = 100ull << attempt;
    const uint64_t ms = failsoft_backoff_ms(100, attempt, 42, "p");
    EXPECT_GE(ms, exp / 2) << "attempt " << attempt;
    EXPECT_LE(ms, exp) << "attempt " << attempt;
  }
}

TEST(FailsoftBackoff, ZeroBaseMeansNoSleep) {
  EXPECT_EQ(failsoft_backoff_ms(0, 0, 42, "p"), 0u);
  EXPECT_EQ(failsoft_backoff_ms(0, 5, 7, "q"), 0u);
}

TEST(FailsoftBackoff, JitterVariesAcrossSeedAndPoint) {
  // With a jitter span of 4000ms, distinct seeds/points colliding on the
  // same value would make the hash suspect.
  const uint64_t base = failsoft_backoff_ms(1000, 3, 42, "164.gzip|orig");
  EXPECT_NE(failsoft_backoff_ms(1000, 3, 43, "164.gzip|orig"), base);
  EXPECT_NE(failsoft_backoff_ms(1000, 3, 42, "181.mcf|orig"), base);
}

}  // namespace
}  // namespace wecsim
