// Property sweeps over the per-TU memory system: for random interleavings
// of correct/wrong loads and stores across all side-structure kinds, the
// bookkeeping invariants must hold.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "common/stats.h"
#include "mem/mem_system.h"

namespace wecsim {
namespace {

class MemPolicyProperty
    : public ::testing::TestWithParam<std::tuple<SideKind, uint32_t>> {};

TEST_P(MemPolicyProperty, CountersStayConsistentUnderRandomTraffic) {
  const auto [side, assoc] = GetParam();
  MemConfig config;
  config.l1d = {1024, assoc, 64};  // small cache: lots of evictions
  config.l2 = {16 * 1024, 4, 128};
  config.side = side;
  config.side_entries = 4;

  StatsRegistry stats;
  SharedL2 l2(config, stats);
  TuMemSystem tu(config, l2, stats, "tu0.");

  Rng rng(2024);
  Cycle now = 0;
  uint64_t expected_accesses = 0;
  uint64_t expected_wrong = 0;
  for (int step = 0; step < 30000; ++step) {
    now += 1 + rng.below(4);
    const Addr addr = rng.below(128) * 32;  // 4KB footprint, sub-block addrs
    const int action = static_cast<int>(rng.below(10));
    if (action < 5) {
      auto out = tu.load(addr, ExecMode::kCorrect, now);
      ++expected_accesses;
      EXPECT_GE(out.done, now);
      EXPECT_FALSE(out.l1_hit && out.side_hit) << "hit in both is impossible";
    } else if (action < 8) {
      const ExecMode mode =
          rng.chance(1, 2) ? ExecMode::kWrongPath : ExecMode::kWrongThread;
      auto out = tu.load(addr, mode, now);
      ++expected_accesses;
      ++expected_wrong;
      EXPECT_GE(out.done, now);
    } else {
      auto out = tu.store(addr, now);
      ++expected_accesses;
      EXPECT_GE(out.done, now);
    }
  }

  EXPECT_EQ(stats.value("tu0.l1d.accesses"), expected_accesses);
  EXPECT_EQ(stats.value("tu0.l1d.wrong_accesses"), expected_wrong);
  EXPECT_LE(stats.value("tu0.l1d.misses") +
                stats.value("tu0.l1d.wrong_misses"),
            expected_accesses);
  // Side-structure hits only exist when there is a side structure.
  if (side == SideKind::kNone) {
    EXPECT_EQ(stats.value("tu0.side.hits"), 0u);
    EXPECT_EQ(stats.value("tu0.side.prefetches"), 0u);
  }
  // Wrong-execution WEC fills only exist for the WEC.
  if (side != SideKind::kWec) {
    EXPECT_EQ(stats.value("tu0.side.wrong_fills"), 0u);
  }
  // Every L2 access must have been triggered by some miss or prefetch or
  // write-back; at minimum it cannot exceed total misses + prefetches + a
  // write-back per access (gross upper bound).
  EXPECT_GT(stats.value("l2.accesses"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MemPolicyProperty,
    ::testing::Combine(::testing::Values(SideKind::kNone, SideKind::kVictim,
                                         SideKind::kWec,
                                         SideKind::kPrefetchBuffer),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      const char* side = "";
      switch (std::get<0>(info.param)) {
        case SideKind::kNone:
          side = "none";
          break;
        case SideKind::kVictim:
          side = "vc";
          break;
        case SideKind::kWec:
          side = "wec";
          break;
        case SideKind::kPrefetchBuffer:
          side = "pb";
          break;
      }
      return std::string(side) + "_a" + std::to_string(std::get<1>(info.param));
    });

// Timing monotonicity: replaying the same access trace with a slower memory
// can never make any individual access complete earlier.
TEST(MemPolicyTiming, SlowerMemoryNeverHelps) {
  auto run_trace = [](uint32_t mem_lat) {
    MemConfig config;
    config.l1d = {1024, 1, 64};
    config.l2 = {16 * 1024, 4, 128};
    config.side = SideKind::kWec;
    config.mem_lat = mem_lat;
    StatsRegistry stats;
    SharedL2 l2(config, stats);
    TuMemSystem tu(config, l2, stats, "tu0.");
    Rng rng(7);
    Cycle now = 0;
    uint64_t total_latency = 0;
    for (int step = 0; step < 5000; ++step) {
      now += 2;
      const Addr addr = rng.below(256) * 64;
      const ExecMode mode =
          rng.chance(1, 5) ? ExecMode::kWrongPath : ExecMode::kCorrect;
      auto out = tu.load(addr, mode, now);
      total_latency += out.done - now;
    }
    return total_latency;
  };
  EXPECT_LT(run_trace(50), run_trace(400));
}

}  // namespace
}  // namespace wecsim
