// Federated wecsimd (docs/SERVICE.md, "Multi-host deployment"): point
// leases with expiry-steal, the TCP transport with client deadlines,
// idempotent submit request ids, protocol fuzz over both transports,
// degraded-state-dir admission stop, and the two-daemon chaos contract —
// SIGKILL one of two daemons sharing a state dir mid-sweep and the
// survivor completes the job with a report byte-identical to an
// uninterrupted single-daemon run.
#include <arpa/inet.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "harness/journal.h"
#include "harness/lease.h"
#include "harness/report.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "service/queue.h"

namespace wecsim {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("wecsim_fed_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

JobSpec small_job(const std::string& client, const std::string& name) {
  JobSpec spec;
  spec.client = client;
  spec.name = name;
  spec.workload = "181.mcf";
  spec.scale = 1;
  spec.seed = 42;
  spec.points.push_back(PointSpec{"orig", "orig", 1, 0});
  spec.points.push_back(PointSpec{"wec", "wth-wp-wec", 1, 0});
  return spec;
}

std::string expected_report(const JobSpec& spec, const std::string& dir) {
  ExperimentRunner direct(WorkloadParams{spec.scale, spec.seed},
                          std::string());
  for (const PointSpec& p : spec.points) {
    direct.try_run(spec.workload, p.key, point_config(p));
  }
  const std::string path = dir + "/expected_" + spec.name + ".json";
  write_run_report(path, spec.name, direct.records(), direct.failures());
  return read_file(path);
}

ServiceConfig test_config(const std::string& state_dir) {
  ServiceConfig config;
  config.state_dir = state_dir;
  config.socket = state_dir + "/wecsimd.sock";
  config.workers = 2;
  config.backoff_ms = 1;
  return config;
}

pid_t spawn_daemon(const ServiceConfig& config) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Log to a per-socket file: two daemons share the state dir here, and
    // ctest reads the test's stdio pipe until EOF.
    const std::string log = config.socket + ".log";
    const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::unsetenv("WECSIM_CACHE_DIR");  // byte-identity needs fresh simulation
    try {
      ServiceDaemon daemon(config);
      ::_exit(daemon.run());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "daemon child: %s\n", e.what());
      ::_exit(100);
    }
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

void stop_daemon(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGTERM);
  for (int i = 0; i < 200; ++i) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return;
    ::usleep(50 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

struct DaemonGuard {
  pid_t pid = -1;
  explicit DaemonGuard(pid_t p) : pid(p) {}
  DaemonGuard(const DaemonGuard&) = delete;
  DaemonGuard& operator=(const DaemonGuard&) = delete;
  ~DaemonGuard() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
  pid_t release() {
    const pid_t p = pid;
    pid = -1;
    return p;
  }
};

/// Waits for the daemon to publish its ephemeral TCP endpoint in
/// <socket>.tcp; "" on timeout.
std::string wait_tcp_endpoint(const std::string& socket_path,
                              double timeout_s) {
  const std::string path = socket_path + ".tcp";
  for (int i = 0; i < static_cast<int>(timeout_s * 100); ++i) {
    std::string text = read_file(path);
    if (!text.empty() && text.back() == '\n') {
      text.pop_back();
      return text;
    }
    ::usleep(10 * 1000);
  }
  return "";
}

// ---- raw-socket fuzz plumbing (deliberately NOT ServiceClient: the point
// is to send bytes the client would never frame) ----------------------------

int raw_connect(const std::string& endpoint) {
  int fd = -1;
  if (endpoint.find('/') != std::string::npos) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const size_t colon = endpoint.rfind(':');
    std::string host = endpoint.substr(0, colon);
    if (host == "localhost") host = "127.0.0.1";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<uint16_t>(std::atoi(endpoint.c_str() + colon + 1)));
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
  }
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return fd;
}

/// Sends as much of `data` as the peer will take (MSG_NOSIGNAL: the daemon
/// may legitimately close mid-send on oversized input). Returns bytes sent.
size_t raw_send(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EPIPE / ECONNRESET / timeout: peer closed on us
  }
  return off;
}

/// Reads one '\n'-terminated reply line; "" on EOF, reset, or timeout.
std::string raw_reply(int fd) {
  std::string buf;
  char c = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return "";
    }
    if (c == '\n') return buf;
    buf.push_back(c);
    if (buf.size() > (1u << 20)) return "";  // runaway reply: fail the test
  }
}

/// One fuzz probe on a fresh connection: sends `payload`, expects a reply
/// whose "error" is `want_error` ("" = any reply or clean close accepted).
void fuzz_probe(const std::string& endpoint, const std::string& payload,
                const std::string& want_error, const std::string& what) {
  const int fd = raw_connect(endpoint);
  ASSERT_GE(fd, 0) << what << ": connect to " << endpoint;
  raw_send(fd, payload);
  if (!want_error.empty()) {  // no reply owed otherwise: don't sit in recv
    const std::string reply = raw_reply(fd);
    ASSERT_FALSE(reply.empty()) << what << ": no reply over " << endpoint;
    const JsonValue parsed = parse_json(reply);
    EXPECT_FALSE(parsed.at("ok").as_bool()) << what;
    EXPECT_EQ(parsed.at("error").as_string(), want_error)
        << what << ": " << reply;
  }
  ::close(fd);
}

// ---- point leases ---------------------------------------------------------

/// Plants a lease file as a (fake) peer daemon would leave it. Tests run in
/// one process, and try_acquire deliberately evicts leftovers of its OWN
/// incarnation token — so a peer must be modelled with a foreign token.
void write_peer_lease(const std::string& path, int64_t expires_ms,
                      int64_t ttl_ms) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "{\"pid\":999999,\"token\":12345,\"expires_ms\":" << expires_ms
      << ",\"ttl_ms\":" << ttl_ms << "}\n";
}

TEST(PointLeaseTest, AcquireHeldRenewRelease) {
  TempDir dir("lease");
  const std::string path = dir.str() + "/point.lease";

  PointLease mine;
  ASSERT_EQ(PointLease::try_acquire(path, 60000, &mine),
            PointLease::Outcome::kAcquired);
  EXPECT_TRUE(mine.held());

  LeaseInfo info;
  ASSERT_TRUE(PointLease::peek(path, &info));
  EXPECT_EQ(info.pid, static_cast<int64_t>(::getpid()));
  EXPECT_EQ(info.ttl_ms, 60000);

  EXPECT_TRUE(mine.renew(60000));
  mine.release();
  EXPECT_FALSE(mine.held());
  EXPECT_FALSE(PointLease::peek(path, &info));  // release unlinked it

  // A live PEER holder blocks this daemon, and says how long to back off.
  const std::string held_path = dir.str() + "/held.lease";
  write_peer_lease(held_path, wall_clock_ms() + 60000, 60000);
  PointLease blocked;
  int64_t remaining = 0;
  EXPECT_EQ(PointLease::try_acquire(held_path, 60000, &blocked, &remaining),
            PointLease::Outcome::kHeld);
  EXPECT_FALSE(blocked.held());
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 60000);

  // A leftover of this very incarnation (leaked by a crashed spawn path)
  // is evicted and re-acquired fresh, never reported as held.
  PointLease leaked;
  ASSERT_EQ(PointLease::try_acquire(path, 60000, &leaked),
            PointLease::Outcome::kAcquired);
  PointLease again;
  EXPECT_EQ(PointLease::try_acquire(path, 60000, &again),
            PointLease::Outcome::kAcquired);
}

TEST(PointLeaseTest, ExpiredLeaseIsStolenAndLoserCannotRenew) {
  TempDir dir("steal");
  const std::string path = dir.str() + "/point.lease";

  // A peer that stopped renewing (SIGKILLed or SIGSTOP-frozen) and let the
  // TTL lapse: stolen, not held.
  write_peer_lease(path, wall_clock_ms() - 1000, 80);
  PointLease thief;
  ASSERT_EQ(PointLease::try_acquire(path, 60000, &thief),
            PointLease::Outcome::kStolen);
  EXPECT_TRUE(thief.held());
  EXPECT_TRUE(thief.renew(60000));

  // Now the roles reverse: a peer steals OUR lease while we are frozen
  // (modelled by overwriting the file with the peer's). Our renew must
  // fail — the point belongs to the peer, and our in-flight run relies on
  // the journal's duplicate-terminal dedup.
  write_peer_lease(path, wall_clock_ms() + 60000, 60000);
  EXPECT_FALSE(thief.renew(60000));
  EXPECT_FALSE(thief.held());

  // And release() after a lost lease must NOT unlink the peer's file.
  thief.release();
  LeaseInfo info;
  EXPECT_TRUE(PointLease::peek(path, &info));
  EXPECT_EQ(info.token, 12345u);
}

TEST(PointLeaseTest, CorruptLeaseFileIsStealableNotWedged) {
  TempDir dir("corrupt");
  const std::string path = dir.str() + "/point.lease";
  {
    std::ofstream out(path, std::ios::binary);
    out << "\x7f not json at all";
  }
  // A torn/garbage lease parses as already-expired: stolen, never a wedge.
  LeaseInfo info;
  ASSERT_TRUE(PointLease::peek(path, &info));
  EXPECT_LE(info.expires_ms, wall_clock_ms());

  PointLease lease;
  EXPECT_EQ(PointLease::try_acquire(path, 60000, &lease),
            PointLease::Outcome::kStolen);
  EXPECT_TRUE(lease.held());
  lease.release();
}

// ---- TCP transport --------------------------------------------------------

TEST(FederationTest, TcpTransportCompletesJobByteIdentical) {
  TempDir dir("tcp");
  ServiceConfig config = test_config(dir.str());
  config.listen = "127.0.0.1:0";  // ephemeral port, published in <socket>.tcp
  DaemonGuard daemon(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));

  const std::string endpoint = wait_tcp_endpoint(config.socket, 30.0);
  ASSERT_FALSE(endpoint.empty()) << "daemon never published " << config.socket
                                 << ".tcp";
  ASSERT_TRUE(ServiceClient::wait_ready(endpoint, 30.0));

  const JobSpec spec = small_job("alice", "tcp");
  ServiceClient client(endpoint);
  client.set_timeout_ms(30000);
  const JsonValue health = client.health();
  EXPECT_EQ(health.at("state").as_string(), "serving");

  const JsonValue accepted = client.submit(spec);
  ASSERT_TRUE(accepted.at("ok").as_bool());
  const JsonValue done = client.wait(accepted.at("job").as_string(), 300.0);
  EXPECT_EQ(done.at("done").as_u64(), 2u);
  EXPECT_EQ(done.at("failed").as_u64(), 0u);
  // The transport must not leak into the artifact: a job submitted over
  // TCP reports byte-identically to one submitted over the Unix socket.
  EXPECT_EQ(read_file(done.at("report").as_string()),
            expected_report(spec, dir.str()));
  stop_daemon(daemon.release());
}

TEST(ServiceClientTest, DeadlineOnHalfOpenPeerThrowsServiceTimeout) {
  // A listener that never accepts: connects land in the backlog and the
  // request is swallowed — the classic half-open peer. The client deadline
  // must cut through it with ServiceTimeout, not block forever.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  ServiceClient client("127.0.0.1:" + std::to_string(ntohs(addr.sin_port)));
  client.set_timeout_ms(300);
  EXPECT_THROW(client.health(), ServiceTimeout);
  ::close(lfd);
}

// ---- idempotent submit ----------------------------------------------------

TEST(FederationTest, RetriedSubmitWithSameRequestIdIsExactlyOneJob) {
  TempDir dir("rid");
  const ServiceConfig config = test_config(dir.str());
  DaemonGuard daemon(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));

  const JobSpec spec = small_job("alice", "rid");
  const std::string rid = make_request_id();
  ServiceClient client(config.socket);

  const JsonValue first = client.submit(spec, rid);
  ASSERT_TRUE(first.at("ok").as_bool());
  const std::string job = first.at("job").as_string();
  EXPECT_FALSE(first.has("duplicate"));

  // The retry a client sends when the original reply was lost: same rid,
  // same job back, flagged duplicate, and nothing new admitted.
  const JsonValue retry = client.submit(spec, rid);
  ASSERT_TRUE(retry.at("ok").as_bool());
  EXPECT_EQ(retry.at("job").as_string(), job);
  ASSERT_TRUE(retry.has("duplicate"));
  EXPECT_TRUE(retry.at("duplicate").as_bool());

  // A different rid is a different request: new job.
  const JsonValue other = client.submit(spec, make_request_id());
  ASSERT_TRUE(other.at("ok").as_bool());
  EXPECT_NE(other.at("job").as_string(), job);

  client.wait(job, 300.0);
  client.wait(other.at("job").as_string(), 300.0);

  // The WAL is the ground truth: exactly two "job" entries ever existed.
  size_t jobs = 0, with_rid = 0;
  std::vector<std::string> warnings;
  scan_sealed_lines(dir.str() + "/service.queue.jsonl",
                    [&](const JsonValue& doc) {
                      if (doc.at("ev").as_string() != "job") return;
                      ++jobs;
                      if (doc.has("rid") && doc.at("rid").as_string() == rid) {
                        ++with_rid;
                      }
                    },
                    warnings);
  EXPECT_EQ(jobs, 2u);
  EXPECT_EQ(with_rid, 1u);
  stop_daemon(daemon.release());
}

// ---- protocol fuzz --------------------------------------------------------

TEST(FederationTest, ProtocolFuzzGetsInvalidRequestOverBothTransports) {
  TempDir dir("fuzz");
  ServiceConfig config = test_config(dir.str());
  config.listen = "127.0.0.1:0";
  DaemonGuard daemon(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));
  const std::string tcp = wait_tcp_endpoint(config.socket, 30.0);
  ASSERT_FALSE(tcp.empty());

  for (const std::string& endpoint : {config.socket, tcp}) {
    fuzz_probe(endpoint, "this is not json\n", "invalid_request",
               "plain text");
    fuzz_probe(endpoint, "{\"op\":42}\n", "unknown_op", "op not string");
    fuzz_probe(endpoint, "{\"op\":\"frobnicate\"}\n", "unknown_op",
               "unknown op");
    fuzz_probe(endpoint, "{\"op\":\"submit\"}\n", "invalid_request",
               "submit without job");
    fuzz_probe(endpoint, "{\"op\":\"submit\",\"job\":{\"client\":123}}\n",
               "invalid_request", "job with wrong types");
    fuzz_probe(endpoint, std::string("\x00\x01\xff\xfe\n", 5),
               "invalid_request", "binary garbage");
    fuzz_probe(endpoint, "{\"op\":\"health\"", "",
               "truncated line, no newline");  // no reply owed; no crash
    fuzz_probe(endpoint, "\n\n\n{\"op\":\"health\"}\n", "",
               "blank lines then health");

    // Oversized line (past the 4MB cap): the daemon replies
    // invalid_request and closes — it may close while we are still
    // sending, so a reset here is acceptable; a wedge or crash is not.
    {
      const int fd = raw_connect(endpoint);
      ASSERT_GE(fd, 0);
      const std::string chunk(1u << 16, 'x');
      for (size_t sent = 0; sent < (1u << 22) + (1u << 17);) {
        const size_t n = raw_send(fd, chunk);
        if (n == 0) break;
        sent += n;
      }
      const std::string reply = raw_reply(fd);
      if (!reply.empty()) {
        EXPECT_EQ(parse_json(reply).at("error").as_string(),
                  "invalid_request");
        EXPECT_EQ(raw_reply(fd), "");  // then the daemon closes
      }
      ::close(fd);
    }

    // After every probe the daemon is still serving real clients.
    ServiceClient client(endpoint);
    client.set_timeout_ms(10000);
    EXPECT_EQ(client.health().at("state").as_string(), "serving")
        << "daemon wedged after fuzz over " << endpoint;
  }

  // And still does real work end to end.
  ServiceClient client(config.socket);
  const JsonValue accepted = client.submit(small_job("alice", "postfuzz"));
  ASSERT_TRUE(accepted.at("ok").as_bool());
  const JsonValue done = client.wait(accepted.at("job").as_string(), 300.0);
  EXPECT_EQ(done.at("done").as_u64(), 2u);
  stop_daemon(daemon.release());
}

// ---- graceful degradation -------------------------------------------------

TEST(FederationTest, DegradedStateDirStopsAdmissionButKeepsServing) {
  TempDir dir("degraded");
  const ServiceConfig config = test_config(dir.str());
  DaemonGuard daemon(spawn_daemon(config));
  ASSERT_TRUE(ServiceClient::wait_ready(config.socket, 30.0));

  // Break the state dir under the daemon: the jobs dir becomes a plain
  // file, so the next admission's mkdir fails the way ENOSPC/EIO would.
  // (chmod tricks don't work here — tests may run as root.)
  std::filesystem::remove_all(dir.str() + "/jobs");
  { std::ofstream out(dir.str() + "/jobs"); }

  ServiceClient client(config.socket);
  client.set_timeout_ms(10000);
  const JsonValue rejected = client.submit(small_job("alice", "doomed"));
  EXPECT_FALSE(rejected.at("ok").as_bool());
  EXPECT_EQ(rejected.at("error").as_string(), "degraded");
  ASSERT_GE(rejected.at("detail").items().size(), 1u);

  // Degraded is sticky and visible: health names the state and the reason,
  // and further submits are refused without touching the sick disk again.
  const JsonValue health = client.health();
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_EQ(health.at("state").as_string(), "degraded");
  EXPECT_FALSE(health.at("reason").as_string().empty());

  const JsonValue again = client.submit(small_job("bob", "also-doomed"));
  EXPECT_EQ(again.at("error").as_string(), "degraded");

  // The daemon did NOT exit: read-only ops still answer, so operators and
  // failover clients can see what is wrong.
  EXPECT_EQ(::kill(daemon.pid, 0), 0);
  const JsonValue unknown = client.status("j-999999");
  EXPECT_EQ(unknown.at("error").as_string(), "unknown_job");
  stop_daemon(daemon.release());
}

// ---- two daemons, one state dir -------------------------------------------

TEST(FederationTest, SurvivorDaemonCompletesJobAfterPeerKill9) {
  TempDir dir("twod");
  ServiceConfig a = test_config(dir.str());
  a.lease_ms = 300;  // steal fast; the test should not idle
  ServiceConfig b = a;
  b.socket = dir.str() + "/wecsimd-b.sock";

  DaemonGuard victim(spawn_daemon(a));
  ASSERT_TRUE(ServiceClient::wait_ready(a.socket, 30.0));
  DaemonGuard survivor(spawn_daemon(b));
  ASSERT_TRUE(ServiceClient::wait_ready(b.socket, 30.0));

  JobSpec spec = small_job("alice", "federated");
  spec.points.push_back(PointSpec{"wp", "wth-wp", 1, 0});
  spec.points.push_back(PointSpec{"base", "wth", 1, 0});

  const std::string rid = make_request_id();
  std::string job;
  std::vector<int64_t> worker_pids;
  {
    ServiceClient client(a.socket);
    const JsonValue accepted = client.submit(spec, rid);
    ASSERT_TRUE(accepted.at("ok").as_bool());
    job = accepted.at("job").as_string();
    const JsonValue health = client.health();
    for (const JsonValue& pid : health.at("worker_pids").items()) {
      worker_pids.push_back(pid.as_i64());
    }
  }

  // kill -9 the admitting daemon, then the workers it left behind: their
  // leases stop being renewed and expire within lease_ms.
  ::kill(victim.pid, SIGKILL);
  ASSERT_EQ(wait_exit(victim.release()), -SIGKILL);
  for (const int64_t pid : worker_pids) {
    ::kill(static_cast<pid_t>(pid), SIGKILL);
  }

  ServiceClient client(b.socket);
  // Failover re-submit with the same request id: the survivor finds the
  // peer-admitted job in the shared WAL instead of duplicating it.
  const JsonValue dup = client.submit(spec, rid);
  ASSERT_TRUE(dup.at("ok").as_bool());
  EXPECT_EQ(dup.at("job").as_string(), job);
  ASSERT_TRUE(dup.has("duplicate"));
  EXPECT_TRUE(dup.at("duplicate").as_bool());

  // The survivor discovers, steals, and finishes every point — and the
  // report is byte-identical to an uninterrupted single-daemon run.
  const JsonValue done = client.wait(job, 300.0);
  EXPECT_EQ(done.at("done").as_u64(), 4u);
  EXPECT_EQ(done.at("failed").as_u64(), 0u);
  EXPECT_EQ(read_file(done.at("report").as_string()),
            expected_report(spec, dir.str()));

  // Zero lost points: every key reached a terminal "done" in the journal.
  // (A point the victim finished before the kill is adopted, not re-run;
  // an orphan worker racing the thief can legally leave a second entry —
  // the journal's duplicate-terminal dedup keeps the report identical.)
  std::map<std::string, size_t> done_per_key;
  std::vector<std::string> warnings;
  scan_sealed_lines(job_journal_path(dir.str(), job),
                    [&](const JsonValue& doc) {
                      if (doc.at("ev").as_string() == "done") {
                        ++done_per_key[doc.at("key").as_string()];
                      }
                    },
                    warnings);
  EXPECT_EQ(done_per_key.size(), spec.points.size());
  for (const PointSpec& p : spec.points) {
    EXPECT_GE(done_per_key[p.key], 1u) << "point lost: " << p.key;
  }

  // Exactly one "job" WAL entry despite the re-submit.
  size_t jobs = 0;
  scan_sealed_lines(dir.str() + "/service.queue.jsonl",
                    [&](const JsonValue& doc) {
                      if (doc.at("ev").as_string() == "job") ++jobs;
                    },
                    warnings);
  EXPECT_EQ(jobs, 1u);

  // Status carries per-point provenance; the finalize also leaves the
  // provenance sidecar next to the report (and never inside it).
  const JsonValue status = client.status(job);
  ASSERT_TRUE(status.has("points"));
  EXPECT_EQ(status.at("points").items().size(), spec.points.size());
  for (const JsonValue& pt : status.at("points").items()) {
    EXPECT_EQ(pt.at("state").as_string(), "done");
    const std::string prov = pt.at("provenance").as_string();
    EXPECT_TRUE(prov == "hot" || prov == "cached" || prov == "resumed" ||
                prov == "stolen")
        << prov;
  }
  const std::string sidecar =
      read_file(job_provenance_path(dir.str(), job));
  ASSERT_FALSE(sidecar.empty());
  EXPECT_EQ(parse_json(sidecar).at("points").items().size(),
            spec.points.size());
  stop_daemon(survivor.release());
}

}  // namespace
}  // namespace wecsim
