// The paper's memory-system semantics (Figures 5 and 6): every routing path
// of the WEC, the victim cache, and next-line tagged prefetching, plus L2
// timing and coherence accounting.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "mem/mem_system.h"

namespace wecsim {
namespace {

MemConfig small_config(SideKind side) {
  MemConfig config;
  config.l1d = {512, 1, 64};  // 8 direct-mapped sets: conflicts are easy
  config.l2 = {64 * 1024, 4, 128};
  config.side = side;
  config.side_entries = 4;
  return config;
}

struct Rig {
  explicit Rig(SideKind side, MemConfig config = {})
      : config_(config.l1d.size_bytes == 8 * 1024 ? small_config(side)
                                                  : config),
        l2(config_, stats),
        tu(config_, l2, stats, "tu0.") {}

  StatsRegistry stats;
  MemConfig config_;
  SharedL2 l2;
  TuMemSystem tu;

  uint64_t stat(const std::string& name) { return stats.value(name); }
};

// Two addresses in the same direct-mapped set (512B cache, 64B blocks).
constexpr Addr kA = 0x0000;
constexpr Addr kB = 0x0200;  // kA + cache size
constexpr Addr kC = 0x0400;

TEST(MemSystemBase, HitAfterFill) {
  Rig rig(SideKind::kNone);
  auto miss = rig.tu.load(kA, ExecMode::kCorrect, 10);
  EXPECT_FALSE(miss.l1_hit);
  EXPECT_GT(miss.done, Cycle{10 + 200});  // went to memory
  auto hit = rig.tu.load(kA, ExecMode::kCorrect, miss.done);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_EQ(hit.done, miss.done + 1);
  EXPECT_EQ(rig.stat("tu0.l1d.misses"), 1u);
  EXPECT_EQ(rig.stat("tu0.l1d.accesses"), 2u);
}

TEST(MemSystemBase, SecondAccessBeforeFillCompletesWaits) {
  Rig rig(SideKind::kNone);
  auto miss = rig.tu.load(kA, ExecMode::kCorrect, 10);
  auto early = rig.tu.load(kA, ExecMode::kCorrect, 20);
  EXPECT_TRUE(early.l1_hit);        // MSHR-style hit on the in-flight line
  EXPECT_GE(early.done, miss.done); // but data arrives with the fill
}

TEST(MemSystemBase, L2HitIsMuchFasterThanMemory) {
  Rig rig(SideKind::kNone);
  rig.tu.load(kA, ExecMode::kCorrect, 10);   // memory fill, now in L2
  rig.tu.load(kB, ExecMode::kCorrect, 500);  // evicts kA from L1 (same set)
  auto reload = rig.tu.load(kA, ExecMode::kCorrect, 1000);
  EXPECT_FALSE(reload.l1_hit);
  EXPECT_LE(reload.done, Cycle{1000 + 20});  // L2 hit latency, not 200
}

TEST(MemSystemBase, DirtyEvictionWritesBackToL2) {
  Rig rig(SideKind::kNone);
  rig.tu.store(kA, 10);
  rig.tu.store(kB, 400);  // evicts dirty kA
  EXPECT_GE(rig.stat("l2.writebacks"), 1u);
}

// --- victim cache ----------------------------------------------------------

TEST(VictimCache, CatchesConflictEvictions) {
  Rig rig(SideKind::kVictim);
  auto a1 = rig.tu.load(kA, ExecMode::kCorrect, 0);
  rig.tu.load(kB, ExecMode::kCorrect, a1.done + 300);  // kA -> victim cache
  auto back = rig.tu.load(kA, ExecMode::kCorrect, a1.done + 900);
  EXPECT_FALSE(back.l1_hit);
  EXPECT_TRUE(back.side_hit);  // served by the victim cache, swap back
  EXPECT_EQ(rig.stat("tu0.side.hits"), 1u);
  // And kB swapped out into the victim cache: it hits there now.
  auto b_back = rig.tu.load(kB, ExecMode::kCorrect, a1.done + 1200);
  EXPECT_TRUE(b_back.side_hit);
}

TEST(VictimCache, WrongLoadsFillTheL1Directly) {
  // Without a WEC, wrong-execution loads are cache-filling like any other:
  // that is the pollution the WEC removes.
  Rig rig(SideKind::kVictim);
  rig.tu.load(kA, ExecMode::kCorrect, 0);
  rig.tu.load(kB, ExecMode::kWrongPath, 700);  // fills L1, evicts kA
  auto back = rig.tu.load(kA, ExecMode::kCorrect, 1500);
  EXPECT_FALSE(back.l1_hit);   // polluted away...
  EXPECT_TRUE(back.side_hit);  // ...but the victim cache caught it here
}

// --- WEC -------------------------------------------------------------------

TEST(Wec, WrongMissFillsWecNotL1) {
  Rig rig(SideKind::kWec);
  rig.tu.load(kA, ExecMode::kWrongThread, 0);
  EXPECT_EQ(rig.stat("tu0.side.wrong_fills"), 1u);
  // The L1 set is untouched: a correct load of a conflicting block fills
  // without evicting anything WEC-worthy, and kA hits in the WEC.
  auto correct = rig.tu.load(kA, ExecMode::kCorrect, 800);
  EXPECT_FALSE(correct.l1_hit);
  EXPECT_TRUE(correct.side_hit);  // indirect prefetch: the paper's effect
}

TEST(Wec, WrongLoadNeverPollutesL1) {
  Rig rig(SideKind::kWec);
  auto a1 = rig.tu.load(kA, ExecMode::kCorrect, 0);  // correct fill of kA
  rig.tu.load(kB, ExecMode::kWrongPath, a1.done + 300);
  auto again = rig.tu.load(kA, ExecMode::kCorrect, a1.done + 900);
  EXPECT_TRUE(again.l1_hit) << "wrong-execution load must not evict kA";
}

TEST(Wec, CorrectHitOnWrongFetchedBlockTriggersNextLinePrefetch) {
  Rig rig(SideKind::kWec);
  rig.tu.load(kA, ExecMode::kWrongPath, 0);       // kA into the WEC
  rig.tu.load(kA, ExecMode::kCorrect, 800);       // hit: promote + prefetch
  EXPECT_EQ(rig.stat("tu0.side.prefetches"), 1u);
  // The next line (kA + 64) is now in the WEC.
  auto next = rig.tu.load(kA + 64, ExecMode::kCorrect, 1600);
  EXPECT_TRUE(next.side_hit);
}

TEST(Wec, VictimHitDoesNotTriggerPrefetch) {
  Rig rig(SideKind::kWec);
  auto a1 = rig.tu.load(kA, ExecMode::kCorrect, 0);
  rig.tu.load(kB, ExecMode::kCorrect, a1.done + 300);   // kA -> WEC (victim)
  rig.tu.load(kA, ExecMode::kCorrect, a1.done + 900);   // WEC hit, victim role
  EXPECT_EQ(rig.stat("tu0.side.prefetches"), 0u);
}

TEST(Wec, WrongHitInWecStaysInWec) {
  Rig rig(SideKind::kWec);
  rig.tu.load(kA, ExecMode::kWrongThread, 0);
  auto wrong_again = rig.tu.load(kA, ExecMode::kWrongThread, 800);
  EXPECT_TRUE(wrong_again.side_hit);
  EXPECT_EQ(rig.stat("tu0.side.wrong_hits"), 1u);
  // Still not in the L1.
  auto correct = rig.tu.load(kA, ExecMode::kCorrect, 1600);
  EXPECT_FALSE(correct.l1_hit);
  EXPECT_TRUE(correct.side_hit);
}

TEST(Wec, WrongHitInL1CountsAsPlainHit) {
  Rig rig(SideKind::kWec);
  auto fill = rig.tu.load(kA, ExecMode::kCorrect, 0);
  auto wrong = rig.tu.load(kA, ExecMode::kWrongPath, fill.done + 10);
  EXPECT_TRUE(wrong.l1_hit);
  EXPECT_EQ(rig.stat("tu0.l1d.wrong_misses"), 0u);
}

// --- next-line tagged prefetching -------------------------------------------

TEST(Nlp, PrefetchesOnMiss) {
  Rig rig(SideKind::kPrefetchBuffer);
  rig.tu.load(kA, ExecMode::kCorrect, 0);
  EXPECT_EQ(rig.stat("tu0.side.prefetches"), 1u);
  auto next = rig.tu.load(kA + 64, ExecMode::kCorrect, 800);
  EXPECT_TRUE(next.side_hit);
}

TEST(Nlp, TaggedFirstHitPrefetchesAgain) {
  Rig rig(SideKind::kPrefetchBuffer);
  rig.tu.load(kA, ExecMode::kCorrect, 0);        // miss: prefetch kA+64
  rig.tu.load(kA + 64, ExecMode::kCorrect, 800); // buffer hit -> L1, tagged
  EXPECT_EQ(rig.stat("tu0.side.prefetches"), 1u);
  // First demand hit on the promoted block triggers the next prefetch.
  rig.tu.load(kA + 64, ExecMode::kCorrect, 1600);
  EXPECT_EQ(rig.stat("tu0.side.prefetches"), 2u);
  auto next = rig.tu.load(kA + 128, ExecMode::kCorrect, 2400);
  EXPECT_TRUE(next.side_hit || next.l1_hit);
}

TEST(Nlp, NoPrefetchWhenNextLineResident) {
  Rig rig(SideKind::kPrefetchBuffer);
  auto f1 = rig.tu.load(kA + 64, ExecMode::kCorrect, 0);  // fill kA+64 into L1
  (void)f1;
  const uint64_t before = rig.stat("tu0.side.prefetches");
  rig.tu.load(kA, ExecMode::kCorrect, 900);  // next line already in L1
  // kA's next line (kA+64) is resident in the L1, so the miss on kA issues
  // no new prefetch.
  EXPECT_EQ(rig.stat("tu0.side.prefetches"), before);
}

// --- coherence ---------------------------------------------------------------

TEST(Coherence, UpdateCountsOnlyWhenCached) {
  Rig rig(SideKind::kWec);
  rig.tu.coherence_update(kA);
  EXPECT_EQ(rig.stat("tu0.coherence.updates"), 0u);
  rig.tu.load(kA, ExecMode::kCorrect, 0);
  rig.tu.coherence_update(kA);
  EXPECT_EQ(rig.stat("tu0.coherence.updates"), 1u);
  // A WEC-resident block also counts.
  rig.tu.load(kC, ExecMode::kWrongPath, 900);
  rig.tu.coherence_update(kC);
  EXPECT_EQ(rig.stat("tu0.coherence.updates"), 2u);
}

// --- shared L2 ----------------------------------------------------------------

TEST(SharedL2, BandwidthSerializesRequests) {
  MemConfig config = small_config(SideKind::kNone);
  config.l2_occupancy = 4;
  StatsRegistry stats;
  SharedL2 l2(config, stats);
  const Cycle t1 = l2.access(0x0000, 10);
  const Cycle t2 = l2.access(0x1000, 10);  // queued behind the first
  EXPECT_EQ(t2, t1 + config.l2_occupancy);
}

TEST(SharedL2, HitOnFillingLineWaitsForMemory) {
  MemConfig config = small_config(SideKind::kNone);
  StatsRegistry stats;
  SharedL2 l2(config, stats);
  const Cycle fill = l2.access(0x0000, 10);
  const Cycle hit = l2.access(0x0000, 20);
  EXPECT_GE(hit, fill);  // the second request cannot beat the fill
  EXPECT_EQ(stats.value("l2.misses"), 1u);
  EXPECT_EQ(stats.value("l2.accesses"), 2u);
}

}  // namespace
}  // namespace wecsim
