// Architectural semantics: ALU ops, branches, load extension, FP bit
// handling, and the defined-division corner cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "isa/semantics.h"

namespace wecsim {
namespace {

Word bits_of(double d) {
  Word w;
  std::memcpy(&w, &d, sizeof(w));
  return w;
}

double double_of(Word w) {
  double d;
  std::memcpy(&d, &w, sizeof(d));
  return d;
}

Word alu(Opcode op, Word a, Word b, int64_t imm = 0) {
  Instruction instr{op, 1, 2, 3, imm};
  return eval_alu(instr, a, b);
}

TEST(EvalAlu, IntegerBasics) {
  EXPECT_EQ(alu(Opcode::kAdd, 2, 3), 5u);
  EXPECT_EQ(alu(Opcode::kSub, 2, 3), static_cast<Word>(-1));
  EXPECT_EQ(alu(Opcode::kMul, 7, 6), 42u);
  EXPECT_EQ(alu(Opcode::kAnd, 0b1100, 0b1010), 0b1000u);
  EXPECT_EQ(alu(Opcode::kOr, 0b1100, 0b1010), 0b1110u);
  EXPECT_EQ(alu(Opcode::kXor, 0b1100, 0b1010), 0b0110u);
}

TEST(EvalAlu, ShiftsMaskTheAmount) {
  EXPECT_EQ(alu(Opcode::kSll, 1, 64), 1u);  // shift amount mod 64
  EXPECT_EQ(alu(Opcode::kSll, 1, 3), 8u);
  EXPECT_EQ(alu(Opcode::kSrl, 0x8000'0000'0000'0000ull, 63), 1u);
  EXPECT_EQ(alu(Opcode::kSra, static_cast<Word>(-8), 1),
            static_cast<Word>(-4));
  EXPECT_EQ(alu(Opcode::kSlli, 1, 0, 4), 16u);
  EXPECT_EQ(alu(Opcode::kSrai, static_cast<Word>(-16), 0, 2),
            static_cast<Word>(-4));
}

TEST(EvalAlu, Comparisons) {
  EXPECT_EQ(alu(Opcode::kSlt, static_cast<Word>(-1), 0), 1u);
  EXPECT_EQ(alu(Opcode::kSltu, static_cast<Word>(-1), 0), 0u);
  EXPECT_EQ(alu(Opcode::kSlti, static_cast<Word>(-5), 0, -4), 1u);
}

TEST(EvalAlu, DivisionFollowsRiscVConventions) {
  EXPECT_EQ(alu(Opcode::kDiv, 42, 0), static_cast<Word>(-1));
  EXPECT_EQ(alu(Opcode::kRem, 42, 0), 42u);
  const Word int_min = static_cast<Word>(std::numeric_limits<SWord>::min());
  EXPECT_EQ(alu(Opcode::kDiv, int_min, static_cast<Word>(-1)), int_min);
  EXPECT_EQ(alu(Opcode::kRem, int_min, static_cast<Word>(-1)), 0u);
  EXPECT_EQ(alu(Opcode::kDiv, static_cast<Word>(-7), 2),
            static_cast<Word>(-3));
  EXPECT_EQ(alu(Opcode::kRem, static_cast<Word>(-7), 2),
            static_cast<Word>(-1));
}

TEST(EvalAlu, Immediates) {
  EXPECT_EQ(alu(Opcode::kAddi, 10, 0, -3), 7u);
  EXPECT_EQ(alu(Opcode::kAndi, 0xff, 0, 0x0f), 0x0fu);
  EXPECT_EQ(alu(Opcode::kLi, 0, 0, -99), static_cast<Word>(-99));
}

TEST(EvalAlu, FloatingPoint) {
  EXPECT_DOUBLE_EQ(
      double_of(alu(Opcode::kFadd, bits_of(1.5), bits_of(2.25))), 3.75);
  EXPECT_DOUBLE_EQ(
      double_of(alu(Opcode::kFsub, bits_of(1.5), bits_of(2.25))), -0.75);
  EXPECT_DOUBLE_EQ(double_of(alu(Opcode::kFmul, bits_of(3.0), bits_of(0.5))),
                   1.5);
  EXPECT_DOUBLE_EQ(double_of(alu(Opcode::kFdiv, bits_of(1.0), bits_of(4.0))),
                   0.25);
  EXPECT_EQ(alu(Opcode::kFeq, bits_of(2.0), bits_of(2.0)), 1u);
  EXPECT_EQ(alu(Opcode::kFlt, bits_of(1.0), bits_of(2.0)), 1u);
  EXPECT_EQ(alu(Opcode::kFle, bits_of(2.0), bits_of(2.0)), 1u);
  EXPECT_EQ(alu(Opcode::kFlt, bits_of(2.0), bits_of(1.0)), 0u);
}

TEST(EvalAlu, FpConversions) {
  EXPECT_DOUBLE_EQ(
      double_of(alu(Opcode::kFcvtDL, static_cast<Word>(-3), 0)), -3.0);
  EXPECT_EQ(alu(Opcode::kFcvtLD, bits_of(3.9), 0), 3u);   // truncates
  EXPECT_EQ(alu(Opcode::kFcvtLD, bits_of(-3.9), 0), static_cast<Word>(-3));
  EXPECT_EQ(alu(Opcode::kFcvtLD, bits_of(std::nan("")), 0), 0u);
  EXPECT_EQ(alu(Opcode::kFcvtLD, bits_of(1e30), 0),
            static_cast<Word>(std::numeric_limits<SWord>::max()));
}

TEST(EvalBranch, AllConditions) {
  auto taken = [](Opcode op, Word a, Word b) {
    return eval_branch(Instruction{op, 0, 1, 2, 0}, a, b);
  };
  EXPECT_TRUE(taken(Opcode::kBeq, 5, 5));
  EXPECT_FALSE(taken(Opcode::kBeq, 5, 6));
  EXPECT_TRUE(taken(Opcode::kBne, 5, 6));
  EXPECT_TRUE(taken(Opcode::kBlt, static_cast<Word>(-1), 0));
  EXPECT_FALSE(taken(Opcode::kBltu, static_cast<Word>(-1), 0));
  EXPECT_TRUE(taken(Opcode::kBge, 0, static_cast<Word>(-1)));
  EXPECT_TRUE(taken(Opcode::kBgeu, static_cast<Word>(-1), 0));
}

TEST(ExtendLoaded, SignAndZeroExtension) {
  EXPECT_EQ(extend_loaded(Opcode::kLb, 0x80), static_cast<Word>(-128));
  EXPECT_EQ(extend_loaded(Opcode::kLbu, 0x80), 0x80u);
  EXPECT_EQ(extend_loaded(Opcode::kLw, 0x8000'0000u),
            static_cast<Word>(static_cast<int64_t>(INT32_MIN)));
  EXPECT_EQ(extend_loaded(Opcode::kLd, 0x8000'0000'0000'0000ull),
            0x8000'0000'0000'0000ull);
}

TEST(EvalMemAddr, BasePlusDisplacement) {
  EXPECT_EQ(eval_mem_addr(Instruction{Opcode::kLd, 1, 2, 0, 16}, 100), 116u);
  EXPECT_EQ(eval_mem_addr(Instruction{Opcode::kLd, 1, 2, 0, -4}, 100), 96u);
}

}  // namespace
}  // namespace wecsim
