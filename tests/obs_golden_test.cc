// Golden-file determinism of the observability outputs: the same workload on
// the same configuration must serialize byte-identical traces and run
// reports across runs (a prerequisite for diffing reports in CI), and the
// WEC provenance books must balance.
#include <gtest/gtest.h>

#include <string>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "harness/report.h"
#include "workloads/workload.h"

namespace wecsim {
namespace {

struct RunOutput {
  std::string trace_jsonl;
  std::string chrome_trace;
  std::string report;
  SimResult result;
};

RunOutput run_once() {
  WorkloadParams params;
  params.scale = 1;
  Workload w = make_workload("mcf", params);
  Simulator sim(w.program, make_paper_config(PaperConfig::kWthWpWec));
  w.init(sim.memory());
  sim.trace().enable();
  RunOutput out;
  out.result = sim.run();
  out.trace_jsonl = sim.trace().to_jsonl();
  out.chrome_trace = sim.trace().to_chrome_trace();

  RunRecord record;
  record.workload = w.name;
  record.config_key = paper_config_name(PaperConfig::kWthWpWec);
  record.scale = params.scale;
  record.result = out.result;
  record.counters = sim.stats().snapshot();
  record.histograms = sim.stats().histogram_snapshot();
  record.gauges = sim.stats().gauge_snapshot();
  out.report = render_run_report("golden", {record});
  return out;
}

TEST(ObsGolden, TraceAndReportAreByteIdenticalAcrossRuns) {
  const RunOutput a = run_once();
  const RunOutput b = run_once();
  ASSERT_TRUE(a.result.halted);
#ifndef WECSIM_DISABLE_TRACING
  EXPECT_GT(a.trace_jsonl.size(), 0u);
#endif
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.report, b.report);
}

TEST(ObsGolden, ProvenanceBooksBalance) {
  const RunOutput out = run_once();
  const WecProvenance& wec = out.result.wec;
  // The WEC config actually exercises the side cache.
  EXPECT_GT(wec.total_fills(), 0u);
  uint64_t fills_sum = 0;
  for (size_t i = 0; i < kNumSideOrigins; ++i) {
    // Every fill left the cache exactly once: used or unused, never both.
    EXPECT_EQ(wec.fills[i], wec.used[i] + wec.unused[i])
        << "origin " << side_origin_name(static_cast<SideOrigin>(i));
    fills_sum += wec.fills[i];
  }
  EXPECT_EQ(fills_sum, wec.total_fills());
  // Wrong execution contributed fills (that is the point of the WEC), and
  // some of them were used by correct-path execution.
  const size_t wp = side_origin_index(SideOrigin::kWrongPath);
  const size_t wth = side_origin_index(SideOrigin::kWrongThread);
  EXPECT_GT(wec.fills[wp] + wec.fills[wth], 0u);
}

TEST(ObsGolden, TraceDisabledByDefaultAndCostsNothing) {
  WorkloadParams params;
  params.scale = 1;
  Workload w = make_workload("mcf", params);
  Simulator sim(w.program, make_paper_config(PaperConfig::kWthWpWec));
  w.init(sim.memory());
  const SimResult r = sim.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(sim.trace().size(), 0u);
  // Tracing must not perturb timing: cycle counts match the traced run.
  EXPECT_EQ(r.cycles, run_once().result.cycles);
}

}  // namespace
}  // namespace wecsim
